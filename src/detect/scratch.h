// Per-worker detection scratch: one arena serving every built-in detector.
//
// The detection hot path used to allocate per call — QR intermediates,
// QUBO reduction temporaries, beam copies, result vectors.  detect_scratch
// gathers all of those into one reusable object: each detector's
// detect_into override touches only the members it needs, every buffer is
// resized in place (capacity-reusing), and the embedded decomposition caches
// (linear_scratch, lattice_scratch) key on the EXACT channel content so a
// cache hit is output-invariant by construction.  A warmed-up scratch makes
// the built-in detectors allocation-free per use.
//
// Ownership: one detect_scratch per worker thread (see paths/workspace.h),
// never shared concurrently.  Nothing in here affects detection OUTPUTS —
// the golden link statistics are bit-identical with or without scratch
// reuse, which tests/workspace_test.cpp pins.
#ifndef HCQ_DETECT_SCRATCH_H
#define HCQ_DETECT_SCRATCH_H

#include <cstddef>
#include <vector>

#include "detect/detector.h"
#include "detect/linear.h"
#include "detect/real_model.h"
#include "detect/transform.h"
#include "linalg/decompose.h"
#include "linalg/matrix.h"

namespace hcq::detect {

struct detect_scratch {
    qubo_scratch qubo;        ///< QuAMax reduction buffers + cached A matrix
    linear_scratch linear;    ///< ZF / MMSE factorisation caches
    lattice_scratch lattice;  ///< shared real-lattice model + tree buffers

    // SIC per-iteration state.
    linalg::ls_scratch<linalg::cxd> ls;  ///< least squares on the restricted channel
    linalg::cmat h_sub;                  ///< channel restricted to remaining streams
    linalg::cvec sic_residual;           ///< interference-cancelled observation
    linalg::cvec soft;                   ///< equalised estimates
    std::vector<std::size_t> remaining;  ///< undetected stream ids

    linalg::cvec symbols;     ///< ml_cost_bits symbol buffer
    linalg::cvec residual;    ///< ml_cost residual buffer
    detection_result result;  ///< reusable carrier for the path adapters
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_SCRATCH_H
