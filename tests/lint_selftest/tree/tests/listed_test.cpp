// Fixture: correctly registered — no finding.
int main() { return 0; }
