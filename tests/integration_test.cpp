// Cross-module integration tests: weak, seeded versions of the paper's
// headline observations, plus end-to-end flows through the full stack.
#include <gtest/gtest.h>

#include "classical/greedy.h"
#include "classical/solver.h"
#include "core/device.h"
#include "core/experiment.h"
#include "core/hybrid_solver.h"
#include "core/sweep.h"
#include "detect/linear.h"
#include "detect/sphere.h"
#include "metrics/ber.h"
#include "metrics/delta_e.h"
#include "pipeline/pipeline.h"
#include "qubo/preprocess.h"
#include "util/rng.h"

namespace {

namespace hy = hcq::hybrid;
namespace an = hcq::anneal;
namespace wl = hcq::wireless;
namespace sv = hcq::solvers;

/// Mean Delta-E% over reads for one protocol on a small seeded corpus.
double mean_gap(const an::annealer_emulator& device, const an::anneal_schedule& schedule,
                const std::vector<hy::experiment_instance>& corpus, std::size_t reads,
                bool init_greedy, bool init_random, std::uint64_t seed) {
    hcq::util::rng rng(seed);
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& e : corpus) {
        std::optional<hcq::qubo::bit_vector> initial;
        if (init_greedy) {
            initial = sv::greedy_search().initialize(e.reduced.model, rng).bits;
        } else if (init_random) {
            initial = rng.bits(e.num_variables());
        }
        const auto samples = device.sample(e.reduced.model, schedule, reads, rng, initial);
        for (const auto& s : samples.all()) {
            total += hcq::metrics::delta_e_percent(s.energy, e.optimal_energy);
            ++count;
        }
    }
    return total / static_cast<double>(count);
}

TEST(Integration, RaFromGreedyBeatsRaFromRandom) {
    // Figure 6's qualitative core: at each protocol's median-best parameter
    // setting, seeding RA with GS concentrates the sample distribution near
    // the optimum compared to random seeding.
    const auto corpus = hy::make_paper_corpus(2024, 4, 4, wl::modulation::qam16);
    const an::annealer_emulator device;
    double best_gs_gap = 1e300;
    double best_random_gap = 1e300;
    for (const double sp : {0.33, 0.37, 0.41, 0.45}) {
        const auto ra = an::anneal_schedule::reverse(sp, 1.0);
        best_gs_gap = std::min(best_gs_gap, mean_gap(device, ra, corpus, 50, true, false, 11));
        best_random_gap =
            std::min(best_random_gap, mean_gap(device, ra, corpus, 50, false, true, 12));
    }
    EXPECT_LT(best_gs_gap, best_random_gap + 0.5);
}

TEST(Integration, HybridFindsOptimumOnSmallInstances) {
    // On 12-variable instances the refinement window sits at lower s_p than
    // on the 32-variable Figure-8 workload (the temperature scale tracks
    // max|Q|, which grows with problem size).
    hcq::util::rng rng(2025);
    const auto corpus = hy::make_paper_corpus(77, 3, 3, wl::modulation::qam16);
    const an::annealer_emulator device;
    const sv::greedy_search gs;
    const hy::hybrid_solver solver(gs, device, an::anneal_schedule::reverse(0.29, 1.0), 120);
    int solved = 0;
    for (const auto& e : corpus) {
        const auto result = solver.solve(e.reduced.model, rng);
        if (result.best_energy <= e.optimal_energy + 1e-6) ++solved;
    }
    EXPECT_GE(solved, 2);
}

TEST(Integration, ReverseWindowExists) {
    // Figure 8's qualitative core, on its own workload (8-user 16-QAM) with
    // the figure's initial-state semantics (a harvested candidate solution
    // of known quality): RA succeeds on mid-range s_p, fails both when s_p
    // is extremely low (initial state wiped out) and when s_p is close to 1
    // (frozen register, a non-optimal state cannot improve).
    hcq::util::rng rng(2026);
    const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
    const an::annealer_emulator device;
    // A single-bit-flip of the optimum: the canonical refinable candidate
    // (one strictly-downhill move from the ground state, Delta-E_IS > 0).
    auto init = e.optimal_bits;
    init[3] ^= 1U;
    ASSERT_GT(hcq::metrics::delta_e_percent(e.reduced.model.energy(init), e.optimal_energy),
              0.0);

    double best_mid = 0.0;
    for (const double sp : {0.41, 0.49, 0.57, 0.65}) {
        const auto eval =
            hy::evaluate_schedule(device, e.reduced.model, an::anneal_schedule::reverse(sp, 1.0),
                                  60, e.optimal_energy, rng, init);
        best_mid = std::max(best_mid, eval.p_star);
    }
    const auto low = hy::evaluate_schedule(device, e.reduced.model,
                                           an::anneal_schedule::reverse(0.03, 1.0), 60,
                                           e.optimal_energy, rng, init);
    const auto frozen = hy::evaluate_schedule(device, e.reduced.model,
                                              an::anneal_schedule::reverse(0.97, 1.0), 60,
                                              e.optimal_energy, rng, init);
    EXPECT_GT(best_mid, 0.2);
    EXPECT_GT(best_mid, low.p_star);
    EXPECT_DOUBLE_EQ(frozen.p_star, 0.0);  // frozen non-optimal state never improves
}

TEST(Integration, PrefixingUselessOnLargeMimoQubos) {
    // Figure 3's finding: 36-variable MIMO QUBOs are essentially never
    // simplified by the prefixing rules.
    std::size_t total_fixed = 0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        hcq::util::rng rng(9000 + seed);
        const auto e = hy::make_paper_instance(rng, 9, wl::modulation::qam16);  // 36 vars
        const auto result = hcq::qubo::prefix_variables(e.reduced.model);
        total_fixed += result.num_fixed();
    }
    EXPECT_EQ(total_fixed, 0u);
}

TEST(Integration, PrefixingSometimesHelpsOnTinyBpsk) {
    // ...while very small BPSK problems do occasionally simplify.
    std::size_t simplified = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        hcq::util::rng rng(9100 + seed);
        const auto e = hy::make_paper_instance(rng, 2, wl::modulation::bpsk);
        if (hcq::qubo::prefix_variables(e.reduced.model).simplified()) ++simplified;
    }
    EXPECT_GT(simplified, 0u);
}

TEST(Integration, DetectorInitializersMatchQuboSpace) {
    // Detector bits plug directly into the QUBO as initial states: same
    // layout, same energies.
    hcq::util::rng rng(2027);
    const auto e = hy::make_paper_instance(rng, 5, wl::modulation::qam16);
    const auto zf = hcq::detect::zf_detector().detect(e.instance);
    const double qubo_total = e.reduced.model.energy_with_offset(zf.bits);
    EXPECT_NEAR(qubo_total, zf.ml_cost, 1e-7);
    // Noiseless: ZF is exact, so it is a Delta-E_IS = 0 initial state.
    EXPECT_NEAR(hcq::metrics::delta_e_percent(e.reduced.model.energy(zf.bits),
                                              e.optimal_energy),
                0.0, 1e-9);
}

TEST(Integration, EndToEndBerAtModerateSnr) {
    // With AWGN, the exact detector's BER must not exceed zero-forcing's.
    hcq::util::rng rng(2028);
    hcq::metrics::ber_counter zf_ber;
    hcq::metrics::ber_counter sd_ber;
    for (int frame = 0; frame < 40; ++frame) {
        wl::mimo_config config;
        config.mod = wl::modulation::qpsk;
        config.num_users = 4;
        config.num_antennas = 4;
        config.channel = wl::channel_model::rayleigh;
        config.noise_variance = wl::noise_variance_for_snr(config.mod, 4, 12.0);
        const auto inst = wl::synthesize(rng, config);
        zf_ber.add_frame(inst.tx_bits, hcq::detect::zf_detector().detect(inst).bits);
        sd_ber.add_frame(inst.tx_bits, hcq::detect::sphere_detector().detect(inst).bits);
    }
    EXPECT_LE(sd_ber.errors(), zf_ber.errors());
}

TEST(Integration, HybridPipelineMeetsLatencyBudget) {
    // Compose measured hybrid timings into the Figure-2 pipeline: with a
    // per-channel-use budget of a few ms, a handful of reads fits easily.
    hcq::util::rng rng(2029);
    const auto e = hy::make_paper_instance(rng, 4, wl::modulation::qam16);
    const auto init = sv::greedy_search().initialize(e.reduced.model, rng);
    const auto schedule = an::anneal_schedule::reverse(0.45, 1.0);
    const auto stages = hcq::pipeline::make_hybrid_stages(
        std::max(init.elapsed_us, 1.0), schedule.duration_us(), 100);
    const auto sim = hcq::pipeline::simulate(stages, 100, {.interarrival_us = 500.0}, rng);
    EXPECT_LT(sim.p99_latency_us, 1000.0);
    EXPECT_GT(sim.throughput_per_us, 0.0);
}

TEST(Integration, FullQuantumVsHybridTimingAccounting) {
    // The hybrid's quantum_us must equal duration x reads, and adding the
    // classical time yields the end-to-end cost used by the ablation bench.
    hcq::util::rng rng(2030);
    const auto e = hy::make_paper_instance(rng, 4, wl::modulation::qpsk);
    const an::annealer_emulator device;
    const sv::greedy_search gs;
    const auto schedule = an::anneal_schedule::reverse(0.41, 1.0);
    const hy::hybrid_solver solver(gs, device, schedule, 25);
    const auto result = solver.solve(e.reduced.model, rng);
    EXPECT_NEAR(result.quantum_us, schedule.duration_us() * 25.0, 1e-9);
    const double end_to_end = result.classical_us + result.quantum_us;
    EXPECT_GE(end_to_end, result.quantum_us);
}

}  // namespace
