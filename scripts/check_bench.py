#!/usr/bin/env python3
"""Bench perf-regression gate: diff a BENCH_*.json run against its baseline.

Both files are bench JSON artifacts — either the self-describing envelope
{"git_sha": ..., "bench": ..., "config": ..., "rows": [...]} emitted by
bench_common.h, or a bare JSON array of row objects (the pre-envelope
format, still accepted so old baselines keep working).

Rows are matched on the key columns (default: users, mod, path).  Two kinds
of checks run:

  * TOLERANCED metrics (timing-domain, vary run to run): a higher-better
    metric regresses when current < baseline * (1 - tolerance); a
    lower-better metric when current > baseline * (1 + tolerance).
    Defaults: --higher-better "thrpt use/ms", --lower-better "p99 lat us",
    --tolerance 0.15.  Improvements never fail.  A metric may carry an
    absolute noise floor ("p99 lat us:100"): differences smaller than the
    floor never fail, because a relative tolerance is meaningless below the
    timer-noise resolution (a 30 us p99 legitimately jitters by tens of
    percent run to run).

  * EXACT metrics (deterministic in the seed, machine-independent): any
    difference beyond floating-point noise fails.  Off by default; the CI
    gate passes --exact "BER,exact uses" so a statistics regression is
    caught even when it is timing-neutral.

A baseline row missing from the current run (or vice versa) fails: a
silently vanished configuration is itself a regression.  Exit status: 0
clean, non-zero on regression or usage/format error.

Timing metrics are noisy at the single-run level, so both sides of the gate
are MEDIANS: pass several current files (repeat runs of the same command)
and each numeric cell is reduced to its per-row median before comparison;
baselines are produced the same way with --merge.

Usage:
  # gate: compare the median of 3 fresh runs against the committed baseline
  scripts/check_bench.py bench/baselines/BENCH_link_e2e.json \
      run1.json run2.json run3.json \
      --tolerance 0.15 --lower-better "p99 lat us:100" --exact "BER,exact uses"

  # baseline refresh: median-merge repeat runs into a committed artifact
  scripts/check_bench.py --merge bench/baselines/BENCH_link_e2e.json \
      run1.json run2.json run3.json

NOTE: the toleranced comparison assumes both sides ran on the same class of
machine (see bench/baselines/README.md for the refresh procedure).
Comparing a laptop run against a CI baseline will trip the gate spuriously.
"""

import argparse
import json
import math
import sys


def load_rows(path):
    """Returns (rows, meta) from an envelope or bare-array artifact."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"check_bench: cannot read {path}: {e}")
    if isinstance(data, list):
        return data, {}
    if isinstance(data, dict) and isinstance(data.get("rows"), list):
        meta = {k: data[k] for k in ("git_sha", "bench", "config") if k in data}
        return data["rows"], meta
    raise SystemExit(f"check_bench: {path}: expected a JSON array or an "
                     "envelope object with a 'rows' array")


def split_list(text):
    return [part.strip() for part in text.split(",") if part.strip()]


def split_metrics(text):
    """Parses "name" or "name:floor" entries into {name: absolute_floor}."""
    metrics = {}
    for part in split_list(text):
        name, sep, floor = part.rpartition(":")
        if sep and name:
            try:
                metrics[name] = float(floor)
            except ValueError:
                raise SystemExit(f"check_bench: bad metric floor in {part!r}")
        else:
            metrics[part] = 0.0
    return metrics


def describe(meta):
    if not meta:
        return "(no envelope metadata)"
    sha = meta.get("git_sha", "?")
    argv = (meta.get("config") or {}).get("argv", "?")
    return f"git {sha}, argv: {argv}"


def row_key(row, key_columns):
    return tuple(str(row.get(column, "")) for column in key_columns)


def index_rows(rows, key_columns, path):
    by_key = {row_key(r, key_columns): r for r in rows}
    if len(by_key) != len(rows):
        raise SystemExit(f"check_bench: {path}: key columns {key_columns} do not "
                         "uniquely identify rows; pass --key with more columns")
    return by_key


def median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def median_merge(paths, key_columns):
    """Loads several runs of the same bench command and reduces each row's
    numeric cells to their median; non-numeric cells must agree.  Returns
    (rows, meta) with rows in first-run order."""
    first_rows, first_meta = load_rows(paths[0])
    indexed = [index_rows(first_rows, key_columns, paths[0])]
    for path in paths[1:]:
        rows, _ = load_rows(path)
        by_key = index_rows(rows, key_columns, path)
        if set(by_key) != set(indexed[0]):
            raise SystemExit(f"check_bench: {path}: row set differs from "
                             f"{paths[0]} — merge inputs must be repeat runs "
                             "of one command")
        indexed.append(by_key)
    merged = []
    for row in first_rows:
        key = row_key(row, key_columns)
        out = {}
        for column, first_value in row.items():
            cells = [run[key].get(column) for run in indexed]
            is_numeric = (isinstance(first_value, (int, float))
                          and not isinstance(first_value, bool))
            # Key columns pass through verbatim: floating them (2 -> 2.0)
            # would break row matching against a raw bare-array baseline.
            if is_numeric and column not in key_columns:
                out[column] = median([as_number(c, column, key) for c in cells])
            else:
                if any(c != first_value for c in cells):
                    raise SystemExit(f"check_bench: row {key}: column "
                                     f"'{column}' differs across runs: {cells!r}")
                out[column] = first_value
        merged.append(out)
    return merged, first_meta


def as_number(value, column, key):
    try:
        return float(value)
    except (TypeError, ValueError):
        raise SystemExit(f"check_bench: row {key}: column '{column}' is not "
                         f"numeric: {value!r}")


def write_merged(out_path, rows, meta):
    envelope = dict(meta)
    envelope["rows"] = rows
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(envelope, f, indent=1)
        f.write("\n")
    print(f"merged {len(rows)} rows -> {out_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH_*.json "
                        "(with --merge: the output path)")
    parser.add_argument("current", nargs="+",
                        help="freshly produced BENCH_*.json (repeat runs are "
                        "median-merged before comparison)")
    parser.add_argument("--merge", action="store_true",
                        help="median-merge the current files INTO the first "
                        "path instead of comparing (baseline refresh)")
    parser.add_argument("--key", default="users,mod,path",
                        help="comma-separated row-identity columns")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="relative tolerance for timing metrics (default 0.15)")
    parser.add_argument("--higher-better", default="thrpt use/ms",
                        help="comma-separated metrics (optionally name:floor) "
                        "where lower is a regression")
    parser.add_argument("--lower-better", default="p99 lat us",
                        help="comma-separated metrics (optionally name:floor) "
                        "where higher is a regression")
    parser.add_argument("--exact", default="",
                        help="comma-separated deterministic metrics compared exactly")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        raise SystemExit("check_bench: --tolerance must be in [0, 1)")

    key_columns = split_list(args.key)
    if args.merge:
        rows, meta = median_merge(args.current, key_columns)
        write_merged(args.baseline, rows, meta)
        return 0

    base_rows, base_meta = load_rows(args.baseline)
    curr_rows, curr_meta = median_merge(args.current, key_columns)
    higher = split_metrics(args.higher_better)
    lower = split_metrics(args.lower_better)
    exact = split_list(args.exact)

    print(f"baseline: {args.baseline} {describe(base_meta)}")
    print(f"current : median of {len(args.current)} run(s) — "
          f"{args.current[0]} {describe(curr_meta)}")

    base_by_key = index_rows(base_rows, key_columns, args.baseline)
    curr_by_key = index_rows(curr_rows, key_columns, "current")

    failures = []
    checked = 0
    for key, base in base_by_key.items():
        curr = curr_by_key.get(key)
        if curr is None:
            failures.append(f"row {key}: present in baseline, missing from current run")
            continue
        for column, noise_floor in list(higher.items()) + list(lower.items()):
            if column not in base and column not in curr:
                continue  # metric absent on both sides (e.g. ARQ columns off)
            if (column in base) != (column in curr):
                failures.append(f"row {key}: '{column}' present only in "
                                f"{'baseline' if column in base else 'current run'} "
                                "(bench flags differ between the two sides?)")
                checked += 1
                continue
            b = as_number(base.get(column), column, key)
            c = as_number(curr.get(column), column, key)
            if math.isnan(b) or math.isnan(c):
                # Every comparison against NaN is false, which would make a
                # metric that degenerated to NaN pass silently — fail instead.
                failures.append(f"row {key}: '{column}' is NaN "
                                f"(baseline {b!r}, current {c!r})")
                checked += 1
                continue
            if column in higher:
                floor = b * (1.0 - args.tolerance)
                if c < floor and b - c > noise_floor:
                    failures.append(
                        f"row {key}: '{column}' regressed: {c:g} < {b:g} "
                        f"- {args.tolerance:.0%} (floor {floor:g})")
            else:
                ceiling = b * (1.0 + args.tolerance)
                if c > ceiling and c - b > noise_floor:
                    failures.append(
                        f"row {key}: '{column}' regressed: {c:g} > {b:g} "
                        f"+ {args.tolerance:.0%} (ceiling {ceiling:g})")
            checked += 1
        for column in exact:
            if column not in base and column not in curr:
                continue
            if (column in base) != (column in curr):
                failures.append(f"row {key}: deterministic '{column}' present only in "
                                f"{'baseline' if column in base else 'current run'} "
                                "(bench flags differ between the two sides?)")
                checked += 1
                continue
            b = as_number(base.get(column), column, key)
            c = as_number(curr.get(column), column, key)
            if math.isnan(b) or math.isnan(c):
                failures.append(f"row {key}: deterministic '{column}' is NaN "
                                f"(baseline {b!r}, current {c!r})")
                checked += 1
                continue
            # Identical formatting on identical statistics: allow only
            # float-parse noise, not a real difference.
            if abs(c - b) > 1e-12 * max(1.0, abs(b)):
                failures.append(
                    f"row {key}: deterministic '{column}' changed: {b:g} -> {c:g} "
                    "(statistics must be bit-stable for the same seed)")
            checked += 1
    for key in curr_by_key:
        if key not in base_by_key:
            failures.append(f"row {key}: new in current run, missing from baseline "
                            "(regenerate bench/baselines/ — see its README)")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) across {checked} checks:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"OK: {checked} checks across {len(base_by_key)} rows within "
          f"{args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
