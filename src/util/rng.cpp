#include "util/rng.h"

#include <numbers>
#include <stdexcept>

namespace hcq::util {

namespace {

/// SplitMix64 step; used to decorrelate derived stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

rng::rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

rng rng::derive(std::uint64_t stream_id) const {
    return rng(splitmix64(seed_ ^ splitmix64(stream_id + 1)));
}

double rng::uniform(double lo, double hi) {
    if (!(lo <= hi)) throw std::invalid_argument("rng::uniform: lo > hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t rng::uniform_index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("rng::uniform_index: n == 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double rng::normal(double mean, double stddev) {
    if (stddev < 0.0) throw std::invalid_argument("rng::normal: stddev < 0");
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool rng::bernoulli(double p) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("rng::bernoulli: p outside [0,1]");
    return std::bernoulli_distribution(p)(engine_);
}

double rng::angle() {
    return uniform(0.0, 2.0 * std::numbers::pi);
}

std::vector<std::uint8_t> rng::bits(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(engine_() & 1ULL);
    return out;
}

void rng::bits_into(std::size_t n, std::vector<std::uint8_t>& out) {
    out.resize(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(engine_() & 1ULL);
}

}  // namespace hcq::util
