// hcq-hot-path: steady-state code in this file must not allocate — reuse
// workspace scratch (enforced by the hot-path-alloc lint rule).
#include "classical/simulated_annealing.h"

#include <cmath>
#include <stdexcept>

#include "classical/metropolis.h"

namespace hcq::solvers {

simulated_annealing::simulated_annealing(sa_config config) : config_(config) {
    if (config_.num_reads == 0 || config_.num_sweeps == 0) {
        throw std::invalid_argument("simulated_annealing: zero reads or sweeps");
    }
    if (config_.hot_fraction <= 0.0 || config_.cold_fraction <= 0.0 ||
        config_.cold_fraction > config_.hot_fraction) {
        throw std::invalid_argument("simulated_annealing: bad temperature fractions");
    }
}

sample_set simulated_annealing::solve(const qubo::qubo_model& q, util::rng& rng) const {
    const double scale = q.max_abs_coefficient();
    const double t_hot = std::max(config_.hot_fraction * scale, 1e-12);
    const double t_cold = std::max(config_.cold_fraction * scale, 1e-15);
    const double ratio =
        config_.num_sweeps > 1
            ? std::pow(t_cold / t_hot, 1.0 / static_cast<double>(config_.num_sweeps - 1))
            : 1.0;

    sample_set out;
    out.reserve(config_.num_reads);
    for (std::size_t read = 0; read < config_.num_reads; ++read) {
        metropolis_engine engine(q, rng.bits(q.num_variables()));
        double temperature = t_hot;
        for (std::size_t s = 0; s < config_.num_sweeps; ++s) {
            engine.sweep(temperature, rng);
            temperature *= ratio;
        }
        out.add(engine.state(), engine.energy());
    }
    return out;
}

double simulated_annealing::solve_best_into(const qubo::qubo_model& q, util::rng& rng,
                                            solve_scratch& scratch, qubo::bit_vector& best) const {
    // Same reads, same sweeps, same RNG draws as solve(); only the winning
    // state is kept.  The strict < keeps the FIRST lowest-energy read, which
    // is exactly sample_set::best()'s tie-break.
    const double scale = q.max_abs_coefficient();
    const double t_hot = std::max(config_.hot_fraction * scale, 1e-12);
    const double t_cold = std::max(config_.cold_fraction * scale, 1e-15);
    const double ratio =
        config_.num_sweeps > 1
            ? std::pow(t_cold / t_hot, 1.0 / static_cast<double>(config_.num_sweeps - 1))
            : 1.0;

    metropolis_engine& engine = scratch.engine;
    double best_energy = 0.0;
    bool has_best = false;
    for (std::size_t read = 0; read < config_.num_reads; ++read) {
        rng.bits_into(q.num_variables(), scratch.bits_a);
        engine.reset(q, scratch.bits_a);
        double temperature = t_hot;
        for (std::size_t s = 0; s < config_.num_sweeps; ++s) {
            engine.sweep(temperature, rng);
            temperature *= ratio;
        }
        if (!has_best || engine.energy() < best_energy) {
            has_best = true;
            best_energy = engine.energy();
            best.assign(engine.state().begin(), engine.state().end());
        }
    }
    return best_energy;
}

}  // namespace hcq::solvers
