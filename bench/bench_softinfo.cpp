// Section 3.1, second initial attempt — "Soft information to narrow the
// search space" (Figure 4): add constraint terms from pre-knowledge (LLRs)
// so the search avoids unlikely symbols.  The paper found that "it is
// difficult to find proper constraint factors ... and our empirical
// investigations have shown that it is not currently practical."
//
// This bench quantifies that verdict.  On noisy 3-user 16-QAM problems
// (small enough to brute-force) it sweeps the constraint strength C and
// reports, per C:
//   * how often the injected priors *relocate* the global optimum away from
//     the true ML solution (the correctness hazard),
//   * the annealer's probability of returning the true ML solution when
//     solving the constrained QUBO,
// using LLR-derived priors on the most confident symbols — the best case
// for the scheme.
#include <span>
#include <vector>

#include "bench_common.h"
#include "core/device.h"
#include "core/schedule.h"
#include "detect/sphere.h"
#include "detect/transform.h"
#include "metrics/stats.h"
#include "paths/registry.h"
#include "qubo/brute_force.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "wireless/soft.h"

namespace {

namespace an = hcq::anneal;
namespace wl = hcq::wireless;
namespace dt = hcq::detect;

struct strength_result {
    hcq::metrics::running_stats optimum_moved;   // 1 if priors relocated the optimum
    hcq::metrics::running_stats anneal_success;  // P(annealer returns true ML bits)
    hcq::metrics::running_stats prior_accuracy;  // fraction of prior bits that are correct
};

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Section 3.1 soft-information constraints: the tuning hazard, quantified",
               "Kim et al., HotNets'20, Section 3.1 / Figure 4");

    const std::size_t instances = ctx.scaled(12);
    const std::size_t reads = ctx.scaled(150);
    const double snr_db = ctx.flags.get_double("snr", 14.0);
    const std::size_t users = 3;  // 12 variables: exhaustively verifiable

    // Constraint strength as a fraction of the QUBO's own scale.
    const std::vector<double> strengths{0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};
    std::vector<strength_result> results(strengths.size());
    const an::annealer_emulator device;
    const auto zf_path = hcq::paths::registry::make("zf");

    hcq::util::parallel_for(strengths.size(), [&](std::size_t k) {
        for (std::size_t i = 0; i < instances; ++i) {
            hcq::util::rng rng(hcq::util::rng(ctx.seed + 11 * k).derive(i)());
            wl::mimo_config config;
            config.mod = wl::modulation::qam16;
            config.num_users = users;
            config.num_antennas = users;
            config.channel = wl::channel_model::unit_gain_random_phase;
            config.noise_variance = wl::noise_variance_for_snr(config.mod, users, snr_db);
            const auto inst = wl::synthesize(rng, config);

            // True ML solution by exact search (noise may move it off tx).
            const auto ml = dt::sphere_detector().detect(inst);

            // LLR priors from the unified path-level soft output (the "zf"
            // path's post-equalisation max-log LLRs); apply to the single
            // most confident symbol.  The LLR vector uses THE canonical bit
            // layout asserted in wireless/soft.h — user-major, and within a
            // user the I-dimension bits MSB-first then the Q-dimension bits
            // MSB-first — so llrs[u * bps + b] is bit b of user u, aligned
            // index-for-index with ml.bits.
            auto mq = dt::ml_to_qubo(inst);
            auto det = zf_path->run({inst, nullptr, rng, nullptr});
            zf_path->soft_output({inst, nullptr, rng, nullptr}, det);
            const auto& llrs = det.llrs;
            const std::size_t bps = wl::bits_per_symbol(inst.mod);
            std::size_t best_user = 0;
            double best_conf = -1.0;
            for (std::size_t u = 0; u < users; ++u) {
                double conf = 0.0;
                for (std::size_t b = 0; b < bps; ++b) conf += std::fabs(llrs[u * bps + b]);
                if (conf > best_conf) {
                    best_conf = conf;
                    best_user = u;
                }
            }
            std::vector<std::uint8_t> pattern;
            wl::harden_into(std::span(llrs).subspan(best_user * bps, bps), pattern);
            std::size_t correct = 0;
            for (std::size_t b = 0; b < bps; ++b) {
                if (pattern[b] == ml.bits[best_user * bps + b]) ++correct;
            }
            results[k].prior_accuracy.add(static_cast<double>(correct) /
                                          static_cast<double>(bps));

            const double c = strengths[k] * mq.model.max_abs_coefficient();
            if (c > 0.0) dt::apply_symbol_prior(mq, best_user, pattern, c);

            // Hazard: did the constrained QUBO's optimum move off the ML bits?
            const auto exact = hcq::qubo::brute_force_minimize(mq.model);
            results[k].optimum_moved.add(exact.best_bits == ml.bits ? 0.0 : 1.0);

            // Annealer success on the constrained problem, judged vs ML bits.
            const auto samples = device.sample(
                mq.model, an::anneal_schedule::forward(1.0, 0.33, 1.0), reads, rng);
            std::size_t hits = 0;
            for (const auto& s : samples.all()) {
                if (s.bits == ml.bits) ++hits;
            }
            results[k].anneal_success.add(static_cast<double>(hits) /
                                          static_cast<double>(reads));
        }
    });

    hcq::util::table t({"C (rel max|Q|)", "P(optimum relocated)", "FA P(true ML bits)",
                        "prior bit accuracy"});
    for (std::size_t k = 0; k < strengths.size(); ++k) {
        t.add(strengths[k], results[k].optimum_moved.mean(), results[k].anneal_success.mean(),
              results[k].prior_accuracy.mean());
    }
    std::cout << instances << " noisy " << users << "-user 16-QAM instances at SNR = " << snr_db
              << " dB, priors on the most confident symbol, " << reads << " reads\n";
    ctx.emit(t);
    std::cout << "Paper shape check: there is no safe-and-useful strength — small C barely\n"
                 "changes the search, while C large enough to matter starts relocating the\n"
                 "global optimum whenever a prior bit is wrong (Section 3.1: 'not currently\n"
                 "practical').\n";
    return 0;
}
