// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library draws from an hcq::util::rng that
// the caller seeds explicitly; there is no hidden global generator.  Derived
// streams (`derive`) give statistically independent generators for parallel
// workers while keeping a single master seed per experiment.
#ifndef HCQ_UTIL_RNG_H
#define HCQ_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace hcq::util {

/// Seedable pseudo-random generator wrapping std::mt19937_64 with the
/// distribution helpers the library needs.
class rng {
public:
    using result_type = std::uint64_t;

    /// Constructs a generator from a 64-bit seed (default: fixed seed so that
    /// forgetting to seed still yields reproducible runs).
    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Returns a generator for an independent stream identified by
    /// `stream_id`; deterministic in (seed, stream_id).
    [[nodiscard]] rng derive(std::uint64_t stream_id) const;

    /// Uniform real in [0, 1).  Inline: this is the innermost draw of every
    /// Metropolis accept test — a fresh distribution object over the same
    /// engine is bit-identical to the historical out-of-line call.
    [[nodiscard]] double uniform() {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }
    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi);
    /// Uniform integer in [0, n); requires n > 0.
    [[nodiscard]] std::size_t uniform_index(std::size_t n);
    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
    /// Standard normal draw.  Inline for the channel-synthesis hot loop.
    [[nodiscard]] double normal() {
        return std::normal_distribution<double>(0.0, 1.0)(engine_);
    }
    /// Normal with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev);
    /// Bernoulli draw with success probability p.
    [[nodiscard]] bool bernoulli(double p);
    /// Uniform angle in [0, 2*pi).
    [[nodiscard]] double angle();

    /// n independent fair bits.
    [[nodiscard]] std::vector<std::uint8_t> bits(std::size_t n);

    /// n independent fair bits into a reused buffer (same draw sequence).
    void bits_into(std::size_t n, std::vector<std::uint8_t>& out);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[uniform_index(i)]);
        }
    }

    /// UniformRandomBitGenerator interface.
    [[nodiscard]] result_type operator()() { return engine_(); }
    [[nodiscard]] static constexpr result_type min() { return std::mt19937_64::min(); }
    [[nodiscard]] static constexpr result_type max() { return std::mt19937_64::max(); }

    /// The seed this generator was constructed with.
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

private:
    std::uint64_t seed_;
    std::mt19937_64 engine_;
};

}  // namespace hcq::util

#endif  // HCQ_UTIL_RNG_H
