#include "metrics/histogram.h"

#include <stdexcept>

namespace hcq::metrics {

histogram::histogram(double lo, double hi, std::size_t num_bins) : lo_(lo) {
    if (!(hi > lo)) throw std::invalid_argument("histogram: hi <= lo");
    if (num_bins == 0) throw std::invalid_argument("histogram: zero bins");
    width_ = (hi - lo) / static_cast<double>(num_bins);
    counts_.assign(num_bins + 1, 0);
}

std::size_t histogram::bin_index(double value) const {
    if (value < lo_) return 0;
    const auto raw = static_cast<std::size_t>((value - lo_) / width_);
    return raw >= num_bins() ? num_bins() : raw;
}

void histogram::add(double value) {
    ++counts_[bin_index(value)];
    ++total_;
}

std::size_t histogram::count(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("histogram::count");
    return counts_[bin];
}

double histogram::fraction(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double histogram::cumulative_fraction(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("histogram::cumulative_fraction");
    if (total_ == 0) return 0.0;
    std::size_t acc = 0;
    for (std::size_t b = 0; b <= bin; ++b) acc += counts_[b];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

double histogram::bin_lower(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("histogram::bin_lower");
    return lo_ + width_ * static_cast<double>(bin);
}

double histogram::bin_center(std::size_t bin) const { return bin_lower(bin) + width_ / 2.0; }

}  // namespace hcq::metrics
