#include "qubo/preprocess.h"

#include <stdexcept>

namespace hcq::qubo {

std::size_t preprocess_result::num_fixed() const {
    std::size_t count = 0;
    for (const auto& f : fixed) {
        if (f.has_value()) ++count;
    }
    return count;
}

bit_vector preprocess_result::lift(std::span<const std::uint8_t> reduced_bits) const {
    if (reduced_bits.size() != mapping.size()) {
        throw std::invalid_argument("preprocess_result::lift: wrong reduced size");
    }
    bit_vector out(fixed.size(), 0);
    for (std::size_t i = 0; i < fixed.size(); ++i) {
        if (fixed[i].has_value()) out[i] = *fixed[i];
    }
    for (std::size_t r = 0; r < mapping.size(); ++r) out[mapping[r]] = reduced_bits[r];
    return out;
}

namespace {

/// Finds one fixable variable in `q`, or returns false.
bool find_fixing(const qubo_model& q, std::size_t& index, std::uint8_t& value) {
    const std::size_t n = q.num_variables();
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = q.row(i);
        double neg = 0.0;
        double pos = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            const double c = row[j];
            if (c < 0.0) neg += c;
            if (c > 0.0) pos += c;
        }
        const double lin = row[i];
        if (lin + neg >= 0.0) {
            index = i;
            value = 0;
            return true;
        }
        if (lin + pos <= 0.0) {
            index = i;
            value = 1;
            return true;
        }
    }
    return false;
}

}  // namespace

preprocess_result prefix_variables(const qubo_model& q, bool iterate) {
    const std::size_t n = q.num_variables();
    preprocess_result result;
    result.fixed.assign(n, std::nullopt);
    result.reduced = q;
    result.mapping.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.mapping[i] = i;

    // Single sweep: evaluate the rule per variable on the original model
    // without substitution (the paper's Figure 3 description).
    std::vector<std::pair<std::size_t, std::uint8_t>> first_pass;
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = q.row(i);
        double neg = 0.0;
        double pos = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            if (row[j] < 0.0) neg += row[j];
            if (row[j] > 0.0) pos += row[j];
        }
        if (row[i] + neg >= 0.0) {
            first_pass.emplace_back(i, std::uint8_t{0});
        } else if (row[i] + pos <= 0.0) {
            first_pass.emplace_back(i, std::uint8_t{1});
        }
    }

    if (!iterate) {
        // Apply exactly the first-pass fixings (in descending index order so
        // reduced indices stay valid).
        for (auto it = first_pass.rbegin(); it != first_pass.rend(); ++it) {
            const std::size_t original = it->first;
            // Locate current reduced position of `original`.
            std::size_t pos = result.mapping.size();
            for (std::size_t r = 0; r < result.mapping.size(); ++r) {
                if (result.mapping[r] == original) {
                    pos = r;
                    break;
                }
            }
            if (pos == result.mapping.size()) continue;  // already gone
            result.fixed[original] = it->second;
            std::vector<std::size_t> submap;
            result.reduced = result.reduced.fix_variable(pos, it->second, &submap);
            std::vector<std::size_t> new_mapping(submap.size());
            for (std::size_t r = 0; r < submap.size(); ++r) {
                new_mapping[r] = result.mapping[submap[r]];
            }
            result.mapping = std::move(new_mapping);
        }
        return result;
    }

    // Fixpoint iteration: keep substituting while any variable is fixable.
    for (;;) {
        std::size_t idx = 0;
        std::uint8_t val = 0;
        if (result.reduced.num_variables() == 0) break;
        if (!find_fixing(result.reduced, idx, val)) break;
        const std::size_t original = result.mapping[idx];
        result.fixed[original] = val;
        std::vector<std::size_t> submap;
        result.reduced = result.reduced.fix_variable(idx, val, &submap);
        std::vector<std::size_t> new_mapping(submap.size());
        for (std::size_t r = 0; r < submap.size(); ++r) {
            new_mapping[r] = result.mapping[submap[r]];
        }
        result.mapping = std::move(new_mapping);
    }
    return result;
}

}  // namespace hcq::qubo
