// The coding layer (src/fec/): spec grammar, the interleaver permutation,
// the hand-checked convolutional encoder, zero-noise and noisy Viterbi
// round trips (soft decisions must beat hard ones), and the canonical LLR
// clamp contract of wireless/soft.h that the whole soft chain leans on.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "fec/code_spec.h"
#include "fec/codec.h"
#include "fec/conv.h"
#include "fec/interleaver.h"
#include "paths/registry.h"
#include "util/rng.h"
#include "wireless/mimo.h"
#include "wireless/soft.h"

namespace {

using namespace hcq;

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(FecSpec, ParsesAndCanonicalises) {
    const auto spec = fec::code_spec::parse("k7");
    EXPECT_EQ(spec.to_string(), "k7:rate=1/2,interleave=16x8");
    EXPECT_EQ(spec.constraint_length(), 7u);
    EXPECT_EQ(spec.coded_bits(), 128u);
    EXPECT_EQ(spec.info_bits(), 64u - 6u);  // rate 1/2 minus the K-1 tail

    const auto small = fec::code_spec::parse("k5:interleave=8x8");
    EXPECT_EQ(small.to_string(), "k5:rate=1/2,interleave=8x8");
    EXPECT_EQ(small.info_bits(), 32u - 4u);

    // parse(to_string()) is the identity for every kind.
    for (const auto& kind : fec::code_spec::kinds()) {
        const auto parsed = fec::code_spec::parse(kind);
        EXPECT_EQ(fec::code_spec::parse(parsed.to_string()).to_string(),
                  parsed.to_string())
            << kind;
    }
}

TEST(FecSpec, RejectsNonsenseSelfDocumentingly) {
    try {
        (void)fec::code_spec::parse("k9");
        FAIL() << "unknown kind accepted";
    } catch (const std::invalid_argument& e) {
        // The registry style: the error lists the valid kinds.
        EXPECT_NE(std::string(e.what()).find("k7"), std::string::npos) << e.what();
    }
    EXPECT_THROW((void)fec::code_spec::parse("k7:width=8"), std::invalid_argument);
    EXPECT_THROW((void)fec::code_spec::parse("k7:rate=2/3"), std::invalid_argument);
    // An interleaver too small to carry one information bit past the tail.
    EXPECT_THROW((void)fec::code_spec::parse("k7:interleave=2x2"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Interleaver
// ---------------------------------------------------------------------------

TEST(FecInterleaver, DeinterleaveIsTheExactInverse) {
    const fec::interleaver inter(5, 7);
    util::rng rng(3);
    const auto data = rng.bits(inter.size());
    std::vector<std::uint8_t> mixed(inter.size());
    std::vector<std::uint8_t> back(inter.size());
    inter.interleave<std::uint8_t>(data, mixed);
    inter.deinterleave<std::uint8_t>(mixed, back);
    EXPECT_EQ(back, data);
    EXPECT_NE(mixed, data);  // 5x7 genuinely permutes
}

TEST(FecInterleaver, OneRowAndOneColumnAreTheIdentity) {
    const std::pair<std::size_t, std::size_t> dims[] = {{1, 9}, {9, 1}};
    for (const auto& [r, c] : dims) {
        const fec::interleaver inter(r, c);
        util::rng rng(4);
        const auto data = rng.bits(inter.size());
        std::vector<std::uint8_t> mixed(inter.size());
        inter.interleave<std::uint8_t>(data, mixed);
        EXPECT_EQ(mixed, data) << r << "x" << c;
    }
}

TEST(FecInterleaver, SpreadsABurstAtLeastColsApart) {
    const fec::interleaver inter(8, 8);
    // Burst positions r*cols + c? No — a channel burst hits the INTERLEAVED
    // stream; mark `rows` consecutive interleaved indices and check their
    // deinterleaved positions are pairwise >= cols apart.
    std::vector<std::uint8_t> marked(inter.size(), 0);
    for (std::size_t i = 16; i < 16 + inter.rows(); ++i) marked[i] = 1;
    std::vector<std::uint8_t> out(inter.size());
    inter.deinterleave<std::uint8_t>(marked, out);
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i]) hits.push_back(i);
    }
    ASSERT_EQ(hits.size(), inter.rows());
    for (std::size_t i = 1; i < hits.size(); ++i) {
        EXPECT_GE(hits[i] - hits[i - 1], inter.cols());
    }
}

// ---------------------------------------------------------------------------
// Convolutional encoder
// ---------------------------------------------------------------------------

TEST(FecConv, MatchesHandComputedK3Codeword) {
    // K=3, generators (7, 5) octal; info 1,0,1,1 then two zero tail bits.
    // Worked by hand from the documented convention
    // (full = (b << (K-1)) | state, out_j = parity(full & g_j)).
    const fec::conv_encoder enc(3, {07, 05});
    const std::vector<std::uint8_t> info{1, 0, 1, 1};
    std::vector<std::uint8_t> coded;
    enc.encode(info, coded);
    const std::vector<std::uint8_t> expected{1, 1, 1, 0, 0, 0, 0, 1, 0, 1, 1, 1};
    EXPECT_EQ(coded, expected);
}

TEST(FecConv, TerminationReturnsToStateZero) {
    // Any info word's last K-1 coded pairs depend only on the tail driving
    // the register to zero — encode the all-zero word and a random word and
    // check both codewords end with the encoder back at rest (the all-zero
    // word's codeword is all zero, so termination means trailing zeros).
    const fec::conv_encoder enc(5, {023, 035});
    std::vector<std::uint8_t> coded;
    enc.encode(std::vector<std::uint8_t>(12, 0), coded);
    for (const auto b : coded) EXPECT_EQ(b, 0);
    EXPECT_EQ(coded.size(), enc.coded_length(12));
}

// ---------------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------------

TEST(FecCodec, ZeroNoiseRoundTripsEveryKind) {
    for (const auto& kind : fec::code_spec::kinds()) {
        fec::codec codec(fec::code_spec::parse(kind));
        util::rng rng(11);
        std::vector<std::uint8_t> coded;
        std::vector<double> llrs(codec.coded_bits());
        std::vector<std::uint8_t> decoded;
        for (int frame = 0; frame < 8; ++frame) {
            const auto info = rng.bits(codec.info_bits());
            codec.encode_frame(info, coded);
            for (std::size_t i = 0; i < coded.size(); ++i) {
                llrs[i] = wireless::signed_llr(coded[i], 10.0);
            }
            codec.decode_frame(llrs, decoded);
            EXPECT_EQ(decoded, info) << kind << " frame " << frame;
        }
    }
}

TEST(FecCodec, RecoversARowLongErasureBurst) {
    // An 8-deep erasure burst (LLR 0: no information) on the interleaved
    // stream lands >= cols apart after deinterleaving, well within what the
    // K=5 code corrects when every other bit is confidently right.
    fec::codec codec(fec::code_spec::parse("k5:interleave=8x8"));
    util::rng rng(13);
    const auto info = rng.bits(codec.info_bits());
    std::vector<std::uint8_t> coded;
    codec.encode_frame(info, coded);
    std::vector<double> llrs(codec.coded_bits());
    for (std::size_t i = 0; i < coded.size(); ++i) {
        llrs[i] = wireless::signed_llr(coded[i], 8.0);
    }
    for (std::size_t i = 24; i < 32; ++i) llrs[i] = 0.0;  // the burst
    std::vector<std::uint8_t> decoded;
    codec.decode_frame(llrs, decoded);
    EXPECT_EQ(decoded, info);
}

TEST(FecCodec, SoftDecisionsBeatHardDecisionsOnAwgn) {
    // Rate-1/2 BPSK over AWGN at a fixed seed: decode the same noisy frames
    // once from the true channel LLRs (2y/sigma^2) and once from
    // sign-only hard decisions (every magnitude equal).  Soft decoding must
    // come out strictly ahead on information-bit errors.
    fec::codec codec(fec::code_spec::parse("k5:interleave=8x8"));
    util::rng rng(17);
    const double sigma = 1.1;
    std::size_t soft_errors = 0;
    std::size_t hard_errors = 0;
    std::vector<std::uint8_t> coded;
    std::vector<double> soft(codec.coded_bits());
    std::vector<double> hard(codec.coded_bits());
    std::vector<std::uint8_t> decoded;
    for (int frame = 0; frame < 300; ++frame) {
        const auto info = rng.bits(codec.info_bits());
        codec.encode_frame(info, coded);
        for (std::size_t i = 0; i < coded.size(); ++i) {
            const double tx = coded[i] == 0 ? 1.0 : -1.0;
            const double y = tx + sigma * rng.normal();
            soft[i] = wireless::clamp_llr(2.0 * y / (sigma * sigma));
            hard[i] = wireless::signed_llr(y >= 0.0 ? 0 : 1, 1.0);
        }
        codec.decode_frame(soft, decoded);
        for (std::size_t i = 0; i < decoded.size(); ++i) {
            soft_errors += decoded[i] != info[i];
        }
        codec.decode_frame(hard, decoded);
        for (std::size_t i = 0; i < decoded.size(); ++i) {
            hard_errors += decoded[i] != info[i];
        }
    }
    EXPECT_GT(hard_errors, 0u);  // the operating point is genuinely noisy
    EXPECT_LT(soft_errors, hard_errors);
}

TEST(FecCodec, DecodeIsAPureFunctionOfTheLlrs) {
    fec::codec codec(fec::code_spec::parse("k3:interleave=4x8"));
    util::rng rng(19);
    const auto info = rng.bits(codec.info_bits());
    std::vector<std::uint8_t> coded;
    codec.encode_frame(info, coded);
    std::vector<double> llrs(codec.coded_bits());
    for (std::size_t i = 0; i < coded.size(); ++i) {
        llrs[i] = wireless::signed_llr(coded[i], 2.5) + 0.1 * rng.normal();
    }
    std::vector<std::uint8_t> first;
    std::vector<std::uint8_t> again;
    codec.decode_frame(llrs, first);
    codec.decode_frame(llrs, again);  // warm scratch, same input, same output
    EXPECT_EQ(first, again);
    fec::codec fresh(fec::code_spec::parse("k3:interleave=4x8"));
    fresh.decode_frame(llrs, again);  // cold instance agrees too
    EXPECT_EQ(first, again);
}

// ---------------------------------------------------------------------------
// The canonical LLR clamp contract (wireless/soft.h)
// ---------------------------------------------------------------------------

TEST(FecLlrContract, ClampMapsNonFiniteToSafeValues) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(wireless::clamp_llr(nan), 0.0);
    EXPECT_EQ(wireless::clamp_llr(inf), wireless::llr_cap);
    EXPECT_EQ(wireless::clamp_llr(-inf), -wireless::llr_cap);
    EXPECT_EQ(wireless::clamp_llr(2.0 * wireless::llr_cap), wireless::llr_cap);
    EXPECT_EQ(wireless::clamp_llr(3.25), 3.25);  // in-range passthrough
    EXPECT_EQ(wireless::signed_llr(0, 5.0), 5.0);
    EXPECT_EQ(wireless::signed_llr(1, 5.0), -5.0);
}

TEST(FecLlrContract, AccumulateSaturatesInsteadOfOverflowing) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> sum{wireless::llr_cap, -3.0, 1.0};
    const std::vector<double> add{wireless::llr_cap, nan, -2.5};
    wireless::accumulate_llrs(add, sum);
    EXPECT_EQ(sum[0], wireless::llr_cap);  // cap + cap stays at the cap
    EXPECT_EQ(sum[1], -3.0);               // NaN addend contributes nothing
    EXPECT_EQ(sum[2], -1.5);
    for (const double l : sum) {
        EXPECT_TRUE(std::isfinite(l));
        EXPECT_LE(std::abs(l), wireless::llr_cap);
    }
    std::vector<double> mismatched{1.0};
    EXPECT_THROW(wireless::accumulate_llrs(sum, mismatched), std::invalid_argument);
}

TEST(FecLlrContract, NoiselessInstancesStillProduceFiniteLlrs) {
    // snr -> infinity is the regression that motivated the central clamp: a
    // zero noise variance must floor at llr_noise_floor, never divide to
    // inf/NaN, for both soft-output families.
    wireless::mimo_config mimo;
    mimo.mod = wireless::modulation::qam16;
    mimo.num_users = 4;
    mimo.num_antennas = 4;
    mimo.channel = wireless::channel_model::unit_gain_random_phase;
    mimo.noise_variance = 0.0;
    util::rng rng(23);
    const auto instance = wireless::synthesize(rng, mimo);

    std::vector<double> llrs;
    wireless::flip_recost_llrs_into(instance, instance.tx_bits, llrs);
    ASSERT_EQ(llrs.size(), instance.tx_bits.size());
    for (const double l : llrs) {
        EXPECT_TRUE(std::isfinite(l));
        EXPECT_LE(std::abs(l), wireless::llr_cap);
    }

    // The linear path's post-equalisation soft output on the same instance.
    const auto zf = paths::registry::make("zf");
    util::rng solve_rng(29);
    const paths::path_context ctx{instance, nullptr, solve_rng, nullptr};
    auto det = zf->run(ctx);
    zf->soft_output(ctx, det);
    ASSERT_EQ(det.llrs.size(), instance.tx_bits.size());
    std::vector<std::uint8_t> hardened;
    for (const double l : det.llrs) {
        EXPECT_TRUE(std::isfinite(l));
        EXPECT_LE(std::abs(l), wireless::llr_cap);
    }
    wireless::harden_into(det.llrs, hardened);
    EXPECT_EQ(hardened, det.bits);  // soft and hard views agree
}

}  // namespace
