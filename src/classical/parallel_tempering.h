// Parallel tempering (replica-exchange Monte Carlo, Swendsen & Wang [48]) —
// the strongest of the "quantum-inspired" classical samplers the paper's
// introduction points to as alternatives to quantum hardware.
#ifndef HCQ_CLASSICAL_PARALLEL_TEMPERING_H
#define HCQ_CLASSICAL_PARALLEL_TEMPERING_H

#include "classical/solver.h"

namespace hcq::solvers {

/// Replica-exchange parameters.
struct pt_config {
    std::size_t num_replicas = 8;      ///< geometric temperature ladder size
    std::size_t num_rounds = 50;       ///< sweep+swap rounds
    std::size_t sweeps_per_round = 2;  ///< Metropolis sweeps per replica per round
    double hot_fraction = 2.0;         ///< T_hot = hot_fraction * max|Q|
    double cold_fraction = 1e-2;       ///< T_cold = cold_fraction * max|Q|
};

/// Parallel tempering over a geometric temperature ladder; returns the
/// end-of-round states of the coldest replica as samples (plus the overall
/// best state seen).
class parallel_tempering final : public solver {
public:
    explicit parallel_tempering(pt_config config = {});

    [[nodiscard]] sample_set solve(const qubo::qubo_model& q, util::rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "PT"; }

    [[nodiscard]] const pt_config& config() const noexcept { return config_; }

private:
    pt_config config_;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_PARALLEL_TEMPERING_H
