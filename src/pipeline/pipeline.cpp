#include "pipeline/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>

#include "metrics/digest.h"
#include "metrics/stats.h"

namespace hcq::pipeline {

stage::stage(std::string name, service_model service, std::size_t num_servers)
    : name_(std::move(name)), service_(std::move(service)), num_servers_(num_servers) {
    if (!service_) throw std::invalid_argument("stage: null service model");
    if (num_servers_ == 0) throw std::invalid_argument("stage: zero servers");
}

stage stage::constant(std::string name, double service_us) {
    if (service_us < 0.0) throw std::invalid_argument("stage::constant: negative service");
    return stage(std::move(name), [service_us](std::size_t, util::rng&) { return service_us; });
}

stage stage::lognormal(std::string name, double median_us, double sigma) {
    if (median_us <= 0.0 || sigma < 0.0) {
        throw std::invalid_argument("stage::lognormal: bad parameters");
    }
    const double mu = std::log(median_us);
    return stage(std::move(name), [mu, sigma](std::size_t, util::rng& rng) {
        return std::exp(rng.normal(mu, sigma));
    });
}

stage stage::from_trace(std::string name, std::vector<double> trace_us) {
    if (trace_us.empty()) throw std::invalid_argument("stage::from_trace: empty trace");
    for (const double t : trace_us) {
        if (t < 0.0 || !std::isfinite(t)) {
            throw std::invalid_argument("stage::from_trace: bad trace entry");
        }
    }
    return stage(std::move(name),
                 [trace = std::move(trace_us)](std::size_t job_index, util::rng&) {
                     return trace[job_index % trace.size()];
                 });
}

stage stage::with_servers(std::size_t num_servers) const {
    stage copy = *this;
    if (num_servers == 0) throw std::invalid_argument("stage::with_servers: zero servers");
    copy.num_servers_ = num_servers;
    return copy;
}

double stage::service_us(std::size_t job_index, util::rng& rng) const {
    const double s = service_(job_index, rng);
    if (s < 0.0 || !std::isfinite(s)) throw std::runtime_error("stage: bad service time");
    return s;
}

const char* to_string(backpressure policy) noexcept {
    switch (policy) {
        case backpressure::block: return "block";
        case backpressure::drop_oldest: return "drop-oldest";
        case backpressure::drop_newest: return "drop-newest";
    }
    return "?";
}

backpressure parse_backpressure(const std::string& text) {
    if (text == "block") return backpressure::block;
    if (text == "drop-oldest") return backpressure::drop_oldest;
    if (text == "drop-newest") return backpressure::drop_newest;
    throw std::invalid_argument("parse_backpressure: unknown policy '" + text +
                                "' (expected block, drop-oldest, or drop-newest)");
}

namespace {

/// Per-stage accounting shared by both simulator cores.
struct stage_accounting {
    double busy_us = 0.0;            ///< total service time
    double wait_us = 0.0;            ///< buffer wait of jobs that entered service
    double occupancy_area_us = 0.0;  ///< buffer residency incl. evicted jobs
    std::size_t served = 0;          ///< jobs that entered service
    std::size_t drops = 0;
    std::size_t max_queue = 0;
};

void finalize(simulation_result& result, const std::vector<stage>& stages,
              const std::vector<stage_accounting>& acct, metrics::running_stats& latency_stats,
              const metrics::latency_digest& digest, bool recorded) {
    const std::size_t k = stages.size();
    result.jobs_dropped = result.num_jobs - result.jobs_completed;
    result.drop_rate = result.num_jobs > 0
                           ? static_cast<double>(result.jobs_dropped) /
                                 static_cast<double>(result.num_jobs)
                           : 0.0;
    result.throughput_per_us =
        result.makespan_us > 0.0
            ? static_cast<double>(result.jobs_completed) / result.makespan_us
            : 0.0;
    result.mean_latency_us = latency_stats.mean();
    if (recorded && !result.latencies_us.empty()) {
        result.p50_latency_us = metrics::percentile(result.latencies_us, 50.0);
        result.p99_latency_us = metrics::percentile(result.latencies_us, 99.0);
    } else {
        result.p50_latency_us = digest.p50();
        result.p99_latency_us = digest.p99();
    }
    result.max_latency_us = latency_stats.max();
    result.stage_utilization.resize(k);
    result.mean_queue_wait_us.resize(k);
    result.mean_queue_len.resize(k);
    result.max_queue_len.resize(k);
    result.stage_drops.resize(k);
    for (std::size_t s = 0; s < k; ++s) {
        const double capacity_us =
            result.makespan_us * static_cast<double>(stages[s].servers());
        result.stage_utilization[s] = capacity_us > 0.0 ? acct[s].busy_us / capacity_us : 0.0;
        result.mean_queue_wait_us[s] =
            acct[s].served > 0 ? acct[s].wait_us / static_cast<double>(acct[s].served) : 0.0;
        result.mean_queue_len[s] =
            result.makespan_us > 0.0 ? acct[s].occupancy_area_us / result.makespan_us : 0.0;
        result.max_queue_len[s] = acct[s].max_queue;
        result.stage_drops[s] = acct[s].drops;
    }
}

// ---------------------------------------------------------------------------
// Unbounded core: the legacy forward recurrence, extended with round-robin
// multi-server stages and queue-occupancy tracking.  Kept separate from the
// bounded core so the historical unbounded results (and RNG draw order) stay
// bit-identical.
// ---------------------------------------------------------------------------
simulation_result simulate_unbounded(const std::vector<stage>& stages, std::size_t num_jobs,
                                     const arrival_process& arrivals, util::rng& rng,
                                     const sim_options& options) {
    const std::size_t k = stages.size();
    std::vector<std::vector<double>> server_free(k);
    for (std::size_t s = 0; s < k; ++s) server_free[s].assign(stages[s].servers(), 0.0);
    std::vector<double> enter_clamp(k, 0.0);  // in-order delivery between stages
    std::vector<double> start_clamp(k, 0.0);  // in-order dispatch within a stage
    // Min-heaps of service-start times of jobs still counted as queued, for
    // peak-occupancy tracking; bounded by the actual queue build-up.
    std::vector<std::priority_queue<double, std::vector<double>, std::greater<>>> pending(k);
    std::vector<stage_accounting> acct(k);

    simulation_result result;
    result.num_jobs = num_jobs;
    if (options.record_latencies) result.latencies_us.reserve(num_jobs);

    metrics::latency_digest digest;
    metrics::running_stats latency_stats;
    double arrival = 0.0;
    for (std::size_t j = 0; j < num_jobs; ++j) {
        if (j > 0) {
            arrival += arrivals.poisson
                           ? -arrivals.interarrival_us * std::log(1.0 - rng.uniform())
                           : arrivals.interarrival_us;
        }
        double ready = arrival;  // job available to the first stage
        for (std::size_t s = 0; s < k; ++s) {
            const double enter = std::max(ready, enter_clamp[s]);
            enter_clamp[s] = enter;
            double& free = server_free[s][j % stages[s].servers()];
            const double start = std::max({enter, free, start_clamp[s]});
            start_clamp[s] = start;
            acct[s].wait_us += start - enter;
            acct[s].occupancy_area_us += start - enter;
            ++acct[s].served;
            auto& heap = pending[s];
            while (!heap.empty() && heap.top() <= enter) heap.pop();
            acct[s].max_queue = std::max(acct[s].max_queue, heap.size() + 1);
            heap.push(start);
            const double service = stages[s].service_us(j, rng);
            const double done = start + service;
            acct[s].busy_us += service;
            free = done;
            ready = done;
        }
        const double latency = ready - arrival;
        latency_stats.add(latency);
        digest.add(latency);
        if (options.record_latencies) result.latencies_us.push_back(latency);
        result.makespan_us = std::max(result.makespan_us, ready);
    }
    result.jobs_completed = num_jobs;
    finalize(result, stages, acct, latency_stats, digest, options.record_latencies);
    return result;
}

// ---------------------------------------------------------------------------
// Bounded core: a lazily-evaluated chain of stage nodes, each pulling the
// stream from its upstream neighbour.  Memory is O(sum of buffer capacities),
// independent of the number of jobs.
// ---------------------------------------------------------------------------

/// One job moving along the chain: its stream index, its offered arrival
/// time (the latency baseline), and the time it left the emitting node.
struct job_event {
    std::size_t index = 0;
    double arrival_us = 0.0;
    double time_us = 0.0;
};

class node {
public:
    virtual ~node() = default;
    /// Next job leaving this node, in stream order; nullopt when drained.
    virtual std::optional<job_event> next() = 0;
    /// Backpressure hook (block policy): the job this node emitted most
    /// recently kept occupying its server until `until_us`, because the
    /// downstream buffer had no free slot before then.
    virtual void hold_last_server(double until_us) = 0;
};

/// Lazily generates the offered arrival stream.
class arrival_node final : public node {
public:
    arrival_node(std::size_t num_jobs, const arrival_process& arrivals, util::rng& rng)
        : num_jobs_(num_jobs), arrivals_(arrivals), rng_(&rng) {}

    std::optional<job_event> next() override {
        if (emitted_ == num_jobs_) return std::nullopt;
        if (emitted_ > 0) {
            time_us_ += arrivals_.poisson
                            ? -arrivals_.interarrival_us * std::log(1.0 - rng_->uniform())
                            : arrivals_.interarrival_us;
        }
        return job_event{emitted_++, time_us_, time_us_};
    }

    /// The source never blocks: under the block policy an offered job simply
    /// waits at the entrance until the first buffer admits it.
    void hold_last_server(double) override {}

private:
    std::size_t num_jobs_;
    arrival_process arrivals_;
    util::rng* rng_;
    std::size_t emitted_ = 0;
    double time_us_ = 0.0;
};

class stage_node final : public node {
public:
    stage_node(const stage& st, const sim_options& options, std::size_t num_jobs, node& upstream,
               util::rng& rng)
        : st_(&st),
          capacity_(options.buffer_capacity),
          policy_(options.policy),
          up_(&upstream),
          rng_(&rng),
          server_free_(st.servers(), 0.0),
          ring_(std::min(capacity_, std::max<std::size_t>(num_jobs, 1)), 0.0) {}

    std::optional<job_event> next() override {
        return policy_ == backpressure::block ? next_blocking() : next_dropping();
    }

    void hold_last_server(double until_us) override {
        double& free = server_free_[last_server_];
        free = std::max(free, until_us);
    }

    [[nodiscard]] const stage_accounting& accounting() const noexcept { return acct_; }

private:
    struct entry {
        std::size_t index = 0;
        double arrival_us = 0.0;
        double enter_us = 0.0;  ///< when the job entered this stage's buffer
    };

    // -- block policy: admit one job at a time, committing it immediately;
    //    admission time is bounded below by the slot freed when the job
    //    `capacity_` positions earlier entered service, and the upstream
    //    server is held until admission.
    std::optional<job_event> next_blocking() {
        if (queue_.empty()) {
            auto ev = up_->next();
            if (!ev) return std::nullopt;
            const double t = clamp_in(ev->time_us);
            const double slot_free =
                served_ >= capacity_ ? ring_[(served_ - capacity_) % ring_.size()] : 0.0;
            const double enter = std::max(t, slot_free);
            up_->hold_last_server(enter);
            while (!pending_starts_.empty() && pending_starts_.top() <= enter) {
                pending_starts_.pop();
            }
            acct_.max_queue = std::max(acct_.max_queue, pending_starts_.size() + 1);
            queue_.push_back({ev->index, ev->arrival_us, enter});
        }
        return commit_head();
    }

    // -- drop policies: pull every arrival that lands before the head enters
    //    service, applying the drop policy at a full buffer (which may evict
    //    the head under drop-oldest), then commit the surviving head.
    std::optional<job_event> next_dropping() {
        while (queue_.empty()) {
            auto ev = take_upstream();
            if (!ev) return std::nullopt;
            admit_dropping(*ev);
        }
        for (;;) {
            const double start = head_start();
            const job_event* peeked = peek_upstream();
            if (peeked == nullptr || std::max(peeked->time_us, in_clamp_) >= start) break;
            const auto ev = take_upstream();
            admit_dropping(*ev);
        }
        return commit_head();
    }

    void admit_dropping(const job_event& ev) {
        const double t = clamp_in(ev.time_us);
        if (queue_.size() == capacity_) {
            ++acct_.drops;
            if (policy_ == backpressure::drop_newest) return;
            acct_.occupancy_area_us += t - queue_.front().enter_us;
            queue_.pop_front();
        }
        queue_.push_back({ev.index, ev.arrival_us, t});
        acct_.max_queue = std::max(acct_.max_queue, queue_.size());
    }

    [[nodiscard]] double head_start() const {
        const std::size_t server = served_ % server_free_.size();
        return std::max({queue_.front().enter_us, server_free_[server], start_clamp_});
    }

    job_event commit_head() {
        const entry e = queue_.front();
        queue_.pop_front();
        const std::size_t server = served_ % server_free_.size();
        const double start = std::max({e.enter_us, server_free_[server], start_clamp_});
        start_clamp_ = start;
        const double service = st_->service_us(e.index, *rng_);
        const double done = start + service;
        acct_.busy_us += service;
        acct_.wait_us += start - e.enter_us;
        acct_.occupancy_area_us += start - e.enter_us;
        ++acct_.served;
        server_free_[server] = done;
        last_server_ = server;
        if (policy_ == backpressure::block) {
            pending_starts_.push(start);
            ring_[served_ % ring_.size()] = start;
        }
        ++served_;
        return {e.index, e.arrival_us, done};
    }

    /// In-order delivery: a job cannot be acted on before its predecessor
    /// arrived, so arrival times at this stage are monotonicised.
    double clamp_in(double time_us) {
        in_clamp_ = std::max(in_clamp_, time_us);
        return in_clamp_;
    }

    const job_event* peek_upstream() {
        if (!lookahead_) lookahead_ = up_->next();
        return lookahead_ ? &*lookahead_ : nullptr;
    }

    std::optional<job_event> take_upstream() {
        if (lookahead_) {
            auto ev = *lookahead_;
            lookahead_.reset();
            return ev;
        }
        return up_->next();
    }

    const stage* st_;
    std::size_t capacity_;
    backpressure policy_;
    node* up_;
    util::rng* rng_;
    std::vector<double> server_free_;
    std::vector<double> ring_;  ///< service-start times, for slot-free lookup
    std::deque<entry> queue_;
    std::optional<job_event> lookahead_;
    std::priority_queue<double, std::vector<double>, std::greater<>> pending_starts_;
    std::size_t served_ = 0;
    std::size_t last_server_ = 0;
    double in_clamp_ = 0.0;
    double start_clamp_ = 0.0;
    stage_accounting acct_;
};

simulation_result simulate_bounded(const std::vector<stage>& stages, std::size_t num_jobs,
                                   const arrival_process& arrivals, util::rng& rng,
                                   const sim_options& options) {
    arrival_node source(num_jobs, arrivals, rng);
    std::vector<std::unique_ptr<stage_node>> nodes;
    nodes.reserve(stages.size());
    node* tail = &source;
    for (const auto& st : stages) {
        nodes.push_back(std::make_unique<stage_node>(st, options, num_jobs, *tail, rng));
        tail = nodes.back().get();
    }

    simulation_result result;
    result.num_jobs = num_jobs;
    if (options.record_latencies) result.latencies_us.reserve(num_jobs);
    metrics::latency_digest digest;
    metrics::running_stats latency_stats;
    while (const auto ev = tail->next()) {
        const double latency = ev->time_us - ev->arrival_us;
        ++result.jobs_completed;
        latency_stats.add(latency);
        digest.add(latency);
        if (options.record_latencies) result.latencies_us.push_back(latency);
        result.makespan_us = std::max(result.makespan_us, ev->time_us);
    }

    std::vector<stage_accounting> acct;
    acct.reserve(nodes.size());
    for (const auto& n : nodes) acct.push_back(n->accounting());
    finalize(result, stages, acct, latency_stats, digest, options.record_latencies);
    return result;
}

// ---------------------------------------------------------------------------
// Closed-loop core: an event-driven simulator over the same stage vocabulary,
// because feedback (a completed job re-entering stage 0 as a retransmission)
// makes the stream cyclic — neither feed-forward recurrence above can express
// a job whose arrival time depends on a later job's departure.  See the
// header comment on simulate_closed_loop for the semantic contract.
// ---------------------------------------------------------------------------

constexpr double cl_inf = std::numeric_limits<double>::infinity();

/// One attempt traversing the chain.
struct cl_job {
    std::size_t frame = 0;
    std::size_t attempt = 0;
    std::size_t inject_seq = 0;  ///< global injection index (trace cycling)
    double offered_us = 0.0;     ///< arrival of attempt 0
    double injected_us = 0.0;    ///< entry of THIS attempt into the chain
    double enter_us = 0.0;       ///< admission into the current stage's buffer
};

/// Event kinds, processed at equal times in rank order: completions first
/// (they free slots and may block), then injections (they may evict a head
/// under drop-oldest), then service starts (they commit the head).
enum class cl_kind { done = 0, offered = 1, start = 2 };

struct cl_event {
    double time_us = 0.0;
    cl_kind kind = cl_kind::start;
    std::uint64_t seq = 0;  ///< FIFO tie-break: creation order is deterministic
    std::size_t stage = 0;
    std::uint64_t epoch = 0;       ///< start events: stale when != stage epoch
    std::size_t inject_seq = 0;    ///< done events: which active entry finished
};

struct cl_event_later {
    bool operator()(const cl_event& a, const cl_event& b) const {
        if (a.time_us != b.time_us) return a.time_us > b.time_us;
        if (a.kind != b.kind) return static_cast<int>(a.kind) > static_cast<int>(b.kind);
        return a.seq > b.seq;
    }
};

class cl_engine {
public:
    cl_engine(const std::vector<stage>& stages, std::size_t num_frames,
              const arrival_process& arrivals, util::rng& rng, const sim_options& options,
              const feedback_fn& feedback)
        : stages_(&stages),
          num_frames_(num_frames),
          arrivals_(arrivals),
          rng_(&rng),
          options_(options),
          feedback_(&feedback),
          state_(stages.size()) {
        for (std::size_t s = 0; s < stages.size(); ++s) {
            state_[s].st = &stages[s];
            state_[s].server_free.assign(stages[s].servers(), 0.0);
        }
        result_.num_jobs = 0;
        if (options_.record_latencies) result_.latencies_us.reserve(num_frames);
    }

    simulation_result run() {
        push_offered(0.0);
        while (!events_.empty()) {
            const cl_event ev = events_.top();
            events_.pop();
            switch (ev.kind) {
                case cl_kind::offered: on_offered(ev); break;
                case cl_kind::done: on_done(ev); break;
                case cl_kind::start: on_start(ev); break;
            }
        }
        std::vector<stage_accounting> acct;
        acct.reserve(state_.size());
        for (const auto& st : state_) acct.push_back(st.acct);
        finalize(result_, *stages_, acct, latency_stats_, digest_, options_.record_latencies);
        return std::move(result_);
    }

private:
    /// A job that entered service, in start (hand-off) order.
    struct cl_active {
        cl_job job;
        std::size_t server = 0;
        double done_us = 0.0;
        bool finished = false;
    };

    struct cl_stage_state {
        const stage* st = nullptr;
        std::deque<cl_job> waiting;        ///< admitted, not yet in service
        std::vector<double> server_free;   ///< release time; cl_inf while occupied
        std::deque<cl_active> active;      ///< in service / awaiting hand-off
        bool head_blocked = false;         ///< active front done, downstream full
        std::size_t served = 0;            ///< round-robin dispatch counter
        double last_start = 0.0;           ///< in-order dispatch clamp
        double in_clamp = 0.0;             ///< monotone admission clamp
        std::uint64_t epoch = 0;           ///< invalidates scheduled starts
        stage_accounting acct;
    };

    void push_event(double time_us, cl_kind kind, std::size_t stage_index, std::uint64_t epoch,
                    std::size_t inject_seq) {
        events_.push({time_us, kind, next_event_seq_++, stage_index, epoch, inject_seq});
    }

    void push_offered(double time_us) {
        if (offered_ == num_frames_) return;
        push_event(time_us, cl_kind::offered, 0, 0, 0);
    }

    void on_offered(const cl_event& ev) {
        cl_job job;
        job.frame = offered_++;
        job.offered_us = ev.time_us;
        job.inject_seq = next_inject_seq_++;
        inject(job, ev.time_us);
        if (offered_ < num_frames_) {
            const double gap = arrivals_.poisson
                                   ? -arrivals_.interarrival_us * std::log(1.0 - rng_->uniform())
                                   : arrivals_.interarrival_us;
            push_offered(ev.time_us + gap);
        }
    }

    /// Injection at stage 0 — an offered frame or a fed-back retransmission.
    void inject(cl_job job, double t) {
        job.injected_us = t;
        ++result_.num_jobs;
        auto& st = state_[0];
        if (st.waiting.size() >= options_.buffer_capacity) {
            if (options_.policy == backpressure::block) {
                entrance_.push_back(job);  // the source never blocks; it queues
                return;
            }
            if (options_.policy == backpressure::drop_newest) {
                ++st.acct.drops;
                return;
            }
            evict_oldest(0, t);
        }
        enter_stage(0, job, t);
    }

    /// Hand-off arrival at an interior stage (s >= 1).  Under block the
    /// caller verified space; under the drop policies the policy applies.
    void handoff_arrive(std::size_t s, cl_job job, double t) {
        auto& st = state_[s];
        if (st.waiting.size() >= options_.buffer_capacity) {
            if (options_.policy == backpressure::drop_newest) {
                ++st.acct.drops;
                return;
            }
            evict_oldest(s, t);
        }
        enter_stage(s, job, t);
    }

    void evict_oldest(std::size_t s, double t) {
        auto& st = state_[s];
        const cl_job victim = st.waiting.front();
        st.waiting.pop_front();
        ++st.acct.drops;
        st.acct.occupancy_area_us += t - victim.enter_us;
    }

    void enter_stage(std::size_t s, cl_job job, double t) {
        auto& st = state_[s];
        st.in_clamp = std::max(st.in_clamp, t);
        job.enter_us = st.in_clamp;
        st.waiting.push_back(job);
        st.acct.max_queue = std::max(st.acct.max_queue, st.waiting.size());
        schedule_head(s);
    }

    /// (Re)schedules the service start of stage s's head, invalidating any
    /// outstanding start event.  A head whose designated round-robin server
    /// is still occupied is rescheduled when that server releases.
    void schedule_head(std::size_t s) {
        auto& st = state_[s];
        ++st.epoch;
        if (st.waiting.empty()) return;
        const std::size_t k = st.served % st.server_free.size();
        const double start =
            std::max({st.waiting.front().enter_us, st.server_free[k], st.last_start});
        if (!std::isfinite(start)) return;
        push_event(start, cl_kind::start, s, st.epoch, 0);
    }

    void on_start(const cl_event& ev) {
        auto& st = state_[ev.stage];
        if (ev.epoch != st.epoch) return;  // superseded
        cl_job job = st.waiting.front();
        st.waiting.pop_front();
        const std::size_t k = st.served % st.server_free.size();
        const double start = std::max({job.enter_us, st.server_free[k], st.last_start});
        st.last_start = start;
        ++st.served;
        const double service = st.st->service_us(job.inject_seq, *rng_);
        const double done = start + service;
        st.acct.busy_us += service;
        st.acct.wait_us += start - job.enter_us;
        st.acct.occupancy_area_us += start - job.enter_us;
        ++st.acct.served;
        st.server_free[k] = cl_inf;  // occupied until the job hands off
        st.active.push_back({job, k, done, false});
        push_event(done, cl_kind::done, ev.stage, 0, job.inject_seq);
        admit_released_slot(ev.stage, start);  // the head's waiting slot freed
        schedule_head(ev.stage);
    }

    /// A waiting slot freed at stage s at time t (its head entered service):
    /// under block, admit the longest-waiting excluded job — the upstream
    /// blocked hand-off, or an entrance-queued injection at stage 0.
    void admit_released_slot(std::size_t s, double t) {
        if (options_.policy != backpressure::block) return;
        if (s == 0) {
            if (entrance_.empty()) return;
            const cl_job job = entrance_.front();
            entrance_.pop_front();
            enter_stage(0, job, t);
            return;
        }
        auto& up = state_[s - 1];
        if (!up.head_blocked) return;
        up.head_blocked = false;
        flush(s - 1, t);  // retries the delayed hand-off, now with space
    }

    void on_done(const cl_event& ev) {
        auto& st = state_[ev.stage];
        for (auto& entry : st.active) {
            if (entry.job.inject_seq == ev.inject_seq) {
                entry.finished = true;
                break;
            }
        }
        flush(ev.stage, ev.time_us);
    }

    /// Hands finished jobs downstream in service-start order (in-order
    /// delivery).  All hand-offs happen at the current event time; a full
    /// downstream buffer under block parks the front and holds its server.
    void flush(std::size_t s, double now) {
        auto& st = state_[s];
        while (!st.active.empty() && st.active.front().finished && !st.head_blocked) {
            if (s + 1 < state_.size() && options_.policy == backpressure::block &&
                state_[s + 1].waiting.size() >= options_.buffer_capacity) {
                st.head_blocked = true;
                return;
            }
            const cl_active entry = st.active.front();
            st.active.pop_front();
            st.server_free[entry.server] = now;
            schedule_head(s);
            if (s + 1 < state_.size()) {
                handoff_arrive(s + 1, entry.job, now);
            } else {
                complete(entry.job, now);
            }
        }
    }

    void complete(const cl_job& job, double t) {
        ++result_.jobs_completed;
        const double latency = t - job.injected_us;
        latency_stats_.add(latency);
        digest_.add(latency);
        if (options_.record_latencies) result_.latencies_us.push_back(latency);
        result_.makespan_us = std::max(result_.makespan_us, t);
        const bool reenter =
            *feedback_ && (*feedback_)({job.frame, job.attempt, job.offered_us,
                                        job.injected_us, t});
        if (reenter) {
            cl_job retx;
            retx.frame = job.frame;
            retx.attempt = job.attempt + 1;
            retx.inject_seq = next_inject_seq_++;
            retx.offered_us = job.offered_us;
            inject(retx, t);
        }
    }

    const std::vector<stage>* stages_;
    std::size_t num_frames_;
    arrival_process arrivals_;
    util::rng* rng_;
    sim_options options_;
    const feedback_fn* feedback_;
    std::vector<cl_stage_state> state_;
    std::deque<cl_job> entrance_;  ///< injections awaiting a first-buffer slot (block)
    std::priority_queue<cl_event, std::vector<cl_event>, cl_event_later> events_;
    std::uint64_t next_event_seq_ = 0;
    std::size_t next_inject_seq_ = 0;
    std::size_t offered_ = 0;
    simulation_result result_;
    metrics::latency_digest digest_;
    metrics::running_stats latency_stats_;
};

}  // namespace

simulation_result simulate_closed_loop(const std::vector<stage>& stages, std::size_t num_frames,
                                       const arrival_process& arrivals, util::rng& rng,
                                       const sim_options& options, const feedback_fn& feedback) {
    if (stages.empty()) throw std::invalid_argument("simulate_closed_loop: no stages");
    if (num_frames == 0) throw std::invalid_argument("simulate_closed_loop: no jobs");
    if (arrivals.interarrival_us <= 0.0) {
        throw std::invalid_argument("simulate_closed_loop: bad interarrival");
    }
    if (options.buffer_capacity == 0) {
        throw std::invalid_argument(
            "simulate_closed_loop: buffer capacity 0 can never admit work; use a capacity >= 1 "
            "or pipeline::unbounded_capacity");
    }
    return cl_engine(stages, num_frames, arrivals, rng, options, feedback).run();
}

simulation_result simulate(const std::vector<stage>& stages, std::size_t num_jobs,
                           const arrival_process& arrivals, util::rng& rng,
                           const sim_options& options) {
    if (stages.empty()) throw std::invalid_argument("simulate: no stages");
    if (num_jobs == 0) throw std::invalid_argument("simulate: no jobs");
    if (arrivals.interarrival_us <= 0.0) throw std::invalid_argument("simulate: bad interarrival");
    if (options.buffer_capacity == 0) {
        throw std::invalid_argument(
            "simulate: buffer capacity 0 can never admit work; use a capacity >= 1 or "
            "pipeline::unbounded_capacity");
    }
    return options.buffer_capacity == unbounded_capacity
               ? simulate_unbounded(stages, num_jobs, arrivals, rng, options)
               : simulate_bounded(stages, num_jobs, arrivals, rng, options);
}

util::table summary_table(const simulation_result& result,
                          const std::vector<std::string>& stage_names) {
    const std::size_t k = result.stage_utilization.size();
    if (!stage_names.empty() && stage_names.size() != k) {
        throw std::invalid_argument("summary_table: stage_names arity mismatch");
    }
    const auto stage_label = [&](std::size_t s) {
        return stage_names.empty() ? "stage " + std::to_string(s) : stage_names[s];
    };

    util::table t({"metric", "value"});
    t.add("channel uses", result.num_jobs);
    t.add("completed", result.jobs_completed);
    t.add("dropped", result.jobs_dropped);
    t.add("drop rate", util::format_double(result.drop_rate, 5));
    t.add("makespan us", result.makespan_us);
    t.add("throughput use/ms", result.throughput_per_us * 1000.0);
    t.add("mean latency us", result.mean_latency_us);
    t.add("p50 latency us", result.p50_latency_us);
    t.add("p99 latency us", result.p99_latency_us);
    t.add("max latency us", result.max_latency_us);
    for (std::size_t s = 0; s < k; ++s) {
        t.add("utilization " + stage_label(s),
              util::format_double(result.stage_utilization[s], 3));
        t.add("queue wait us " + stage_label(s),
              util::format_double(result.mean_queue_wait_us[s], 3));
        t.add("mean queue len " + stage_label(s),
              util::format_double(result.mean_queue_len[s], 3));
        t.add("max queue len " + stage_label(s), result.max_queue_len[s]);
        t.add("drops " + stage_label(s), result.stage_drops[s]);
    }
    return t;
}

std::vector<stage> make_hybrid_stages(double classical_us, double schedule_duration_us,
                                      std::size_t reads_per_use, double programming_us,
                                      std::size_t quantum_devices) {
    if (schedule_duration_us <= 0.0 || reads_per_use == 0 || quantum_devices == 0) {
        throw std::invalid_argument("make_hybrid_stages: bad quantum stage parameters");
    }
    const double quantum_us =
        programming_us + schedule_duration_us * static_cast<double>(reads_per_use);
    std::vector<stage> stages;
    stages.push_back(stage::constant("classical", classical_us));
    stages.push_back(stage::constant("quantum", quantum_us).with_servers(quantum_devices));
    return stages;
}

}  // namespace hcq::pipeline
