#include "detect/transform.h"

#include <cmath>
#include <stdexcept>

#include "qubo/constraints.h"
#include "qubo/ising.h"

namespace hcq::detect {

using linalg::cmat;
using linalg::cvec;
using linalg::cxd;

linalg::cvec ml_qubo::symbols(std::span<const std::uint8_t> bits) const {
    return wireless::modulate(mod, bits);
}

ml_qubo ml_to_qubo(const cmat& h, const cvec& y, wireless::modulation mod) {
    qubo_scratch scratch;
    ml_qubo out;
    ml_to_qubo_into(h, y, mod, scratch, out);
    return out;
}

ml_qubo ml_to_qubo(const wireless::mimo_instance& instance) {
    return ml_to_qubo(instance.h, instance.y, instance.mod);
}

void ml_to_qubo_into(const cmat& h, const cvec& y, wireless::modulation mod,
                     qubo_scratch& scratch, ml_qubo& out) {
    const std::size_t num_users = h.cols();
    const std::size_t num_antennas = h.rows();
    if (num_users == 0 || num_antennas == 0) throw std::invalid_argument("ml_to_qubo: empty H");
    if (y.size() != num_antennas) throw std::invalid_argument("ml_to_qubo: y/H shape mismatch");

    const std::size_t k = wireless::bits_per_dimension(mod);
    const std::size_t bps = wireless::bits_per_symbol(mod);
    const std::size_t nb = num_users * bps;

    // A: users x bits weight matrix of the natural linear map, x = A t.
    // It depends only on (mod, users), so rebuild only when the key changed.
    if (!scratch.a_valid || scratch.a_mod != mod || scratch.a_users != num_users) {
        scratch.a.resize(num_users, nb);  // zero-fills
        for (std::size_t u = 0; u < num_users; ++u) {
            for (std::size_t j = 0; j < k; ++j) {
                const double w = std::pow(2.0, static_cast<double>(k - 1 - j));
                scratch.a(u, u * bps + j) = cxd(w, 0.0);
                if (wireless::uses_quadrature(mod)) {
                    scratch.a(u, u * bps + k + j) = cxd(0.0, w);
                }
            }
        }
        scratch.a_mod = mod;
        scratch.a_users = num_users;
        scratch.a_valid = true;
    }

    // B = H A, G = B^H B, c = B^H y — the into-kernels replicate the exact
    // operation order of the matrix operators, so the coefficients are
    // bit-identical to the temporary-based formulation.
    linalg::multiply_into(h, scratch.a, scratch.b);
    linalg::gram_into(scratch.b, scratch.gram);
    linalg::herm_matvec_into(scratch.b, y, scratch.bhy);

    scratch.ising.reset(nb);
    double offset = 0.0;
    const double yn = y.norm2();
    offset += yn * yn;
    for (std::size_t i = 0; i < nb; ++i) {
        scratch.ising.set_field(i, -2.0 * scratch.bhy[i].real());
        offset += scratch.gram(i, i).real();  // t_i^2 == 1
        for (std::size_t j = i + 1; j < nb; ++j) {
            const double g = scratch.gram(i, j).real();
            if (g != 0.0) scratch.ising.set_coupling(i, j, 2.0 * g);
        }
    }
    scratch.ising.set_offset(offset);

    qubo::to_qubo_into(scratch.ising, out.model);
    out.mod = mod;
    out.num_users = num_users;
}

void ml_to_qubo_into(const wireless::mimo_instance& instance, qubo_scratch& scratch,
                     ml_qubo& out) {
    ml_to_qubo_into(instance.h, instance.y, instance.mod, scratch, out);
}

void apply_symbol_prior(ml_qubo& mq, std::size_t user,
                        std::span<const std::uint8_t> believed_bits, double strength) {
    const std::size_t bps = wireless::bits_per_symbol(mq.mod);
    if (user >= mq.num_users) throw std::invalid_argument("apply_symbol_prior: bad user");
    if (believed_bits.size() != bps) {
        throw std::invalid_argument("apply_symbol_prior: pattern must cover the whole symbol");
    }
    qubo::add_pattern_constraint(mq.model, user * bps, believed_bits, strength);
}

}  // namespace hcq::detect
