#include "util/spec.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace hcq::util::spec {

const std::string* parsed::find(const std::string& key) const {
    for (const auto& [k, v] : args) {
        if (k == key) return &v;
    }
    return nullptr;
}

void fail(const grammar& g, const std::string& text, const std::string& why) {
    throw std::invalid_argument(g.layer + ": bad spec '" + text + "': " + why);
}

parsed parse(const grammar& g, const std::string& text, const key_hook& on_key,
             const kind_hook& on_kind) {
    parsed spec;
    const std::size_t colon = text.find(':');
    spec.kind = text.substr(0, colon);
    if (spec.kind.empty()) fail(g, text, "empty " + g.noun);
    if (spec.kind.find('=') != std::string::npos) {
        fail(g, text, g.noun + " '" + spec.kind + "' contains '='");
    }
    if (on_kind) on_kind(spec.kind);
    if (colon == std::string::npos) return spec;

    std::istringstream rest(text.substr(colon + 1));
    std::string item;
    while (std::getline(rest, item, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) fail(g, text, "argument '" + item + "' is not key=value");
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        if (key.empty()) fail(g, text, "empty key in '" + item + "'");
        if (value.empty()) fail(g, text, "empty value for key '" + key + "'");
        if (spec.find(key) != nullptr) fail(g, text, "duplicate key '" + key + "'");
        if (on_key) on_key(key, value);
        spec.args.emplace_back(std::move(key), std::move(value));
    }
    if (spec.args.empty()) fail(g, text, "trailing ':' without arguments");
    return spec;
}

std::string to_string(const parsed& p) {
    std::string out = p.kind;
    for (std::size_t i = 0; i < p.args.size(); ++i) {
        out += (i == 0 ? ':' : ',');
        out += p.args[i].first;
        out += '=';
        out += p.args[i].second;
    }
    return out;
}

std::optional<std::size_t> parse_size_value(const std::string& raw) {
    std::size_t value = 0;
    const char* end = raw.data() + raw.size();
    const auto [ptr, ec] = std::from_chars(raw.data(), end, value);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
}

std::optional<double> parse_double_value(const std::string& raw) {
    try {
        std::size_t consumed = 0;
        const double value = std::stod(raw, &consumed);
        if (consumed == raw.size()) return value;
    } catch (const std::exception&) {
        // fall through: uniform nullopt on any parse failure
    }
    return std::nullopt;
}

std::string format_value(double value) {
    std::ostringstream os;
    os.precision(15);
    os << value;
    return os.str();
}

}  // namespace hcq::util::spec
