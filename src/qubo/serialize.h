// Plain-text QUBO (de)serialisation so problems can be exchanged with other
// tooling or archived alongside experiment outputs.
//
// Format ("hcq-qubo v1"):
//     # comment lines allowed anywhere
//     hcq-qubo v1
//     n <num_variables> offset <offset>
//     <i> <j> <coefficient>        (one line per nonzero term, i <= j)
#ifndef HCQ_QUBO_SERIALIZE_H
#define HCQ_QUBO_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "qubo/model.h"

namespace hcq::qubo {

/// Writes `q` in the v1 text format.
void write_qubo(std::ostream& os, const qubo_model& q);

/// Parses the v1 text format; throws std::invalid_argument on malformed
/// input (bad header, indices out of range, duplicate terms).
[[nodiscard]] qubo_model read_qubo(std::istream& is);

/// Convenience round-trips through strings.
[[nodiscard]] std::string to_string(const qubo_model& q);
[[nodiscard]] qubo_model from_string(const std::string& text);

}  // namespace hcq::qubo

#endif  // HCQ_QUBO_SERIALIZE_H
