// Kernel micro-benchmarks (google-benchmark): the per-operation costs that
// determine how many emulated anneal reads per second the library sustains,
// plus the classical detectors' costs (relevant to Section 5's classical-
// initialiser tradeoff).
#include <benchmark/benchmark.h>

#include "classical/greedy.h"
#include "classical/metropolis.h"
#include "core/device.h"
#include "core/experiment.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/sphere.h"
#include "detect/transform.h"
#include "qubo/generator.h"
#include "util/rng.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace wl = hcq::wireless;

const hy::experiment_instance& instance32() {
    static const hy::experiment_instance e = [] {
        hcq::util::rng rng(7);
        return hy::make_paper_instance(rng, 8, wl::modulation::qam16);
    }();
    return e;
}

void bm_qubo_energy(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    hcq::util::rng rng(n);
    const auto q = hcq::qubo::random_qubo(rng, n);
    const auto bits = rng.bits(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.energy(bits));
    }
}
BENCHMARK(bm_qubo_energy)->Arg(16)->Arg(36)->Arg(64);

void bm_flip_delta(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    hcq::util::rng rng(n);
    const auto q = hcq::qubo::random_qubo(rng, n);
    const auto bits = rng.bits(n);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.flip_delta(i, bits));
        i = (i + 1) % n;
    }
}
BENCHMARK(bm_flip_delta)->Arg(36)->Arg(64);

void bm_metropolis_sweep(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    hcq::util::rng rng(n);
    const auto q = hcq::qubo::random_qubo(rng, n);
    hcq::solvers::metropolis_engine engine(q, rng.bits(n));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.sweep(0.5, rng));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(bm_metropolis_sweep)->Arg(16)->Arg(36)->Arg(64);

void bm_greedy_search(benchmark::State& state) {
    const auto& e = instance32();
    hcq::util::rng rng(11);
    const hcq::solvers::greedy_search gs;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gs.initialize(e.reduced.model, rng));
    }
}
BENCHMARK(bm_greedy_search);

void bm_ml_to_qubo_transform(benchmark::State& state) {
    const auto& e = instance32();
    for (auto _ : state) {
        benchmark::DoNotOptimize(hcq::detect::ml_to_qubo(e.instance));
    }
}
BENCHMARK(bm_ml_to_qubo_transform);

void bm_anneal_read_ra(benchmark::State& state) {
    const auto& e = instance32();
    const an::annealer_emulator device;
    const auto schedule = an::anneal_schedule::reverse(0.45, 1.0);
    hcq::util::rng rng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            device.anneal_once(e.reduced.model, schedule, rng, e.optimal_bits));
    }
}
BENCHMARK(bm_anneal_read_ra);

void bm_anneal_read_fa(benchmark::State& state) {
    const auto& e = instance32();
    const an::annealer_emulator device;
    const auto schedule = an::anneal_schedule::forward(1.0, 0.41, 1.0);
    hcq::util::rng rng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(device.anneal_once(e.reduced.model, schedule, rng));
    }
}
BENCHMARK(bm_anneal_read_fa);

void bm_detector_zf(benchmark::State& state) {
    const auto& e = instance32();
    const hcq::detect::zf_detector det;
    for (auto _ : state) {
        benchmark::DoNotOptimize(det.detect(e.instance));
    }
}
BENCHMARK(bm_detector_zf);

void bm_detector_kbest8(benchmark::State& state) {
    const auto& e = instance32();
    const hcq::detect::kbest_detector det(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(det.detect(e.instance));
    }
}
BENCHMARK(bm_detector_kbest8);

void bm_detector_sphere_noiseless(benchmark::State& state) {
    const auto& e = instance32();
    const hcq::detect::sphere_detector det;
    for (auto _ : state) {
        benchmark::DoNotOptimize(det.detect(e.instance));
    }
}
BENCHMARK(bm_detector_sphere_noiseless);

}  // namespace

BENCHMARK_MAIN();
