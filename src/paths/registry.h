// The detection-path factory registry — the open extension point the closed
// link::path_kind enum used to be.
//
// Every path kind registers a factory plus self-describing metadata (a
// one-line summary and the keys it accepts).  Construction goes through spec
// strings:
//
//     auto kbest = paths::registry::make("kbest:width=16");
//     auto gsra  = paths::registry::make("gsra:reads=80,sp=0.29,pause_us=1");
//
// Error messages are self-documenting: an unknown kind lists
// registry::available(), an unknown key lists the path's accepted keys, and
// a bad value names the key and the expected form.
//
// The built-in paths (zf, mmse, kbest, sphere, sic, fcsd, sa, tabu, pt,
// gsra, kxra — see builtin_paths.cpp) are registered lazily before the first
// lookup, so a static-initialisation-order race with user registrations is
// impossible.  New paths register with registry::register_path, either
// directly or through a namespace-scope `paths::registrar` object — see
// docs/ARCHITECTURE.md, "Adding a new detection path".
#ifndef HCQ_PATHS_REGISTRY_H
#define HCQ_PATHS_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "paths/detection_path.h"

namespace hcq::paths {

/// Factory signature: builds a path from a validated spec.  The registry
/// checks the kind and rejects unknown keys before invoking the factory;
/// the factory validates the *values* (via spec_positive_size/spec_double).
using path_factory =
    std::function<std::shared_ptr<const detection_path>(const path_spec& spec)>;

/// One accepted spec key of a path kind.
struct key_info {
    std::string name;     ///< e.g. "width"
    std::string summary;  ///< e.g. "beam width (default 8)"
};

/// Registration record of one path kind.
struct path_info {
    std::string kind;           ///< registry name, e.g. "kbest"
    std::string summary;        ///< one-line description for CLI help
    std::vector<key_info> keys; ///< accepted spec keys (empty = none)
    path_factory factory;
};

/// Global, thread-safe factory registry keyed by spec kind.
class registry {
public:
    /// Registers a path kind.  Throws std::invalid_argument on an empty
    /// kind, a missing factory, or a kind that is already registered
    /// (including the built-ins).
    static void register_path(path_info info);

    /// All registered kinds, sorted.
    [[nodiscard]] static std::vector<std::string> available();

    /// Registration metadata (for help/docs), sorted by kind.
    [[nodiscard]] static std::vector<path_info> entries();

    /// True when `kind` is registered.
    [[nodiscard]] static bool is_registered(const std::string& kind);

    /// Multi-line human-readable listing: one `kind  summary` line per path
    /// followed by its accepted keys — the CLI `--help` body.
    [[nodiscard]] static std::string help();

    /// Builds a path from a parsed spec.  Throws std::invalid_argument on an
    /// unknown kind (listing available()), an unknown key (listing the
    /// path's accepted keys), or a bad value.
    [[nodiscard]] static std::shared_ptr<const detection_path> make(const path_spec& spec);

    /// Parses `spec_text` and builds the path.
    [[nodiscard]] static std::shared_ptr<const detection_path> make(const std::string& spec_text);

    /// One path per spec, in order.
    [[nodiscard]] static std::vector<std::shared_ptr<const detection_path>> make_all(
        const std::vector<path_spec>& specs);

    /// The QUBO-solver form of a path, for (instances x solvers) sweeps.
    /// Throws std::invalid_argument when the path has no solver form
    /// (conventional detectors), listing the kinds that do.
    [[nodiscard]] static std::shared_ptr<const solvers::solver> make_solver(
        const std::string& spec_text);

    /// Spec-built solver list for hybrid::parallel_runner::sweep.
    [[nodiscard]] static std::vector<std::shared_ptr<const solvers::solver>> make_solvers(
        const std::vector<std::string>& spec_texts);
};

/// Registers a path kind at namespace scope:
///     static const paths::registrar my_path_registrar{{
///         .kind = "mypath", .summary = "...", .keys = {...},
///         .factory = [](const paths::path_spec& s) { ... }}};
struct registrar {
    explicit registrar(path_info info) { registry::register_path(std::move(info)); }
};

}  // namespace hcq::paths

#endif  // HCQ_PATHS_REGISTRY_H
