#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hcq::util {

std::string format_double(double value, int precision) {
    if (std::isnan(value)) return "nan";
    if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
    char buf[64];
    if (value != 0.0 && (std::fabs(value) >= 1e6 || std::fabs(value) < 1e-4)) {
        if (std::snprintf(buf, sizeof buf, "%.*e", precision, value) < 0) return "nan";
        return buf;
    }
    if (std::snprintf(buf, sizeof buf, "%.*f", precision, value) < 0) return "nan";
    std::string s = buf;
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0') s.pop_back();
        if (!s.empty() && s.back() == '.') s.pop_back();
    }
    return s.empty() ? "0" : s;
}

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("table: no headers");
}

void table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("table: row arity mismatch");
    }
    rows_.push_back(std::move(cells));
}

void table::print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(width[c] - row[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (const auto w : width) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

namespace {

/// True when the whole cell matches the JSON number grammar (RFC 8259):
/// -?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?[0-9]+)?.  Deliberately stricter
/// than strtod, which also accepts hex floats, "1.", ".5", inf/nan — all
/// illegal as unquoted JSON tokens.
bool is_numeric_cell(const std::string& cell) {
    const char* p = cell.c_str();
    if (*p == '-') ++p;
    if (*p == '0') {
        ++p;
    } else if (*p >= '1' && *p <= '9') {
        while (*p >= '0' && *p <= '9') ++p;
    } else {
        return false;
    }
    if (*p == '.') {
        ++p;
        if (*p < '0' || *p > '9') return false;
        while (*p >= '0' && *p <= '9') ++p;
    }
    if (*p == 'e' || *p == 'E') {
        ++p;
        if (*p == '+' || *p == '-') ++p;
        if (*p < '0' || *p > '9') return false;
        while (*p >= '0' && *p <= '9') ++p;
    }
    return *p == '\0';
}

void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char ch : s) {
        switch (ch) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    if (std::snprintf(buf, sizeof buf, "\\u%04x", ch) > 0) os << buf;
                } else {
                    os << ch;
                }
        }
    }
    os << '"';
}

}  // namespace

std::string json_quote(const std::string& text) {
    std::ostringstream out;
    write_json_string(out, text);
    return out.str();
}

void table::print_json(std::ostream& os) const {
    os << "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << "  {";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            write_json_string(os, headers_[c]);
            os << ": ";
            if (is_numeric_cell(rows_[r][c])) {
                os << rows_[r][c];
            } else {
                write_json_string(os, rows_[r][c]);
            }
            if (c + 1 < headers_.size()) os << ", ";
        }
        os << (r + 1 < rows_.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

void table::print_csv(std::ostream& os) const {
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

}  // namespace hcq::util
