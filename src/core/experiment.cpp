#include "core/experiment.h"

#include <cmath>
#include <stdexcept>

#include "metrics/delta_e.h"

namespace hcq::hybrid {

experiment_instance make_paper_instance(util::rng& rng, std::size_t num_users,
                                        wireless::modulation mod) {
    experiment_instance out;
    out.instance = wireless::noiseless_paper_instance(rng, num_users, mod);
    out.reduced = detect::ml_to_qubo(out.instance);
    out.optimal_bits = out.instance.tx_bits;
    out.optimal_energy = out.reduced.model.energy(out.optimal_bits);
    return out;
}

std::vector<experiment_instance> make_paper_corpus(std::uint64_t seed, std::size_t count,
                                                   std::size_t num_users,
                                                   wireless::modulation mod) {
    if (count == 0) throw std::invalid_argument("make_paper_corpus: zero instances");
    const util::rng base(seed);
    std::vector<experiment_instance> corpus;
    corpus.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        util::rng stream = base.derive(i);
        corpus.push_back(make_paper_instance(stream, num_users, mod));
    }
    return corpus;
}

bool verify_ground_truth(const experiment_instance& e, double tolerance) {
    const double total = e.reduced.model.energy_with_offset(e.optimal_bits);
    return std::fabs(total) <= tolerance;
}

std::size_t quality_binned_states::total() const {
    std::size_t acc = 0;
    for (const auto& bin : states) acc += bin.size();
    return acc;
}

quality_binned_states harvest_initial_states(const experiment_instance& e,
                                             double bin_width_percent, double max_percent,
                                             std::size_t attempts, util::rng& rng) {
    if (bin_width_percent <= 0.0 || max_percent <= 0.0) {
        throw std::invalid_argument("harvest_initial_states: bad bin parameters");
    }
    const std::size_t n = e.num_variables();
    quality_binned_states out;
    out.bin_width_percent = bin_width_percent;
    out.max_percent = max_percent;
    out.states.resize(
        static_cast<std::size_t>(std::ceil(max_percent / bin_width_percent)));

    const auto consider = [&](qubo::bit_vector bits) {
        const double energy = e.reduced.model.energy(bits);
        const double gap = metrics::delta_e_percent(energy, e.optimal_energy);
        // The paper's quality bins cover 0 < Delta-E_IS% (the Delta-E_IS = 0
        // case is the separately-studied ground-state reference).
        if (gap <= 1e-9 || gap >= max_percent) return;
        const std::size_t bin = metrics::delta_e_bin(gap, bin_width_percent);
        if (bin < out.states.size()) out.states[bin].push_back(std::move(bits));
    };

    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt % 2 == 0) {
            // Perturbation walk: flip 1..n/3 random distinct bits of the optimum.
            qubo::bit_vector bits = e.optimal_bits;
            const std::size_t max_flips = std::max<std::size_t>(1, n / 3);
            const std::size_t flips = 1 + rng.uniform_index(max_flips);
            for (std::size_t f = 0; f < flips; ++f) {
                bits[rng.uniform_index(n)] ^= 1U;
            }
            consider(std::move(bits));
        } else {
            consider(rng.bits(n));
        }
    }
    return out;
}

quality_binned_states harvest_annealer_states(const experiment_instance& e,
                                              const anneal::annealer_emulator& device,
                                              double bin_width_percent, double max_percent,
                                              std::size_t reads_per_setting, util::rng& rng) {
    if (bin_width_percent <= 0.0 || max_percent <= 0.0) {
        throw std::invalid_argument("harvest_annealer_states: bad bin parameters");
    }
    if (reads_per_setting == 0) {
        throw std::invalid_argument("harvest_annealer_states: zero reads");
    }
    quality_binned_states out;
    out.bin_width_percent = bin_width_percent;
    out.max_percent = max_percent;
    out.states.resize(static_cast<std::size_t>(std::ceil(max_percent / bin_width_percent)));

    // Forward anneals with pauses across the schedule-parameter range emit
    // states across the whole quality spectrum.
    for (double sp = 0.25; sp <= 0.58; sp += 0.08) {
        const auto schedule = anneal::anneal_schedule::forward(1.0, sp, 1.0);
        const auto samples = device.sample(e.reduced.model, schedule, reads_per_setting, rng);
        for (const auto& s : samples.all()) {
            const double gap = metrics::delta_e_percent(s.energy, e.optimal_energy);
            if (gap <= 1e-9 || gap >= max_percent) continue;
            const std::size_t bin = metrics::delta_e_bin(gap, bin_width_percent);
            if (bin < out.states.size()) out.states[bin].push_back(s.bits);
        }
    }
    return out;
}

}  // namespace hcq::hybrid
