#include "link/link_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "classical/greedy.h"
#include "core/device.h"
#include "core/hybrid_solver.h"
#include "core/schedule.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/sphere.h"
#include "detect/transform.h"
#include "metrics/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "wireless/mimo.h"

namespace hcq::link {
namespace {

// Stream-id tags keeping channel-use synthesis draws disjoint from solver
// draws (same scheme as parallel_runner::sweep_stream_domain).
constexpr std::uint64_t synth_stream_domain = 0x6c696e6b5f434855ULL;  // "link_CHU"
constexpr std::uint64_t solve_stream_domain = 0x6c696e6b5f534c56ULL;  // "link_SLV"

/// Everything one (use, path) cell produces.  `bits` / `ml_cost` are
/// deterministic in (config, seed); the *_us fields are measured wall times
/// (except the hybrid's quantum occupancy, which is the programmed schedule
/// time x reads — the quantity hardware extrapolations need, since the
/// emulator's own wall time says nothing about a physical annealer).
struct cell_result {
    qubo::bit_vector bits;
    double ml_cost = 0.0;
    double solve_us = 0.0;      // conventional / SA paths: the whole solve
    double classical_us = 0.0;  // hybrid path: measured initialiser time
    double quantum_us = 0.0;    // hybrid path: programmed annealer occupancy
};

void validate(const link_config& config) {
    if (config.num_uses == 0) throw std::invalid_argument("link: zero channel uses");
    if (config.num_users == 0) throw std::invalid_argument("link: zero users");
    if (config.paths.empty()) throw std::invalid_argument("link: no detection paths");
    for (std::size_t a = 0; a < config.paths.size(); ++a) {
        for (std::size_t b = a + 1; b < config.paths.size(); ++b) {
            if (config.paths[a] == config.paths[b]) {
                throw std::invalid_argument("link: duplicate detection path");
            }
        }
    }
    if (config.kbest_width == 0) throw std::invalid_argument("link: zero K-best width");
    if (config.hybrid_reads == 0) throw std::invalid_argument("link: zero hybrid reads");
    if (!(config.offered_load > 0.0) || !std::isfinite(config.offered_load)) {
        throw std::invalid_argument("link: offered load must be positive and finite");
    }
}

pipeline::simulation_result replay_traces(const path_report& path, const link_config& config) {
    std::vector<pipeline::stage> stages;
    double bottleneck_us = 0.0;
    for (const auto& trace : path.stages) {
        stages.push_back(pipeline::stage::from_trace(trace.name, trace.service_us));
        bottleneck_us = std::max(bottleneck_us, trace.mean_us());
    }
    // Arrivals pace the bottleneck at the configured load; the floor guards
    // against a degenerate all-zero trace from timer quantisation.
    const double interarrival_us = std::max(bottleneck_us / config.offered_load, 1e-3);
    util::rng arrivals_rng(config.seed);  // unused by deterministic arrivals
    return pipeline::simulate(stages, config.num_uses, {.interarrival_us = interarrival_us},
                              arrivals_rng);
}

}  // namespace

const char* to_string(path_kind kind) noexcept {
    switch (kind) {
        case path_kind::zf: return "ZF";
        case path_kind::mmse: return "MMSE";
        case path_kind::kbest: return "K-best";
        case path_kind::sphere: return "SD";
        case path_kind::sa: return "SA";
        case path_kind::hybrid_gs_ra: return "GS+RA";
    }
    return "?";
}

path_kind parse_path_kind(const std::string& name) {
    if (name == "ZF" || name == "zf") return path_kind::zf;
    if (name == "MMSE" || name == "mmse") return path_kind::mmse;
    if (name == "K-best" || name == "kbest") return path_kind::kbest;
    if (name == "SD" || name == "sphere") return path_kind::sphere;
    if (name == "SA" || name == "sa") return path_kind::sa;
    if (name == "GS+RA" || name == "gsra") return path_kind::hybrid_gs_ra;
    throw std::invalid_argument("unknown detection path: '" + name + "'");
}

double stage_trace::mean_us() const {
    metrics::running_stats stats;
    for (const double v : service_us) stats.add(v);
    return stats.mean();
}

double stage_trace::p50_us() const { return metrics::percentile(service_us, 50.0); }

double stage_trace::p99_us() const { return metrics::percentile(service_us, 99.0); }

std::vector<std::string> path_report::stage_names() const {
    std::vector<std::string> names;
    names.reserve(stages.size());
    for (const auto& trace : stages) names.push_back(trace.name);
    return names;
}

const path_report& link_report::path(path_kind kind) const {
    for (const auto& p : paths) {
        if (p.kind == kind) return p;
    }
    throw std::out_of_range(std::string("link_report: no such path: ") + to_string(kind));
}

link_report run_link_simulation(const link_config& config) {
    validate(config);

    // Path machinery, constructed once and shared read-only across workers.
    const detect::zf_detector zf;
    const detect::mmse_detector mmse;
    const detect::kbest_detector kbest(config.kbest_width);
    const detect::sphere_detector sphere;
    const solvers::simulated_annealing sa(config.sa);
    const solvers::greedy_search greedy;
    const anneal::annealer_emulator device;
    const hybrid::hybrid_solver hybrid(
        greedy, device,
        anneal::anneal_schedule::reverse(config.switch_pause_location, config.pause_time_us),
        config.hybrid_reads);
    // Indexed by path_kind value; the static_asserts pin the enum layout the
    // indexing relies on.
    static_assert(static_cast<std::size_t>(path_kind::zf) == 0);
    static_assert(static_cast<std::size_t>(path_kind::mmse) == 1);
    static_assert(static_cast<std::size_t>(path_kind::kbest) == 2);
    static_assert(static_cast<std::size_t>(path_kind::sphere) == 3);
    const detect::detector* conventional[] = {&zf, &mmse, &kbest, &sphere};

    const std::size_t num_paths = config.paths.size();
    const bool needs_qubo =
        std::any_of(config.paths.begin(), config.paths.end(), [](path_kind k) {
            return k == path_kind::sa || k == path_kind::hybrid_gs_ra;
        });
    std::vector<qubo::bit_vector> tx_bits(config.num_uses);
    std::vector<double> synth_us(config.num_uses, 0.0);
    std::vector<double> reduce_us(config.num_uses, 0.0);
    std::vector<cell_result> cells(config.num_uses * num_paths);

    const util::rng synth_base = util::rng(config.seed).derive(synth_stream_domain);
    const util::rng solve_base = util::rng(config.seed).derive(solve_stream_domain);

    util::pool_for_each(
        config.num_uses,
        [&](std::size_t u) {
            // Stage 1: synthesise the channel use (channel draw + modulation).
            util::rng synth_rng = synth_base.derive(u);
            wireless::mimo_config mimo;
            mimo.mod = config.mod;
            mimo.num_users = config.num_users;
            mimo.num_antennas = config.num_users;
            mimo.channel = config.channel;
            mimo.noise_variance =
                config.noiseless ? 0.0
                                 : wireless::noise_variance_for_snr(config.mod, config.num_users,
                                                                    config.snr_db);
            util::timer synth_clock;
            const auto instance = wireless::synthesize(synth_rng, mimo);
            synth_us[u] = synth_clock.elapsed_us();
            tx_bits[u] = instance.tx_bits;

            // Stage 2: QUBO reduction (QuAMax transform), shared by the
            // QUBO-based paths (skipped — trace stays zero — when only
            // conventional detectors are configured).
            detect::ml_qubo mq;
            if (needs_qubo) {
                util::timer reduce_clock;
                mq = detect::ml_to_qubo(instance);
                reduce_us[u] = reduce_clock.elapsed_us();
            }

            // Stage 3: every configured path detects the same use, each on
            // its own derived RNG stream.
            for (std::size_t p = 0; p < num_paths; ++p) {
                util::rng solve_rng = solve_base.derive(u * num_paths + p);
                cell_result& cell = cells[u * num_paths + p];
                switch (const path_kind kind = config.paths[p]) {
                    case path_kind::zf:
                    case path_kind::mmse:
                    case path_kind::kbest:
                    case path_kind::sphere: {
                        const util::timer clock;
                        const auto result =
                            conventional[static_cast<std::size_t>(kind)]->detect(instance);
                        cell.solve_us = clock.elapsed_us();
                        cell.bits = result.bits;
                        cell.ml_cost = result.ml_cost;
                        break;
                    }
                    case path_kind::sa: {
                        const util::timer clock;
                        const auto samples = sa.solve(mq.model, solve_rng);
                        cell.solve_us = clock.elapsed_us();
                        cell.bits = samples.best().bits;
                        cell.ml_cost = instance.ml_cost_bits(cell.bits);
                        break;
                    }
                    case path_kind::hybrid_gs_ra: {
                        const auto result = hybrid.solve(mq.model, solve_rng);
                        cell.classical_us = result.classical_us;
                        cell.quantum_us = result.quantum_us;
                        cell.bits = result.best_bits;
                        cell.ml_cost = instance.ml_cost_bits(cell.bits);
                        break;
                    }
                }
            }
        },
        config.num_threads);

    // Serial aggregation in use order: the merged statistics never depend on
    // the scheduling order above.
    link_report report;
    report.config = config;
    report.synthesis = {"synth", synth_us};
    report.reduction = {"qubo", reduce_us};
    report.paths.resize(num_paths);
    for (std::size_t p = 0; p < num_paths; ++p) {
        path_report& path = report.paths[p];
        path.kind = config.paths[p];
        path.name = to_string(path.kind);

        const bool hybrid_path = path.kind == path_kind::hybrid_gs_ra;
        const bool qubo_path = hybrid_path || path.kind == path_kind::sa;
        path.stages.push_back({"synth", synth_us});
        if (qubo_path) path.stages.push_back({"qubo", reduce_us});
        if (hybrid_path) {
            path.stages.push_back({"classical", std::vector<double>(config.num_uses, 0.0)});
            path.stages.push_back({"quantum", std::vector<double>(config.num_uses, 0.0)});
        } else {
            path.stages.push_back({qubo_path ? "solve" : "detect",
                                   std::vector<double>(config.num_uses, 0.0)});
        }

        for (std::size_t u = 0; u < config.num_uses; ++u) {
            const cell_result& cell = cells[u * num_paths + p];
            path.ber.add_frame(tx_bits[u], cell.bits);
            if (cell.bits == tx_bits[u]) ++path.exact_frames;
            path.sum_ml_cost += cell.ml_cost;
            if (hybrid_path) {
                path.stages[path.stages.size() - 2].service_us[u] = cell.classical_us;
                path.stages.back().service_us[u] = cell.quantum_us;
            } else {
                path.stages.back().service_us[u] = cell.solve_us;
            }
        }
        path.replay = replay_traces(path, config);
    }
    return report;
}

util::table summary_table(const link_report& report) {
    util::table t({"path", "BER", "bit errs", "exact uses", "svc mean us", "svc p50 us",
                   "svc p99 us", "thrpt use/ms", "p50 lat us", "p99 lat us"});
    for (const auto& path : report.paths) {
        // Per-path service: everything downstream of the shared synthesis
        // stage (for the hybrid that is qubo + classical + quantum).
        stage_trace service{"service", std::vector<double>(report.config.num_uses, 0.0)};
        for (std::size_t s = 1; s < path.stages.size(); ++s) {
            for (std::size_t u = 0; u < report.config.num_uses; ++u) {
                service.service_us[u] += path.stages[s].service_us[u];
            }
        }
        t.add(path.name, util::format_double(path.ber.rate(), 5), path.ber.errors(),
              path.exact_frames, service.mean_us(), service.p50_us(), service.p99_us(),
              path.replay.throughput_per_us * 1000.0, path.replay.p50_latency_us,
              path.replay.p99_latency_us);
    }
    return t;
}

}  // namespace hcq::link
