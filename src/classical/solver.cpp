#include "classical/solver.h"

#include <stdexcept>

#include "util/timer.h"

namespace hcq::solvers {

initial_state random_initializer::initialize(const qubo::qubo_model& q, util::rng& rng) const {
    const util::timer clock;
    initial_state out;
    out.bits = rng.bits(q.num_variables());
    out.energy = q.energy(out.bits);
    out.elapsed_us = clock.elapsed_us();
    return out;
}

fixed_initializer::fixed_initializer(qubo::bit_vector bits, std::string label)
    : bits_(std::move(bits)), label_(std::move(label)) {}

initial_state fixed_initializer::initialize(const qubo::qubo_model& q, util::rng&) const {
    if (bits_.size() != q.num_variables()) {
        throw std::invalid_argument("fixed_initializer: bit count mismatch");
    }
    initial_state out;
    out.bits = bits_;
    out.energy = q.energy(out.bits);
    out.elapsed_us = 0.0;
    return out;
}

}  // namespace hcq::solvers
