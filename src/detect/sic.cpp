#include "detect/sic.h"

#include <algorithm>
#include <span>
#include <vector>

#include "detect/scratch.h"
#include "linalg/decompose.h"
#include "util/timer.h"

namespace hcq::detect {

detection_result sic_detector::detect(const wireless::mimo_instance& instance) const {
    detect_scratch scratch;
    detection_result result;
    detect_into(instance, scratch, result);
    return result;
}

void sic_detector::detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                               detection_result& out) const {
    const util::timer clock;
    const std::size_t n = instance.num_users;

    linalg::cvec& residual = scratch.sic_residual;
    residual = instance.y;
    std::vector<std::size_t>& remaining = scratch.remaining;
    remaining.resize(n);
    for (std::size_t u = 0; u < n; ++u) remaining[u] = u;

    out.symbols.resize(n);
    std::uint8_t bits[8];  // bits_per_symbol is at most 6
    const std::size_t bps = wireless::bits_per_symbol(instance.mod);
    while (!remaining.empty()) {
        // Channel restricted to the remaining streams.
        linalg::cmat& h_sub = scratch.h_sub;
        h_sub.resize(instance.h.rows(), remaining.size());
        for (std::size_t r = 0; r < instance.h.rows(); ++r) {
            for (std::size_t c = 0; c < remaining.size(); ++c) {
                h_sub(r, c) = instance.h(r, remaining[c]);
            }
        }
        linalg::least_squares_into(h_sub, residual, scratch.ls, scratch.soft);
        const linalg::cvec& soft = scratch.soft;

        // Detect the stream with the largest post-equalisation confidence
        // (distance from the decision boundary approximated by magnitude).
        std::size_t pick = 0;
        double best_metric = -1.0;
        for (std::size_t c = 0; c < remaining.size(); ++c) {
            const double metric = std::abs(soft[c]);
            if (metric > best_metric) {
                best_metric = metric;
                pick = c;
            }
        }
        const std::size_t user = remaining[pick];
        wireless::demodulate_symbol_into(instance.mod, soft[pick], bits);
        const linalg::cxd symbol = wireless::modulate_symbol(
            instance.mod, std::span<const std::uint8_t>(bits, bps));
        out.symbols[user] = symbol;

        // Subtract the detected stream's contribution.
        for (std::size_t r = 0; r < instance.h.rows(); ++r) {
            residual[r] -= instance.h(r, user) * symbol;
        }
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    wireless::demodulate_into(instance.mod, out.symbols, out.bits);
    out.ml_cost = instance.ml_cost(out.symbols, scratch.residual);
    out.nodes_visited = 0;
    out.elapsed_us = clock.elapsed_us();
}

}  // namespace hcq::detect
