// Tests for hcq::util — RNG determinism and distributions, thread pool,
// CLI parsing, table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using hcq::util::bench_scale;
using hcq::util::flag_set;
using hcq::util::rng;

TEST(Rng, SameSeedSameStream) {
    rng a(42);
    rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    rng a(1);
    rng b(2);
    int differences = 0;
    for (int i = 0; i < 32; ++i) {
        if (a() != b()) ++differences;
    }
    EXPECT_GT(differences, 0);
}

TEST(Rng, DeriveIsDeterministic) {
    const rng base(7);
    rng a = base.derive(3);
    rng b = base.derive(3);
    EXPECT_EQ(a(), b());
}

TEST(Rng, DeriveStreamsAreDistinct) {
    const rng base(7);
    rng a = base.derive(1);
    rng b = base.derive(2);
    int differences = 0;
    for (int i = 0; i < 32; ++i) {
        if (a() != b()) ++differences;
    }
    EXPECT_GT(differences, 0);
}

TEST(Rng, UniformWithinBounds) {
    rng r(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected) {
    rng r(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformRejectsInvertedRange) {
    rng r(3);
    EXPECT_THROW((void)r.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRange) {
    rng r(5);
    std::set<std::size_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(r.uniform_index(4));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_THROW((void)r.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
    rng r(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(r.uniform_int(-1, 1));
    EXPECT_TRUE(seen.count(-1));
    EXPECT_TRUE(seen.count(0));
    EXPECT_TRUE(seen.count(1));
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
    rng r(11);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
    rng r(1);
    EXPECT_THROW((void)r.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliProbability) {
    rng r(13);
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) ones += r.bernoulli(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.25, 0.02);
    EXPECT_THROW((void)r.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, BitsAreBalanced) {
    rng r(17);
    const auto bits = r.bits(20000);
    std::size_t ones = 0;
    for (const auto b : bits) {
        ASSERT_LE(b, 1);
        ones += b;
    }
    EXPECT_NEAR(static_cast<double>(ones) / bits.size(), 0.5, 0.02);
}

TEST(Rng, AngleWithinCircle) {
    rng r(19);
    for (int i = 0; i < 100; ++i) {
        const double a = r.angle();
        EXPECT_GE(a, 0.0);
        EXPECT_LT(a, 6.2831853072);
    }
}

TEST(Rng, ShufflePreservesElements) {
    rng r(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto w = v;
    r.shuffle(w);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(w.begin(), w.end());
    EXPECT_EQ(a, b);
}

TEST(ThreadPool, ExecutesAllTasks) {
    hcq::util::thread_pool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
    hcq::util::thread_pool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, StopDrainsQueuedTasksAndIsIdempotent) {
    hcq::util::thread_pool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.stop();
    EXPECT_EQ(counter.load(), 50);
    EXPECT_EQ(pool.size(), 2u);  // size still reports the configured width
    pool.stop();                 // second stop is a no-op
}

TEST(ThreadPool, SubmitAfterStopThrowsInsteadOfLosingTheTask) {
    hcq::util::thread_pool pool(2);
    pool.stop();
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, TaskExceptionIsRethrownAtWaitIdleAndPoolSurvives) {
    hcq::util::thread_pool pool(2);
    std::atomic<int> counter{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    for (int i = 0; i < 20; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The pool keeps working after a task threw: workers were not killed and
    // the error state was consumed by the previous wait.
    for (int i = 0; i < 20; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 40);
}

TEST(ThreadPool, OnlyFirstOfManyTaskExceptionsSurfaces) {
    hcq::util::thread_pool pool(4);
    for (int i = 0; i < 16; ++i) {
        pool.submit([] { throw std::runtime_error("boom"); });
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    pool.wait_idle();  // error consumed; no tasks left
}

TEST(ThreadPool, SnapshotCountsQueuedAndInFlightConsistently) {
    hcq::util::thread_pool pool(2);
    std::atomic<int> started{0};
    std::atomic<bool> release{false};
    // Park both workers so the next submissions provably sit in the queue.
    for (int i = 0; i < 2; ++i) {
        pool.submit([&] {
            started.fetch_add(1);
            while (!release.load()) std::this_thread::yield();
        });
    }
    while (started.load() < 2) std::this_thread::yield();
    for (int i = 0; i < 3; ++i) pool.submit([] {});
    const auto snap = pool.snapshot();
    EXPECT_EQ(snap.in_flight, 2u);
    EXPECT_EQ(snap.queued, 3u);
    EXPECT_EQ(pool.in_flight(), 2u);
    EXPECT_EQ(pool.queued(), 3u);
    release.store(true);
    pool.wait_idle();
    const auto idle = pool.snapshot();
    EXPECT_EQ(idle.queued, 0u);
    EXPECT_EQ(idle.in_flight, 0u);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
    std::vector<std::atomic<int>> hits(257);
    hcq::util::parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroAndSingle) {
    int calls = 0;
    hcq::util::parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    hcq::util::parallel_for(1, [&](std::size_t) { ++calls; }, 8);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesFirstExceptionToCaller) {
    EXPECT_THROW(hcq::util::parallel_for(
                     128,
                     [](std::size_t i) {
                         if (i == 37) throw std::runtime_error("iteration failed");
                     },
                     4),
                 std::runtime_error);
    // Serial degenerate path throws too.
    EXPECT_THROW(hcq::util::parallel_for(
                     2, [](std::size_t) { throw std::runtime_error("x"); }, 1),
                 std::runtime_error);
}

flag_set parse(std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return flag_set(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
    const auto flags = parse({"--reads=100", "--sp=0.41"});
    EXPECT_EQ(flags.get_int("reads", 0), 100);
    EXPECT_DOUBLE_EQ(flags.get_double("sp", 0.0), 0.41);
}

TEST(Cli, ParsesSpaceForm) {
    const auto flags = parse({"--reads", "250"});
    EXPECT_EQ(flags.get_int("reads", 0), 250);
}

TEST(Cli, BareBooleanFlag) {
    const auto flags = parse({"--verbose"});
    EXPECT_TRUE(flags.get_bool("verbose", false));
    EXPECT_FALSE(flags.get_bool("quiet", false));
}

TEST(Cli, FallbacksWhenMissing) {
    const auto flags = parse({});
    EXPECT_EQ(flags.get_int("reads", 7), 7);
    EXPECT_EQ(flags.get_string("mode", "auto"), "auto");
}

TEST(Cli, PositionalCollected) {
    const auto flags = parse({"run", "--x=1", "fast"});
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "run");
    EXPECT_EQ(flags.positional()[1], "fast");
}

TEST(Cli, RejectsMalformedNumbers) {
    const auto flags = parse({"--reads=abc"});
    EXPECT_THROW((void)flags.get_int("reads", 0), std::invalid_argument);
    EXPECT_THROW((void)flags.get_double("reads", 0.0), std::invalid_argument);
    EXPECT_THROW((void)flags.get_bool("reads", false), std::invalid_argument);
}

TEST(Cli, EnvironmentFallback) {
    ::setenv("HCQ_TEST_ENV_FLAG", "41", 1);
    const auto flags = parse({});
    EXPECT_EQ(flags.get_int("test-env-flag", 0), 41);
    ::unsetenv("HCQ_TEST_ENV_FLAG");
}

TEST(Cli, CommandLineBeatsEnvironment) {
    ::setenv("HCQ_PRIORITY", "1", 1);
    const auto flags = parse({"--priority=2"});
    EXPECT_EQ(flags.get_int("priority", 0), 2);
    ::unsetenv("HCQ_PRIORITY");
}

TEST(Cli, ScalePresets) {
    EXPECT_EQ(hcq::util::parse_scale(parse({})), bench_scale::quick);
    EXPECT_EQ(hcq::util::parse_scale(parse({"--scale=full"})), bench_scale::full);
    EXPECT_EQ(hcq::util::parse_scale(parse({"--scale=smoke"})), bench_scale::smoke);
    EXPECT_THROW((void)hcq::util::parse_scale(parse({"--scale=huge"})), std::invalid_argument);
    EXPECT_LT(hcq::util::scale_factor(bench_scale::smoke),
              hcq::util::scale_factor(bench_scale::quick));
    EXPECT_LT(hcq::util::scale_factor(bench_scale::quick),
              hcq::util::scale_factor(bench_scale::full));
    EXPECT_STREQ(hcq::util::to_string(bench_scale::full), "full");
}

TEST(Table, AlignsAndCounts) {
    hcq::util::table t({"name", "value"});
    t.add("alpha", 1.5);
    t.add("b", 22);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);
    std::ostringstream os;
    t.print(os);
    const auto text = os.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(Table, CsvOutput) {
    hcq::util::table t({"a", "b"});
    t.add(1, 2);
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, JsonOutput) {
    hcq::util::table t({"path", "BER", "note"});
    t.add("zf", 0.125, "a \"quoted\" cell");
    t.add("sa", 0, "plain");
    std::ostringstream os;
    t.print_json(os);
    const auto text = os.str();
    // Numeric cells unquoted, text cells quoted and escaped.
    EXPECT_NE(text.find("\"BER\": 0.125"), std::string::npos);
    EXPECT_NE(text.find("\"path\": \"zf\""), std::string::npos);
    EXPECT_NE(text.find("a \\\"quoted\\\" cell"), std::string::npos);
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text[text.size() - 2], ']');  // trailing newline after the array
}

TEST(Table, JsonNumericDetectionIsStrict) {
    // Cells that strtod would accept but JSON forbids must stay quoted.
    hcq::util::table t({"a", "b", "c", "d", "e", "f"});
    t.add("0x1A", "1.", ".5", "01", "-0.5", "1e-3");
    std::ostringstream os;
    t.print_json(os);
    const auto text = os.str();
    EXPECT_NE(text.find("\"a\": \"0x1A\""), std::string::npos);
    EXPECT_NE(text.find("\"b\": \"1.\""), std::string::npos);
    EXPECT_NE(text.find("\"c\": \".5\""), std::string::npos);
    EXPECT_NE(text.find("\"d\": \"01\""), std::string::npos);
    EXPECT_NE(text.find("\"e\": -0.5"), std::string::npos);
    EXPECT_NE(text.find("\"f\": 1e-3"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
    hcq::util::table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(hcq::util::table({}), std::invalid_argument);
}

TEST(Table, FormatDouble) {
    EXPECT_EQ(hcq::util::format_double(1.5), "1.5");
    EXPECT_EQ(hcq::util::format_double(2.0), "2");
    EXPECT_EQ(hcq::util::format_double(0.0), "0");
    EXPECT_EQ(hcq::util::format_double(std::nan("")), "nan");
    EXPECT_EQ(hcq::util::format_double(std::numeric_limits<double>::infinity()), "inf");
}

TEST(Timer, MeasuresNonNegativeTime) {
    hcq::util::timer t;
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
    EXPECT_GE(t.elapsed_us(), 0.0);
    EXPECT_GE(t.elapsed_s(), 0.0);
    t.reset();
    EXPECT_GE(t.elapsed_us(), 0.0);
}

}  // namespace
