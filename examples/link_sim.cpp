// End-to-end link simulation: a stream of channel uses flowing through
// wireless synthesis -> QUBO reduction -> any set of registered detection
// paths side by side, with measured per-stage wall times replayed through
// the Figure-2 tandem-queue pipeline under bounded stage buffers and a
// selectable backpressure policy.
//
// This is the system view the figure benches do not give: BER per detector
// on the same uses, measured (not synthetic) stage service times, and the
// sustained throughput / ARQ-budget latency / drop rate each detection path
// would deliver at the configured offered load.
//
// The stream aggregates in constant memory (fixed-size digests + bounded
// replay samples; see link/link_sim.h), so million-use runs are routine:
//     ./examples/link_sim --uses 1000000 --paths zf,sa
//
// Paths are spec strings resolved through paths::registry — run with --help
// for the full listing of kinds and their keys.  Per-path knobs ride inside
// the spec: `--paths zf,kbest:width=16,gsra:reads=40,sp=0.35` is three
// paths (a key=value segment always continues the preceding spec), and
// `--paths kxra:k=4` serves the hybrid stream with 4 round-robin annealers.
//
// The ARQ loop closes with --arq: frames with wrong detected bits are
// re-solved on fresh derived-RNG channel uses up to max_retx times (residual
// FER / retx rate, bit-identical at any thread count), and the measured
// traces replay CLOSED loop — failures re-enter the chain as retransmission
// load, judged against the deadline (deadline_us=auto uses the open-loop
// replay's p99):
//     ./examples/link_sim --paths gsra,kxra:k=4 --arq deadline_us=auto,max_retx=2
//
// Realistic channels ride the --channel spec (wireless/channel_spec.h):
// time-correlated Jakes/Watterson fading, imperfect CSI, and a per-spec SNR
// override.  At low Doppler errors arrive in bursts and ARQ retransmissions
// land inside the fade that failed them:
//     ./examples/link_sim --channel jakes:doppler_hz=5 --arq
//     ./examples/link_sim --channel watterson:taps=2,spread_hz=1,est_err=0.05
//
// The coded link closes the soft-information chain with --fec
// (fec/code_spec.h): every detection path emits per-bit LLRs
// (paths::detection_path::soft_output), frames are convolutionally encoded
// and block-interleaved across channel uses, and a soft Viterbi decoder
// turns the LLRs into coded FER / information BER beside the raw detection
// BER.  With --arq the retransmission loop runs per coded frame with chase
// combining (LLRs accumulate across attempts before re-decoding):
//     ./examples/link_sim --fec k7 --channel jakes:doppler_hz=5 --arq
//     ./examples/link_sim --fec k5:interleave=8x8 --paths zf,kbest
//
// Usage: ./examples/link_sim
//   [--uses=120] [--users=4] [--mod=qam16] [--snr=16] [--noiseless]
//   [--channel=rayleigh|random-phase|jakes:...|watterson:...]
//   [--fec=k3|k5|k7[:rate=1/2,interleave=RxC]]
//   [--paths=zf,kbest,sphere,sa,gsra] [--load=0.9] [--threads=0] [--seed=1]
//   [--buffer=256] [--policy=block|drop-oldest|drop-newest]
//   [--arq deadline_us=<auto|none|us>,max_retx=<n>]
//   [--csv] [--help]
#include <algorithm>
#include <iostream>

#include "fec/code_spec.h"
#include "link/link_sim.h"
#include "paths/registry.h"
#include "util/cli.h"

int main(int argc, char** argv) try {
    using namespace hcq;
    const util::flag_set flags(argc, argv);

    if (flags.get_bool("help", false)) {
        std::cout << "link_sim — end-to-end link simulation "
                     "(channel use -> QUBO -> solve -> BER)\n\n"
                     "flags: --uses=120 --users=4 --mod=qam16 --snr=16 --noiseless\n"
                     "       --paths=zf,kbest,sphere,sa,gsra --load=0.9 --threads=0\n"
                     "       --seed=1 --buffer=256 (replay slots per stage, 0 = unbounded)\n"
                     "       --policy=block|drop-oldest|drop-newest --csv\n"
                     "       --channel <spec>  realistic channel: correlated fading,\n"
                     "         multipath, imperfect CSI (unset = the default i.i.d.\n"
                     "         rayleigh draw, bit-for-bit)\n"
                     "       --arq deadline_us=<auto|none|us>,max_retx=<n>\n"
                     "         closes the retransmission loop: wrong frames re-solve on\n"
                     "         fresh channel uses; the trace replay feeds failures back as\n"
                     "         retransmission load (deadline_us=auto = open-loop p99)\n"
                     "       --fec <spec>  coded link: paths emit per-bit LLRs\n"
                     "         (soft_output), frames are convolutionally encoded and\n"
                     "         interleaved across uses, soft Viterbi decodes them; adds\n"
                     "         coded FER / info BER columns, and --arq combines LLRs\n"
                     "         across retransmissions (chase combining)\n\n"
                  << wireless::channel_spec::help() << "\n"
                  << fec::code_spec::help() << "\n"
                  << paths::registry::help();
        return 0;
    }

    // These pre-registry flags moved into the gsra spec; reject them loudly
    // rather than silently running with different knobs than requested.
    for (const char* moved : {"reads", "sp"}) {
        if (flags.has(moved)) {
            std::cerr << "link_sim: --" << moved
                      << " moved into the path spec: use --paths "
                         "gsra:reads=40,sp=0.35 (see --help)\n";
            return 2;
        }
    }

    link::link_config config;
    config.num_uses = static_cast<std::size_t>(flags.get_int("uses", 120));
    config.num_users = static_cast<std::size_t>(flags.get_int("users", 4));
    config.mod = wireless::parse_modulation(flags.get_string("mod", "qam16"));
    config.snr_db = flags.get_double("snr", 16.0);
    config.noiseless = flags.get_bool("noiseless", false);
    if (config.noiseless) config.channel = wireless::channel_model::unit_gain_random_phase;
    if (flags.has("channel")) {
        config.channel_spec = wireless::channel_spec::parse(flags.get_string("channel", ""));
    }
    if (flags.has("paths")) config.paths = paths::parse_spec_list(flags.get_string("paths", ""));
    config.offered_load = flags.get_double("load", 0.9);
    config.num_threads = static_cast<std::size_t>(flags.get_int("threads", 0));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const auto buffer = static_cast<std::size_t>(flags.get_int("buffer", 256));
    config.buffer_capacity = buffer == 0 ? pipeline::unbounded_capacity : buffer;
    config.policy = pipeline::parse_backpressure(flags.get_string("policy", "block"));
    if (flags.has("arq")) config.arq = arq::parse_arq(flags.get_string("arq", ""));
    if (flags.has("fec")) {
        // A bare `--fec` parses to "true" (util::flag_set); it selects the
        // default k7 code, same idiom as a bare `--arq`.
        const std::string spec = flags.get_string("fec", "k7");
        config.fec = fec::code_spec::parse(spec.empty() || spec == "true" ? "k7" : spec);
    }
    const bool csv = flags.get_bool("csv", false);

    std::cout << "== end-to-end link simulation ==\n"
              << config.num_uses << " channel uses, " << config.num_users << "x"
              << config.num_users << " " << wireless::to_string(config.mod) << ", "
              << (config.channel_spec
                      ? "channel " + config.channel_spec->to_string() +
                            (config.noiseless ? " (noiseless)" : "")
                      : config.noiseless
                          ? std::string("noiseless random-phase channel (paper corpus)")
                          : "Rayleigh + AWGN at " + util::format_double(config.snr_db, 1) +
                                " dB")
              << ", offered load " << util::format_double(config.offered_load, 2) << "\n"
              << "replay buffers: "
              << (config.buffer_capacity == pipeline::unbounded_capacity
                      ? std::string("unbounded")
                      : std::to_string(config.buffer_capacity) + " slots/stage, " +
                            pipeline::to_string(config.policy))
              << "; seed " << config.seed << ", threads "
              << (config.num_threads == 0 ? std::string("hw") : std::to_string(config.num_threads))
              << "\n";
    if (config.fec) {
        std::cout << "coded link: " << config.fec->to_string() << " ("
                  << config.fec->info_bits() << " info bits -> " << config.fec->coded_bits()
                  << " coded bits/frame; paths emit LLRs, soft Viterbi decodes"
                  << (config.arq ? "; ARQ chase-combines LLRs across attempts" : "")
                  << ")\n";
    }
    if (config.arq) {
        std::cout << "ARQ loop: " << config.arq->to_string()
                  << " (residual FER / retx rate are bit-identical at any thread\n"
                     "count; miss rate / goodput come from the closed-loop trace replay)\n";
    }
    std::cout << "BER/exact-use statistics are bit-identical at any thread count\n\n";

    const auto report = link::run_link_simulation(config);

    const auto summary = link::summary_table(report);
    if (csv) {
        summary.print_csv(std::cout);
    } else {
        summary.print(std::cout);
    }
    std::cout << "\nsvc = measured per-use service downstream of channel synthesis;\n"
                 "thrpt / latency / drop rate / peak queue come from replaying the\n"
                 "measured stage traces through the Figure-2 tandem queue at the\n"
                 "offered load, under the configured buffers and backpressure policy.\n";

    // Per-path ARQ detail: the deterministic retransmission counters and
    // the closed-loop (feedback) replay's view of the deadline.
    if (config.arq) {
        util::table detail({"path", "deadline us", "attempts", "retx", "corrected",
                            "resid errs", "retx svc mean us", "misses", "delivered",
                            "exhausted", "lost to drops", "goodput use/ms"});
        for (const auto& path : report.paths) {
            const auto& ar = *path.arq;
            detail.add(path.name,
                       ar.replay_stats.resolved_deadline_us == arq::no_deadline
                           ? std::string("none")
                           : util::format_double(ar.replay_stats.resolved_deadline_us),
                       ar.counters.attempts, ar.counters.retransmissions(),
                       ar.counters.corrected_frames, ar.counters.residual_errors,
                       ar.retx_service.mean_us(), ar.replay_stats.deadline_misses,
                       ar.replay_stats.delivered, ar.replay_stats.exhausted,
                       ar.replay_stats.lost_to_drops,
                       ar.replay_stats.goodput_per_us * 1000.0);
        }
        std::cout << "\nARQ loop detail (attempts/retx/corrected/resid are exact and\n"
                     "thread-invariant; misses/delivered/goodput replay the measured\n"
                     "traces closed loop, retransmissions re-entering the chain):\n";
        if (csv) {
            detail.print_csv(std::cout);
        } else {
            detail.print(std::cout);
        }
    }

    // Detailed measured-trace replay for hybrid structures (paths reporting
    // a split "quantum" stage), when present — includes per-stage
    // utilisation, queue occupancy, and drops.
    for (const auto& path : report.paths) {
        const auto names = path.stage_names();
        if (std::find(names.begin(), names.end(), "quantum") == names.end()) continue;
        std::cout << "\n" << path.name << " (" << path.spec
                  << ") measured-trace pipeline replay (per stage):\n";
        const auto detail = pipeline::summary_table(path.replay, names);
        if (csv) {
            detail.print_csv(std::cout);
        } else {
            detail.print(std::cout);
        }
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "link_sim: error: " << e.what() << "\n"
              << "run ./link_sim --help for the flag and detection-path listing\n";
    return 2;
}
