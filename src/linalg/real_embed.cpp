// hcq-hot-path: steady-state code in this file must not allocate — reuse
// workspace scratch (enforced by the hot-path-alloc lint rule).
#include "linalg/real_embed.h"

#include <stdexcept>

namespace hcq::linalg {

rmat real_embedding(const cmat& h) {
    const std::size_t m = h.rows();
    const std::size_t n = h.cols();
    rmat out(2 * m, 2 * n);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            const double re = h(r, c).real();
            const double im = h(r, c).imag();
            out(r, c) = re;
            out(r, n + c) = -im;
            out(m + r, c) = im;
            out(m + r, n + c) = re;
        }
    }
    return out;
}

rvec real_embedding(const cvec& v) {
    const std::size_t m = v.size();
    rvec out(2 * m);
    for (std::size_t i = 0; i < m; ++i) {
        out[i] = v[i].real();
        out[m + i] = v[i].imag();
    }
    return out;
}

cvec complex_from_embedding(const rvec& v) {
    if (v.size() % 2 != 0) {
        throw std::invalid_argument("complex_from_embedding: odd-sized vector");
    }
    const std::size_t m = v.size() / 2;
    cvec out(m);
    for (std::size_t i = 0; i < m; ++i) out[i] = cxd(v[i], v[m + i]);
    return out;
}

void real_embedding_into(const cmat& h, rmat& out) {
    const std::size_t m = h.rows();
    const std::size_t n = h.cols();
    out.resize(2 * m, 2 * n);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            const double re = h(r, c).real();
            const double im = h(r, c).imag();
            out(r, c) = re;
            out(r, n + c) = -im;
            out(m + r, c) = im;
            out(m + r, n + c) = re;
        }
    }
}

void real_embedding_into(const cvec& v, rvec& out) {
    const std::size_t m = v.size();
    out.resize(2 * m);
    for (std::size_t i = 0; i < m; ++i) {
        out[i] = v[i].real();
        out[m + i] = v[i].imag();
    }
}

void complex_from_embedding_into(const rvec& v, cvec& out) {
    if (v.size() % 2 != 0) {
        throw std::invalid_argument("complex_from_embedding: odd-sized vector");
    }
    const std::size_t m = v.size() / 2;
    out.resize(m);
    for (std::size_t i = 0; i < m; ++i) out[i] = cxd(v[i], v[m + i]);
}

}  // namespace hcq::linalg
