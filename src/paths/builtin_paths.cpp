// The built-in detection paths: adapters putting the conventional detectors
// (detect/), the classical QUBO heuristics (classical/), and the paper's
// hybrid GS+RA structure (core/hybrid_solver.h) behind the one
// detection_path interface.  Registered lazily by registry.cpp through
// detail::register_builtin_paths() — see the registry header for why.
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

#include <algorithm>

#include "classical/greedy.h"
#include "classical/parallel_tempering.h"
#include "classical/simulated_annealing.h"
#include "classical/tabu.h"
#include "core/parallel_runner.h"
#include "core/schedule.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/sic.h"
#include "detect/sphere.h"
#include "linalg/decompose.h"
#include "paths/registry.h"
#include "paths/workspace.h"
#include "util/timer.h"
#include "wireless/soft.h"

namespace hcq::paths {
namespace {

/// Reshapes a reused result's stage list without churning its strings: the
/// built-in stage names all fit in the small-string buffer, so re-assigning
/// them never allocates.
void set_stage(path_result& out, std::size_t index, const char* name, double service_us) {
    out.stages[index].name = name;
    out.stages[index].service_us = service_us;
}

void check_block_sizes(std::span<const path_context> ctxs, std::span<path_result> out) {
    if (ctxs.size() != out.size()) {
        throw std::invalid_argument("detection_path::run_block: span length mismatch");
    }
}

/// Guard for QUBO-consuming paths: the caller promised a shared reduction
/// whenever any configured path reports needs_qubo().
void require_qubo(const path_context& ctx) {
    if (ctx.reduced == nullptr) {
        throw std::invalid_argument(
            "paths: path_context.reduced is null but the path needs the QUBO reduction");
    }
}

/// Post-equalisation max-log soft output of the linear detection paths:
/// equalise through the normal equations (H^H H + load I)^-1 H^H y — load 0
/// is zero forcing — and scale each stream's max-log metric by the
/// per-stream noise enhancement sigma^2 [(H^H H + load I)^-1]_uu.  The
/// effective sigma^2 is floored (wireless::llr_noise_floor) so a noiseless
/// instance yields large-but-finite confidences, and every LLR is clamped
/// by equalized_llrs_into.  Deterministic, workspace-independent, and
/// harden(llrs) reproduces the linear detector's hard decisions exactly:
/// per symbol, the bit pattern minimising the max-log metric IS the nearest
/// constellation point the detector slices to.
void linear_soft_output(const wireless::mimo_instance& inst, double load, path_result& out) {
    linalg::cmat a;
    linalg::gram_into(inst.h, a);
    for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += load;
    const auto a_inv = linalg::inverse(a);
    linalg::cvec hy;
    linalg::herm_matvec_into(inst.h, inst.y, hy);
    const linalg::cvec equalized = a_inv * hy;
    const double sigma_sq = std::max(inst.noise_variance, wireless::llr_noise_floor);
    std::vector<double> stream_nv(inst.num_users);
    for (std::size_t u = 0; u < inst.num_users; ++u) {
        stream_nv[u] = sigma_sq * std::max(a_inv(u, u).real(), 1e-12);
    }
    wireless::equalized_llrs_into(inst, equalized, stream_nv, out.llrs);
}

/// A conventional detector as a path: one "detect" stage straight on y and
/// H, no QUBO, no randomness, no solver form.  `soft` selects the
/// soft_output method: post-equalisation max-log for the linear detectors,
/// single-bit-flip ML recost for the tree searches.
class detector_path final : public detection_path {
public:
    enum class soft_kind { zf_equalized, mmse_equalized, recost };

    detector_path(std::shared_ptr<const detect::detector> det, std::string display_name,
                  path_spec spec, soft_kind soft = soft_kind::recost)
        : det_(std::move(det)), name_(std::move(display_name)), spec_(std::move(spec)),
          soft_(soft) {}

    [[nodiscard]] path_result run(const path_context& ctx) const override {
        path_result out;
        run_cell(ctx, out);
        return out;
    }
    void run_block(std::span<const path_context> ctxs, std::span<path_result> out) const override {
        check_block_sizes(ctxs, out);
        for (std::size_t i = 0; i < ctxs.size(); ++i) run_cell(ctxs[i], out[i]);
    }
    void soft_output(const path_context& ctx, path_result& out) const override {
        switch (soft_) {
            case soft_kind::zf_equalized:
                linear_soft_output(ctx.instance, 0.0, out);
                return;
            case soft_kind::mmse_equalized:
                linear_soft_output(ctx.instance,
                                   ctx.instance.noise_variance /
                                       wireless::mean_symbol_energy(ctx.instance.mod),
                                   out);
                return;
            case soft_kind::recost:
                wireless::flip_recost_llrs_into(ctx.instance, out.bits, out.llrs);
                return;
        }
    }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] path_spec spec() const override { return spec_; }
    [[nodiscard]] std::vector<std::string> stage_names() const override { return {"detect"}; }

private:
    void run_cell(const path_context& ctx, path_result& out) const {
        const util::timer clock;
        if (ctx.ws != nullptr) {
            detect::detection_result& detected = ctx.ws->detect.result;
            det_->detect_into(ctx.instance, ctx.ws->detect, detected);
            out.bits = detected.bits;  // copy-assign: reuses out's capacity
            out.ml_cost = detected.ml_cost;
        } else {
            auto detected = det_->detect(ctx.instance);
            out.bits = std::move(detected.bits);
            out.ml_cost = detected.ml_cost;
        }
        out.stages.resize(1);
        set_stage(out, 0, "detect", clock.elapsed_us());
    }

    std::shared_ptr<const detect::detector> det_;
    std::string name_;
    path_spec spec_;
    soft_kind soft_;
};

/// A classical QUBO heuristic as a path: one "solve" stage on the shared
/// reduction; the detected word is the best sample, costed against the
/// instance.  Doubles as a sweep solver through as_solver().
class qubo_solver_path final : public detection_path {
public:
    qubo_solver_path(std::shared_ptr<const solvers::solver> solver, path_spec spec)
        : solver_(std::move(solver)), spec_(std::move(spec)) {}

    [[nodiscard]] path_result run(const path_context& ctx) const override {
        path_result out;
        run_cell(ctx, out);
        return out;
    }
    void run_block(std::span<const path_context> ctxs, std::span<path_result> out) const override {
        check_block_sizes(ctxs, out);
        for (std::size_t i = 0; i < ctxs.size(); ++i) run_cell(ctxs[i], out[i]);
    }
    /// Energy-gap soft output: the single-bit-flip ML recost of the
    /// detected word — by the transform round-trip invariant these gaps
    /// equal the QUBO flip deltas at the solver's answer, and unlike a
    /// candidate-list method they exist identically with and without a
    /// workspace (solve_best_into keeps no sample set).
    void soft_output(const path_context& ctx, path_result& out) const override {
        wireless::flip_recost_llrs_into(ctx.instance, out.bits, out.llrs);
    }
    [[nodiscard]] std::string name() const override { return solver_->name(); }
    [[nodiscard]] path_spec spec() const override { return spec_; }
    [[nodiscard]] bool needs_qubo() const noexcept override { return true; }
    [[nodiscard]] std::vector<std::string> stage_names() const override { return {"solve"}; }
    [[nodiscard]] std::shared_ptr<const solvers::solver> as_solver() const override {
        return solver_;
    }

private:
    void run_cell(const path_context& ctx, path_result& out) const {
        require_qubo(ctx);
        const util::timer clock;
        double solve_us = 0.0;
        if (ctx.ws != nullptr) {
            solver_->solve_best_into(ctx.reduced->model, ctx.rng, ctx.ws->solve, out.bits);
            solve_us = clock.elapsed_us();
            out.ml_cost = ctx.instance.ml_cost_bits(out.bits, ctx.ws->detect.symbols,
                                                    ctx.ws->detect.residual);
        } else {
            const auto samples = solver_->solve(ctx.reduced->model, ctx.rng);
            solve_us = clock.elapsed_us();
            out.bits = samples.best().bits;
            out.ml_cost = ctx.instance.ml_cost_bits(out.bits);
        }
        out.stages.resize(1);
        set_stage(out, 0, "solve", solve_us);
    }

    std::shared_ptr<const solvers::solver> solver_;
    path_spec spec_;
};

/// The paper's hybrid structure as a path: "classical" (measured initialiser
/// wall time) and "quantum" (programmed annealer occupancy: schedule
/// duration x reads) stages.  Owns its initialiser and device through the
/// owning hybrid_solver_adapter, so the path — and any solver handed out by
/// as_solver() — is safe to construct from temporaries and to outlive this
/// translation unit's statics.
///
/// `devices` > 1 is the paper's §5 multi-device scaling lever (registry kind
/// "kxra"): K interchangeable annealer devices round-robin one stream.  The
/// emulated devices are identical and every (use, path) cell draws from the
/// same derived RNG stream, so detection statistics are bit-identical to the
/// single-device "gsra" with the same knobs — only the pipeline replay
/// differs, where the quantum stage runs on K round-robin servers.
///
/// `init` is the paper's §5 initialiser choice: `gs` (the default greedy
/// search — byte-for-byte the historical behaviour), `tabu` (the classical
/// solver D-Wave hybridises with, doubling as an initialiser), or `kbest`
/// (an application-specific tree-search initialiser: the K-best detector,
/// width 8, run on the channel use itself and fed to the reverse anneal as
/// a fixed initial state).  `kbest` consumes the MIMO instance, so it has
/// no pure-QUBO solver form — as_solver() returns nullptr for it.
class gs_ra_path final : public detection_path {
public:
    enum class init_kind { gs, tabu, kbest };

    /// Parses an `init=` spec value; throws listing the accepted names.
    static init_kind parse_init(const path_spec& spec) {
        const std::string* value = spec.find("init");
        if (value == nullptr || *value == "gs") return init_kind::gs;
        if (*value == "tabu") return init_kind::tabu;
        if (*value == "kbest") return init_kind::kbest;
        throw std::invalid_argument("paths: " + spec.kind + ": bad init value '" + *value +
                                    "' (expected gs, tabu, or kbest)");
    }

    static const char* to_string(init_kind init) {
        switch (init) {
            case init_kind::gs: return "gs";
            case init_kind::tabu: return "tabu";
            case init_kind::kbest: return "kbest";
        }
        return "?";
    }

    gs_ra_path(init_kind init, std::size_t reads, double sp, double pause_us,
               std::size_t devices, path_spec spec)
        : schedule_(anneal::anneal_schedule::reverse(sp, pause_us)),
          reads_(reads),
          devices_(devices),
          spec_(std::move(spec)) {
        auto device = std::make_shared<const anneal::annealer_emulator>();
        switch (init) {
            case init_kind::gs:
                adapter_ = std::make_shared<const hybrid::hybrid_solver_adapter>(
                    std::make_shared<const solvers::greedy_search>(), std::move(device),
                    schedule_, reads_);
                break;
            case init_kind::tabu:
                adapter_ = std::make_shared<const hybrid::hybrid_solver_adapter>(
                    std::make_shared<const solvers::tabu_search>(), std::move(device),
                    schedule_, reads_);
                break;
            case init_kind::kbest:
                detector_ = std::make_shared<const detect::kbest_detector>(8);
                device_ = std::move(device);
                break;
        }
    }

    [[nodiscard]] path_result run(const path_context& ctx) const override {
        path_result out;
        run_cell(ctx, out);
        return out;
    }
    void run_block(std::span<const path_context> ctxs, std::span<path_result> out) const override {
        check_block_sizes(ctxs, out);
        for (std::size_t i = 0; i < ctxs.size(); ++i) run_cell(ctxs[i], out[i]);
    }
    /// Energy-gap soft output, like qubo_solver_path.
    void soft_output(const path_context& ctx, path_result& out) const override {
        wireless::flip_recost_llrs_into(ctx.instance, out.bits, out.llrs);
    }
    [[nodiscard]] std::string name() const override {
        const std::string base = adapter_ != nullptr ? adapter_->name() : "KB+RA";
        return devices_ > 1 ? base + "x" + std::to_string(devices_) : base;
    }
    [[nodiscard]] path_spec spec() const override { return spec_; }
    [[nodiscard]] bool needs_qubo() const noexcept override { return true; }
    [[nodiscard]] std::vector<std::string> stage_names() const override {
        return {"classical", "quantum"};
    }
    [[nodiscard]] std::vector<std::size_t> stage_servers() const override {
        return {1, devices_};
    }
    [[nodiscard]] std::shared_ptr<const solvers::solver> as_solver() const override {
        return adapter_;  // nullptr for init=kbest: it needs the MIMO instance
    }

private:
    void run_cell(const path_context& ctx, path_result& out) const {
        require_qubo(ctx);
        if (adapter_ != nullptr) {
            if (ctx.ws != nullptr) {
                hybrid::hybrid_solver::timings times;
                adapter_->hybrid().solve_best_into(ctx.reduced->model, ctx.rng, ctx.ws->solve,
                                                   out.bits, times);
                out.ml_cost = ctx.instance.ml_cost_bits(out.bits, ctx.ws->detect.symbols,
                                                        ctx.ws->detect.residual);
                out.stages.resize(2);
                set_stage(out, 0, "classical", times.classical_us);
                set_stage(out, 1, "quantum", times.quantum_us);
            } else {
                const auto result = adapter_->hybrid().solve(ctx.reduced->model, ctx.rng);
                out.bits = result.best_bits;
                out.ml_cost = ctx.instance.ml_cost_bits(out.bits);
                out.stages.resize(2);
                set_stage(out, 0, "classical", result.classical_us);
                set_stage(out, 1, "quantum", result.quantum_us);
            }
            return;
        }
        // kbest initialiser: detect on the channel use itself (measured
        // classical time), then seed the reverse anneal with the result.
        // Constructing the per-use initialiser copies the seed bits, so this
        // branch is not allocation-free — it is an application-specific
        // variant, not one of the hot-path defaults.
        const auto detected = detector_->detect(ctx.instance);
        const solvers::fixed_initializer init(detected.bits, "KB");
        const hybrid::hybrid_solver solver(init, *device_, schedule_, reads_);
        const auto result = solver.solve(ctx.reduced->model, ctx.rng);
        out.bits = result.best_bits;
        out.ml_cost = ctx.instance.ml_cost_bits(out.bits);
        out.stages.resize(2);
        set_stage(out, 0, "classical", detected.elapsed_us + result.classical_us);
        set_stage(out, 1, "quantum", result.quantum_us);
    }

    std::shared_ptr<const hybrid::hybrid_solver_adapter> adapter_;  ///< gs / tabu
    std::shared_ptr<const detect::kbest_detector> detector_;        ///< kbest only
    std::shared_ptr<const anneal::annealer_emulator> device_;       ///< kbest only
    anneal::anneal_schedule schedule_;
    std::size_t reads_;
    std::size_t devices_;
    path_spec spec_;
};

path_info zf_info() {
    return {.kind = "zf",
            .summary = "linear zero-forcing detector",
            .keys = {},
            .factory = [](const path_spec&) -> std::shared_ptr<const detection_path> {
                return std::make_shared<const detector_path>(
                    std::make_shared<const detect::zf_detector>(), "ZF", path_spec{"zf", {}},
                    detector_path::soft_kind::zf_equalized);
            }};
}

path_info mmse_info() {
    return {.kind = "mmse",
            .summary = "linear MMSE detector",
            .keys = {},
            .factory = [](const path_spec&) -> std::shared_ptr<const detection_path> {
                return std::make_shared<const detector_path>(
                    std::make_shared<const detect::mmse_detector>(), "MMSE",
                    path_spec{"mmse", {}}, detector_path::soft_kind::mmse_equalized);
            }};
}

path_info kbest_info() {
    return {.kind = "kbest",
            .summary = "breadth-first K-best tree search",
            .keys = {{"width", "beam width K (positive integer, default 8)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                const std::size_t width = spec_positive_size(spec, "width", 8);
                return std::make_shared<const detector_path>(
                    std::make_shared<const detect::kbest_detector>(width), "K-best",
                    path_spec{"kbest", {{"width", std::to_string(width)}}});
            }};
}

path_info sphere_info() {
    return {.kind = "sphere",
            .summary = "exact ML sphere decoder",
            .keys = {{"radius", "initial squared search radius (0 = unbounded, default 0)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                const double radius = spec_double(spec, "radius", 0.0);
                return std::make_shared<const detector_path>(
                    std::make_shared<const detect::sphere_detector>(radius), "SD",
                    path_spec{"sphere", {{"radius", format_spec_value(radius)}}});
            }};
}

path_info sic_info() {
    return {.kind = "sic",
            .summary = "successive interference cancellation detector",
            .keys = {},
            .factory = [](const path_spec&) -> std::shared_ptr<const detection_path> {
                return std::make_shared<const detector_path>(
                    std::make_shared<const detect::sic_detector>(), "SIC", path_spec{"sic", {}});
            }};
}

path_info fcsd_info() {
    return {.kind = "fcsd",
            .summary = "fixed-complexity sphere decoder",
            .keys = {{"levels", "fully-enumerated tree levels (positive integer, default 1)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                const std::size_t levels = spec_positive_size(spec, "levels", 1);
                auto det = std::make_shared<const detect::fcsd_detector>(levels);
                std::string display = det->name();
                return std::make_shared<const detector_path>(
                    std::move(det), std::move(display),
                    path_spec{"fcsd", {{"levels", std::to_string(levels)}}});
            }};
}

path_info sa_info() {
    return {.kind = "sa",
            .summary = "simulated annealing on the reduced QUBO (classical baseline)",
            .keys = {{"reads", "independent restarts (positive integer, default 10)"},
                     {"sweeps", "sweeps per read (positive integer, default 100)"},
                     {"hot", "T_hot as a fraction of max|Q| (default 1)"},
                     {"cold", "T_cold as a fraction of max|Q| (default 0.001)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                solvers::sa_config config;
                config.num_reads = spec_positive_size(spec, "reads", config.num_reads);
                config.num_sweeps = spec_positive_size(spec, "sweeps", config.num_sweeps);
                config.hot_fraction = spec_double(spec, "hot", config.hot_fraction);
                config.cold_fraction = spec_double(spec, "cold", config.cold_fraction);
                return std::make_shared<const qubo_solver_path>(
                    std::make_shared<const solvers::simulated_annealing>(config),
                    path_spec{"sa",
                              {{"reads", std::to_string(config.num_reads)},
                               {"sweeps", std::to_string(config.num_sweeps)},
                               {"hot", format_spec_value(config.hot_fraction)},
                               {"cold", format_spec_value(config.cold_fraction)}}});
            }};
}

path_info tabu_info() {
    return {.kind = "tabu",
            .summary = "tabu search on the reduced QUBO",
            .keys = {{"tenure", "iterations a flipped bit stays tabu (default 10)"},
                     {"iters", "maximum iterations (default 500)"},
                     {"stall", "stop after this many non-improving moves (default 100)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                solvers::tabu_config config;
                config.tenure = spec_positive_size(spec, "tenure", config.tenure);
                config.max_iterations = spec_positive_size(spec, "iters", config.max_iterations);
                config.stall_limit = spec_positive_size(spec, "stall", config.stall_limit);
                return std::make_shared<const qubo_solver_path>(
                    std::make_shared<const solvers::tabu_search>(config),
                    path_spec{"tabu",
                              {{"tenure", std::to_string(config.tenure)},
                               {"iters", std::to_string(config.max_iterations)},
                               {"stall", std::to_string(config.stall_limit)}}});
            }};
}

path_info pt_info() {
    return {.kind = "pt",
            .summary = "parallel tempering on the reduced QUBO",
            .keys = {{"replicas", "temperature ladder size (default 8)"},
                     {"rounds", "sweep+swap rounds (default 50)"},
                     {"sweeps", "Metropolis sweeps per replica per round (default 2)"},
                     {"hot", "T_hot as a fraction of max|Q| (default 2)"},
                     {"cold", "T_cold as a fraction of max|Q| (default 0.01)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                solvers::pt_config config;
                config.num_replicas = spec_positive_size(spec, "replicas", config.num_replicas);
                config.num_rounds = spec_positive_size(spec, "rounds", config.num_rounds);
                config.sweeps_per_round =
                    spec_positive_size(spec, "sweeps", config.sweeps_per_round);
                config.hot_fraction = spec_double(spec, "hot", config.hot_fraction);
                config.cold_fraction = spec_double(spec, "cold", config.cold_fraction);
                return std::make_shared<const qubo_solver_path>(
                    std::make_shared<const solvers::parallel_tempering>(config),
                    path_spec{"pt",
                              {{"replicas", std::to_string(config.num_replicas)},
                               {"rounds", std::to_string(config.num_rounds)},
                               {"sweeps", std::to_string(config.sweeps_per_round)},
                               {"hot", format_spec_value(config.hot_fraction)},
                               {"cold", format_spec_value(config.cold_fraction)}}});
            }};
}

path_info gsra_info() {
    return {.kind = "gsra",
            .summary = "hybrid classical initialiser + reverse anneal (the paper's design)",
            .keys = {{"reads", "annealer reads per use (positive integer, default 80)"},
                     {"sp", "reverse-anneal switch/pause location s_p in (0,1) (default 0.29)"},
                     {"pause_us", "pause time t_p in us (default 1)"},
                     {"init",
                      "classical initialiser: gs (default), tabu, or kbest "
                      "(paper section 5; kbest has no sweep-solver form)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                const auto init = gs_ra_path::parse_init(spec);
                const std::size_t reads = spec_positive_size(spec, "reads", 80);
                const double sp = spec_double(spec, "sp", 0.29);
                const double pause_us = spec_double(spec, "pause_us", 1.0);
                return std::make_shared<const gs_ra_path>(
                    init, reads, sp, pause_us, 1,
                    path_spec{"gsra",
                              {{"reads", std::to_string(reads)},
                               {"sp", format_spec_value(sp)},
                               {"pause_us", format_spec_value(pause_us)},
                               {"init", gs_ra_path::to_string(init)}}});
            }};
}

path_info kxra_info() {
    return {.kind = "kxra",
            .summary = "gsra stream served by K round-robin annealer devices (paper section 5)",
            .keys = {{"k", "annealer devices round-robining the stream (positive, default 2)"},
                     {"reads", "annealer reads per use (positive integer, default 80)"},
                     {"sp", "reverse-anneal switch/pause location s_p in (0,1) (default 0.29)"},
                     {"pause_us", "pause time t_p in us (default 1)"},
                     {"init",
                      "classical initialiser: gs (default), tabu, or kbest "
                      "(paper section 5; kbest has no sweep-solver form)"}},
            .factory = [](const path_spec& spec) -> std::shared_ptr<const detection_path> {
                const auto init = gs_ra_path::parse_init(spec);
                const std::size_t devices = spec_positive_size(spec, "k", 2);
                const std::size_t reads = spec_positive_size(spec, "reads", 80);
                const double sp = spec_double(spec, "sp", 0.29);
                const double pause_us = spec_double(spec, "pause_us", 1.0);
                return std::make_shared<const gs_ra_path>(
                    init, reads, sp, pause_us, devices,
                    path_spec{"kxra",
                              {{"k", std::to_string(devices)},
                               {"reads", std::to_string(reads)},
                               {"sp", format_spec_value(sp)},
                               {"pause_us", format_spec_value(pause_us)},
                               {"init", gs_ra_path::to_string(init)}}});
            }};
}

}  // namespace

namespace detail {

void register_builtin_paths() {
    registry::register_path(zf_info());
    registry::register_path(mmse_info());
    registry::register_path(kbest_info());
    registry::register_path(sphere_info());
    registry::register_path(sic_info());
    registry::register_path(fcsd_info());
    registry::register_path(sa_info());
    registry::register_path(tabu_info());
    registry::register_path(pt_info());
    registry::register_path(gsra_info());
    registry::register_path(kxra_info());
}

}  // namespace detail
}  // namespace hcq::paths
