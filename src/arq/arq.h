// The ARQ / retransmission layer — the paper's closed-loop system model.
//
// Kim & Venturelli's systems argument (HotNets 2020, Section 3) is that
// detection quality only matters inside the link layer's latency budget:
// an answer arriving past the retransmission deadline is worthless, because
// the protocol has already given up on the frame.  The open-loop link
// simulator (link/link_sim.h) measures quality and latency side by side;
// this layer closes the loop: a frame whose attempt FAILED — detected bits
// wrong, or the replayed end-to-end latency past the ARQ deadline — is
// re-enqueued as a retransmission, up to `max_retx` retries per frame.
//
// The loop runs in two domains, split so the repository's determinism
// contract survives:
//
//  * DETECTION domain (exact, bit-identical).  The link layer's streaming
//    loop runs every retransmission as a REAL re-solve on a fresh channel
//    use drawn from an RNG stream derived from (seed, frame, attempt) —
//    globally indexed, so the resulting `counters` (residual frame-error
//    rate, retransmission rate, attempts histogram) are bit-identical at
//    any thread count and any stream_block size, like BER.  A finite
//    nonzero deadline cannot be judged here (wall time is not
//    deterministic), so the deterministic retransmission trigger is
//    `wrong bits` — plus the degenerate `deadline_us == 0`, where every
//    attempt is late by definition and every frame retransmits until
//    max_retx regardless of correctness.
//
//  * TIMING domain (measured, varies run to run like throughput).  The
//    measured stage traces are replayed through the Figure-2 tandem queue
//    with feedback (pipeline::simulate_closed_loop): each completed attempt
//    is judged late when its replayed latency exceeds the deadline and
//    wrong with the frame-error probability MEASURED in the detection
//    domain (a fresh channel use is statistically a fresh draw), and failed
//    frames re-enter stage 0 as retransmission load — amplifying queueing
//    exactly the way a real ARQ loop feeds back, which is where
//    `drop-oldest` becomes the natural shedding policy.  This yields
//    `replay_stats`: deadline-miss rate, delivered frames, and goodput.
//
// `deadline_us` may be given as `auto`, resolving per path to the OPEN-loop
// replay's p99 latency — the ROADMAP's "ARQ loops driven by the replay's
// p99" made literal.
//
// Concurrency contract: `counters` and `replay_stats` are filled serially
// by the link layer's in-order fold (detection domain) and the
// single-threaded closed-loop simulator (timing domain) — no locks, no
// shared mutable state, hence no thread-safety annotations here; see
// docs/ARCHITECTURE.md, "The determinism contract as enforceable rules".
#ifndef HCQ_ARQ_ARQ_H
#define HCQ_ARQ_ARQ_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "pipeline/pipeline.h"
#include "util/rng.h"

namespace hcq::arq {

/// Sentinel: no retransmission deadline (error-driven ARQ only).
inline constexpr double no_deadline = std::numeric_limits<double>::infinity();

/// How a hybrid-ARQ retransmission uses the previous attempts' soft
/// information (engaged only when the link runs coded, link_config::fec):
/// `chase` accumulates clamped per-bit LLRs across a frame's attempts and
/// decodes against the combined vector (chase combining); `plain` decodes
/// each attempt's LLRs alone — classical ARQ, the A/B baseline.  Uncoded
/// links ignore the knob (there is no decoder to feed).
enum class combining_mode { chase, plain };

[[nodiscard]] const char* to_string(combining_mode mode) noexcept;

/// ARQ knobs, spec-string form "deadline_us=500,max_retx=2,combining=chase".
struct arq_config {
    /// Retransmission deadline on the replayed end-to-end latency.
    /// `no_deadline` disables the deadline trigger; 0 means every attempt
    /// is late by definition (the everything-retransmits degenerate case);
    /// `deadline_auto` resolves it per path to the open-loop replay's p99.
    double deadline_us = no_deadline;
    bool deadline_auto = false;
    /// Retransmissions allowed per frame; 0 reproduces the open loop.
    std::size_t max_retx = 1;
    /// Soft-information handling across a coded frame's attempts (hybrid
    /// ARQ); the default is chase combining.
    combining_mode combining = combining_mode::chase;

    /// Canonical text form with every key explicit:
    /// "deadline_us=<auto|none|value>,max_retx=<n>,combining=<chase|plain>".
    [[nodiscard]] std::string to_string() const;
};

/// Parses "deadline_us=<auto|none|value>,max_retx=<n>,combining=<chase|plain>"
/// (every key optional, any order).  "", "true", and "1" — what a bare
/// `--arq` flag parses to — yield the defaults.  Throws
/// std::invalid_argument naming the offending key or value and listing the
/// accepted forms.
[[nodiscard]] arq_config parse_arq(const std::string& text);

/// Deterministic retransmission decision for the detection domain: attempt
/// `attempt` (0-based) of a frame retransmits iff retries remain AND the
/// bits were wrong or the deadline is the degenerate always-late 0.
[[nodiscard]] bool needs_retx(const arq_config& config, bool bits_ok,
                              std::size_t attempt) noexcept;

/// Detection-domain ARQ counters.  Everything here is bit-identical at any
/// thread count and stream_block size (the derived-RNG contract).
struct counters {
    std::uint64_t frames = 0;            ///< offered frames
    std::uint64_t attempts = 0;          ///< transmissions incl. retransmissions
    std::uint64_t wrong_attempts = 0;    ///< attempts whose detected bits were wrong
    std::uint64_t corrected_frames = 0;  ///< wrong on attempt 0, right on the final attempt
    std::uint64_t residual_errors = 0;   ///< frames whose FINAL attempt stayed wrong

    /// Folds one frame's completed attempt chain.
    void add_frame(std::size_t attempts_used, std::size_t wrong, bool first_ok, bool final_ok);

    [[nodiscard]] std::uint64_t retransmissions() const noexcept { return attempts - frames; }
    /// Residual frame-error rate: still-wrong frames / frames.
    [[nodiscard]] double residual_fer() const noexcept;
    /// Retransmissions per offered frame.
    [[nodiscard]] double retx_rate() const noexcept;
    [[nodiscard]] double mean_attempts() const noexcept;
    /// Per-attempt frame error probability (wrong attempts / attempts) —
    /// the measured error model the timing-domain replay draws from.
    [[nodiscard]] double attempt_error_rate() const noexcept;
};

/// Timing-domain ARQ statistics from the closed-loop trace replay.  These
/// derive from measured wall times and vary run to run, like throughput.
struct replay_stats {
    std::uint64_t frames = 0;           ///< offered frames
    std::uint64_t injections = 0;       ///< offered + retransmissions entering the chain
    std::uint64_t completions = 0;      ///< attempts that exited the chain
    std::uint64_t deadline_misses = 0;  ///< completions past the deadline
    std::uint64_t modeled_errors = 0;   ///< completions judged wrong (measured FER model)
    std::uint64_t retransmissions = 0;  ///< failed completions re-entering the chain
    std::uint64_t delivered = 0;        ///< frames completing right AND in time
    std::uint64_t exhausted = 0;        ///< frames failing their final allowed attempt
    std::uint64_t lost_to_drops = 0;    ///< injections shed at full buffers
    double resolved_deadline_us = no_deadline;  ///< deadline after `auto` resolution
    double goodput_per_us = 0.0;        ///< delivered frames / replay makespan

    /// Fraction of completed attempts past the deadline.
    [[nodiscard]] double miss_rate() const noexcept;
    /// Fraction of offered frames never delivered (exhausted or dropped).
    [[nodiscard]] double undelivered_rate() const noexcept;
};

/// Closed-loop replay outcome: the queueing result plus the ARQ view of it.
struct closed_loop_report {
    pipeline::simulation_result replay;
    replay_stats stats;
};

/// Replays `num_frames` frames through the measured stages with ARQ
/// feedback.  `attempt_error_rate` is the detection-domain per-attempt
/// frame-error probability (counters::attempt_error_rate());
/// `resolved_deadline_us` is the deadline after `auto` resolution (pass
/// config.deadline_us when not auto).  Error draws come from a stream
/// derived from `rng`, disjoint from the arrival/service draws.  Throws
/// like pipeline::simulate_closed_loop, plus on an error rate outside
/// [0, 1] or a negative deadline.
[[nodiscard]] closed_loop_report closed_loop_replay(
    const std::vector<pipeline::stage>& stages, std::size_t num_frames,
    double attempt_error_rate, double resolved_deadline_us, std::size_t max_retx,
    const pipeline::arrival_process& arrivals, util::rng& rng,
    const pipeline::sim_options& options);

}  // namespace hcq::arq

#endif  // HCQ_ARQ_ARQ_H
