// Tests for the Chimera topology model and clique minor embedding — the
// hardware-realism layer of the D-Wave substitution.
#include <gtest/gtest.h>

#include <set>

#include "core/device.h"
#include "core/embedding.h"
#include "core/topology.h"
#include "qubo/brute_force.h"
#include "qubo/generator.h"
#include "util/rng.h"

namespace {

namespace an = hcq::anneal;
namespace q = hcq::qubo;

TEST(Chimera, CountsMatchFormulae) {
    const an::chimera_graph c1(1, 4);
    EXPECT_EQ(c1.num_nodes(), 8u);
    EXPECT_EQ(c1.num_edges(), 16u);  // single K_{4,4}
    const an::chimera_graph c2(2, 4);
    EXPECT_EQ(c2.num_nodes(), 32u);
    EXPECT_EQ(c2.num_edges(), 4u * 16u + 2u * 4u + 2u * 4u);
    EXPECT_THROW(an::chimera_graph(0, 4), std::invalid_argument);
    EXPECT_THROW(an::chimera_graph(2, 0), std::invalid_argument);
}

TEST(Chimera, NodeLocateRoundTrip) {
    const an::chimera_graph g(3, 4);
    for (std::size_t id = 0; id < g.num_nodes(); ++id) {
        const auto c = g.locate(id);
        EXPECT_EQ(g.node(c.row, c.column, c.side, c.index), id);
    }
    EXPECT_THROW((void)g.locate(g.num_nodes()), std::out_of_range);
    EXPECT_THROW((void)g.node(3, 0, 0, 0), std::out_of_range);
}

TEST(Chimera, AdjacencyRules) {
    const an::chimera_graph g(2, 4);
    // In-cell: opposite shores adjacent, same shore not.
    EXPECT_TRUE(g.adjacent(g.node(0, 0, 0, 0), g.node(0, 0, 1, 3)));
    EXPECT_FALSE(g.adjacent(g.node(0, 0, 0, 0), g.node(0, 0, 0, 1)));
    // Vertical couplers along a column, same index only.
    EXPECT_TRUE(g.adjacent(g.node(0, 0, 0, 2), g.node(1, 0, 0, 2)));
    EXPECT_FALSE(g.adjacent(g.node(0, 0, 0, 2), g.node(1, 0, 0, 3)));
    EXPECT_FALSE(g.adjacent(g.node(0, 0, 0, 2), g.node(1, 1, 0, 2)));
    // Horizontal couplers along a row, same index only.
    EXPECT_TRUE(g.adjacent(g.node(0, 0, 1, 1), g.node(0, 1, 1, 1)));
    EXPECT_FALSE(g.adjacent(g.node(0, 0, 1, 1), g.node(1, 0, 1, 1)));
    // No self loops.
    EXPECT_FALSE(g.adjacent(g.node(0, 0, 0, 0), g.node(0, 0, 0, 0)));
}

TEST(Chimera, NeighborsConsistentWithAdjacency) {
    const an::chimera_graph g(2, 4);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const auto nbrs = g.neighbors(u);
        const std::set<std::size_t> nbr_set(nbrs.begin(), nbrs.end());
        for (std::size_t v = 0; v < g.num_nodes(); ++v) {
            EXPECT_EQ(g.adjacent(u, v), nbr_set.count(v) == 1) << u << " " << v;
        }
    }
}

TEST(Chimera, EdgeListMatchesCount) {
    const an::chimera_graph g(3, 4);
    EXPECT_EQ(g.edges().size(), g.num_edges());
}

class CliqueEmbedding : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CliqueEmbedding, ValidAndComplete) {
    const std::size_t n = GetParam();
    const std::size_t m = (n + 3) / 4;
    const an::chimera_graph g(m, 4);
    const auto chains = an::clique_embedding(g, n);
    ASSERT_EQ(chains.size(), n);
    EXPECT_TRUE(an::embedding_is_valid(g, chains));
    // Every pair of chains shares at least one coupler (clique property).
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            bool coupled = false;
            for (const std::size_t u : chains[i]) {
                for (const std::size_t v : chains[j]) {
                    if (g.adjacent(u, v)) {
                        coupled = true;
                        break;
                    }
                }
                if (coupled) break;
            }
            EXPECT_TRUE(coupled) << "chains " << i << " and " << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CliqueEmbedding, ::testing::Values(2, 4, 5, 8, 12, 16));

TEST(CliqueEmbeddingLimits, CapacityEnforced) {
    const an::chimera_graph g(2, 4);
    EXPECT_NO_THROW((void)an::clique_embedding(g, 8));
    EXPECT_THROW((void)an::clique_embedding(g, 9), std::invalid_argument);
    EXPECT_THROW((void)an::clique_embedding(g, 0), std::invalid_argument);
}

TEST(EmbeddingValidity, DetectsBrokenChains) {
    const an::chimera_graph g(2, 4);
    auto chains = an::clique_embedding(g, 4);
    EXPECT_TRUE(an::embedding_is_valid(g, chains));
    // Overlapping chains are invalid.
    auto overlapping = chains;
    overlapping[1][0] = overlapping[0][0];
    EXPECT_FALSE(an::embedding_is_valid(g, overlapping));
    // Disconnected chain: two far-apart qubits.
    an::embedding disconnected{{g.node(0, 0, 0, 0), g.node(1, 1, 0, 0)}};
    EXPECT_FALSE(an::embedding_is_valid(g, disconnected));
    // Empty chain invalid.
    an::embedding empty{{}};
    EXPECT_FALSE(an::embedding_is_valid(g, empty));
}

TEST(EmbedIsing, UnbrokenChainsPreserveEnergyDifferences) {
    // For chain-respecting states the physical energy equals the logical
    // energy plus a constant (all chain couplings satisfied).
    hcq::util::rng rng(5);
    const std::size_t n = 6;
    const an::chimera_graph g(2, 4);
    const auto chains = an::clique_embedding(g, n);
    const auto logical_qubo = q::random_qubo(rng, n, 1.0, -1.0, 1.0);
    const auto logical = q::to_ising(logical_qubo);
    const auto embedded = an::embed_ising(logical, g, chains, 3.0);

    const auto physical_energy = [&](const q::bit_vector& logical_bits) {
        const auto phys_bits = embedded.embed_state(logical_bits);
        return embedded.physical.energy(q::spins_from_bits(phys_bits));
    };
    const auto logical_energy = [&](const q::bit_vector& logical_bits) {
        return logical.energy(q::spins_from_bits(logical_bits));
    };

    const auto ref = rng.bits(n);
    const double offset = physical_energy(ref) - logical_energy(ref);
    for (int trial = 0; trial < 15; ++trial) {
        const auto bits = rng.bits(n);
        EXPECT_NEAR(physical_energy(bits) - logical_energy(bits), offset, 1e-9);
    }
}

TEST(EmbedIsing, ChainStateRoundTrip) {
    hcq::util::rng rng(6);
    const an::chimera_graph g(2, 4);
    const auto chains = an::clique_embedding(g, 5);
    const auto logical = q::to_ising(q::random_qubo(rng, 5, 1.0, -1.0, 1.0));
    const auto embedded = an::embed_ising(logical, g, chains, 2.0);
    const auto bits = rng.bits(5);
    const auto physical = embedded.embed_state(bits);
    EXPECT_EQ(embedded.unembed(physical), bits);
    EXPECT_DOUBLE_EQ(embedded.chain_break_fraction(physical), 0.0);
}

TEST(EmbedIsing, MajorityVoteAndBreakDetection) {
    hcq::util::rng rng(7);
    const an::chimera_graph g(2, 4);
    const auto chains = an::clique_embedding(g, 3);
    const auto logical = q::to_ising(q::random_qubo(rng, 3, 1.0, -1.0, 1.0));
    const auto embedded = an::embed_ising(logical, g, chains, 2.0);

    q::bit_vector bits{1, 0, 1};
    auto physical = embedded.embed_state(bits);
    // Break chain 0 by flipping a single qubit: majority still reads 1.
    physical[embedded.chains[0][0]] ^= 1U;
    EXPECT_EQ(embedded.unembed(physical), bits);
    EXPECT_NEAR(embedded.chain_break_fraction(physical), 1.0 / 3.0, 1e-12);
}

TEST(EmbedIsing, Validation) {
    hcq::util::rng rng(8);
    const an::chimera_graph g(2, 4);
    const auto chains = an::clique_embedding(g, 4);
    const auto logical = q::to_ising(q::random_qubo(rng, 4, 1.0, -1.0, 1.0));
    EXPECT_THROW((void)an::embed_ising(logical, g, chains, 0.0), std::invalid_argument);
    const auto big = q::to_ising(q::random_qubo(rng, 9, 1.0, -1.0, 1.0));
    EXPECT_THROW((void)an::embed_ising(big, g, chains, 1.0), std::invalid_argument);
}

TEST(EmbedIsing, DeviceSolvesEmbeddedProblemEndToEnd) {
    // Full hardware-realism path: logical QUBO -> clique embedding ->
    // physical Ising -> emulated anneal -> majority-vote unembedding.
    hcq::util::rng rng(9);
    const std::size_t n = 5;
    const auto logical_qubo = q::random_qubo(rng, n, 1.0, -1.0, 1.0);
    const auto exact = q::brute_force_minimize(logical_qubo);

    const an::chimera_graph g(2, 4);
    const auto chains = an::clique_embedding(g, n);
    const auto embedded = an::embed_qubo(logical_qubo, g, chains,
                                         2.0 * logical_qubo.max_abs_coefficient());
    const auto physical_qubo = q::to_qubo(embedded.physical);

    const an::annealer_emulator device;
    const auto samples =
        device.sample(physical_qubo, an::anneal_schedule::forward_plain(8.0), 60, rng);
    double best = 1e300;
    for (const auto& s : samples.all()) {
        const auto logical_bits = embedded.unembed(s.bits);
        best = std::min(best, logical_qubo.energy(logical_bits));
    }
    // The emulated device must find the logical optimum through the
    // embedding at least once in 60 reads on a 5-variable problem.
    EXPECT_NEAR(best, exact.best_energy, 1e-9);
}

}  // namespace
