// Real-valued lattice model shared by the tree-search detectors.
//
// Quadrature modulations use the full real embedding (2m x 2n); BPSK, whose
// symbols are purely real, uses the thinner [Re H; Im H] stacking so that the
// search never visits imaginary dimensions that carry no bits.  After QR,
// detectors operate on  min_a ||y_eff - R a||^2  with `a` ranging over the
// per-dimension odd PAM lattice.
#ifndef HCQ_DETECT_REAL_MODEL_H
#define HCQ_DETECT_REAL_MODEL_H

#include <vector>

#include "detect/detector.h"
#include "linalg/decompose.h"
#include "linalg/matrix.h"
#include "wireless/mimo.h"

namespace hcq::detect {

/// QR-preprocessed real lattice problem.
struct real_model {
    linalg::rmat r;       ///< dims x dims upper triangular
    linalg::rvec y_eff;   ///< Q^T y_real
    std::vector<double> alphabet;  ///< shared per-dimension amplitudes (ascending)
    std::size_t dims = 0;          ///< real search dimensions
    std::size_t num_users = 0;
    wireless::modulation mod = wireless::modulation::bpsk;
    bool quadrature = false;
};

/// Reusable state of the tree-search detectors: the QR-preprocessed lattice
/// model (cached on the exact channel content, so the tree searches sharing
/// one channel use — K-best, sphere, FCSD, a K-best initialiser — factorise
/// it once) plus the per-search traversal buffers.  Cache hits require
/// ||H - H_key||_F == 0 (elementwise equality); an equal channel yields the
/// identical factorisation, so hits are output-invariant by construction.
struct lattice_scratch {
    // Cached model (only y_eff is per-use once the channel repeats).
    real_model model;
    linalg::rmat q;  ///< cached Q of the embedded channel
    linalg::cmat h_key;
    wireless::modulation key_mod = wireless::modulation::bpsk;
    bool valid = false;

    // Rebuild intermediates.
    linalg::rmat a_real;
    linalg::rvec y_real;
    linalg::qr_scratch<double> qr;
    linalg::qr_result<double> factors;

    // K-best beams, flattened: row b of a beam occupies
    // [b * dims, (b + 1) * dims) of beam_amps / next_amps.
    std::vector<double> beam_amps;
    std::vector<double> next_amps;
    /// One candidate child of the beam expansion: enough to reconstruct the
    /// amplitude row from its parent without copying whole paths around.
    struct expand_node {
        double cost = 0.0;
        std::size_t parent = 0;
        double amplitude = 0.0;
    };
    std::vector<expand_node> expanded;
    std::vector<double> beam_costs;  ///< accumulated cost per current beam row

    // Sphere / FCSD traversal state.
    std::vector<double> chosen;
    std::vector<double> best;
    std::vector<double> completed;
    std::vector<std::vector<double>> level_order;  ///< per-level SE orderings
};

/// Builds the model for one instance (QR of the embedded channel).
[[nodiscard]] real_model make_real_model(const wireless::mimo_instance& instance);

/// make_real_model through the scratch's cache: factorises only when the
/// (channel, modulation) key changed, recomputes y_eff every call, and
/// returns the scratch-owned model.  Bit-identical to make_real_model.
const real_model& make_real_model_into(const wireless::mimo_instance& instance,
                                       lattice_scratch& scratch);

/// Converts per-dimension amplitudes (model ordering: all I components, then
/// all Q components) into a full detection_result for `instance`.
[[nodiscard]] detection_result assemble_result(const wireless::mimo_instance& instance,
                                               const std::vector<double>& amplitudes,
                                               std::size_t nodes_visited);

/// assemble_result into a reused result (bit-identical fields); the residual
/// buffer serves the ml_cost evaluation.
void assemble_result_into(const wireless::mimo_instance& instance,
                          const std::vector<double>& amplitudes, std::size_t nodes_visited,
                          linalg::cvec& residual_scratch, detection_result& out);

/// Slices a real value to the nearest alphabet amplitude.
[[nodiscard]] double slice_amplitude(double value, const std::vector<double>& alphabet);

}  // namespace hcq::detect

#endif  // HCQ_DETECT_REAL_MODEL_H
