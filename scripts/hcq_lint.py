#!/usr/bin/env python3
"""hcq_lint: repo-specific determinism and registration contracts.

The repository's core invariant — per-(use, path, attempt) derived RNG
streams whose statistics are bit-identical at any thread count — cannot be
checked by any off-the-shelf tool, because the rules are about *which*
primitives code is allowed to touch, not how it touches them.  This linter
enforces those contracts at review time, token/regex + include based (no
libclang dependency, so it runs anywhere python3 runs):

  raw-rng            std::mt19937 / std::random_device / rand() / <random>
                     may only appear in src/util/rng.{h,cpp}.  Everything
                     else draws from util::rng derived streams; a raw engine
                     is an unseeded, thread-schedule-dependent statistic.
  wall-clock         std::chrono::system_clock / high_resolution_clock /
                     time() / gettimeofday are banned everywhere (wall-clock
                     reads make statistics irreproducible); steady_clock and
                     #include <chrono> are allowed only in the timing
                     modules (src/util/timer.h) that the rest of the tree
                     measures through.
  unordered-container std::unordered_{map,set,multimap,multiset} are banned
                     in src/: iteration order is hash-seed dependent, and
                     every aggregation or serialisation that walks one
                     becomes run-to-run unstable.  Pure-lookup uses may be
                     suppressed with a justification.
  spec-literal       paths::path_spec{...} aggregate literals outside
                     src/paths/: spec strings must go through
                     path_spec::parse / parse_spec_list so key validation
                     and canonicalisation stay uniform.
  channel-spec-literal wireless::channel_spec{...} aggregate literals outside
                     src/wireless/: channel specs must go through
                     channel_spec::parse so per-kind key acceptance and
                     Doppler/tap range validation stay uniform.
  test-registration  every tests/*_test.cpp is listed in HCQ_TEST_SUITES in
                     tests/CMakeLists.txt and every listed suite has a
                     source file — an unregistered test binary silently
                     never runs.
  raw-socket         socket()/bind()/recv()/epoll_*()/poll() and the socket
                     system headers may only appear in src/serve/socket.{h,cpp}
                     (the wrapped-fd contract): every other module handles
                     RAII fds and io_result values, never naked descriptors,
                     so EINTR/EAGAIN/EPIPE and non-blocking setup stay in one
                     audited place.
  llr-sign           ad-hoc bit->sign arithmetic ((1 - 2*bit), ternary sign
                     selection, pow(-1, bit)) on LLR-carrying lines in src/
                     outside src/fec/ and src/wireless/soft.{h,cpp}: the
                     canonical sign convention (positive favours bit 0) has
                     exactly one bit->sign conversion, wireless::signed_llr —
                     a hand-rolled flip silently inverts soft information
                     for every downstream consumer.

Suppressions (always carry a reason after the directive):
  // hcq-lint: allow(rule-id[, rule-id]) ...   this line and the next
  // hcq-lint: allow-file(rule-id) ...         the whole file

Usage:
  scripts/hcq_lint.py [--root DIR] [--list-rules]

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories scanned for C++ sources, relative to the root.
SCAN_DIRS = ("src", "examples", "bench", "tests")
CPP_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}
# The lint self-test fixture tree contains deliberate violations.
EXCLUDE_PARTS = {"lint_selftest"}
EXCLUDE_PREFIXES = ("build",)

SUPPRESS_LINE_RE = re.compile(r"hcq-lint:\s*allow\(([^)]*)\)")
SUPPRESS_FILE_RE = re.compile(r"hcq-lint:\s*allow-file\(([^)]*)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Blanks comments and string/char literals, preserving length.

    Keeps token scans from firing on prose (e.g. a doc comment mentioning
    std::mt19937) or on quoted text.  Line-oriented; raw strings and line
    continuations inside literals are out of scope for this linter.
    """
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                out.append(" " * (n - i))
                i = n
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out), state == "block"


class SourceFile:
    """One scanned file: raw lines, code-only lines, and suppressions."""

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.lines = text.splitlines()
        self.code_lines: list[str] = []
        self.line_allows: dict[int, set[str]] = {}  # 1-based line -> rules
        self.file_allows: set[str] = set()
        in_block = False
        for idx, line in enumerate(self.lines, start=1):
            m = SUPPRESS_FILE_RE.search(line)
            if m:
                self.file_allows |= {r.strip() for r in m.group(1).split(",") if r.strip()}
            m = SUPPRESS_LINE_RE.search(line)
            if m and "allow-file" not in line:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.line_allows.setdefault(idx, set()).update(rules)
                self.line_allows.setdefault(idx + 1, set()).update(rules)
            code, in_block = strip_code(line, in_block)
            self.code_lines.append(code)

    def suppressed(self, rule: str, line: int) -> bool:
        return rule in self.file_allows or rule in self.line_allows.get(line, set())


def iter_sources(root: Path) -> list[SourceFile]:
    sources = []
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CPP_SUFFIXES or not path.is_file():
                continue
            relpath = path.relative_to(root)
            rel = relpath.as_posix()
            if any(part in EXCLUDE_PARTS for part in relpath.parts):
                continue
            if rel.startswith(EXCLUDE_PREFIXES):
                continue
            sources.append(SourceFile(rel, path.read_text(encoding="utf-8", errors="replace")))
    return sources


def scan_tokens(src: SourceFile, rule: str, patterns: list[tuple[re.Pattern, str]],
                findings: list[Finding]) -> None:
    for idx, code in enumerate(src.code_lines, start=1):
        for pattern, message in patterns:
            if pattern.search(code) and not src.suppressed(rule, idx):
                findings.append(Finding(src.rel, idx, rule, message))


# --- raw-rng ---------------------------------------------------------------

RAW_RNG_ALLOWED = {"src/util/rng.h", "src/util/rng.cpp"}
RAW_RNG_PATTERNS = [
    (re.compile(r"std::(mt19937(_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\w+|knuth_b)\b"),
     "raw std random engine; draw from a util::rng derived stream instead"),
    (re.compile(r"std::random_device\b"),
     "std::random_device is nondeterministic; seed a util::rng explicitly"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("),
     "C rand()/srand() is unseeded global state; use util::rng"),
    (re.compile(r"#\s*include\s*<random>"),
     "<random> outside util/rng: distributions and engines live behind util::rng"),
]


def rule_raw_rng(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if src.rel in RAW_RNG_ALLOWED:
            continue
        scan_tokens(src, "raw-rng", RAW_RNG_PATTERNS, findings)


# --- wall-clock ------------------------------------------------------------

WALL_CLOCK_TIMING_MODULES = {"src/util/timer.h"}
WALL_CLOCK_BANNED = [
    (re.compile(r"std::chrono::(system_clock|high_resolution_clock)\b"),
     "wall/unspecified clock; statistics-producing code times via util::timer "
     "(steady_clock)"),
    (re.compile(r"(?<![\w:.])(gettimeofday|clock_gettime|timespec_get)\s*\("),
     "raw OS clock read; time via util::timer"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time() is a wall-clock read; statistics must not depend on it"),
]
WALL_CLOCK_SRC_ONLY = [
    (re.compile(r"std::chrono::steady_clock\b"),
     "direct steady_clock use outside the timing modules; measure through "
     "util::timer so timing stays in one auditable place"),
    (re.compile(r"#\s*include\s*<chrono>"),
     "<chrono> outside the timing modules; include util/timer.h instead"),
]


def rule_wall_clock(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if src.rel in WALL_CLOCK_TIMING_MODULES:
            continue
        scan_tokens(src, "wall-clock", WALL_CLOCK_BANNED, findings)
        if src.rel.startswith("src/"):
            scan_tokens(src, "wall-clock", WALL_CLOCK_SRC_ONLY, findings)


# --- unordered-container ---------------------------------------------------

UNORDERED_PATTERNS = [
    (re.compile(r"std::unordered_(map|set|multimap|multiset)\b"),
     "hash-ordered container in src/: iteration order is not deterministic, "
     "so aggregated statistics and serialised output built from it are not "
     "either; use std::map/std::set, or suppress with a pure-lookup reason"),
    (re.compile(r"#\s*include\s*<unordered_(map|set)>"),
     "unordered container include in src/ (see unordered-container rule)"),
]


def rule_unordered(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if not src.rel.startswith("src/"):
            continue
        scan_tokens(src, "unordered-container", UNORDERED_PATTERNS, findings)


# --- spec-literal ----------------------------------------------------------

SPEC_LITERAL_PATTERNS = [
    (re.compile(r"(?<!struct )(?<!class )\bpath_spec\s*\{"),
     "hand-built path_spec literal; parse spec text through "
     "paths::path_spec::parse / parse_spec_list so key validation and "
     "canonicalisation stay uniform"),
]


def rule_spec_literal(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if src.rel.startswith("src/paths/"):
            continue
        scan_tokens(src, "spec-literal", SPEC_LITERAL_PATTERNS, findings)


# --- channel-spec-literal ---------------------------------------------------

CHANNEL_SPEC_LITERAL_PATTERNS = [
    (re.compile(r"(?<!struct )(?<!class )\bchannel_spec\s*\{"),
     "hand-built channel_spec literal; parse spec text through "
     "wireless::channel_spec::parse so per-kind key acceptance and "
     "Doppler/tap range validation stay uniform"),
]


def rule_channel_spec_literal(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if src.rel.startswith("src/wireless/"):
            continue
        scan_tokens(src, "channel-spec-literal", CHANNEL_SPEC_LITERAL_PATTERNS, findings)


# --- raw-socket ------------------------------------------------------------

# The wrapped-fd contract (see the header comment in src/serve/socket.h):
# these two files are the only place allowed to touch raw socket / readiness
# syscalls; everything else goes through serve::sock.
RAW_SOCKET_ALLOWED = {"src/serve/socket.h", "src/serve/socket.cpp"}
# `(?<![\w.:>])(::\s*)?` accepts a bare or explicitly global-scope call
# (`bind(`, `::bind(`) while rejecting member calls (`cl.send(`) and
# qualified names (`std::bind(`, `sock::read_some(`).
RAW_SOCKET_PATTERNS = [
    (re.compile(r"(?<![\w.:>])(::\s*)?(socket|bind|listen|accept4?|connect|"
                r"shutdown)\s*\("),
     "raw socket lifecycle syscall; src/serve/socket.{h,cpp} is the only "
     "module allowed to own naked fds — use serve::sock"),
    (re.compile(r"(?<![\w.:>])(::\s*)?(send(to|msg)?|recv(from|msg)?|read|"
                r"write)\s*\("),
     "raw fd I/O syscall; use serve::sock read_some/write_some/send_all/"
     "recv_exact so EINTR/EAGAIN/EPIPE handling stays in one audited place"),
    (re.compile(r"(?<![\w.:>])(::\s*)?(epoll_(create1?|ctl|wait)|p?poll|"
                r"select)\s*\("),
     "raw readiness syscall; multiplex through serve::sock::poller"),
    (re.compile(r"(?<![\w.:>])(::\s*)?((get|set)sockopt|get(sock|peer)name|"
                r"fcntl|pipe2?)\s*\("),
     "raw socket/fd plumbing syscall; serve::sock wraps option, non-blocking "
     "and wake-pipe setup"),
    (re.compile(r"#\s*include\s*<(sys/socket\.h|sys/epoll\.h|poll\.h|"
                r"sys/select\.h|netinet/[\w./]+|arpa/inet\.h)>"),
     "socket-layer system header outside src/serve/socket.{h,cpp}; include "
     "serve/socket.h and use the wrapped API"),
]


def rule_raw_socket(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if src.rel in RAW_SOCKET_ALLOWED:
            continue
        scan_tokens(src, "raw-socket", RAW_SOCKET_PATTERNS, findings)


# --- llr-sign --------------------------------------------------------------

# The canonical LLR contract (src/wireless/soft.h): positive LLR favours bit
# 0, and wireless::signed_llr is the ONLY bit->sign conversion.  These two
# modules own the convention; everywhere else in src/, sign arithmetic on a
# line that touches an LLR is an ad-hoc flip waiting to invert the soft
# chain.  Scoped to lines mentioning `llr` so the QUBO/Ising bipolar maps
# (a different +/-1 domain entirely) stay out of scope.
LLR_SIGN_EXEMPT_PREFIXES = ("src/fec/",)
LLR_SIGN_EXEMPT = {"src/wireless/soft.h", "src/wireless/soft.cpp"}
LLR_LINE_RE = re.compile(r"(?i)llr")
LLR_SIGN_PATTERNS = [
    (re.compile(r"\b1(\.0)?\s*-\s*2(\.0)?\s*\*"),
     "bipolar (1 - 2*bit) mapping on an LLR-carrying line; the only "
     "bit->sign conversion is wireless::signed_llr (soft.h sign contract)"),
    (re.compile(r"\?\s*-[\w.(]|:\s*-[\w.(]"),
     "ternary sign selection on an LLR-carrying line; apply the sign through "
     "wireless::signed_llr instead of hand-flipping"),
    (re.compile(r"\bpow\s*\(\s*-1"),
     "pow(-1, bit) sign trick on an LLR-carrying line; use "
     "wireless::signed_llr"),
]


def rule_llr_sign(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if not src.rel.startswith("src/"):
            continue
        if src.rel in LLR_SIGN_EXEMPT or src.rel.startswith(LLR_SIGN_EXEMPT_PREFIXES):
            continue
        for idx, code in enumerate(src.code_lines, start=1):
            if not LLR_LINE_RE.search(code):
                continue
            for pattern, message in LLR_SIGN_PATTERNS:
                if pattern.search(code) and not src.suppressed("llr-sign", idx):
                    findings.append(Finding(src.rel, idx, "llr-sign", message))


# --- hot-path-alloc --------------------------------------------------------

# Opt-in marker: a file carrying this comment tag declares that its
# steady-state code path must not acquire heap memory (the per-worker
# workspace contract, see src/paths/workspace.h).
HOT_PATH_TAG = "hcq-hot-path"
HOT_PATH_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"),
     "operator new in a file tagged // hcq-hot-path; steady-state uses must "
     "reuse workspace scratch, not allocate"),
    # An owning vector (reference/pointer binds to existing storage and is
    # fine; that is exactly how scratch buffers are meant to be used).
    (re.compile(r"\bstd::vector\s*<[^<>;]*(<[^<>;]*>)?[^<>;]*>(?!\s*[&*])"),
     "owning std::vector constructed in a file tagged // hcq-hot-path; "
     "resize/assign into reused workspace scratch instead"),
]


def rule_hot_path_alloc(sources: list[SourceFile], findings: list[Finding]) -> None:
    for src in sources:
        if not any(HOT_PATH_TAG in line for line in src.lines):
            continue
        scan_tokens(src, "hot-path-alloc", HOT_PATH_ALLOC_PATTERNS, findings)


# --- test-registration -----------------------------------------------------

SUITES_RE = re.compile(r"set\s*\(\s*HCQ_TEST_SUITES\s+([^)]*)\)", re.DOTALL)


def rule_test_registration(root: Path, findings: list[Finding]) -> None:
    cmake = root / "tests" / "CMakeLists.txt"
    tests_dir = root / "tests"
    if not tests_dir.is_dir():
        return
    on_disk = {p.stem for p in tests_dir.glob("*_test.cpp")}
    if not cmake.is_file():
        if on_disk:
            findings.append(Finding("tests/CMakeLists.txt", 1, "test-registration",
                                    "missing tests/CMakeLists.txt but *_test.cpp files exist"))
        return
    text = cmake.read_text(encoding="utf-8", errors="replace")
    m = SUITES_RE.search(text)
    if not m:
        findings.append(Finding("tests/CMakeLists.txt", 1, "test-registration",
                                "no set(HCQ_TEST_SUITES ...) block found"))
        return
    listed = set(re.findall(r"[A-Za-z0-9_]+", m.group(1)))
    line_of = {}
    for idx, line in enumerate(text.splitlines(), start=1):
        for name in re.findall(r"[A-Za-z0-9_]+", line):
            line_of.setdefault(name, idx)
    for name in sorted(on_disk - listed):
        findings.append(Finding(f"tests/{name}.cpp", 1, "test-registration",
                                f"test file not listed in HCQ_TEST_SUITES — "
                                f"'{name}' would never build or run"))
    for name in sorted(listed - on_disk):
        findings.append(Finding("tests/CMakeLists.txt", line_of.get(name, 1),
                                "test-registration",
                                f"HCQ_TEST_SUITES lists '{name}' but tests/{name}.cpp "
                                f"does not exist"))


# ---------------------------------------------------------------------------

RULES = {
    "raw-rng": "raw std RNG / <random> outside src/util/rng.{h,cpp}",
    "wall-clock": "wall-clock reads; steady_clock/<chrono> outside timing modules",
    "unordered-container": "hash-ordered containers in src/",
    "spec-literal": "hand-built path_spec outside src/paths/",
    "channel-spec-literal": "hand-built channel_spec outside src/wireless/",
    "test-registration": "tests/*_test.cpp <-> HCQ_TEST_SUITES consistency",
    "raw-socket": "raw socket/readiness syscalls outside src/serve/socket.{h,cpp}",
    "hot-path-alloc": "new / owning std::vector in files tagged // hcq-hot-path",
    "llr-sign": "ad-hoc LLR sign arithmetic outside src/fec/ and wireless/soft",
}


def run_lint(root: Path) -> list[Finding]:
    sources = iter_sources(root)
    findings: list[Finding] = []
    rule_raw_rng(sources, findings)
    rule_wall_clock(sources, findings)
    rule_unordered(sources, findings)
    rule_spec_literal(sources, findings)
    rule_channel_spec_literal(sources, findings)
    rule_raw_socket(sources, findings)
    rule_llr_sign(sources, findings)
    rule_hot_path_alloc(sources, findings)
    rule_test_registration(root, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="tree to lint (default: the repository root)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, summary in RULES.items():
            print(f"{rule:20} {summary}")
        return 0
    root = args.root.resolve()
    if not root.is_dir():
        print(f"hcq_lint: no such directory: {root}", file=sys.stderr)
        return 2
    findings = run_lint(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"hcq_lint: {len(findings)} finding(s) in {root}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
