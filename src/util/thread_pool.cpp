#include "util/thread_pool.h"

#include <atomic>

namespace hcq::util {

thread_pool::thread_pool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::scoped_lock lock(mutex_);
        stopping_ = true;
    }
    task_available_.notify_all();
    for (auto& w : workers_) {
        if (w.joinable()) w.join();
    }
}

void thread_pool::submit(std::function<void()> task) {
    {
        const std::scoped_lock lock(mutex_);
        tasks_.push(std::move(task));
    }
    task_available_.notify_one();
}

void thread_pool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) return;  // stopping_ and drained
            task = std::move(tasks_.front());
            tasks_.pop();
            ++in_flight_;
        }
        task();
        {
            const std::scoped_lock lock(mutex_);
            --in_flight_;
        }
        idle_.notify_all();
    }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads) {
    if (n == 0) return;
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    num_threads = std::min(num_threads, n);
    if (num_threads <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
        threads.emplace_back([&] {
            for (;;) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) return;
                fn(i);
            }
        });
    }
    for (auto& th : threads) th.join();
}

}  // namespace hcq::util
