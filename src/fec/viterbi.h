// Soft-decision Viterbi decoder for the terminated convolutional codes of
// conv.h.
//
// Metric: the decoder MAXIMISES the correlation between the candidate coded
// sequence and the received LLRs under the repository's sign convention
// (wireless/soft.h: positive LLR favours bit 0) — a branch whose coded bit
// is 0 adds +llr, a coded bit of 1 adds -llr.  Hard-decision decoding is
// the special case llr in {+1, -1}.
//
// Determinism: start and end anchored at state 0 (the encoder terminates
// with K-1 zero tail bits); metric ties break toward the FIRST candidate
// scanned — input bit 0 before input bit 1, and within a bit lower origin
// state first — via a strict > comparison, so decoded bits are a pure
// function of the LLR vector.
#ifndef HCQ_FEC_VITERBI_H
#define HCQ_FEC_VITERBI_H

#include <cstdint>
#include <span>
#include <vector>

#include "fec/conv.h"

namespace hcq::fec {

class viterbi_decoder {
public:
    /// Same parameter contract as conv_encoder (they must match to decode).
    viterbi_decoder(std::size_t constraint_length, std::vector<std::uint32_t> generators);

    /// Reusable trellis storage; a warmed-up decoder+scratch pair decodes
    /// without allocating.
    struct scratch {
        std::vector<double> metric;       ///< per-state path metric, current step
        std::vector<double> next_metric;  ///< per-state path metric, next step
        std::vector<std::uint8_t> decisions;  ///< per (step, state): surviving input bit
    };

    /// Decodes `llrs` (deinterleaved, length (info_bits + K - 1) *
    /// num_generators) into `info_bits` information bits written to `out`
    /// (resized).  Throws std::invalid_argument on a length mismatch.
    void decode(std::span<const double> llrs, std::size_t info_bits, scratch& s,
                std::vector<std::uint8_t>& out) const;

    [[nodiscard]] std::size_t constraint_length() const noexcept { return k_; }

private:
    std::size_t k_;
    std::vector<std::uint32_t> generators_;
    std::size_t num_states_;
    /// Precomputed branch outputs: outputs_[(b << (K-1)) | state] packs the
    /// generator outputs of that window, bit j = generator j's output.
    std::vector<std::uint32_t> outputs_;
};

}  // namespace hcq::fec

#endif  // HCQ_FEC_VITERBI_H
