// Wireless channel synthesis.
//
// The paper's experiments (Section 4.2) use "unit gain signal and unit gain
// wireless channel with random phase" and *exclude* AWGN; the library also
// provides i.i.d. Rayleigh fading and AWGN injection for the BER-oriented
// examples and for downstream users.
#ifndef HCQ_WIRELESS_CHANNEL_H
#define HCQ_WIRELESS_CHANNEL_H

#include "linalg/matrix.h"
#include "util/rng.h"
#include "wireless/modulation.h"

namespace hcq::wireless {

/// Channel fading models.
enum class channel_model {
    unit_gain_random_phase,  ///< H_ij = exp(j*theta), theta ~ U[0, 2pi)  (paper setup)
    rayleigh,                ///< H_ij ~ CN(0, 1)
};

/// "random-phase" / "rayleigh".
[[nodiscard]] const char* to_string(channel_model model) noexcept;

/// Draws an antennas x users channel matrix from the given model.
[[nodiscard]] linalg::cmat draw_channel(util::rng& rng, channel_model model,
                                        std::size_t num_antennas, std::size_t num_users);

/// draw_channel into a reused matrix (same draws, same elements).
void draw_channel_into(util::rng& rng, channel_model model, std::size_t num_antennas,
                       std::size_t num_users, linalg::cmat& h);

/// Adds circularly-symmetric complex Gaussian noise of total variance
/// `noise_variance` per receive dimension (i.e. CN(0, noise_variance)).
void add_awgn(util::rng& rng, linalg::cvec& y, double noise_variance);

/// Noise variance realising an average per-receive-antenna SNR of `snr_db`
/// for `num_users` transmitters of the given modulation through a unit-mean-
/// square-gain channel.
[[nodiscard]] double noise_variance_for_snr(modulation mod, std::size_t num_users,
                                            double snr_db);

}  // namespace hcq::wireless

#endif  // HCQ_WIRELESS_CHANNEL_H
