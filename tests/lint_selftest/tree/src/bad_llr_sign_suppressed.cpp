// Fixture: the same llr-sign violations, silenced by both suppression forms.
double fixture_llr_bipolar_suppressed(int bit) {
    // hcq-lint: allow(llr-sign) fixture: preceding-line suppression form
    double llr = (1.0 - 2.0 * bit) * 3.5;
    return llr;
}

double fixture_llr_ternary_suppressed(int bit, double llr_mag) {
    return bit ? -llr_mag : llr_mag;  // hcq-lint: allow(llr-sign) fixture: same-line form
}
