// Anneal schedules — the programmable [time (us), s] waypoint sequences of
// Section 4.1 and Figure 5.
//
// The annealing parameter s in [0, 1] is the inverse strength of the quantum
// fluctuation signal: s = 0 is a fully quantum state (a measurement returns
// a random bitstring), s = 1 is a frozen classical register.  The paper's
// three protocols are built from the exact waypoint algebra it states:
//
//   FA:  [0,0] -F-> [s_p, s_p] -P-> [s_p+t_p, s_p] -F-> [t_a+t_p, 1]
//   RA:  [0,1] -R-> [1-s_p, s_p] -P-> [1-s_p+t_p, s_p] -F-> [2(1-s_p)+t_p, 1]
//   FR:  [0,0] -F-> [c_p, c_p] -R-> [2c_p-s_p, s_p] -P->
//        [2c_p-s_p+t_p, s_p] -F-> [2c_p-2s_p+t_p+t_a, 1]
//
// so that total durations (which enter TTS) are t_a+t_p, 2(1-s_p)+t_p and
// 2c_p-2s_p+t_p+t_a respectively.
#ifndef HCQ_CORE_SCHEDULE_H
#define HCQ_CORE_SCHEDULE_H

#include <string>
#include <vector>

namespace hcq::anneal {

/// One waypoint of a piecewise-linear schedule.
struct schedule_point {
    double time_us = 0.0;
    double s = 0.0;
};

/// The three protocols investigated by the paper.
enum class protocol { forward, reverse, forward_reverse };

/// "FA" / "RA" / "FR".
[[nodiscard]] const char* to_string(protocol p) noexcept;

/// Validated piecewise-linear anneal schedule.
class anneal_schedule {
public:
    /// Builds from waypoints; throws std::invalid_argument unless times start
    /// at 0 and strictly increase (exact duplicates are collapsed), every s is
    /// within [0, 1], and the total duration is positive.
    explicit anneal_schedule(std::vector<schedule_point> points, std::string label = "custom");

    /// Plain forward anneal [0,0] -> [t_a, 1] (no pause).
    [[nodiscard]] static anneal_schedule forward_plain(double anneal_time_us);

    /// Paper FA with a pause of t_p at s_p; requires 0 < s_p < 1 and
    /// t_a > s_p (the paper's algebra implies a unit ramp rate before the
    /// pause, so the post-pause ramp lasts t_a - s_p).
    [[nodiscard]] static anneal_schedule forward(double anneal_time_us, double pause_location,
                                                 double pause_time_us);

    /// Paper RA: backward from the classical state to s_p, pause t_p, then
    /// forward; requires 0 < s_p < 1.
    [[nodiscard]] static anneal_schedule reverse(double switch_pause_location,
                                                 double pause_time_us);

    /// Paper FR: forward to c_p, backward to s_p (no measurement in
    /// between), pause, forward; requires 0 < s_p < c_p < 1 and t_a > s_p.
    [[nodiscard]] static anneal_schedule forward_reverse(double turn_location,
                                                         double switch_pause_location,
                                                         double pause_time_us,
                                                         double anneal_time_us);

    /// Schedule for one protocol with the paper's parameter names.
    [[nodiscard]] static anneal_schedule make(protocol p, double s_p, double t_p,
                                              double t_a = 1.0, double c_p = 0.0);

    [[nodiscard]] double duration_us() const noexcept { return points_.back().time_us; }

    /// s(t) by linear interpolation; clamps t outside [0, duration].
    [[nodiscard]] double s_at(double time_us) const;

    /// True when the schedule begins at s = 1 (requires a programmed
    /// classical initial state — the defining feature of reverse annealing).
    [[nodiscard]] bool starts_classical() const noexcept { return points_.front().s >= 1.0; }

    [[nodiscard]] const std::vector<schedule_point>& points() const noexcept { return points_; }
    [[nodiscard]] const std::string& label() const noexcept { return label_; }

private:
    std::vector<schedule_point> points_;
    std::string label_;
};

}  // namespace hcq::anneal

#endif  // HCQ_CORE_SCHEDULE_H
