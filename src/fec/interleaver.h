// Row/column block interleaver.
//
// Write row-major, read column-major: interleave maps in[r*cols + c] to
// out[c*rows + r], and deinterleave is the exact inverse.  A burst of up to
// `rows` consecutive CODED-bit errors on the channel lands at least `cols`
// apart after deinterleaving — which is what lets the Viterbi decoder
// survive the Jakes-fading error bursts the uncoded link measures.
// 1xN and Nx1 interleavers are the identity.
#ifndef HCQ_FEC_INTERLEAVER_H
#define HCQ_FEC_INTERLEAVER_H

#include <cstdint>
#include <span>
#include <stdexcept>

namespace hcq::fec {

class interleaver {
public:
    /// Throws std::invalid_argument on zero rows or columns.
    interleaver(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
        if (rows == 0 || cols == 0) {
            throw std::invalid_argument("interleaver: zero rows or cols");
        }
    }

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return rows_ * cols_; }

    /// out[c*rows + r] = in[r*cols + c].  Works for bits and for LLRs.
    template <typename T>
    void interleave(std::span<const T> in, std::span<T> out) const {
        check(in.size(), out.size());
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) out[c * rows_ + r] = in[r * cols_ + c];
        }
    }

    /// The inverse permutation: out[r*cols + c] = in[c*rows + r].
    template <typename T>
    void deinterleave(std::span<const T> in, std::span<T> out) const {
        check(in.size(), out.size());
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) out[r * cols_ + c] = in[c * rows_ + r];
        }
    }

private:
    void check(std::size_t in, std::size_t out) const {
        if (in != size() || out != size()) {
            throw std::invalid_argument("interleaver: span length != rows*cols");
        }
    }

    std::size_t rows_;
    std::size_t cols_;
};

}  // namespace hcq::fec

#endif  // HCQ_FEC_INTERLEAVER_H
