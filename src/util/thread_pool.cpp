#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace hcq::util {

thread_pool::thread_pool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    num_workers_ = num_threads;
    workers_.reserve(num_threads);
    try {
        for (std::size_t i = 0; i < num_threads; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    } catch (...) {
        // Partial spawn (e.g. EAGAIN at the OS thread limit): shut down the
        // workers that did start instead of terminating via ~thread.
        stop();
        throw;
    }
}

thread_pool::~thread_pool() { stop(); }

void thread_pool::stop() {
    std::vector<std::thread> workers;
    {
        const mutex_lock lock(mutex_);
        stopping_ = true;
        workers.swap(workers_);  // claim the threads so overlapping stops can't double-join
    }
    task_available_.notify_all();
    for (auto& w : workers) {
        if (w.joinable()) w.join();
    }
}

void thread_pool::submit(std::function<void()> task) {
    {
        const mutex_lock lock(mutex_);
        if (stopping_) {
            throw std::runtime_error("thread_pool::submit: pool is stopping; task rejected");
        }
        tasks_.push(std::move(task));
    }
    task_available_.notify_one();
}

void thread_pool::wait_idle() {
    std::exception_ptr err;
    {
        mutex_lock lock(mutex_);
        // Predicate in the calling scope (not a lambda) so the analysis
        // checks the guarded reads against the held lock — see util/sync.h.
        while (!tasks_.empty() || in_flight_ != 0) idle_.wait(lock);
        err = std::exchange(first_error_, nullptr);
    }
    if (err) std::rethrow_exception(err);
}

thread_pool::queue_snapshot thread_pool::snapshot() const {
    const mutex_lock lock(mutex_);
    return {tasks_.size(), in_flight_};
}

std::size_t thread_pool::queued() const { return snapshot().queued; }

std::size_t thread_pool::in_flight() const { return snapshot().in_flight; }

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            mutex_lock lock(mutex_);
            while (!stopping_ && tasks_.empty()) task_available_.wait(lock);
            if (tasks_.empty()) return;  // stopping_ and drained
            task = std::move(tasks_.front());
            tasks_.pop();
            ++in_flight_;
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            const mutex_lock lock(mutex_);
            --in_flight_;
            if (error && !first_error_) first_error_ = error;
        }
        idle_.notify_all();
    }
}

void pool_for_each(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t num_threads) {
    if (n == 0) return;
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    num_threads = std::min(num_threads, n);
    if (num_threads <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    // One chunk task per worker pulling indices off a shared counter: O(1)
    // queue traffic regardless of n, unlike one queued task per index.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    thread_pool pool(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
        pool.submit([&fn, &next, &failed, n] {
            for (;;) {
                if (failed.load(std::memory_order_relaxed)) return;
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) return;
                try {
                    fn(i);
                } catch (...) {
                    failed.store(true, std::memory_order_relaxed);
                    throw;  // first exception lands in the pool and resurfaces below
                }
            }
        });
    }
    pool.wait_idle();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads) {
    pool_for_each(n, fn, num_threads);
}

}  // namespace hcq::util
