// Single-spin-flip Metropolis dynamics on a QUBO — the kernel under both the
// plain simulated-annealing baseline and the annealer emulator (core/anneal).
//
// The engine keeps the current assignment, its energy, and all local fields
// incrementally, so one sweep costs O(N) per accepted flip and O(1) per
// rejected one (amortised O(N^2) per sweep worst case).
#ifndef HCQ_CLASSICAL_METROPOLIS_H
#define HCQ_CLASSICAL_METROPOLIS_H

#include <cmath>
#include <stdexcept>
#include <vector>

#include "qubo/model.h"
#include "util/rng.h"

namespace hcq::solvers {

/// Incremental Metropolis state over one QUBO.
class metropolis_engine {
public:
    /// Unbound engine; call reset() before use (hot-path engine reuse).
    metropolis_engine() = default;

    /// Binds to `q` (must outlive the engine) and sets the initial state.
    metropolis_engine(const qubo::qubo_model& q, qubo::bit_vector initial);

    /// Rebinds to `q` and copies `initial` into the reused state buffers —
    /// equivalent to constructing a fresh engine, without the allocations.
    void reset(const qubo::qubo_model& q, std::span<const std::uint8_t> initial);

    /// Replaces the current state (recomputes energy and fields, O(N^2)).
    void set_state(qubo::bit_vector bits);

    /// One pass over all variables at inverse exploration strength
    /// `temperature` (>= 0; 0 means strictly-greedy descent moves only).
    /// Returns the number of accepted flips.  Defined inline below: this is
    /// the innermost loop of every sweep solver, and keeping it visible to
    /// the caller's translation unit is worth ~2x on the solve hot path.
    std::size_t sweep(double temperature, util::rng& rng);

    /// Proposes a single flip of variable i (Metropolis rule); returns true
    /// if accepted.
    bool try_flip(std::size_t i, double temperature, util::rng& rng);

    /// Unconditionally flips variable i (used by move-always heuristics such
    /// as tabu search).
    void force_flip(std::size_t i);

    [[nodiscard]] const qubo::bit_vector& state() const noexcept { return bits_; }
    [[nodiscard]] double energy() const noexcept { return energy_; }
    [[nodiscard]] std::size_t num_variables() const noexcept { return bits_.size(); }

    /// Current local field of variable i (see qubo_model::local_field).
    [[nodiscard]] double field(std::size_t i) const { return fields_.at(i); }

    /// All current local fields — lets hot solver loops read fields through
    /// a raw pointer instead of per-element bounds-checked field() calls.
    [[nodiscard]] const std::vector<double>& fields() const noexcept { return fields_; }

private:
    void rebuild();

    const qubo::qubo_model* model_ = nullptr;
    qubo::bit_vector bits_;
    std::vector<double> fields_;
    double energy_ = 0.0;
};

// Hot-path flip kernels, inline so sweep solvers see them without a
// cross-translation-unit call per proposed flip.  The arithmetic is
// byte-for-byte the historical out-of-line implementation — moving it here
// changes where the code is emitted, not what it computes.

inline void metropolis_engine::force_flip(std::size_t i) {
    const double delta = bits_[i] ? -fields_[i] : fields_[i];
    const double step = bits_[i] ? -1.0 : 1.0;  // q_i change
    bits_[i] ^= 1U;
    energy_ += delta;
    // Branchless field update: run the axpy over the full row (which the
    // compiler vectorises), then undo the one j == i term the skipping loop
    // never touched.  fields_[i] is restored exactly, every other entry sees
    // the identical single fused add, so the state is bit-identical to the
    // branchy per-element loop.
    const double saved_fi = fields_[i];
    const double* row = model_->row(i).data();
    double* f = fields_.data();
    const std::size_t n = bits_.size();
    for (std::size_t j = 0; j < n; ++j) f[j] += row[j] * step;
    f[i] = saved_fi;
}

inline bool metropolis_engine::try_flip(std::size_t i, double temperature, util::rng& rng) {
    if (temperature < 0.0) throw std::invalid_argument("metropolis: negative temperature");
    const double delta = bits_[i] ? -fields_[i] : fields_[i];
    bool accept = delta <= 0.0;
    if (!accept && temperature > 0.0) {
        accept = rng.uniform() < std::exp(-delta / temperature);
    }
    if (!accept) return false;
    force_flip(i);
    return true;
}

inline std::size_t metropolis_engine::sweep(double temperature, util::rng& rng) {
    std::size_t accepted = 0;
    const std::size_t n = bits_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (try_flip(i, temperature, rng)) ++accepted;
    }
    return accepted;
}

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_METROPOLIS_H
