// Tests for the end-to-end link simulator: deterministic statistics at any
// thread count, correct report shapes, exactness of the sphere path on the
// paper's noiseless corpus, and configuration validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/schedule.h"
#include "link/link_sim.h"

namespace {

namespace lk = hcq::link;
namespace wl = hcq::wireless;

lk::link_config small_config() {
    lk::link_config config;
    config.num_uses = 24;
    config.num_users = 2;
    config.mod = wl::modulation::qpsk;
    config.snr_db = 12.0;
    config.hybrid_reads = 10;
    config.sa.num_reads = 4;
    config.sa.num_sweeps = 40;
    config.seed = 77;
    return config;
}

TEST(LinkSim, StatisticsBitIdenticalAcrossThreadCounts) {
    auto config = small_config();
    config.paths = {lk::path_kind::zf, lk::path_kind::mmse, lk::path_kind::kbest,
                    lk::path_kind::sphere, lk::path_kind::sa, lk::path_kind::hybrid_gs_ra};

    config.num_threads = 1;
    const auto serial = lk::run_link_simulation(config);
    for (const std::size_t threads : {2UL, 8UL}) {
        config.num_threads = threads;
        const auto parallel = lk::run_link_simulation(config);
        ASSERT_EQ(parallel.paths.size(), serial.paths.size());
        for (std::size_t p = 0; p < serial.paths.size(); ++p) {
            SCOPED_TRACE(serial.paths[p].name + " @ " + std::to_string(threads) + " threads");
            EXPECT_EQ(parallel.paths[p].ber.errors(), serial.paths[p].ber.errors());
            EXPECT_EQ(parallel.paths[p].ber.total_bits(), serial.paths[p].ber.total_bits());
            EXPECT_EQ(parallel.paths[p].exact_frames, serial.paths[p].exact_frames);
            // Bit-identical, not just close: the serial use-order aggregation
            // must make the sum independent of scheduling.
            EXPECT_EQ(parallel.paths[p].sum_ml_cost, serial.paths[p].sum_ml_cost);
        }
    }
}

TEST(LinkSim, SpherePathIsExactOnNoiselessPaperCorpus) {
    auto config = small_config();
    config.noiseless = true;
    config.channel = wl::channel_model::unit_gain_random_phase;
    config.paths = {lk::path_kind::sphere};
    const auto report = lk::run_link_simulation(config);
    const auto& sd = report.path(lk::path_kind::sphere);
    EXPECT_EQ(sd.ber.errors(), 0u);
    EXPECT_EQ(sd.exact_frames, config.num_uses);
    EXPECT_NEAR(sd.sum_ml_cost, 0.0, 1e-6);
}

TEST(LinkSim, ReportShapesAndStageComposition) {
    auto config = small_config();
    config.paths = {lk::path_kind::zf, lk::path_kind::sa, lk::path_kind::hybrid_gs_ra};
    const auto report = lk::run_link_simulation(config);

    EXPECT_EQ(report.synthesis.service_us.size(), config.num_uses);
    EXPECT_EQ(report.reduction.service_us.size(), config.num_uses);
    ASSERT_EQ(report.paths.size(), 3u);

    const auto& zf = report.path(lk::path_kind::zf);
    EXPECT_EQ(zf.stage_names(), (std::vector<std::string>{"synth", "detect"}));
    const auto& sa = report.path(lk::path_kind::sa);
    EXPECT_EQ(sa.stage_names(), (std::vector<std::string>{"synth", "qubo", "solve"}));
    const auto& hybrid = report.path(lk::path_kind::hybrid_gs_ra);
    EXPECT_EQ(hybrid.stage_names(),
              (std::vector<std::string>{"synth", "qubo", "classical", "quantum"}));

    for (const auto& path : report.paths) {
        EXPECT_EQ(path.ber.total_bits(),
                  config.num_uses * config.num_users * wl::bits_per_symbol(config.mod));
        for (const auto& trace : path.stages) {
            EXPECT_EQ(trace.service_us.size(), config.num_uses);
            EXPECT_GE(trace.p99_us(), trace.p50_us());
        }
        EXPECT_EQ(path.replay.num_jobs, config.num_uses);
        EXPECT_EQ(path.replay.stage_utilization.size(), path.stages.size());
        EXPECT_GT(path.replay.throughput_per_us, 0.0);
    }

    // The hybrid's quantum stage is its programmed occupancy: duration x reads.
    const double programmed_us =
        hcq::anneal::anneal_schedule::reverse(config.switch_pause_location,
                                              config.pause_time_us)
            .duration_us() *
        static_cast<double>(config.hybrid_reads);
    for (const double q_us : hybrid.stages.back().service_us) {
        EXPECT_DOUBLE_EQ(q_us, programmed_us);
    }

    EXPECT_THROW((void)report.path(lk::path_kind::kbest), std::out_of_range);
}

TEST(LinkSim, SummaryTableHasOneRowPerPath) {
    auto config = small_config();
    config.paths = {lk::path_kind::zf, lk::path_kind::hybrid_gs_ra};
    const auto report = lk::run_link_simulation(config);
    const auto t = lk::summary_table(report);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 10u);
}

TEST(LinkSim, PathKindNamesRoundTrip) {
    using pk = lk::path_kind;
    for (const pk kind : {pk::zf, pk::mmse, pk::kbest, pk::sphere, pk::sa, pk::hybrid_gs_ra}) {
        EXPECT_EQ(lk::parse_path_kind(lk::to_string(kind)), kind);
    }
    EXPECT_EQ(lk::parse_path_kind("gsra"), pk::hybrid_gs_ra);
    EXPECT_EQ(lk::parse_path_kind("sphere"), pk::sphere);
    EXPECT_THROW((void)lk::parse_path_kind("quantum-leap"), std::invalid_argument);
}

TEST(LinkSim, ConfigValidation) {
    {
        auto config = small_config();
        config.num_uses = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.num_users = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = {};
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = {lk::path_kind::zf, lk::path_kind::zf};
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.offered_load = 0.0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.hybrid_reads = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
}

}  // namespace
