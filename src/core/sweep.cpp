#include "core/sweep.h"

#include <stdexcept>

#include "metrics/delta_e.h"
#include "metrics/stats.h"
#include "util/thread_pool.h"

namespace hcq::hybrid {

schedule_eval evaluate_schedule(const anneal::annealer_emulator& device,
                                const qubo::qubo_model& q,
                                const anneal::anneal_schedule& schedule, std::size_t reads,
                                double optimal_energy, util::rng& rng,
                                const std::optional<qubo::bit_vector>& initial,
                                double confidence_percent, double energy_tolerance) {
    const auto samples = device.sample(q, schedule, reads, rng, initial);
    schedule_eval out;
    out.reads = reads;
    out.duration_us = schedule.duration_us();
    out.p_star = samples.success_probability(optimal_energy, energy_tolerance);
    out.tts_us = time_to_solution_us(out.duration_us, out.p_star, confidence_percent);
    metrics::running_stats gap;
    for (const auto& s : samples.all()) {
        gap.add(metrics::delta_e_percent(s.energy, optimal_energy));
    }
    out.mean_delta_e = gap.mean();
    return out;
}

std::vector<double> paper_sp_grid() {
    std::vector<double> grid;
    for (double sp = 0.25; sp <= 0.99 + 1e-9; sp += 0.04) grid.push_back(sp);
    return grid;
}

fr_oracle_result best_forward_reverse(const anneal::annealer_emulator& device,
                                      const qubo::qubo_model& q, double s_p, double t_p,
                                      double t_a, std::size_t reads, double optimal_energy,
                                      util::rng& rng, double confidence_percent,
                                      std::size_t num_threads) {
    std::vector<double> grid;
    for (const double cp : paper_sp_grid()) {
        if (cp > s_p && cp < 1.0) grid.push_back(cp);
    }
    if (grid.empty()) {
        throw std::invalid_argument("best_forward_reverse: no feasible c_p above s_p");
    }

    // Each grid point draws from its own stream derived off a single draw of
    // the caller's generator, so the fan-out below is deterministic in the
    // incoming rng state and independent of the worker count.
    const util::rng base(rng());
    std::vector<schedule_eval> evals(grid.size());
    util::pool_for_each(
        grid.size(),
        [&](std::size_t k) {
            util::rng stream = base.derive(k);
            const auto schedule =
                anneal::anneal_schedule::forward_reverse(grid[k], s_p, t_p, t_a);
            evals[k] = evaluate_schedule(device, q, schedule, reads, optimal_energy, stream,
                                         std::nullopt, confidence_percent);
        },
        num_threads);

    fr_oracle_result best;
    bool found = false;
    for (std::size_t k = 0; k < grid.size(); ++k) {
        const auto& eval = evals[k];
        const bool better =
            !found || eval.tts_us < best.eval.tts_us ||
            (eval.tts_us == best.eval.tts_us && eval.p_star > best.eval.p_star);
        if (better) {
            best.eval = eval;
            best.best_cp = grid[k];
            found = true;
        }
    }
    return best;
}

}  // namespace hcq::hybrid
