// Pipelined classical-quantum computation structures (paper Figure 2).
//
// Successive wireless channel uses arrive as a stream of jobs; each job
// passes through a fixed sequence of processing stages (e.g. a classical
// greedy-search unit, then a quantum reverse-annealing unit).  While the
// quantum unit processes channel use N, the classical unit may already work
// on N+1 — exactly the overlap the figure depicts.  The simulator is a
// tandem queue with single-server stages:
//     start[k][j] = max(done[k-1][j], done[k][j-1]),
//     done[k][j]  = start[k][j] + service_k(j).
//
// Modelling assumptions, explicitly:
//   * Buffers between stages are UNBOUNDED: a job finishing stage k-1 always
//     parks in front of stage k, no matter how far behind that stage is.
//     There is no backpressure and no drop policy, so offered load above the
//     bottleneck service rate grows queues (and latency) without bound —
//     saturate deliberately when probing capacity, and read p99 latency
//     against an ARQ budget rather than expecting it to plateau.
//   * Each stage serves one job at a time, in arrival order (FIFO).
//   * `stage_utilization[k]` is busy time / makespan — the fraction of the
//     whole run the stage spent serving, measured against the LAST departure
//     time, not against the stage's own active window.  Early stages that
//     finish their work and then idle while the tail drains therefore report
//     lower utilisation than an in-isolation measurement would.
//
// The simulator reports the link-layer quantities of interest: sustained
// throughput, per-channel-use latency percentiles (the ARQ turnaround
// budget), stage utilisation, and queueing delay.  Service models may be
// synthetic (constant / lognormal) or measured traces recorded from the real
// solver code paths by the end-to-end link simulator (link/link_sim.h).
#ifndef HCQ_PIPELINE_PIPELINE_H
#define HCQ_PIPELINE_PIPELINE_H

#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/table.h"

namespace hcq::pipeline {

/// One pipeline stage: a name plus a per-job service-time model.
class stage {
public:
    using service_model = std::function<double(std::size_t job_index, util::rng& rng)>;

    stage(std::string name, service_model service);

    /// Deterministic service time.
    [[nodiscard]] static stage constant(std::string name, double service_us);

    /// Lognormal-jittered service time: exp(N(log median, sigma)).
    [[nodiscard]] static stage lognormal(std::string name, double median_us, double sigma);

    /// Replays a measured per-job service-time trace (e.g. the wall times the
    /// end-to-end link simulator records for each stage).  Job j is served in
    /// trace[j % trace.size()] us, so a short trace cycles over a longer run.
    /// Throws std::invalid_argument on an empty trace or any negative /
    /// non-finite entry.
    [[nodiscard]] static stage from_trace(std::string name, std::vector<double> trace_us);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] double service_us(std::size_t job_index, util::rng& rng) const;

private:
    std::string name_;
    service_model service_;
};

/// Arrival process for channel uses.
struct arrival_process {
    double interarrival_us = 10.0;  ///< mean spacing between channel uses
    bool poisson = false;           ///< exponential spacing instead of fixed
};

/// Aggregate simulation outcome.
struct simulation_result {
    std::size_t num_jobs = 0;
    double makespan_us = 0.0;               ///< last departure time
    double throughput_per_us = 0.0;         ///< jobs / makespan
    double mean_latency_us = 0.0;           ///< arrival -> final departure
    double p50_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double max_latency_us = 0.0;
    std::vector<double> stage_utilization;  ///< busy time / makespan, per stage
    std::vector<double> mean_queue_wait_us; ///< time waiting before each stage
    std::vector<double> latencies_us;       ///< per-job, for custom analysis
};

/// Runs `num_jobs` channel uses through the stages.  Throws
/// std::invalid_argument on an empty stage list or non-positive parameters.
[[nodiscard]] simulation_result simulate(const std::vector<stage>& stages,
                                         std::size_t num_jobs, const arrival_process& arrivals,
                                         util::rng& rng);

/// Renders a simulation_result as a two-column metric/value util::table
/// (throughput, latency percentiles, then per-stage utilisation and queue
/// wait).  `stage_names` labels the per-stage rows and must either match the
/// per-stage vector sizes or be empty (stages are then numbered).  This is
/// the one place result formatting lives — examples and benches print
/// through it instead of ad-hoc streaming.
[[nodiscard]] util::table summary_table(const simulation_result& result,
                                        const std::vector<std::string>& stage_names = {});

/// Convenience builder for the paper's two-stage hybrid: a classical
/// initialiser stage followed by a quantum annealer stage whose service time
/// is reads x schedule duration plus a per-job programming overhead.
[[nodiscard]] std::vector<stage> make_hybrid_stages(double classical_us,
                                                    double schedule_duration_us,
                                                    std::size_t reads_per_use,
                                                    double programming_us = 0.0);

}  // namespace hcq::pipeline

#endif  // HCQ_PIPELINE_PIPELINE_H
