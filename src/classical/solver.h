// Interfaces for classical QUBO solvers and for the "classical module" of a
// hybrid design (paper Figure 1): an initialiser produces a candidate state
// that seeds the quantum module.
#ifndef HCQ_CLASSICAL_SOLVER_H
#define HCQ_CLASSICAL_SOLVER_H

#include <memory>
#include <string>
#include <vector>

#include "classical/metropolis.h"
#include "classical/sample_set.h"
#include "qubo/model.h"
#include "util/rng.h"

namespace hcq::solvers {

/// Result of running an initialiser: the candidate state and the classical
/// compute time spent producing it (used for end-to-end hybrid accounting).
struct initial_state {
    qubo::bit_vector bits;
    double energy = 0.0;
    double elapsed_us = 0.0;
};

/// Reusable per-worker scratch for solve_best_into.  One instance serves
/// every solver kind: each override uses the buffers it needs (the Metropolis
/// engine and bit buffers for sweep solvers, the real/index/mask buffers for
/// greedy construction, the initial-state slot for hybrid structures), and a
/// warmed-up scratch makes repeated solves allocation-free.
struct solve_scratch {
    metropolis_engine engine;
    qubo::bit_vector bits_a;           ///< initial / start states
    qubo::bit_vector bits_b;           ///< best-so-far carrier
    qubo::bit_vector bits_c;           ///< per-read carrier (annealer emulator)
    std::vector<double> real_a;        ///< e.g. greedy Ising fields
    std::vector<double> real_b;        ///< e.g. greedy partial local fields
    std::vector<std::size_t> index_a;  ///< e.g. greedy rank order, tabu expiry
    std::vector<std::uint8_t> mask_a;  ///< e.g. greedy decided-variable flags
    initial_state init;                ///< hybrid classical-module output
};

/// A full classical QUBO solver: returns one or more samples.
class solver {
public:
    virtual ~solver() = default;

    /// Runs the solver, drawing randomness from `rng`.
    [[nodiscard]] virtual sample_set solve(const qubo::qubo_model& q, util::rng& rng) const = 0;

    /// Best-sample fast path: runs the same reads as solve() but keeps only
    /// the winning state, written into `best` (reused buffer), returning its
    /// energy.  Contract: identical RNG consumption and identical selection
    /// to solve(q, rng).best() — the first strictly-lowest-energy read wins —
    /// so callers that only need the best sample can switch freely.  The
    /// default delegates to solve(); overrides reuse `scratch` to make the
    /// warmed-up call allocation-free.
    virtual double solve_best_into(const qubo::qubo_model& q, util::rng& rng,
                                   solve_scratch& scratch, qubo::bit_vector& best) const;

    /// Short identifier for bench output.
    [[nodiscard]] virtual std::string name() const = 0;
};

/// The classical half of a hybrid classical-quantum structure.
class initializer {
public:
    virtual ~initializer() = default;

    [[nodiscard]] virtual initial_state initialize(const qubo::qubo_model& q,
                                                   util::rng& rng) const = 0;

    /// initialize() into reused buffers (same draws, same state); the default
    /// delegates to initialize().  Overrides use `scratch` so a warmed-up
    /// call performs no allocations.
    virtual void initialize_into(const qubo::qubo_model& q, util::rng& rng,
                                 solve_scratch& scratch, initial_state& out) const;

    [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform-random initial state (the paper's "RA from a randomly picked
/// initial state", Figure 6 centre panel).
class random_initializer final : public initializer {
public:
    [[nodiscard]] initial_state initialize(const qubo::qubo_model& q,
                                           util::rng& rng) const override;
    void initialize_into(const qubo::qubo_model& q, util::rng& rng, solve_scratch& scratch,
                         initial_state& out) const override;
    [[nodiscard]] std::string name() const override { return "random"; }
};

/// Fixed, externally supplied initial state (e.g. the ground truth for the
/// Delta-E_IS = 0 reference runs of Figure 8).
class fixed_initializer final : public initializer {
public:
    explicit fixed_initializer(qubo::bit_vector bits, std::string label = "fixed");

    [[nodiscard]] initial_state initialize(const qubo::qubo_model& q,
                                           util::rng& rng) const override;
    [[nodiscard]] std::string name() const override { return label_; }

private:
    qubo::bit_vector bits_;
    std::string label_;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_SOLVER_H
