#include "fec/viterbi.h"

#include <bit>
#include <limits>
#include <stdexcept>
#include <utility>

namespace hcq::fec {

viterbi_decoder::viterbi_decoder(std::size_t constraint_length,
                                 std::vector<std::uint32_t> generators)
    : k_(constraint_length), generators_(std::move(generators)) {
    // Delegate parameter validation to the encoder's constructor checks.
    (void)conv_encoder(k_, generators_);
    num_states_ = std::size_t{1} << (k_ - 1);
    outputs_.resize(num_states_ * 2);
    for (std::uint32_t full = 0; full < outputs_.size(); ++full) {
        std::uint32_t packed = 0;
        for (std::size_t j = 0; j < generators_.size(); ++j) {
            packed |= static_cast<std::uint32_t>(std::popcount(full & generators_[j]) & 1U) << j;
        }
        outputs_[full] = packed;
    }
}

// Trellis bookkeeping.  A transition consumes input bit b in state prev:
// full = (b << (K-1)) | prev, next = full >> 1.  Hence b is the MSB of the
// NEXT state (the input bit just shifted in), and the two predecessors of a
// next state differ only in the dropped LSB of full — which is what the
// per-(step, state) decision stores.
void viterbi_decoder::decode(std::span<const double> llrs, std::size_t info_bits, scratch& s,
                             std::vector<std::uint8_t>& out) const {
    const std::size_t steps = info_bits + k_ - 1;
    const std::size_t branch = generators_.size();
    if (llrs.size() != steps * branch) {
        throw std::invalid_argument("viterbi: LLR length != (info_bits + K - 1) * generators");
    }
    constexpr double neg_inf = -std::numeric_limits<double>::infinity();
    const std::size_t state_mask = num_states_ - 1;

    s.metric.assign(num_states_, neg_inf);
    s.metric[0] = 0.0;  // the encoder starts in state 0
    s.next_metric.resize(num_states_);
    s.decisions.resize(steps * num_states_);

    for (std::size_t t = 0; t < steps; ++t) {
        const bool tail = t >= info_bits;  // tail steps carry a forced 0 bit
        for (std::size_t ns = 0; ns < num_states_; ++ns) s.next_metric[ns] = neg_inf;
        std::uint8_t* const decide = s.decisions.data() + t * num_states_;
        // Only same-b candidates ever compete for a next state (b is the
        // next state's MSB), so the deterministic tie-break is purely the
        // scan order below: ascending prev state plus strict >, i.e. the
        // LOWER predecessor survives a tie.
        for (std::uint32_t b = 0; b <= (tail ? 0U : 1U); ++b) {
            for (std::size_t prev = 0; prev < num_states_; ++prev) {
                const double from = s.metric[prev];
                if (from == neg_inf) continue;
                const std::uint32_t full = (b << (k_ - 1)) | static_cast<std::uint32_t>(prev);
                const std::uint32_t packed = outputs_[full];
                double m = from;
                for (std::size_t j = 0; j < branch; ++j) {
                    const double llr = llrs[t * branch + j];
                    // Positive LLR favours coded bit 0 (wireless/soft.h).
                    m += ((packed >> j) & 1U) != 0 ? -llr : llr;
                }
                const std::size_t next = full >> 1;
                if (m > s.next_metric[next]) {
                    s.next_metric[next] = m;
                    decide[next] = static_cast<std::uint8_t>(full & 1U);  // dropped LSB
                }
            }
        }
        std::swap(s.metric, s.next_metric);
    }

    // Termination anchors the traceback at state 0; walking back, the input
    // bit of step t is the MSB of the state AFTER step t, and the
    // predecessor re-attaches the stored dropped LSB.
    out.resize(info_bits);
    std::size_t state = 0;
    for (std::size_t t = steps; t-- > 0;) {
        const std::uint8_t lsb = s.decisions[t * num_states_ + state];
        const std::uint8_t b = static_cast<std::uint8_t>((state << 1) >> (k_ - 1));
        if (t < info_bits) out[t] = b;
        state = ((state << 1) | lsb) & state_mask;
    }
}

}  // namespace hcq::fec
