// End-to-end streaming link simulator (hcq::link) — the full
// channel-use -> QUBO -> solve -> BER path of the paper, run as ONE system.
//
// Where the figure benches study solvers on frozen corpora and
// pipeline/pipeline.h studies queueing on synthetic service models, this
// layer closes the loop: it generates successive wireless channel uses
// (wireless/channel.h + wireless/mimo.h + modulation), reduces each to QUBO
// form through the QuAMax transform (detect/transform.h), dispatches the
// solves across util::thread_pool side by side — conventional detectors
// (linear, K-best, exact sphere), a classical SA baseline on the QUBO, and
// the paper's hybrid GS+RA structure (core/hybrid_solver.h) — and records
// *measured* per-stage wall times.  Those traces feed pipeline::simulate via
// stage::from_trace, so Figure-2 throughput/latency numbers come from the
// actual code paths instead of lognormal stand-ins.
//
// Determinism: every channel use draws from an RNG stream derived from
// (seed, domain, use index) and every (use, path) solve from
// (seed, domain, use * num_paths + path), following the parallel_runner
// scheme — the thread pool decides only *when* a cell runs, never *what* it
// computes, and aggregation is serial in use order.  All link-layer
// statistics (BER, ML costs, exact-frame counts) are therefore bit-identical
// at any thread count; only the measured wall times vary run to run.
#ifndef HCQ_LINK_LINK_SIM_H
#define HCQ_LINK_LINK_SIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "classical/simulated_annealing.h"
#include "metrics/ber.h"
#include "pipeline/pipeline.h"
#include "util/table.h"
#include "wireless/channel.h"
#include "wireless/modulation.h"

namespace hcq::link {

/// Detection paths a channel use can be sent down, side by side.
enum class path_kind {
    zf,            ///< linear zero-forcing (detect::zf_detector)
    mmse,          ///< linear MMSE (detect::mmse_detector)
    kbest,         ///< breadth-first K-best tree search (detect::kbest_detector)
    sphere,        ///< exact ML sphere decoder (detect::sphere_detector)
    sa,            ///< classical simulated annealing on the reduced QUBO
    hybrid_gs_ra,  ///< greedy-search initialiser + reverse anneal (the paper's design)
};

/// "ZF" / "MMSE" / "K-best" / "SD" / "SA" / "GS+RA".
[[nodiscard]] const char* to_string(path_kind kind) noexcept;

/// Parses the names above (case-sensitive) plus the CLI aliases
/// "zf"/"mmse"/"kbest"/"sphere"/"sa"/"gsra"; throws std::invalid_argument on
/// anything else.
[[nodiscard]] path_kind parse_path_kind(const std::string& name);

/// Link-simulation knobs.  Defaults exercise the acceptance scenario: >= 100
/// channel uses through wireless -> QUBO -> {linear, sphere, SA, hybrid}.
struct link_config {
    std::size_t num_uses = 120;   ///< channel uses in the stream
    std::size_t num_users = 4;    ///< transmit streams, N_r = N_t
    wireless::modulation mod = wireless::modulation::qam16;
    wireless::channel_model channel = wireless::channel_model::rayleigh;
    bool noiseless = false;       ///< paper Section-4.2 corpus setting (no AWGN)
    double snr_db = 16.0;         ///< per-antenna SNR when AWGN is enabled

    /// Paths every use is detected by, in report order.
    std::vector<path_kind> paths{path_kind::zf, path_kind::kbest, path_kind::sphere,
                                 path_kind::sa, path_kind::hybrid_gs_ra};
    std::size_t kbest_width = 8;
    solvers::sa_config sa{};                  ///< SA baseline budget
    std::size_t hybrid_reads = 80;            ///< RA reads per use
    double switch_pause_location = 0.29;      ///< RA s_p (0.29 suits 16-var QUBOs)
    double pause_time_us = 1.0;               ///< RA pause t_p

    std::size_t num_threads = 0;   ///< worker threads (0 = hardware concurrency)
    std::uint64_t seed = 1;        ///< master seed for all derived streams
    double offered_load = 0.9;     ///< arrival rate / bottleneck rate in the replay
};

/// Measured wall-time trace of one named processing stage across the stream.
struct stage_trace {
    std::string name;
    std::vector<double> service_us;  ///< one entry per channel use

    [[nodiscard]] double mean_us() const;
    [[nodiscard]] double p50_us() const;
    [[nodiscard]] double p99_us() const;
};

/// Everything one detection path accumulated over the stream.
struct path_report {
    path_kind kind = path_kind::zf;
    std::string name;
    metrics::ber_counter ber;        ///< detected bits vs transmitted bits
    std::size_t exact_frames = 0;    ///< uses whose detected bits match tx exactly
    double sum_ml_cost = 0.0;        ///< sum of ||y - H x_hat||^2 (deterministic)

    /// Per-stage measured service traces, front-end first (synthesis and
    /// QUBO reduction are shared across paths; solve stages are per path —
    /// the hybrid splits into its classical and quantum halves).
    std::vector<stage_trace> stages;

    /// Tandem-queue replay of the measured traces at the configured offered
    /// load (pipeline::simulate over stage::from_trace).
    pipeline::simulation_result replay;

    [[nodiscard]] std::vector<std::string> stage_names() const;
};

/// Full link-simulation outcome.
struct link_report {
    link_config config;
    stage_trace synthesis;  ///< channel + modulation synthesis, shared front-end
    stage_trace reduction;  ///< ML -> QUBO transform, shared by the QUBO-based
                            ///< paths (all-zero when none is configured)
    std::vector<path_report> paths;

    [[nodiscard]] const path_report& path(path_kind kind) const;  ///< throws if absent
};

/// Runs the stream end to end.  Throws std::invalid_argument on zero uses or
/// users, an empty or duplicated path list, a non-positive offered load, or
/// zero hybrid reads.
[[nodiscard]] link_report run_link_simulation(const link_config& config);

/// One row per path: BER, measured mean/p50/p99 solve service, and the
/// replay's sustained throughput and p50/p99 latency (the ARQ budget view).
[[nodiscard]] util::table summary_table(const link_report& report);

}  // namespace hcq::link

#endif  // HCQ_LINK_LINK_SIM_H
