// Real-valued embedding of complex linear systems.
//
// The standard MIMO detection trick: y = H x + n over C^m becomes
//   [Re y; Im y] = [Re H, -Im H; Im H, Re H] [Re x; Im x] + [Re n; Im n]
// over R^{2m}, which lets tree-search detectors (sphere decoder, K-best,
// FCSD) enumerate per-dimension PAM alphabets.
#ifndef HCQ_LINALG_REAL_EMBED_H
#define HCQ_LINALG_REAL_EMBED_H

#include "linalg/matrix.h"

namespace hcq::linalg {

/// [Re H, -Im H; Im H, Re H] (2m x 2n).
[[nodiscard]] rmat real_embedding(const cmat& h);

/// [Re v; Im v] (2m).
[[nodiscard]] rvec real_embedding(const cvec& v);

/// Inverse of real_embedding on vectors: first half real parts, second half
/// imaginary parts; size must be even.
[[nodiscard]] cvec complex_from_embedding(const rvec& v);

// Write-into variants: same layout, same element order, but the output
// buffer is reused (resize keeps capacity) so hot callers embed without
// allocating after warm-up.

/// real_embedding(cmat) into a reused matrix.
void real_embedding_into(const cmat& h, rmat& out);

/// real_embedding(cvec) into a reused vector.
void real_embedding_into(const cvec& v, rvec& out);

/// complex_from_embedding into a reused vector.
void complex_from_embedding_into(const rvec& v, cvec& out);

}  // namespace hcq::linalg

#endif  // HCQ_LINALG_REAL_EMBED_H
