// Detector-bank server: exposes the detection-path registry over loopback
// TCP (serve/tcp_server.h).  Clients send length-prefixed binary requests
// (spec string + batch size + seed + optional deadline) and get back
// detected bits, per-use ML costs, and measured stage timings; admission
// control sheds overload per the configured backpressure policy.
//
// The --paths flag pre-resolves a spec list at startup so a typo'd bank
// fails fast with the registry's help text instead of failing per request;
// --channel likewise validates a channel spec.  Requests still name their
// own spec — the flags are a fail-fast announcement, not a restriction.
//
// Usage: ./examples/detect_server
//   [--port=7788] [--workers=4] [--buffer=256]
//   [--policy=block|drop-oldest|drop-newest] [--backend=epoll|poll]
//   [--paths=kxra:k=4] [--channel=jakes:doppler_hz=5]
//   [--run_s=0 (0 = until SIGINT/SIGTERM)] [--help]
#include <atomic>
#include <csignal>
#include <iostream>

#include "paths/registry.h"
#include "serve/tcp_server.h"
#include "util/cli.h"
#include "util/timer.h"
#include "wireless/channel_spec.h"

namespace {

std::atomic<bool> interrupted{false};

void on_signal(int) { interrupted.store(true); }

}  // namespace

int main(int argc, char** argv) try {
    using namespace hcq;
    const util::flag_set flags(argc, argv);

    if (flags.get_bool("help", false)) {
        std::cout << "detect_server — detector bank over loopback TCP\n\n"
                     "flags: --port=7788 --workers=4 --buffer=256 (admission queue slots)\n"
                     "       --policy=block|drop-oldest|drop-newest\n"
                     "         block: full queue pauses socket reads (TCP backpressure)\n"
                     "         drop-newest: full queue answers BUSY immediately\n"
                     "         drop-oldest: evict the longest-waiting request with BUSY\n"
                     "       --backend=epoll|poll (readiness multiplexer)\n"
                     "       --paths=<spec,...>  pre-resolve these specs at startup\n"
                     "       --channel=<spec>    validate a channel spec at startup\n"
                     "       --run_s=0           serve for N seconds (0 = until signal)\n\n"
                  << wireless::channel_spec::help() << "\n"
                  << paths::registry::help();
        return 0;
    }

    serve::server_config config;
    config.port = static_cast<std::uint16_t>(flags.get_int("port", 7788));
    config.num_workers = static_cast<std::size_t>(flags.get_int("workers", 4));
    config.admission_capacity = static_cast<std::size_t>(flags.get_int("buffer", 256));
    config.policy = pipeline::parse_backpressure(flags.get_string("policy", "block"));
    const std::string backend = flags.get_string("backend", "");
    if (backend == "epoll") {
        config.poll_backend = serve::poller::backend::epoll_backend;
    } else if (backend == "poll") {
        config.poll_backend = serve::poller::backend::poll_backend;
    } else if (!backend.empty()) {
        std::cerr << "detect_server: unknown --backend '" << backend
                  << "' (accepted: epoll, poll)\n";
        return 2;
    }

    // Fail fast on a bad bank or channel spec before binding the port.
    if (flags.has("paths")) {
        const auto specs = paths::parse_spec_list(flags.get_string("paths", ""));
        const auto bank = paths::registry::make_all(specs);
        std::cout << "serving bank:";
        for (const auto& path : bank) std::cout << " " << path->name();
        std::cout << "\n";
    }
    if (flags.has("channel")) {
        const auto spec = wireless::channel_spec::parse(flags.get_string("channel", ""));
        std::cout << "channel spec validated: " << spec.to_string() << "\n";
    }
    const double run_s = flags.get_double("run_s", 0.0);

    serve::tcp_server server(config);
    std::cout << "detect_server listening on 127.0.0.1:" << server.port() << " ("
              << config.num_workers << " workers, admission "
              << config.admission_capacity << " slots, policy "
              << pipeline::to_string(config.policy) << ", "
              << (config.poll_backend == serve::poller::backend::epoll_backend ? "epoll"
                                                                               : "poll")
              << ")\n";

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    const util::timer clock;
    while (!interrupted.load()) {
        if (run_s > 0.0 && clock.elapsed_s() >= run_s) break;
        util::sleep_us(50'000);
    }
    server.stop();

    const auto stats = server.stats();
    std::cout << "served_ok=" << stats.served_ok << " busy=" << stats.rejected_busy
              << " deadline=" << stats.rejected_deadline << " bad=" << stats.bad_requests
              << " error=" << stats.internal_errors << " evictions=" << stats.evictions
              << " sessions=" << stats.sessions_accepted << "\n";
    return 0;
} catch (const std::exception& e) {
    std::cerr << "detect_server: error: " << e.what() << "\n"
              << "run ./detect_server --help for flags and the path listing\n";
    return 2;
}
