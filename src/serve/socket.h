// Wrapped POSIX sockets and readiness polling for the serving front end.
//
// This module (serve/socket.{h,cpp}) is the ONLY place in the tree allowed
// to touch the raw socket / readiness syscalls — socket(), bind(), accept(),
// connect(), recv(), send(), epoll_*, poll(), read()/write() on fds — a
// contract enforced by the `raw-socket` rule in scripts/hcq_lint.py.  Every
// other layer (tcp_server, session, client, tests) speaks in unique_fd,
// io_result, and poller events, so fd lifetime bugs and EINTR/EAGAIN
// handling live in exactly one auditable file.
//
// Scope: loopback TCP only.  The serving front end multiplexes local
// clients (and CI loopback self-tests); exposing the listener beyond
// 127.0.0.1 is a deliberate non-goal of this layer.
//
// Concurrency contract: a poller and the fds it watches belong to ONE
// thread (the server's IO thread).  The single cross-thread primitive is
// wake_pipe: any thread may call wake() (an async-signal-safe write on the
// pipe's write end) to make the owning thread's poller::wait return.
#ifndef HCQ_SERVE_SOCKET_H
#define HCQ_SERVE_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hcq::serve {

/// RAII file descriptor: closes on destruction, move-only.
class unique_fd {
public:
    unique_fd() = default;
    explicit unique_fd(int fd) noexcept : fd_(fd) {}
    ~unique_fd() { reset(); }

    unique_fd(const unique_fd&) = delete;
    unique_fd& operator=(const unique_fd&) = delete;
    unique_fd(unique_fd&& other) noexcept : fd_(other.release()) {}
    unique_fd& operator=(unique_fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

    /// Closes the held fd (if any) and adopts `fd`.
    void reset(int fd = -1) noexcept;

    /// Relinquishes ownership without closing.
    [[nodiscard]] int release() noexcept {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

private:
    int fd_ = -1;
};

/// Throws std::runtime_error("serve: <what>: <errno message>").
[[noreturn]] void throw_errno(const std::string& what);

/// Non-blocking listener bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port, read back via local_port), SO_REUSEADDR set.  Throws on
/// any failure (e.g. the port is taken).
[[nodiscard]] unique_fd listen_loopback(std::uint16_t port, int backlog);

/// The locally bound port of a socket (resolves an ephemeral bind).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Accepts one pending connection from a non-blocking listener, returned
/// non-blocking.  An invalid fd means no connection was pending (EAGAIN);
/// transient per-connection failures (ECONNABORTED) also return invalid.
[[nodiscard]] unique_fd accept_client(int listener_fd);

/// Blocking connect to 127.0.0.1:`port`; the returned socket stays blocking
/// (the client side speaks strict request/response).  TCP_NODELAY is set so
/// small request frames do not sit in Nagle's buffer.
[[nodiscard]] unique_fd connect_loopback(std::uint16_t port);

/// Outcome of one non-blocking read/write attempt.
struct io_result {
    std::size_t bytes = 0;  ///< bytes actually transferred
    bool closed = false;    ///< peer closed (read) or connection broken (write)
    bool again = false;     ///< would block; retry after the next readiness event
};

/// One non-blocking recv into `buf`; EINTR retried internally.
[[nodiscard]] io_result read_some(int fd, void* buf, std::size_t len);

/// One non-blocking send from `buf`; EINTR retried internally.  EPIPE and
/// ECONNRESET report `closed` instead of throwing (a peer that hangs up
/// mid-response is routine for a server).
[[nodiscard]] io_result write_some(int fd, const void* buf, std::size_t len);

/// Blocking send of the whole buffer (client side); throws on any failure.
void send_all(int fd, const void* buf, std::size_t len);

/// Blocking receive of exactly `len` bytes (client side).  Returns false on
/// a clean EOF before the first byte; throws on an error or a mid-buffer
/// EOF (a truncated frame is a protocol violation, not a clean close).
[[nodiscard]] bool recv_exact(int fd, void* buf, std::size_t len);

/// Self-pipe used to interrupt poller::wait from other threads.  wake() is
/// safe to call from any thread; drain() belongs to the owning (IO) thread.
class wake_pipe {
public:
    wake_pipe();  ///< throws on pipe creation failure

    /// Makes the owning thread's poller::wait return (best effort: a full
    /// pipe already guarantees a pending wakeup).
    void wake() noexcept;

    /// Discards all pending wake bytes (owning thread only).
    void drain() noexcept;

    [[nodiscard]] int read_fd() const noexcept { return read_end_.get(); }

private:
    unique_fd read_end_;
    unique_fd write_end_;
};

/// One readiness event from poller::wait.
struct ready_event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< hangup or error condition; drop the fd
};

/// Level-triggered readiness multiplexer over two interchangeable backends:
/// epoll (Linux, O(ready) wakeups at thousands-of-sessions scale) and
/// portable poll() (everywhere; O(watched) per wait).  Both backends are
/// always compiled and tested; default_backend() picks epoll where it
/// exists.  Owned by one thread — see the header comment.
class poller {
public:
    enum class backend { epoll_backend, poll_backend };

    /// epoll on Linux, poll elsewhere.
    [[nodiscard]] static backend default_backend() noexcept;

    /// True when the epoll backend exists in this build.
    [[nodiscard]] static bool epoll_available() noexcept;

    /// Throws std::invalid_argument for backend::epoll_backend on a platform
    /// without epoll, std::runtime_error on epoll_create failure.
    explicit poller(backend which = default_backend());
    ~poller();

    poller(const poller&) = delete;
    poller& operator=(const poller&) = delete;

    [[nodiscard]] backend which() const noexcept { return backend_; }

    /// Registers / updates / removes interest in `fd`.  add() on an already
    /// registered fd and modify()/remove() on an unknown fd throw
    /// std::logic_error (an interest-bookkeeping bug, not a runtime state).
    void add(int fd, bool want_read, bool want_write);
    void modify(int fd, bool want_read, bool want_write);
    void remove(int fd);

    /// Blocks up to `timeout_ms` (-1 = indefinitely) and fills `events`
    /// (cleared first) with the ready fds.  EINTR retried internally.
    void wait(std::vector<ready_event>& events, int timeout_ms);

private:
    struct interest {
        bool read = false;
        bool write = false;
    };

    backend backend_;
    unique_fd epoll_fd_;                ///< epoll backend only
    std::map<int, interest> watched_;   ///< interest bookkeeping (both backends)
};

}  // namespace hcq::serve

#endif  // HCQ_SERVE_SOCKET_H
