// Golden bit-identity suite for the per-worker workspace hot path.
//
// The redesigned detection path (paths/workspace.h: reusable scratch arenas,
// block-batched run_block, exact-content-keyed decomposition caches) must be
// a pure performance change: every statistic the link simulator reports in
// the detection domain — BER counters, exact frames, summed ML cost, ARQ
// attempt chains — must be bit-identical to the allocate-per-call legacy
// path (link_config::workspaces = false), at every thread count and stream
// block, under i.i.d. Rayleigh, correlated Jakes fading, and imperfect CSI.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>

#include "arq/arq.h"
#include "link/link_sim.h"
#include "paths/registry.h"
#include "wireless/channel_spec.h"

namespace {

namespace lk = hcq::link;
namespace pt = hcq::paths;
namespace wl = hcq::wireless;

// Covers every hot-path family: cached linear (zf, mmse), cached tree search
// (kbest), QUBO sweep solvers (sa), and the hybrid (gsra).
lk::link_config base_config() {
    lk::link_config config;
    config.num_uses = 48;
    config.num_users = 2;
    config.mod = wl::modulation::qam16;
    config.snr_db = 14.0;
    config.paths = pt::parse_spec_list("zf,mmse,kbest,sa:reads=4,sweeps=40,gsra:reads=4");
    config.seed = 77;
    return config;
}

/// The channel variations the workspace caches must stay invisible under.
struct channel_case {
    const char* label;
    const char* spec;  // nullptr = legacy i.i.d. Rayleigh draw
};

constexpr channel_case kChannels[] = {
    {"rayleigh", nullptr},
    {"jakes", "jakes:doppler_hz=30"},
    {"imperfect-csi", "rayleigh:est_err=0.05"},
};

void apply_channel(lk::link_config& config, const channel_case& c) {
    if (c.spec != nullptr) {
        config.channel_spec = wl::channel_spec::parse(c.spec);
    } else {
        config.channel_spec = std::nullopt;
    }
}

/// Every detection-domain statistic must match exactly — not approximately:
/// identical inputs through identical operation order.
void expect_identical(const lk::link_report& got, const lk::link_report& want,
                      const std::string& trace) {
    ASSERT_EQ(got.paths.size(), want.paths.size());
    for (std::size_t p = 0; p < want.paths.size(); ++p) {
        SCOPED_TRACE(trace + " / " + want.paths[p].name);
        const auto& a = got.paths[p];
        const auto& b = want.paths[p];
        EXPECT_EQ(a.ber.errors(), b.ber.errors());
        EXPECT_EQ(a.ber.total_bits(), b.ber.total_bits());
        EXPECT_EQ(a.exact_frames, b.exact_frames);
        EXPECT_EQ(a.sum_ml_cost, b.sum_ml_cost);
        ASSERT_EQ(a.arq.has_value(), b.arq.has_value());
        if (a.arq) {
            EXPECT_EQ(a.arq->counters.frames, b.arq->counters.frames);
            EXPECT_EQ(a.arq->counters.attempts, b.arq->counters.attempts);
            EXPECT_EQ(a.arq->counters.wrong_attempts, b.arq->counters.wrong_attempts);
            EXPECT_EQ(a.arq->counters.corrected_frames, b.arq->counters.corrected_frames);
            EXPECT_EQ(a.arq->counters.residual_errors, b.arq->counters.residual_errors);
        }
    }
}

void run_matrix(lk::link_config config, const char* trace_prefix) {
    for (const auto& channel : kChannels) {
        apply_channel(config, channel);

        // Reference: the legacy allocate-per-call path, serial, small block.
        config.workspaces = false;
        config.num_threads = 1;
        config.stream_block = 64;
        const auto reference = lk::run_link_simulation(config);

        for (const bool workspaces : {false, true}) {
            for (const std::size_t threads : {1UL, 2UL, 8UL}) {
                for (const std::size_t block : {64UL, 4096UL}) {
                    config.workspaces = workspaces;
                    config.num_threads = threads;
                    config.stream_block = block;
                    const auto got = lk::run_link_simulation(config);
                    expect_identical(
                        got, reference,
                        std::string(trace_prefix) + channel.label +
                            (workspaces ? " ws=on" : " ws=off") + " threads=" +
                            std::to_string(threads) + " block=" + std::to_string(block));
                }
            }
        }
    }
}

TEST(Workspace, OpenLoopStatisticsMatchLegacyPath) { run_matrix(base_config(), "open/"); }

TEST(Workspace, ArqChainsMatchLegacyPath) {
    auto config = base_config();
    config.num_uses = 32;
    hcq::arq::arq_config arq;
    arq.deadline_auto = true;
    arq.max_retx = 2;
    config.arq = arq;
    run_matrix(config, "arq/");
}

}  // namespace
