#include "wireless/mimo.h"

#include <cmath>
#include <stdexcept>

namespace hcq::wireless {

double mimo_instance::ml_cost(const linalg::cvec& x) const {
    if (x.size() != num_users) throw std::invalid_argument("ml_cost: wrong symbol count");
    linalg::cvec residual = y;
    residual -= h * x;
    const double n = residual.norm2();
    return n * n;
}

double mimo_instance::ml_cost(const linalg::cvec& x, linalg::cvec& residual_scratch) const {
    if (x.size() != num_users) throw std::invalid_argument("ml_cost: wrong symbol count");
    // residual = y - H x via the into-kernel: identical arithmetic to
    // `residual = y; residual -= h * x;` without the matvec temporary.
    linalg::matvec_into(h, x, residual_scratch);
    for (std::size_t i = 0; i < residual_scratch.size(); ++i) {
        residual_scratch[i] = y[i] - residual_scratch[i];
    }
    const double n = residual_scratch.norm2();
    return n * n;
}

double mimo_instance::ml_cost_bits(std::span<const std::uint8_t> bits) const {
    return ml_cost(modulate(mod, bits));
}

double mimo_instance::ml_cost_bits(std::span<const std::uint8_t> bits,
                                   linalg::cvec& symbol_scratch,
                                   linalg::cvec& residual_scratch) const {
    modulate_into(mod, bits, symbol_scratch);
    return ml_cost(symbol_scratch, residual_scratch);
}

namespace {

// Shared tx-bit step of every synthesis flavour: the uniform bit draws
// ALWAYS happen (they pace the per-use stream), and a non-empty override
// then replaces the drawn bits — so a coded use consumes the rng exactly
// like an uncoded one and every later draw (AWGN, estimation error) lands
// on the same stream position.
void draw_or_override_bits(util::rng& rng, const mimo_config& config,
                           std::span<const std::uint8_t> override_bits, mimo_instance& inst) {
    const std::size_t num_bits = config.num_users * bits_per_symbol(config.mod);
    rng.bits_into(num_bits, inst.tx_bits);
    if (!override_bits.empty()) {
        if (override_bits.size() != num_bits) {
            throw std::invalid_argument("synthesize: tx-bit override has wrong length");
        }
        inst.tx_bits.assign(override_bits.begin(), override_bits.end());
    }
}

}  // namespace

mimo_instance synthesize(util::rng& rng, const mimo_config& config) {
    mimo_instance inst;
    synthesize_into(rng, config, inst);
    return inst;
}

void synthesize_into(util::rng& rng, const mimo_config& config, mimo_instance& inst) {
    synthesize_coded_into(rng, config, {}, inst);
}

void synthesize_coded_into(util::rng& rng, const mimo_config& config,
                           std::span<const std::uint8_t> tx_bits, mimo_instance& inst) {
    if (config.num_users == 0 || config.num_antennas == 0) {
        throw std::invalid_argument("synthesize: empty dimensions");
    }
    if (config.num_antennas < config.num_users) {
        throw std::invalid_argument("synthesize: needs num_antennas >= num_users");
    }
    inst.mod = config.mod;
    inst.num_users = config.num_users;
    inst.num_antennas = config.num_antennas;
    draw_channel_into(rng, config.channel, config.num_antennas, config.num_users, inst.h);
    inst.h_true.resize(0, 0);  // perfect CSI: true_channel() is h
    inst.csi_error_variance = 0.0;
    draw_or_override_bits(rng, config, tx_bits, inst);
    modulate_into(config.mod, inst.tx_bits, inst.tx_symbols);
    linalg::matvec_into(inst.h, inst.tx_symbols, inst.y);
    inst.noise_variance = config.noise_variance;
    add_awgn(rng, inst.y, config.noise_variance);
}

mimo_instance synthesize_at(util::rng& rng, const mimo_config& config,
                            const channel_process& process, double t,
                            double csi_error_variance) {
    mimo_instance inst;
    synthesize_at_into(rng, config, process, t, csi_error_variance, inst);
    return inst;
}

void synthesize_at_into(util::rng& rng, const mimo_config& config,
                        const channel_process& process, double t, double csi_error_variance,
                        mimo_instance& inst) {
    synthesize_at_coded_into(rng, config, process, t, csi_error_variance, {}, inst);
}

void synthesize_at_coded_into(util::rng& rng, const mimo_config& config,
                              const channel_process& process, double t,
                              double csi_error_variance,
                              std::span<const std::uint8_t> tx_bits, mimo_instance& inst) {
    if (config.num_users == 0 || config.num_antennas == 0) {
        throw std::invalid_argument("synthesize_at: empty dimensions");
    }
    if (config.num_antennas < config.num_users) {
        throw std::invalid_argument("synthesize_at: needs num_antennas >= num_users");
    }
    if (process.num_antennas() != config.num_antennas ||
        process.num_users() != config.num_users) {
        throw std::invalid_argument("synthesize_at: process dimensions mismatch config");
    }
    if (csi_error_variance < 0.0) {
        throw std::invalid_argument("synthesize_at: negative csi_error_variance");
    }
    inst.mod = config.mod;
    inst.num_users = config.num_users;
    inst.num_antennas = config.num_antennas;
    // Same per-use draw order as synthesize: channel, bits, AWGN — with the
    // estimation-error perturbation appended strictly after, and only when
    // active, so est_err == 0 stays byte-identical to the legacy path.
    process.at_into(t, rng, inst.h);
    inst.h_true.resize(0, 0);
    inst.csi_error_variance = 0.0;
    draw_or_override_bits(rng, config, tx_bits, inst);
    modulate_into(config.mod, inst.tx_bits, inst.tx_symbols);
    linalg::matvec_into(inst.h, inst.tx_symbols, inst.y);
    inst.noise_variance = config.noise_variance;
    add_awgn(rng, inst.y, config.noise_variance);
    if (csi_error_variance > 0.0) {
        inst.h_true = inst.h;  // vector copy-assign: reuses capacity
        inst.csi_error_variance = csi_error_variance;
        const double sigma_per_dim = std::sqrt(csi_error_variance / 2.0);
        for (std::size_t r = 0; r < inst.h.rows(); ++r) {
            for (std::size_t c = 0; c < inst.h.cols(); ++c) {
                inst.h(r, c) += linalg::cxd(rng.normal(0.0, sigma_per_dim),
                                            rng.normal(0.0, sigma_per_dim));
            }
        }
    }
}

mimo_instance noiseless_paper_instance(util::rng& rng, std::size_t num_users, modulation mod) {
    mimo_config config;
    config.mod = mod;
    config.num_users = num_users;
    config.num_antennas = num_users;
    config.channel = channel_model::unit_gain_random_phase;
    config.noise_variance = 0.0;
    return synthesize(rng, config);
}

std::size_t users_for_variables(modulation mod, std::size_t num_variables) {
    const std::size_t per = bits_per_symbol(mod);
    if (num_variables == 0 || num_variables % per != 0) {
        throw std::invalid_argument("users_for_variables: " + std::to_string(num_variables) +
                                    " variables not divisible by " + to_string(mod));
    }
    return num_variables / per;
}

}  // namespace hcq::wireless
