// Fixture: violations that appear ONLY in comments and string literals must
// not fire — the scanner strips both.  For example std::mt19937,
// std::random_device, std::chrono::system_clock, std::unordered_map, and
// path_spec{...} are all named right here.
/* block comment too: rand() and #include <random> */

const char* fixture_comment_only() {
    return "std::mt19937 std::chrono::system_clock std::unordered_map<int> path_spec{}";
}
