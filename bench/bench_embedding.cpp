// Hardware-realism ablation: minor-embedding overhead on the Chimera
// topology (the D-Wave 2000Q reality behind the paper's prototype; QuAMax
// [29] discusses the same machinery).
//
// A dense MIMO QUBO cannot be programmed natively: each logical variable
// becomes a ferromagnetic chain.  This bench sweeps the chain strength and
// reports ground-state probability (after majority-vote unembedding) and
// chain-break fractions, plus the native-vs-embedded comparison — the
// systems cost of real hardware that laptop-scale QUBO studies ignore.
#include <vector>

#include "bench_common.h"
#include "core/device.h"
#include "core/embedding.h"
#include "core/experiment.h"
#include "core/topology.h"
#include "metrics/stats.h"
#include "qubo/ising.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace wl = hcq::wireless;

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Embedding ablation: dense MIMO QUBOs on the Chimera topology",
               "hardware-realism substrate (D-Wave 2000Q; cf. QuAMax [29])");

    const std::size_t instances = ctx.scaled(3);
    const std::size_t reads = ctx.scaled(150);
    // 4-user QPSK: 8 logical variables -> Chimera C_2 (32 qubits).
    const std::size_t users = 4;
    const auto mod = wl::modulation::qpsk;
    const an::chimera_graph graph(2, 4);
    const auto chains = an::clique_embedding(graph, users * wl::bits_per_symbol(mod));
    const an::annealer_emulator device;
    const auto schedule = an::anneal_schedule::forward_plain(4.0);

    std::cout << "workload: " << users << "-user " << wl::to_string(mod) << " ("
              << users * wl::bits_per_symbol(mod) << " logical vars) on Chimera C_"
              << graph.grid_size() << " (" << graph.num_nodes() << " qubits, chains of "
              << chains.front().size() << ")\n\n";

    const std::vector<double> strengths{0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
    hcq::util::table t({"chain strength (rel max|Q|)", "P(optimum) embedded",
                        "mean chain-break fraction", "P(optimum) native"});

    struct row_data {
        hcq::metrics::running_stats p_emb, breaks, p_native;
    };
    std::vector<row_data> rows(strengths.size());

    hcq::util::parallel_for(strengths.size(), [&](std::size_t k) {
        for (std::size_t i = 0; i < instances; ++i) {
            hcq::util::rng rng(hcq::util::rng(ctx.seed + 7 * k).derive(i)());
            const auto e = hy::make_paper_instance(rng, users, mod);
            const double rel = strengths[k] * e.reduced.model.max_abs_coefficient() / 4.0;
            const auto embedded = an::embed_qubo(e.reduced.model, graph, chains, rel);
            const auto physical_qubo = hcq::qubo::to_qubo(embedded.physical);

            const auto samples = device.sample(physical_qubo, schedule, reads, rng);
            std::size_t hits = 0;
            double break_total = 0.0;
            for (const auto& s : samples.all()) {
                break_total += embedded.chain_break_fraction(s.bits);
                const auto logical = embedded.unembed(s.bits);
                if (e.reduced.model.energy(logical) <= e.optimal_energy + 1e-6) ++hits;
            }
            rows[k].p_emb.add(static_cast<double>(hits) / static_cast<double>(reads));
            rows[k].breaks.add(break_total / static_cast<double>(reads));

            const auto native = device.sample(e.reduced.model, schedule, reads, rng);
            rows[k].p_native.add(native.success_probability(e.optimal_energy));
        }
    });

    for (std::size_t k = 0; k < strengths.size(); ++k) {
        t.add(strengths[k], rows[k].p_emb.mean(), rows[k].breaks.mean(),
              rows[k].p_native.mean());
    }
    ctx.emit(t);
    std::cout << "Shape check: weak chains break (high break fraction, poor unembedded\n"
                 "success); overly strong chains drown the logical problem's energy scale;\n"
                 "a mid-range strength works best — and even the best embedded success\n"
                 "trails the native (embedding-free) run, the overhead real hardware pays.\n";
    return 0;
}
