// Interfaces for classical QUBO solvers and for the "classical module" of a
// hybrid design (paper Figure 1): an initialiser produces a candidate state
// that seeds the quantum module.
#ifndef HCQ_CLASSICAL_SOLVER_H
#define HCQ_CLASSICAL_SOLVER_H

#include <memory>
#include <string>

#include "classical/sample_set.h"
#include "qubo/model.h"
#include "util/rng.h"

namespace hcq::solvers {

/// A full classical QUBO solver: returns one or more samples.
class solver {
public:
    virtual ~solver() = default;

    /// Runs the solver, drawing randomness from `rng`.
    [[nodiscard]] virtual sample_set solve(const qubo::qubo_model& q, util::rng& rng) const = 0;

    /// Short identifier for bench output.
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Result of running an initialiser: the candidate state and the classical
/// compute time spent producing it (used for end-to-end hybrid accounting).
struct initial_state {
    qubo::bit_vector bits;
    double energy = 0.0;
    double elapsed_us = 0.0;
};

/// The classical half of a hybrid classical-quantum structure.
class initializer {
public:
    virtual ~initializer() = default;

    [[nodiscard]] virtual initial_state initialize(const qubo::qubo_model& q,
                                                   util::rng& rng) const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform-random initial state (the paper's "RA from a randomly picked
/// initial state", Figure 6 centre panel).
class random_initializer final : public initializer {
public:
    [[nodiscard]] initial_state initialize(const qubo::qubo_model& q,
                                           util::rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "random"; }
};

/// Fixed, externally supplied initial state (e.g. the ground truth for the
/// Delta-E_IS = 0 reference runs of Figure 8).
class fixed_initializer final : public initializer {
public:
    explicit fixed_initializer(qubo::bit_vector bits, std::string label = "fixed");

    [[nodiscard]] initial_state initialize(const qubo::qubo_model& q,
                                           util::rng& rng) const override;
    [[nodiscard]] std::string name() const override { return label_; }

private:
    qubo::bit_vector bits_;
    std::string label_;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_SOLVER_H
