// Minimal task-parallel execution support for parameter sweeps and
// per-instance fan-out in benches.  Guideline CP.*: tasks over raw threads,
// no shared mutable state beyond the internally synchronised queue.
//
// The queue state is annotated for Clang Thread Safety Analysis (see
// util/thread_annotations.h): every member mutex_ protects is
// HCQ_GUARDED_BY(mutex_), so an unlocked access is a compile error under
// -Wthread-safety, not a latent race.
#ifndef HCQ_UTIL_THREAD_POOL_H
#define HCQ_UTIL_THREAD_POOL_H

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hcq::util {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
/// Destruction waits for all submitted tasks to finish.
///
/// Exception safety: a task that throws does not kill its worker — the first
/// exception is captured and rethrown from the next `wait_idle()` (or
/// swallowed by the destructor when the pool is torn down without waiting).
/// Subsequent exceptions, and exceptions with no waiter, are dropped after
/// the first; tasks continue to drain either way.
class thread_pool {
public:
    /// Creates `num_threads` workers (0 selects hardware concurrency).
    explicit thread_pool(std::size_t num_threads = 0);

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool();

    /// Enqueues a task for asynchronous execution.  Throws std::runtime_error
    /// once shutdown has begun — a task accepted after `stop()` (or during
    /// destruction) would never run, so silently queuing it is a lost-update
    /// bug on the caller's side.
    void submit(std::function<void()> task) HCQ_EXCLUDES(mutex_);

    /// Blocks until every submitted task has completed.  Rethrows the first
    /// exception that escaped a task since the previous wait.
    void wait_idle() HCQ_EXCLUDES(mutex_);

    /// Begins shutdown: drains already-queued tasks, then joins all workers.
    /// Idempotent; called by the destructor.  After stop() returns, submit()
    /// throws and size() still reports the original worker count.
    void stop() HCQ_EXCLUDES(mutex_);

    [[nodiscard]] std::size_t size() const noexcept { return num_workers_; }

    /// One consistent snapshot of the queue state (both counts read under a
    /// single lock acquisition, so queued + in_flight never double- or
    /// under-counts a task mid-dispatch).
    struct queue_snapshot {
        std::size_t queued = 0;     ///< tasks submitted but not yet started
        std::size_t in_flight = 0;  ///< tasks currently executing on a worker
    };
    [[nodiscard]] queue_snapshot snapshot() const HCQ_EXCLUDES(mutex_);

    /// Convenience projections of snapshot().  The two values come from
    /// separate lock acquisitions; callers needing a consistent pair (e.g.
    /// the serve admission control's BUSY depth report) use snapshot().
    [[nodiscard]] std::size_t queued() const HCQ_EXCLUDES(mutex_);
    [[nodiscard]] std::size_t in_flight() const HCQ_EXCLUDES(mutex_);

private:
    void worker_loop() HCQ_EXCLUDES(mutex_);

    mutable mutex mutex_;
    /// Joined by stop(), which claims them under the lock so overlapping
    /// stops cannot double-join.
    std::vector<std::thread> workers_ HCQ_GUARDED_BY(mutex_);
    std::size_t num_workers_ = 0;  ///< immutable after construction
    std::queue<std::function<void()>> tasks_ HCQ_GUARDED_BY(mutex_);
    cond_var task_available_;
    cond_var idle_;
    std::size_t in_flight_ HCQ_GUARDED_BY(mutex_) = 0;
    bool stopping_ HCQ_GUARDED_BY(mutex_) = false;
    std::exception_ptr first_error_ HCQ_GUARDED_BY(mutex_);
};

/// Runs fn(i) for i in [0, n) on a transient thread_pool with `num_threads`
/// workers (0 = hardware concurrency; n below 2 or num_threads == 1 degrade
/// to a plain loop).  Blocks until all iterations complete.  `fn` must be
/// safe to call concurrently for distinct i.  If any iteration throws,
/// not-yet-started iterations are abandoned and the first exception is
/// rethrown in the calling thread once the workers have drained.
void pool_for_each(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t num_threads = 0);

/// Alias of pool_for_each, kept for the benches' established idiom.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads = 0);

}  // namespace hcq::util

#endif  // HCQ_UTIL_THREAD_POOL_H
