#!/usr/bin/env python3
"""Self-test for scripts/hcq_lint.py, run as a ctest case.

Lints the fixture tree next to this script and asserts that every rule
fires on its deliberate violation, that suppression comments silence the
suppressed twins, and that the allowlisted modules (the fixture's own
rng.h / timer.h / src/paths/) stay clean.  A rule that silently stops
firing — or a suppression that stops suppressing — fails this test, so the
lint gate cannot rot unnoticed.
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "scripts"))

import hcq_lint  # noqa: E402  (path set up just above)

# (rule, fixture file) -> exact expected finding count.
EXPECTED = {
    ("raw-rng", "src/bad_rng.cpp"): 4,            # engine, device, rand(), include
    ("wall-clock", "src/bad_clock.cpp"): 4,       # system, hires, steady, include
    ("unordered-container", "src/bad_unordered.cpp"): 2,  # use + include
    ("spec-literal", "src/bad_spec.cpp"): 1,
    ("channel-spec-literal", "src/bad_channel_spec.cpp"): 1,
    ("test-registration", "tests/orphan_test.cpp"): 1,    # on disk, unlisted
    ("test-registration", "tests/CMakeLists.txt"): 1,     # ghost_test listed, no file
    ("raw-socket", "src/bad_socket.cpp"): 5,  # lifecycle, io, readiness, sockopt, include
    ("hot-path-alloc", "src/bad_hot_path.cpp"): 2,        # new + owning vector
    ("llr-sign", "src/bad_llr_sign.cpp"): 3,  # bipolar map, ternary, pow(-1)
}

# Files that must produce NO findings at all: suppressed twins, allowlisted
# modules, and the comment/string-only decoy.
MUST_BE_CLEAN = [
    "src/bad_hot_path_suppressed.cpp",
    "src/ok_untagged_alloc.cpp",
    "src/bad_rng_suppressed.cpp",
    "src/bad_socket_suppressed.cpp",
    "src/serve/socket.cpp",
    "src/bad_clock_suppressed.cpp",
    "src/bad_unordered_suppressed.cpp",
    "src/bad_llr_sign_suppressed.cpp",
    "src/paths/ok_spec.cpp",
    "src/wireless/ok_channel.cpp",
    "src/wireless/soft.cpp",
    "src/comment_only.cpp",
    "src/util/rng.h",
    "src/util/timer.h",
    "tests/listed_test.cpp",
]


def main() -> int:
    findings = hcq_lint.run_lint(HERE / "tree")
    got = Counter((f.rule, f.path) for f in findings)
    failures = []

    for key, want in sorted(EXPECTED.items()):
        if got.get(key, 0) != want:
            failures.append(f"rule {key[0]!r} on {key[1]!r}: "
                            f"expected {want} finding(s), got {got.get(key, 0)}")
    for path in MUST_BE_CLEAN:
        hits = [f for f in findings if f.path == path]
        for f in hits:
            failures.append(f"unexpected finding in clean/suppressed file: {f}")
    unexpected = set(got) - set(EXPECTED)
    for key in sorted(unexpected):
        failures.append(f"finding outside the expectation table: {key[0]} on {key[1]}")

    if failures:
        print("hcq_lint selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        print("\nall findings:")
        for f in findings:
            print(f"  {f}")
        return 1
    print(f"hcq_lint selftest passed: {len(findings)} expected findings, "
          f"{len(MUST_BE_CLEAN)} clean files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
