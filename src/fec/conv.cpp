#include "fec/conv.h"

#include <bit>
#include <stdexcept>

namespace hcq::fec {

conv_encoder::conv_encoder(std::size_t constraint_length, std::vector<std::uint32_t> generators)
    : k_(constraint_length), generators_(std::move(generators)) {
    if (k_ < 2 || k_ > 16) {
        throw std::invalid_argument("conv_encoder: constraint length must be in [2, 16]");
    }
    if (generators_.empty()) {
        throw std::invalid_argument("conv_encoder: at least one generator required");
    }
    const std::uint32_t window_mask = (1U << k_) - 1U;
    for (const std::uint32_t g : generators_) {
        if (g == 0 || (g & ~window_mask) != 0) {
            throw std::invalid_argument("conv_encoder: generator taps outside the K-bit window");
        }
    }
}

void conv_encoder::encode(std::span<const std::uint8_t> info,
                          std::vector<std::uint8_t>& out) const {
    out.resize(coded_length(info.size()));
    std::uint32_t state = 0;
    std::size_t w = 0;
    const std::size_t total = info.size() + k_ - 1;
    for (std::size_t i = 0; i < total; ++i) {
        const std::uint32_t b = i < info.size() ? (info[i] & 1U) : 0U;  // K-1 zero tail
        const std::uint32_t full = (b << (k_ - 1)) | state;
        for (const std::uint32_t g : generators_) {
            out[w++] = static_cast<std::uint8_t>(std::popcount(full & g) & 1U);
        }
        state = full >> 1;
    }
}

}  // namespace hcq::fec
