#include "detect/sic.h"

#include <algorithm>
#include <vector>

#include "linalg/decompose.h"
#include "util/timer.h"

namespace hcq::detect {

detection_result sic_detector::detect(const wireless::mimo_instance& instance) const {
    const util::timer clock;
    const std::size_t n = instance.num_users;

    linalg::cvec residual = instance.y;
    std::vector<std::size_t> remaining(n);
    for (std::size_t u = 0; u < n; ++u) remaining[u] = u;

    linalg::cvec detected(n);
    while (!remaining.empty()) {
        // Channel restricted to the remaining streams.
        linalg::cmat h_sub(instance.h.rows(), remaining.size());
        for (std::size_t r = 0; r < instance.h.rows(); ++r) {
            for (std::size_t c = 0; c < remaining.size(); ++c) {
                h_sub(r, c) = instance.h(r, remaining[c]);
            }
        }
        const auto soft = linalg::least_squares(h_sub, residual);

        // Detect the stream with the largest post-equalisation confidence
        // (distance from the decision boundary approximated by magnitude).
        std::size_t pick = 0;
        double best_metric = -1.0;
        for (std::size_t c = 0; c < remaining.size(); ++c) {
            const double metric = std::abs(soft[c]);
            if (metric > best_metric) {
                best_metric = metric;
                pick = c;
            }
        }
        const std::size_t user = remaining[pick];
        const auto bits = wireless::demodulate_symbol(instance.mod, soft[pick]);
        const auto symbol = wireless::modulate_symbol(instance.mod, bits);
        detected[user] = symbol;

        // Subtract the detected stream's contribution.
        for (std::size_t r = 0; r < instance.h.rows(); ++r) {
            residual[r] -= instance.h(r, user) * symbol;
        }
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    detection_result result;
    result.symbols = std::move(detected);
    result.bits = wireless::demodulate(instance.mod, result.symbols);
    result.ml_cost = instance.ml_cost(result.symbols);
    result.elapsed_us = clock.elapsed_us();
    return result;
}

}  // namespace hcq::detect
