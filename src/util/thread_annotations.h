// Clang Thread Safety Analysis annotations (-Wthread-safety), no-ops on
// every other compiler.  Annotating a mutex-guarded structure turns its lock
// discipline into a compile-time contract: clang rejects any access to an
// HCQ_GUARDED_BY member without the named capability held, any double
// acquire, and any scope that leaks a lock — *before* a race can corrupt a
// bench baseline, which is exactly the class of bug TSan can only catch when
// a test happens to exercise the interleaving.
//
// Convention for new concurrent code (see docs/ARCHITECTURE.md, "Static
// analysis"): use util::mutex / util::mutex_lock / util::cond_var from
// util/sync.h instead of the std primitives (libstdc++'s std::mutex carries
// no annotations, so clang cannot check anything through it), mark every
// member the mutex protects HCQ_GUARDED_BY(mutex_), and mark private
// helpers that assume the lock HCQ_REQUIRES(mutex_).
//
// The macro set mirrors the canonical Clang/Abseil thread_annotations.h —
// attribute names and semantics are documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html — under an HCQ_
// prefix so it cannot collide with a vendored copy.
#ifndef HCQ_UTIL_THREAD_ANNOTATIONS_H
#define HCQ_UTIL_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
// NOLINTNEXTLINE(bugprone-macro-parentheses): x is an attribute spelling
// like capability("mutex"), never an expression — parenthesising breaks it.
#define HCQ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HCQ_THREAD_ANNOTATION
#define HCQ_THREAD_ANNOTATION(x)  // not clang (or too old): annotations vanish
#endif

/// Marks a type as a capability (a lockable resource); `name` appears in
/// diagnostics, e.g. HCQ_CAPABILITY("mutex").
#define HCQ_CAPABILITY(name) HCQ_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (util::mutex_lock).
#define HCQ_SCOPED_CAPABILITY HCQ_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define HCQ_GUARDED_BY(x) HCQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define HCQ_PT_GUARDED_BY(x) HCQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called with the capabilities held (and does not
/// release them).
#define HCQ_REQUIRES(...) HCQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called with the capabilities NOT held.
#define HCQ_EXCLUDES(...) HCQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capabilities (held on return).
#define HCQ_ACQUIRE(...) HCQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capabilities (held on entry).
#define HCQ_RELEASE(...) HCQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define HCQ_TRY_ACQUIRE(result, ...) \
    HCQ_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define HCQ_ASSERT_CAPABILITY(x) HCQ_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the capability guarding its result.
#define HCQ_RETURN_CAPABILITY(x) HCQ_THREAD_ANNOTATION(lock_returned(x))

/// Lock-ordering declarations (deadlock prevention).
#define HCQ_ACQUIRED_BEFORE(...) HCQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HCQ_ACQUIRED_AFTER(...) HCQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function.  Every use must
/// carry a comment justifying why the contract cannot be expressed.
#define HCQ_NO_THREAD_SAFETY_ANALYSIS HCQ_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // HCQ_UTIL_THREAD_ANNOTATIONS_H
