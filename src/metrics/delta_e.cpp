#include "metrics/delta_e.h"

#include <cmath>
#include <stdexcept>

namespace hcq::metrics {

double delta_e_percent(double sample_energy, double ground_energy) {
    if (ground_energy == 0.0) {
        throw std::invalid_argument("delta_e_percent: ground energy must be nonzero");
    }
    const double gap = 100.0 * (sample_energy - ground_energy) / std::fabs(ground_energy);
    return gap < 0.0 ? 0.0 : gap;
}

std::size_t delta_e_bin(double delta_e, double bin_width_percent) {
    if (bin_width_percent <= 0.0) throw std::invalid_argument("delta_e_bin: bad bin width");
    if (delta_e < 0.0) return 0;
    return static_cast<std::size_t>(delta_e / bin_width_percent);
}

}  // namespace hcq::metrics
