// Batched experiment runner — fans corpus synthesis and solver sweeps across
// util::thread_pool while keeping every random draw on a per-cell stream
// derived from (seed, cell index).  Statistics are therefore bit-identical at
// any thread count: the thread pool only decides *when* a cell runs, never
// *what* it computes, and aggregation happens serially in cell order.
//
// This is the entry point for the ROADMAP's batched serving direction: a
// detection workload is (instances x solvers) independent cells, and the
// runner is the single place where that grid meets the hardware.
//
// Concurrency contract: lock-free by design.  Each cell writes a disjoint,
// preallocated output slot and results are folded serially in cell order,
// so there is no shared mutable state to guard and nothing here for the
// Clang Thread Safety annotations (util/thread_annotations.h) to track —
// the annotated locking lives inside util::thread_pool.  Do not introduce a
// mutex in this layer; it would serialise the hot path and mask, not fix,
// an aliasing bug.  TSan (verify.sh --tsan) and the cross-thread-count
// equality tests enforce this contract; see docs/ARCHITECTURE.md, "The
// determinism contract as enforceable rules".
#ifndef HCQ_CORE_PARALLEL_RUNNER_H
#define HCQ_CORE_PARALLEL_RUNNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "classical/solver.h"
#include "core/experiment.h"
#include "core/hybrid_solver.h"

namespace hcq::hybrid {

/// Wraps the sequential hybrid structure (classical initialiser + reverse
/// anneal) behind the classical solver interface so sweeps can compare it
/// directly against SA / tabu / parallel tempering.  The returned sample set
/// holds the initialiser's candidate first, then the annealer reads.
///
/// The adapter *owns* its initialiser and device through shared_ptr —
/// constructing it from temporaries is safe (the earlier reference-holding
/// design dangled when the initialiser or device in the constructor
/// expression was a temporary).
class hybrid_solver_adapter final : public solvers::solver {
public:
    /// Throws std::invalid_argument on a null initialiser or device, or a
    /// schedule that does not start classical (via hybrid_solver).
    hybrid_solver_adapter(std::shared_ptr<const solvers::initializer> init,
                          std::shared_ptr<const anneal::annealer_emulator> device,
                          anneal::anneal_schedule schedule, std::size_t num_reads);

    [[nodiscard]] solvers::sample_set solve(const qubo::qubo_model& q,
                                            util::rng& rng) const override;
    [[nodiscard]] std::string name() const override { return solver_->name(); }

    /// The underlying hybrid solver (for per-stage time accounting).
    [[nodiscard]] const hybrid_solver& hybrid() const noexcept { return *solver_; }

private:
    std::shared_ptr<const solvers::initializer> init_;
    std::shared_ptr<const anneal::annealer_emulator> device_;
    /// unique_ptr (not a value) because hybrid_solver stores pointers to
    /// init/device fixed at construction; init_/device_ above keep them alive.
    std::unique_ptr<const hybrid_solver> solver_;
};

/// Runner knobs.
struct runner_config {
    /// Worker threads (0 = hardware concurrency, 1 = serial execution).
    std::size_t num_threads = 0;
};

/// One (instance, solver) cell of a sweep.  Everything except `elapsed_us`
/// (wall time) is deterministic in (corpus, solvers, seed).
struct solver_run {
    std::size_t instance_index = 0;
    std::size_t solver_index = 0;
    std::string solver_name;
    solvers::sample_set samples;
    double best_energy = 0.0;
    double p_star = 0.0;        ///< success probability vs the instance optimum
    double mean_delta_e = 0.0;  ///< mean Delta-E% over the cell's samples
    double elapsed_us = 0.0;    ///< wall time of the cell (not deterministic)
};

/// Full sweep output: per-cell runs in instance-major order plus a merged
/// sample set built serially in that same order.
struct sweep_report {
    std::size_t num_instances = 0;
    std::size_t num_solvers = 0;
    std::vector<solver_run> runs;  ///< runs[i * num_solvers + s]
    solvers::sample_set merged;

    [[nodiscard]] const solver_run& at(std::size_t instance, std::size_t solver) const;

    /// Mean success probability of one solver across all instances.
    [[nodiscard]] double mean_p_star(std::size_t solver) const;
};

/// Deterministic batched driver for (corpus x solver) grids.
class parallel_runner {
public:
    /// Stream-id tag separating sweep solver streams from the plain
    /// derive(index) family make_corpus / make_paper_corpus draw from.
    static constexpr std::uint64_t sweep_stream_domain = 0x73776565705f3141ULL;  // "sweep_1A"

    explicit parallel_runner(runner_config config = {});

    [[nodiscard]] const runner_config& config() const noexcept { return config_; }

    /// Parallel corpus synthesis; bit-identical to make_paper_corpus for the
    /// same (seed, count, users, mod) at any thread count.
    [[nodiscard]] std::vector<experiment_instance> make_corpus(std::uint64_t seed,
                                                               std::size_t count,
                                                               std::size_t num_users,
                                                               wireless::modulation mod) const;

    /// Runs every solver on every instance.  Cell (i, s) draws from
    /// util::rng(seed).derive(sweep_stream_domain).derive(i * solvers.size()
    /// + s) — the domain tag keeps solver streams disjoint from the
    /// corpus-synthesis streams even when the same seed is passed to both
    /// make_corpus and sweep — so results do not depend on the thread count
    /// or on scheduling order.  Solver pointers must be non-null and outlive
    /// the call.
    [[nodiscard]] sweep_report sweep(const std::vector<experiment_instance>& corpus,
                                     const std::vector<const solvers::solver*>& solvers,
                                     std::uint64_t seed) const;

    /// Overload over owned solver lists — the form paths::registry::
    /// make_solvers produces, so sweeps can be configured entirely from spec
    /// strings ("sa:sweeps=2000", "gsra:reads=80", ...).
    [[nodiscard]] sweep_report sweep(
        const std::vector<experiment_instance>& corpus,
        const std::vector<std::shared_ptr<const solvers::solver>>& solvers,
        std::uint64_t seed) const;

private:
    runner_config config_;
};

}  // namespace hcq::hybrid

#endif  // HCQ_CORE_PARALLEL_RUNNER_H
