#include "fec/codec.h"

#include <stdexcept>

namespace hcq::fec {

codec::codec(const code_spec& spec)
    : spec_(spec),
      info_bits_(spec.info_bits()),
      encoder_(spec.constraint_length(), spec.generators()),
      inter_(spec.rows, spec.cols),
      decoder_(spec.constraint_length(), spec.generators()) {
    if (encoder_.coded_length(info_bits_) != inter_.size()) {
        throw std::invalid_argument("fec: interleaver size does not match the code geometry");
    }
}

void codec::encode_frame(std::span<const std::uint8_t> info, std::vector<std::uint8_t>& out) {
    if (info.size() != info_bits_) {
        throw std::invalid_argument("fec: encode_frame expects info_bits() bits");
    }
    encoder_.encode(info, coded_scratch_);
    out.resize(inter_.size());
    inter_.interleave<std::uint8_t>(coded_scratch_, out);
}

void codec::decode_frame(std::span<const double> llrs, std::vector<std::uint8_t>& out) {
    if (llrs.size() != inter_.size()) {
        throw std::invalid_argument("fec: decode_frame expects coded_bits() LLRs");
    }
    llr_scratch_.resize(inter_.size());
    inter_.deinterleave<double>(llrs, llr_scratch_);
    decoder_.decode(llr_scratch_, info_bits_, viterbi_scratch_, out);
}

}  // namespace hcq::fec
