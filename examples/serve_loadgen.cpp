// Load generator for the detector-bank server: drives open-loop Poisson or
// closed-loop traffic over real loopback sockets and reports goodput,
// reject rate, and tail latency (serve/client.h).
//
// With --port=0 (the default) it self-hosts: an in-process tcp_server is
// spun up on an ephemeral port, loaded, and torn down — a one-command
// serving smoke test for CI:
//     ./examples/serve_loadgen --mode=closed --requests=32 --uses=16
//
// Against a separately launched ./detect_server, point --port at it:
//     ./examples/serve_loadgen --port=7788 --mode=open --rps=200 --duration_s=2
//
// Usage: ./examples/serve_loadgen
//   [--port=0 (0 = self-hosted in-process server)]
//   [--mode=closed|open] [--requests=64] [--rps=100] [--duration_s=1]
//   [--connections=4] [--uses=32] [--spec=kxra:k=4] [--mod=qam16] [--users=4]
//   [--snr=16] [--noiseless] [--channel=<spec>] [--deadline_us=0] [--seed=1]
//   [--workers=4] [--buffer=256] [--policy=block|drop-oldest|drop-newest]
//   [--help]
#include <iostream>
#include <memory>

#include "paths/registry.h"
#include "serve/client.h"
#include "serve/tcp_server.h"
#include "util/cli.h"
#include "wireless/channel_spec.h"

int main(int argc, char** argv) try {
    using namespace hcq;
    const util::flag_set flags(argc, argv);

    if (flags.get_bool("help", false)) {
        std::cout
            << "serve_loadgen — drive a detector-bank server over loopback TCP\n\n"
               "flags: --port=0 (0 = self-host an in-process server)\n"
               "       --mode=closed|open   closed: send/wait windows of 1;\n"
               "                            open: Poisson arrivals, pipelined\n"
               "       --requests=64 (closed)  --rps=100 --duration_s=1 (open)\n"
               "       --connections=4 --uses=32 (channel uses per request)\n"
               "       --spec=kxra:k=4 --mod=qam16 --users=4 --snr=16 --noiseless\n"
               "       --channel=<spec> --deadline_us=0 (per-request queue budget)\n"
               "       --seed=1\n"
               "       self-hosted server knobs: --workers=4 --buffer=256\n"
               "       --policy=block|drop-oldest|drop-newest\n\n"
            << paths::registry::help();
        return 0;
    }

    serve::loadgen_config config;
    config.port = static_cast<std::uint16_t>(flags.get_int("port", 0));
    const std::string mode = flags.get_string("mode", "closed");
    if (mode == "closed") {
        config.mode = serve::loadgen_mode::closed_loop;
    } else if (mode == "open") {
        config.mode = serve::loadgen_mode::open_loop;
    } else {
        std::cerr << "serve_loadgen: unknown --mode '" << mode
                  << "' (accepted: closed, open)\n";
        return 2;
    }
    config.num_connections = static_cast<std::size_t>(flags.get_int("connections", 4));
    config.total_requests = static_cast<std::size_t>(flags.get_int("requests", 64));
    config.offered_rps = flags.get_double("rps", 100.0);
    config.duration_s = flags.get_double("duration_s", 1.0);
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

    serve::request& req = config.request_template;
    req.seed = config.seed;
    req.num_uses = static_cast<std::uint32_t>(flags.get_int("uses", 32));
    req.num_users = static_cast<std::uint32_t>(flags.get_int("users", 4));
    req.snr_db = flags.get_double("snr", 16.0);
    req.noiseless = flags.get_bool("noiseless", false);
    req.mod = flags.get_string("mod", "qam16");
    req.spec = flags.get_string("spec", "kxra:k=4");
    req.channel = flags.get_string("channel", "");
    req.deadline_us = flags.get_double("deadline_us", 0.0);

    // Self-hosted mode: bring up an in-process server on an ephemeral port.
    std::unique_ptr<serve::tcp_server> hosted;
    if (config.port == 0) {
        serve::server_config server_config;
        server_config.port = 0;
        server_config.num_workers = static_cast<std::size_t>(flags.get_int("workers", 4));
        server_config.admission_capacity =
            static_cast<std::size_t>(flags.get_int("buffer", 256));
        server_config.policy =
            pipeline::parse_backpressure(flags.get_string("policy", "block"));
        hosted = std::make_unique<serve::tcp_server>(server_config);
        config.port = hosted->port();
        std::cout << "self-hosted server on 127.0.0.1:" << config.port << " ("
                  << server_config.num_workers << " workers, admission "
                  << server_config.admission_capacity << " slots, policy "
                  << pipeline::to_string(server_config.policy) << ")\n";
    }

    std::cout << "loadgen: mode=" << mode << " connections=" << config.num_connections
              << " spec=" << req.spec << " uses/request=" << req.num_uses;
    if (config.mode == serve::loadgen_mode::open_loop) {
        std::cout << " rps=" << config.offered_rps << " duration_s=" << config.duration_s;
    } else {
        std::cout << " requests=" << config.total_requests;
    }
    std::cout << "\n";

    const auto report = serve::run_loadgen(config);
    std::cout << serve::summarize(report) << "\n";

    if (hosted) {
        hosted->stop();
        const auto stats = hosted->stats();
        std::cout << "server: served_ok=" << stats.served_ok
                  << " busy=" << stats.rejected_busy
                  << " deadline=" << stats.rejected_deadline
                  << " bad=" << stats.bad_requests << " evictions=" << stats.evictions
                  << " sessions=" << stats.sessions_accepted << "\n";
    }

    // Nonzero exit when nothing got served: a smoke invocation that only
    // produced rejections (or nothing at all) should fail CI loudly.
    return report.ok > 0 ? 0 : 1;
} catch (const std::exception& e) {
    std::cerr << "serve_loadgen: error: " << e.what() << "\n"
              << "run ./serve_loadgen --help for flags\n";
    return 2;
}
