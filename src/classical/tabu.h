// Tabu search over single-bit flips — the classical solver D-Wave hybridises
// with its annealing QPUs in the commercial hybrid solver service the paper
// cites ([1], Section 2).
#ifndef HCQ_CLASSICAL_TABU_H
#define HCQ_CLASSICAL_TABU_H

#include "classical/solver.h"

namespace hcq::solvers {

/// Tabu parameters.
struct tabu_config {
    std::size_t tenure = 10;          ///< iterations a flipped bit stays tabu
    std::size_t max_iterations = 500;
    std::size_t stall_limit = 100;    ///< stop after this many non-improving moves
};

/// Best-improvement tabu search with aspiration (a tabu move is allowed when
/// it improves on the best energy seen).  Doubles as an initialiser.
class tabu_search final : public solver, public initializer {
public:
    explicit tabu_search(tabu_config config = {});

    [[nodiscard]] sample_set solve(const qubo::qubo_model& q, util::rng& rng) const override;
    double solve_best_into(const qubo::qubo_model& q, util::rng& rng, solve_scratch& scratch,
                           qubo::bit_vector& best) const override;
    [[nodiscard]] initial_state initialize(const qubo::qubo_model& q,
                                           util::rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "Tabu"; }

    [[nodiscard]] const tabu_config& config() const noexcept { return config_; }

private:
    tabu_config config_;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_TABU_H
