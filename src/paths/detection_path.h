// The unified detection-path API — the paper's core argument made literal.
//
// Kim & Venturelli's point (HotNets 2020, Figure 1) is that classical
// detectors, quantum annealing, and hybrid classical-quantum structures are
// interchangeable *modules* of one detection pipeline.  This layer is the
// single polymorphic interface behind which all of them live: a
// `detection_path` consumes one channel-use context (the MIMO instance, the
// shared QUBO reduction when it needs one, and a derived RNG stream) and
// returns the detected bits, the ML cost, and named per-stage timings.
//
// Paths are constructed from *spec strings* through `paths::registry`
// (registry.h): `"zf"`, `"kbest:width=16"`, `"gsra:reads=80,sp=0.29"` — so
// adding a new scenario (a new tree search, a QAOA-style solver, a
// multi-annealer stage) means registering one factory, not editing an enum,
// a parser, a switch, and a config struct.
//
// Determinism contract: a path must draw randomness only from `ctx.rng`.
// Callers (link::run_link_simulation, hybrid::parallel_runner) hand every
// (use, path) cell its own derived stream, which is what keeps BER/ML-cost
// statistics bit-identical at any thread count.  Only the timings in
// `path_result::stages` are measured wall time (or programmed device
// occupancy) and vary run to run.
#ifndef HCQ_PATHS_DETECTION_PATH_H
#define HCQ_PATHS_DETECTION_PATH_H

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "classical/solver.h"
#include "detect/transform.h"
#include "util/rng.h"
#include "wireless/mimo.h"

namespace hcq::paths {

struct workspace;  // per-worker reusable state (paths/workspace.h)

/// A parsed path specification: a registry kind plus ordered key=value
/// arguments.  Text form: `kind` or `kind:key=value,key=value` — e.g.
/// `"kbest:width=16"`, `"gsra:reads=80,sp=0.29,pause_us=1"`.
struct path_spec {
    std::string kind;  ///< registry name, e.g. "kbest"
    std::vector<std::pair<std::string, std::string>> args;  ///< ordered key=value pairs

    /// Parses one spec string; throws std::invalid_argument (with the
    /// malformed fragment named) on an empty kind, a missing '=', or an
    /// empty key.  Does NOT check the kind against the registry — that
    /// happens in registry::make, where the error can list what exists.
    [[nodiscard]] static path_spec parse(const std::string& text);

    /// Canonical text form: `kind` when there are no args, otherwise
    /// `kind:k1=v1,k2=v2` in stored order.
    [[nodiscard]] std::string to_string() const;

    /// Value of `key`, or nullptr when absent.
    [[nodiscard]] const std::string* find(const std::string& key) const;
};

/// Splits a comma-separated CLI list into specs.  Commas separate both paths
/// and a single path's key=value arguments; the ambiguity is resolved by the
/// grammar: a bare `key=value` segment continues the previous spec's
/// argument list, while a segment with no '=' — or one opening a new
/// `kind:key=value` form (':' before the first '=') — starts a new spec.
/// So `"zf,kbest:width=16,gsra"` is three paths, and
/// `"sa:reads=4,sweeps=40,gsra:reads=10"` is sa (two args) followed by
/// gsra (one arg).
[[nodiscard]] std::vector<path_spec> parse_spec_list(const std::string& text);

/// Everything one channel use hands to a detection path.
struct path_context {
    const wireless::mimo_instance& instance;  ///< y = Hx + n plus ground truth
    /// Shared QUBO reduction of `instance` (the QuAMax transform), computed
    /// once per use and reused by every QUBO-based path.  Non-null whenever
    /// any configured path reports needs_qubo(); paths that do not need it
    /// must ignore it.
    const detect::ml_qubo* reduced = nullptr;
    util::rng& rng;  ///< per-(use, path) derived stream — the ONLY randomness source
    /// Per-worker reusable state (scratch buffers + decomposition caches),
    /// or nullptr for the allocate-per-call legacy behaviour.  Optional by
    /// contract: a path must produce bit-identical bits/ml_cost either way
    /// (only timings may differ), so `path_context{instance, reduced, rng}`
    /// — the historical aggregate shape — keeps compiling and keeps its
    /// meaning for out-of-tree paths.
    workspace* ws = nullptr;
};

/// One named stage timing of a path's solve.
struct stage_time {
    std::string name;
    double service_us = 0.0;
};

/// What one detection path produces for one channel use.
struct path_result {
    qubo::bit_vector bits;  ///< detected bits (natural map, comparable to tx_bits)
    double ml_cost = 0.0;   ///< ||y - H x_hat||^2 of the detected word
    /// Per-stage timings, matching stage_names() in order and count.
    std::vector<stage_time> stages;
    /// Per-bit LLRs of the detected word, filled ONLY by an explicit
    /// soft_output() call (run/run_block leave it untouched, so the hard
    /// path pays nothing).  Canonical layout and sign convention of
    /// wireless/soft.h: user-major I-then-Q, positive favours bit 0, values
    /// clamped into [-llr_cap, llr_cap].  The vector is resized in place —
    /// a reused result in a warmed-up workspace loop stays allocation-free.
    std::vector<double> llrs;
};

/// One detection path: classical detector, QUBO heuristic, or hybrid
/// classical-quantum structure — the pipeline does not care which.
class detection_path {
public:
    virtual ~detection_path() = default;

    /// Detects one channel use.  Must be const-thread-safe (called
    /// concurrently from pool workers) and must draw randomness only from
    /// `ctx.rng`.
    [[nodiscard]] virtual path_result run(const path_context& ctx) const = 0;

    /// Detects a batch of channel uses, writing result i of `ctxs[i]` into
    /// `out[i]` (reused by the caller across batches — a warmed-up result
    /// vector plus workspace-carrying contexts make the built-in paths
    /// allocation-free per use).  Contract: out[i] carries exactly what
    /// run(ctxs[i]) would return (timings excepted), so callers may batch or
    /// not freely.  The default is that loop; built-in paths override run()'s
    /// innards rather than this, and out-of-tree paths need not override
    /// anything.  Throws std::invalid_argument on span length mismatch.
    virtual void run_block(std::span<const path_context> ctxs,
                           std::span<path_result> out) const;

    /// Fills `out.llrs` with per-bit soft information for the detection
    /// carried by `out` (which must hold this path's result for `ctx`, i.e.
    /// soft_output is called after run / run_block on the same context).
    /// Mirrors the `ws`/`run_block` opt-in pattern: the soft path is an
    /// explicit second call, so paths — and callers — that never ask for
    /// LLRs are byte-for-byte unaffected, and out-of-tree paths compile
    /// unchanged: the DEFAULT emits clamped hard decisions (+/-llr_cap from
    /// out.bits), which downstream decoding treats as maximal-confidence
    /// soft values.  Overrides must be deterministic (no ctx.rng draws) and
    /// independent of ctx.ws, so LLRs — like bits — are bit-identical at
    /// any thread count, stream block, and workspace setting.  The built-in
    /// overrides: linear paths produce post-equalisation max-log LLRs
    /// (wireless::equalized_llrs_into); tree-search and QUBO-solver paths
    /// produce single-bit-flip recost LLRs (wireless::flip_recost_llrs_into
    /// — for solver paths the QUBO energy gap at the detected word).
    virtual void soft_output(const path_context& ctx, path_result& out) const;

    /// Display name for tables, e.g. "ZF", "K-best", "GS+RA".
    [[nodiscard]] virtual std::string name() const = 0;

    /// Canonical spec reconstructing this path through registry::make, with
    /// every accepted key explicit — so `"kbest"` and `"kbest:width=8"`
    /// canonicalise identically and duplicates are detectable.
    [[nodiscard]] virtual path_spec spec() const = 0;

    /// True when the path consumes the shared QUBO reduction
    /// (path_context::reduced).
    [[nodiscard]] virtual bool needs_qubo() const noexcept { return false; }

    /// Names of the solve stages this path reports, in the order
    /// path_result::stages carries them (e.g. {"detect"}, {"solve"}, or
    /// {"classical", "quantum"}).  Fixed for the lifetime of the path.
    [[nodiscard]] virtual std::vector<std::string> stage_names() const = 0;

    /// Parallel-device count of each solve stage, aligned with
    /// stage_names() — e.g. {1, K} for a K-annealer path whose quantum
    /// stage round-robins one stream over K devices.  The link layer
    /// replays a stage with S > 1 as a pipeline::stage with S round-robin
    /// servers.  Default: one device per stage.
    [[nodiscard]] virtual std::vector<std::size_t> stage_servers() const {
        return std::vector<std::size_t>(stage_names().size(), 1);
    }

    /// The path's QUBO-solver form for (instances x solvers) sweeps
    /// (hybrid::parallel_runner), or nullptr when the path has none (the
    /// conventional detectors, which never touch a QUBO).  The returned
    /// solver owns everything it references and may outlive the path.
    [[nodiscard]] virtual std::shared_ptr<const solvers::solver> as_solver() const {
        return nullptr;
    }
};

/// Typed argument access for path factories.  Each throws
/// std::invalid_argument naming the path kind, the key, the offending value,
/// and the expected form.
[[nodiscard]] std::size_t spec_positive_size(const path_spec& spec, const std::string& key,
                                             std::size_t fallback);
[[nodiscard]] double spec_double(const path_spec& spec, const std::string& key, double fallback);

/// Canonical text form of a double spec value ("0.29", "0.001", "2000") —
/// round-trips through spec_double.
[[nodiscard]] std::string format_spec_value(double value);

}  // namespace hcq::paths

#endif  // HCQ_PATHS_DETECTION_PATH_H
