// Minimal task-parallel execution support for parameter sweeps and
// per-instance fan-out in benches.  Guideline CP.*: tasks over raw threads,
// no shared mutable state beyond the internally synchronised queue.
#ifndef HCQ_UTIL_THREAD_POOL_H
#define HCQ_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hcq::util {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
/// Destruction waits for all submitted tasks to finish.
class thread_pool {
public:
    /// Creates `num_threads` workers (0 selects hardware concurrency).
    explicit thread_pool(std::size_t num_threads = 0);

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool();

    /// Enqueues a task for asynchronous execution.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has completed.
    void wait_idle();

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_available_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) across `num_threads` workers (0 = hardware
/// concurrency; n below 2 or single-threaded environments degrade to a plain
/// loop).  Blocks until all iterations complete.  `fn` must be safe to call
/// concurrently for distinct i.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads = 0);

}  // namespace hcq::util

#endif  // HCQ_UTIL_THREAD_POOL_H
