// End-to-end link-layer bench: sustained throughput, ARQ-budget latency,
// drop rate and BER for each detection path, measured through the whole
// channel-use -> QUBO -> solve -> BER system (link/link_sim.h) rather than
// on frozen solver corpora.
//
// This is the system-level complement to the figure benches: it answers
// "what does the paper's pipelined hybrid structure deliver at the link
// layer, with stage times measured from the real code paths?"
//
// Extra flags: --uses=<base count> (scaled by --scale), --load=<offered
// load>, --threads=<n>, --paths=<spec list> (paths::registry spec strings,
// e.g. zf,kbest:width=16,gsra,kxra:k=4), --buffer=<slots per replay stage;
// 0 = unbounded>, --policy=block|drop-oldest|drop-newest, and
// --arq deadline_us=<auto|none|us>,max_retx=<n> to close the retransmission
// loop (adds residual-FER / retx-rate / miss-rate / goodput columns), and
// --channel <spec> (wireless/channel_spec.h — e.g. jakes:doppler_hz=5 or
// watterson:taps=2,spread_hz=1,est_err=0.05) for correlated fading /
// imperfect CSI; unset keeps the default i.i.d. rayleigh draw bit-for-bit,
// so the bench baselines remain valid.  --fec <spec> (fec/code_spec.h —
// e.g. k7 or k5:interleave=8x8) closes the coded link: paths emit per-bit
// LLRs, soft Viterbi decodes interleaved frames (adds coded-FER / coded-BER
// columns; uses are rounded down to whole coded frames per scenario), and
// with --arq the retransmission loop chase-combines LLRs across attempts.
// With --json the table is emitted inside the self-describing envelope
// {git_sha, bench, config, rows} — the format the CI bench-smoke job
// uploads as a BENCH_*.json artifact and the bench-regression gate diffs
// against bench/baselines/.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fec/code_spec.h"
#include "link/link_sim.h"
#include "paths/registry.h"

int main(int argc, char** argv) {
    using namespace hcq;
    const bench::context ctx(argc, argv);
    ctx.banner("end-to-end link simulation",
               "Figure 2 (pipelined structure) with measured stage latencies; "
               "Section 4.2 workload");

    const std::size_t uses = ctx.scaled(static_cast<std::size_t>(ctx.flags.get_int("uses", 100)));
    const double load = ctx.flags.get_double("load", 0.9);
    const std::size_t threads = static_cast<std::size_t>(ctx.flags.get_int("threads", 0));
    const auto path_specs =
        paths::parse_spec_list(ctx.flags.get_string("paths", "zf,kbest,sphere,sa,gsra"));
    const auto buffer = static_cast<std::size_t>(ctx.flags.get_int("buffer", 256));
    const auto policy = pipeline::parse_backpressure(ctx.flags.get_string("policy", "block"));
    const bool arq_on = ctx.flags.has("arq");
    const arq::arq_config arq_config =
        arq_on ? arq::parse_arq(ctx.flags.get_string("arq", "")) : arq::arq_config{};
    std::optional<wireless::channel_spec> channel;
    if (ctx.flags.has("channel")) {
        channel = wireless::channel_spec::parse(ctx.flags.get_string("channel", ""));
    }
    std::optional<fec::code_spec> fec_spec;
    if (ctx.flags.has("fec")) {
        // A bare `--fec` parses to "true" (util::flag_set); it selects the
        // default k7 code, same idiom as a bare `--arq`.
        const std::string spec = ctx.flags.get_string("fec", "k7");
        fec_spec = fec::code_spec::parse(spec.empty() || spec == "true" ? "k7" : spec);
    }

    struct scenario {
        std::size_t users;
        wireless::modulation mod;
    };
    std::vector<scenario> scenarios{{2, wireless::modulation::qam16},
                                    {4, wireless::modulation::qpsk},
                                    {4, wireless::modulation::qam16}};
    if (ctx.scale == util::bench_scale::full) {
        scenarios.push_back({8, wireless::modulation::qam16});
    }

    std::vector<std::string> headers{"users", "mod", "path", "BER", "exact uses",
                                     "svc mean us", "thrpt use/ms", "p50 lat us",
                                     "p99 lat us", "drop rate", "wall s"};
    if (fec_spec) headers.insert(headers.end(), {"coded FER", "coded BER"});
    if (arq_on) {
        headers.insert(headers.end(),
                       {"resid FER", "retx rate", "miss rate", "goodput use/ms"});
    }
    util::table t(std::move(headers));
    for (const auto& s : scenarios) {
        link::link_config config;
        config.num_uses = uses;
        config.num_users = s.users;
        config.mod = s.mod;
        if (fec_spec) {
            // The coded link wants whole frames; round the scenario's use
            // count down to the frame multiple (at least one frame).
            const std::size_t bits_per_use = s.users * wireless::bits_per_symbol(s.mod);
            const std::size_t uses_per_frame =
                (fec_spec->coded_bits() + bits_per_use - 1) / bits_per_use;
            config.num_uses = std::max(uses_per_frame, uses - uses % uses_per_frame);
            config.fec = fec_spec;
        }
        config.paths = path_specs;
        config.offered_load = load;
        config.num_threads = threads;
        config.seed = ctx.seed;
        config.buffer_capacity = buffer == 0 ? pipeline::unbounded_capacity : buffer;
        config.policy = policy;
        if (arq_on) config.arq = arq_config;
        config.channel_spec = channel;

        const util::timer clock;
        const auto report = link::run_link_simulation(config);
        const double wall_s = clock.elapsed_s();

        for (const auto& path : report.paths) {
            // Per-path service downstream of the shared synthesis stage.
            std::vector<std::string> row{std::to_string(s.users),
                                         wireless::to_string(s.mod),
                                         path.name,
                                         util::format_double(path.ber.rate(), 5),
                                         std::to_string(path.exact_frames),
                                         util::format_double(path.service.mean_us()),
                                         util::format_double(path.replay.throughput_per_us *
                                                             1000.0),
                                         util::format_double(path.replay.p50_latency_us),
                                         util::format_double(path.replay.p99_latency_us),
                                         util::format_double(path.replay.drop_rate, 5),
                                         util::format_double(wall_s, 2)};
            if (fec_spec) {
                const auto& fr = *path.fec;
                row.push_back(util::format_double(fr.coded_fer(), 5));
                row.push_back(util::format_double(fr.info_ber.rate(), 5));
            }
            if (arq_on) {
                const auto& ar = *path.arq;
                row.push_back(util::format_double(ar.counters.residual_fer(), 5));
                row.push_back(util::format_double(ar.counters.retx_rate(), 4));
                row.push_back(util::format_double(ar.replay_stats.miss_rate(), 5));
                row.push_back(util::format_double(ar.replay_stats.goodput_per_us * 1000.0));
            }
            t.add_row(std::move(row));
        }
    }
    ctx.emit(t);
    return 0;
}
