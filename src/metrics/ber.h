// Bit-error counting for the BER-oriented examples.
#ifndef HCQ_METRICS_BER_H
#define HCQ_METRICS_BER_H

#include <cstdint>
#include <span>

namespace hcq::metrics {

/// Number of positions where the two bit strings differ; sizes must match.
[[nodiscard]] std::size_t bit_errors(std::span<const std::uint8_t> a,
                                     std::span<const std::uint8_t> b);

/// Accumulates errors/total over many frames and reports the rate.
class ber_counter {
public:
    void add_frame(std::span<const std::uint8_t> reference,
                   std::span<const std::uint8_t> detected);

    [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
    [[nodiscard]] std::size_t total_bits() const noexcept { return total_; }
    /// Error rate; 0 when no bits were counted.
    [[nodiscard]] double rate() const noexcept;

private:
    std::size_t errors_ = 0;
    std::size_t total_ = 0;
};

}  // namespace hcq::metrics

#endif  // HCQ_METRICS_BER_H
