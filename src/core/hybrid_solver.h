// The hybrid classical-quantum solver — the paper's prototype design
// (Section 4.1): a classical initialiser feeding a reverse-annealing run on
// the (emulated) quantum device, with per-stage time accounting so that
// end-to-end comparisons can include the classical module's cost.
#ifndef HCQ_CORE_HYBRID_SOLVER_H
#define HCQ_CORE_HYBRID_SOLVER_H

#include "classical/solver.h"
#include "core/device.h"
#include "core/schedule.h"

namespace hcq::hybrid {

/// Everything one hybrid solve produces.
struct hybrid_result {
    solvers::initial_state initial;  ///< classical module output
    solvers::sample_set samples;     ///< annealer reads
    qubo::bit_vector best_bits;      ///< best of {initial, samples}
    double best_energy = 0.0;
    double classical_us = 0.0;       ///< measured initialiser wall time
    double quantum_us = 0.0;         ///< programmed schedule time x reads
};

/// Classical initialiser + (emulated) quantum annealer, run sequentially as
/// in Figure 1's "sequential" hybrid structure.
class hybrid_solver {
public:
    /// `init` and `device` must outlive the solver.  The schedule must start
    /// classical (reverse annealing) — that is what makes seeding with the
    /// classical candidate meaningful; throws std::invalid_argument otherwise.
    hybrid_solver(const solvers::initializer& init, const anneal::annealer_emulator& device,
                  anneal::anneal_schedule schedule, std::size_t num_reads);

    [[nodiscard]] hybrid_result solve(const qubo::qubo_model& q, util::rng& rng) const;

    /// Per-stage wall times of a best-only hybrid solve.
    struct timings {
        double classical_us = 0.0;
        double quantum_us = 0.0;
    };

    /// Best-only fast path: identical RNG draws and winner selection to
    /// solve(), but only the winning bits (into `best`, reused) and the
    /// stage timings are produced; returns the best energy.  A warmed-up
    /// scratch makes the call allocation-free under the default device
    /// config.
    double solve_best_into(const qubo::qubo_model& q, util::rng& rng,
                           solvers::solve_scratch& scratch, qubo::bit_vector& best,
                           timings& times) const;

    /// "<initialiser>+RA".
    [[nodiscard]] std::string name() const;

    [[nodiscard]] const anneal::anneal_schedule& schedule() const noexcept { return schedule_; }
    [[nodiscard]] std::size_t num_reads() const noexcept { return num_reads_; }

private:
    const solvers::initializer* init_;
    const anneal::annealer_emulator* device_;
    anneal::anneal_schedule schedule_;
    std::size_t num_reads_;
};

}  // namespace hcq::hybrid

#endif  // HCQ_CORE_HYBRID_SOLVER_H
