#include "core/tts.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hcq::hybrid {

double time_to_solution_us(double duration_us, double p_star, double confidence_percent) {
    if (duration_us <= 0.0) throw std::invalid_argument("time_to_solution_us: duration <= 0");
    if (confidence_percent <= 0.0 || confidence_percent >= 100.0) {
        throw std::invalid_argument("time_to_solution_us: confidence outside (0, 100)");
    }
    if (p_star <= 0.0) return std::numeric_limits<double>::infinity();
    if (p_star >= 1.0) return duration_us;
    const double tts =
        duration_us * std::log(1.0 - confidence_percent / 100.0) / std::log(1.0 - p_star);
    return std::max(tts, duration_us);
}

}  // namespace hcq::hybrid
