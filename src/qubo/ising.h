// Ising model and the exact QUBO <-> Ising correspondence (spins s = 2q - 1).
//
// Quantum annealers natively minimise Ising Hamiltonians
//   E({s}) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j,   s in {-1, +1};
// the paper treats this form as "trivially equivalent" to the QUBO of Eq. (1).
// The conversions here are exact including the constant offset, and the
// Ising linear terms h_i are precisely the sort key of the paper's greedy
// search (|1/2 Q_ii + 1/4 sum Q_ki + 1/4 sum Q_ik|, see Section 4.1 footnote).
#ifndef HCQ_QUBO_ISING_H
#define HCQ_QUBO_ISING_H

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/model.h"

namespace hcq::qubo {

/// Spin string: one int8 per variable, each -1 or +1.
using spin_vector = std::vector<std::int8_t>;

/// Dense Ising model over n spins.
class ising_model {
public:
    ising_model() = default;
    explicit ising_model(std::size_t n);

    /// Re-initialises to the zero Ising model on n spins, reusing the
    /// existing storage when large enough (hot-path model reuse).
    void reset(std::size_t n);

    [[nodiscard]] std::size_t num_spins() const noexcept { return n_; }

    [[nodiscard]] double field(std::size_t i) const;
    void set_field(std::size_t i, double h);

    /// Coupling J_ij, order-insensitive; i == j is invalid.
    [[nodiscard]] double coupling(std::size_t i, std::size_t j) const;
    void set_coupling(std::size_t i, std::size_t j, double jij);

    [[nodiscard]] double offset() const noexcept { return offset_; }
    void set_offset(double v) noexcept { offset_ = v; }

    /// sum h_i s_i + sum_{i<j} J_ij s_i s_j (offset not included).
    [[nodiscard]] double energy(std::span<const std::int8_t> spins) const;

private:
    void check(std::size_t i) const;

    std::size_t n_ = 0;
    double offset_ = 0.0;
    std::vector<double> h_;
    std::vector<double> j_;  // symmetric dense, diagonal unused
};

/// q = (1 + s)/2 conversion; preserves total energy:
///   qubo.energy(q) + qubo.offset() == ising.energy(s) + ising.offset().
[[nodiscard]] ising_model to_ising(const qubo_model& q);

/// Inverse conversion with the same energy-preservation guarantee.
[[nodiscard]] qubo_model to_qubo(const ising_model& ising);

/// to_qubo into a reused model (bit-identical coefficients and offset).
void to_qubo_into(const ising_model& ising, qubo_model& out);

/// Bit/spin translations.
[[nodiscard]] spin_vector spins_from_bits(std::span<const std::uint8_t> bits);
[[nodiscard]] bit_vector bits_from_spins(std::span<const std::int8_t> spins);

}  // namespace hcq::qubo

#endif  // HCQ_QUBO_ISING_H
