// Tests for the classical solver suite: sample sets, greedy search (the
// paper's GS), the Metropolis engine, SA, tabu, parallel tempering.
#include <gtest/gtest.h>

#include "classical/greedy.h"
#include "classical/metropolis.h"
#include "classical/parallel_tempering.h"
#include "classical/sample_set.h"
#include "classical/simulated_annealing.h"
#include "classical/solver.h"
#include "classical/tabu.h"
#include "qubo/brute_force.h"
#include "qubo/generator.h"
#include "qubo/ising.h"
#include "util/rng.h"

namespace {

namespace q = hcq::qubo;
namespace sv = hcq::solvers;

TEST(SampleSet, BestAndMean) {
    sv::sample_set s;
    s.add({0, 0}, 3.0);
    s.add({1, 0}, -1.0);
    s.add({0, 1}, 2.0);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.best().energy, -1.0);
    EXPECT_DOUBLE_EQ(s.mean_energy(), 4.0 / 3.0);
}

TEST(SampleSet, EmptyThrows) {
    const sv::sample_set s;
    EXPECT_TRUE(s.empty());
    EXPECT_THROW((void)s.best(), std::logic_error);
    EXPECT_THROW((void)s.mean_energy(), std::logic_error);
    EXPECT_DOUBLE_EQ(s.success_probability(0.0), 0.0);
}

TEST(SampleSet, SuccessCounting) {
    sv::sample_set s;
    s.add({0}, -5.0);
    s.add({1}, -5.0 + 1e-9);  // within tolerance
    s.add({0}, -4.0);
    EXPECT_EQ(s.count_at_or_below(-5.0, 1e-6), 2u);
    EXPECT_NEAR(s.success_probability(-5.0, 1e-6), 2.0 / 3.0, 1e-12);
}

TEST(SampleSet, MergeAndEnergies) {
    sv::sample_set a;
    a.add({0}, 1.0);
    sv::sample_set b;
    b.add({1}, 2.0);
    a.merge(b);
    EXPECT_EQ(a.size(), 2u);
    const auto energies = a.energies();
    EXPECT_DOUBLE_EQ(energies[0], 1.0);
    EXPECT_DOUBLE_EQ(energies[1], 2.0);
}

TEST(Initializers, RandomProducesValidState) {
    hcq::util::rng rng(1);
    const auto m = q::random_qubo(rng, 10, 1.0, -1.0, 1.0);
    const auto init = sv::random_initializer().initialize(m, rng);
    EXPECT_EQ(init.bits.size(), 10u);
    EXPECT_NEAR(init.energy, m.energy(init.bits), 1e-12);
    EXPECT_EQ(sv::random_initializer().name(), "random");
}

TEST(Initializers, FixedReturnsExactBits) {
    hcq::util::rng rng(2);
    const auto m = q::random_qubo(rng, 4, 1.0, -1.0, 1.0);
    const q::bit_vector bits{1, 0, 1, 1};
    const sv::fixed_initializer init(bits, "oracle");
    const auto state = init.initialize(m, rng);
    EXPECT_EQ(state.bits, bits);
    EXPECT_EQ(init.name(), "oracle");
    const sv::fixed_initializer wrong(q::bit_vector{1, 0});
    EXPECT_THROW((void)wrong.initialize(m, rng), std::invalid_argument);
}

TEST(Greedy, DeterministicAcrossCalls) {
    hcq::util::rng rng(3);
    const auto m = q::random_qubo(rng, 20, 1.0, -1.0, 1.0);
    sv::greedy_search gs;
    auto rng1 = rng.derive(1);
    auto rng2 = rng.derive(2);
    const auto a = gs.initialize(m, rng1);
    const auto b = gs.initialize(m, rng2);
    EXPECT_EQ(a.bits, b.bits);  // rng is unused: GS is deterministic
    EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(Greedy, SolvesFerromagneticChainExactly) {
    const auto m = q::to_qubo(q::ferromagnetic_chain(12));
    hcq::util::rng rng(4);
    const auto init = sv::greedy_search().initialize(m, rng);
    const q::bit_vector all_ones(12, 1);
    EXPECT_EQ(init.bits, all_ones);
}

TEST(Greedy, BeatsRandomOnAverage) {
    hcq::util::rng rng(5);
    double greedy_total = 0.0;
    double random_total = 0.0;
    const int trials = 25;
    for (int t = 0; t < trials; ++t) {
        const auto m = q::random_qubo(rng, 24, 1.0, -1.0, 1.0);
        auto grng = rng.derive(t);
        greedy_total += sv::greedy_search().initialize(m, grng).energy;
        for (int r = 0; r < 5; ++r) {
            random_total += m.energy(rng.bits(24)) / 5.0;
        }
    }
    EXPECT_LT(greedy_total, random_total);
}

TEST(Greedy, EnergyMatchesReportedBits) {
    hcq::util::rng rng(6);
    const auto m = q::random_qubo(rng, 15, 0.8, -2.0, 2.0);
    const auto init = sv::greedy_search().initialize(m, rng);
    EXPECT_NEAR(init.energy, m.energy(init.bits), 1e-12);
    EXPECT_GE(init.elapsed_us, 0.0);
}

TEST(Greedy, BothRankOrdersProduceValidStates) {
    hcq::util::rng rng(7);
    const auto m = q::random_qubo(rng, 12, 1.0, -1.0, 1.0);
    const auto a = sv::greedy_search(sv::rank_order::most_decided_first).initialize(m, rng);
    const auto b = sv::greedy_search(sv::rank_order::least_decided_first).initialize(m, rng);
    EXPECT_EQ(a.bits.size(), 12u);
    EXPECT_EQ(b.bits.size(), 12u);
    // The default is the paper's literal "ascending magnitude" order.
    EXPECT_EQ(sv::greedy_search().order(), sv::rank_order::least_decided_first);
}

TEST(Greedy, LocalMinimumUnderSingleFlips) {
    // The greedy construction should at least not leave a trivially
    // improvable first-ranked bit; check it is 1-opt w.r.t. its own order by
    // verifying no single flip of the *last assigned* variable helps.
    hcq::util::rng rng(8);
    const auto m = q::random_qubo(rng, 10, 1.0, -1.0, 1.0);
    const auto init = sv::greedy_search().initialize(m, rng);
    // A full 1-opt guarantee does not hold for greedy; verify energy is
    // finite and consistent instead, plus at most n improving flips exist.
    std::size_t improving = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        if (m.flip_delta(i, init.bits) < -1e-12) ++improving;
    }
    EXPECT_LE(improving, 5u);  // should be a decent local state
}

TEST(Metropolis, TracksEnergyExactly) {
    hcq::util::rng rng(9);
    const auto m = q::random_qubo(rng, 16, 0.9, -1.0, 1.0);
    sv::metropolis_engine engine(m, rng.bits(16));
    for (int sweep = 0; sweep < 50; ++sweep) {
        engine.sweep(0.7, rng);
        EXPECT_NEAR(engine.energy(), m.energy(engine.state()), 1e-8);
    }
}

TEST(Metropolis, ZeroTemperatureNeverIncreasesEnergy) {
    hcq::util::rng rng(10);
    const auto m = q::random_qubo(rng, 20, 1.0, -1.0, 1.0);
    sv::metropolis_engine engine(m, rng.bits(20));
    double prev = engine.energy();
    for (int sweep = 0; sweep < 30; ++sweep) {
        engine.sweep(0.0, rng);
        EXPECT_LE(engine.energy(), prev + 1e-12);
        prev = engine.energy();
    }
}

TEST(Metropolis, ZeroTemperatureReachesLocalMinimum) {
    hcq::util::rng rng(11);
    const auto m = q::random_qubo(rng, 15, 1.0, -1.0, 1.0);
    sv::metropolis_engine engine(m, rng.bits(15));
    for (int sweep = 0; sweep < 100; ++sweep) engine.sweep(0.0, rng);
    for (std::size_t i = 0; i < 15; ++i) {
        EXPECT_GE(m.flip_delta(i, engine.state()), -1e-12);
    }
}

TEST(Metropolis, ForceFlipAndFieldsConsistent) {
    hcq::util::rng rng(12);
    const auto m = q::random_qubo(rng, 8, 1.0, -1.0, 1.0);
    sv::metropolis_engine engine(m, rng.bits(8));
    const auto before = engine.state();
    engine.force_flip(3);
    EXPECT_NE(engine.state()[3], before[3]);
    EXPECT_NEAR(engine.energy(), m.energy(engine.state()), 1e-10);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(engine.field(i), m.local_field(i, engine.state()), 1e-10);
    }
}

TEST(Metropolis, SetStateRebuilds) {
    hcq::util::rng rng(13);
    const auto m = q::random_qubo(rng, 6, 1.0, -1.0, 1.0);
    sv::metropolis_engine engine(m, q::bit_vector(6, 0));
    const auto bits = rng.bits(6);
    engine.set_state(bits);
    EXPECT_EQ(engine.state(), bits);
    EXPECT_NEAR(engine.energy(), m.energy(bits), 1e-12);
    EXPECT_THROW(engine.set_state(q::bit_vector(3, 0)), std::invalid_argument);
    EXPECT_THROW(sv::metropolis_engine(m, q::bit_vector(2, 0)), std::invalid_argument);
}

TEST(Metropolis, HighTemperatureAcceptsFreely) {
    hcq::util::rng rng(14);
    const auto m = q::random_qubo(rng, 10, 1.0, -0.1, 0.1);
    sv::metropolis_engine engine(m, rng.bits(10));
    const std::size_t accepted = engine.sweep(1e6, rng);
    EXPECT_GT(accepted, 5u);  // nearly everything accepted at huge T
    EXPECT_THROW((void)engine.try_flip(0, -1.0, rng), std::invalid_argument);
}

TEST(SimulatedAnnealing, FindsOptimumOnSmallInstance) {
    hcq::util::rng rng(15);
    const auto m = q::random_qubo(rng, 12, 1.0, -1.0, 1.0);
    const auto exact = q::brute_force_minimize(m);
    const sv::simulated_annealing sa({.num_reads = 20, .num_sweeps = 200});
    auto srng = rng.derive(1);
    const auto samples = sa.solve(m, srng);
    EXPECT_EQ(samples.size(), 20u);
    EXPECT_NEAR(samples.best().energy, exact.best_energy, 1e-9);
}

TEST(SimulatedAnnealing, ConfigValidation) {
    EXPECT_THROW(sv::simulated_annealing({.num_reads = 0}), std::invalid_argument);
    EXPECT_THROW(sv::simulated_annealing({.num_sweeps = 0}), std::invalid_argument);
    EXPECT_THROW(sv::simulated_annealing({.hot_fraction = -1.0}), std::invalid_argument);
    EXPECT_THROW(sv::simulated_annealing(
                     {.hot_fraction = 0.1, .cold_fraction = 0.5}),
                 std::invalid_argument);
    EXPECT_EQ(sv::simulated_annealing().name(), "SA");
}

TEST(Tabu, FindsOptimumOnFerromagneticChain) {
    const auto m = q::to_qubo(q::ferromagnetic_chain(10));
    hcq::util::rng rng(16);
    const auto samples = sv::tabu_search().solve(m, rng);
    const auto exact = q::brute_force_minimize(m);
    EXPECT_NEAR(samples.best().energy, exact.best_energy, 1e-9);
}

TEST(Tabu, FindsOptimumOnRandomSmallInstances) {
    hcq::util::rng rng(17);
    int hits = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto m = q::random_qubo(rng, 10, 1.0, -1.0, 1.0);
        const auto exact = q::brute_force_minimize(m);
        auto trng = rng.derive(trial);
        const auto samples = sv::tabu_search().solve(m, trng);
        if (samples.best().energy <= exact.best_energy + 1e-9) ++hits;
    }
    EXPECT_GE(hits, 8);  // tabu should nearly always crack 10-variable QUBOs
}

TEST(Tabu, InitializerInterface) {
    hcq::util::rng rng(18);
    const auto m = q::random_qubo(rng, 8, 1.0, -1.0, 1.0);
    const sv::tabu_search tabu;
    const auto init = tabu.initialize(m, rng);
    EXPECT_EQ(init.bits.size(), 8u);
    EXPECT_NEAR(init.energy, m.energy(init.bits), 1e-12);
    EXPECT_EQ(tabu.name(), "Tabu");
    EXPECT_THROW(sv::tabu_search({.max_iterations = 0}), std::invalid_argument);
}

TEST(ParallelTempering, FindsOptimumOnSpinGlass) {
    hcq::util::rng rng(19);
    const auto ising = q::sk_spin_glass(rng, 14);
    const auto m = q::to_qubo(ising);
    const auto exact = q::brute_force_minimize(m);
    const sv::parallel_tempering pt(
        {.num_replicas = 8, .num_rounds = 120, .sweeps_per_round = 2});
    auto prng = rng.derive(7);
    const auto samples = pt.solve(m, prng);
    EXPECT_NEAR(samples.best().energy, exact.best_energy, 1e-9);
}

TEST(ParallelTempering, SampleCountAndValidation) {
    hcq::util::rng rng(20);
    const auto m = q::random_qubo(rng, 6, 1.0, -1.0, 1.0);
    const sv::parallel_tempering pt({.num_replicas = 4, .num_rounds = 10});
    const auto samples = pt.solve(m, rng);
    EXPECT_EQ(samples.size(), 11u);  // one per round + final best
    EXPECT_THROW(sv::parallel_tempering({.num_replicas = 1}), std::invalid_argument);
    EXPECT_THROW(sv::parallel_tempering({.num_rounds = 0}), std::invalid_argument);
    EXPECT_EQ(pt.name(), "PT");
}

TEST(ParallelTempering, BestNeverWorseThanColdReplicaMean) {
    hcq::util::rng rng(21);
    const auto m = q::random_qubo(rng, 16, 1.0, -1.0, 1.0);
    const auto samples = sv::parallel_tempering().solve(m, rng);
    EXPECT_LE(samples.best().energy, samples.mean_energy() + 1e-12);
}

}  // namespace
