// One client connection of the serving front end: incremental frame
// reassembly on the read side, a buffered outbox with partial-write
// resumption on the write side.
//
// Concurrency contract: sessions are owned and touched EXCLUSIVELY by the
// server's IO thread — no locks, no annotations (a mutex here would signal
// a design error, like pipeline.h).  Worker threads never see a session;
// they hand finished response frames to the server's completion queue,
// which the IO thread drains into enqueue_output().
#ifndef HCQ_SERVE_SESSION_H
#define HCQ_SERVE_SESSION_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/socket.h"

namespace hcq::serve {

/// Per-connection state.  `id` is a monotonically increasing session
/// identifier, deliberately distinct from the fd: fds are reused by the
/// kernel, so routing a completed response by fd could deliver a stale
/// batch to a new client.  Completions route by id and are dropped when the
/// session is gone.
class session {
public:
    session(std::uint64_t id, unique_fd fd);

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] int fd() const noexcept { return fd_.get(); }

    /// Drains whatever the socket currently has into the input buffer.
    /// Returns false when the peer closed or the connection broke — the
    /// caller should process any complete buffered frames and then drop the
    /// session.
    [[nodiscard]] bool read_ready();

    /// Extracts the next complete frame payload (length prefix stripped)
    /// from the input buffer, or nullopt when none is complete yet.  Throws
    /// protocol_error on an invalid length prefix (zero or oversized) —
    /// after which the stream is unparseable and the session must close.
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> next_frame();

    /// Queues an already-framed (length-prefixed) response for writing.
    void enqueue_output(std::vector<std::uint8_t> frame_bytes);

    /// Writes as much queued output as the socket accepts.  Returns false
    /// when the connection broke (drop the session).
    [[nodiscard]] bool write_ready();

    /// True while queued output remains — drives the poller's write
    /// interest.
    [[nodiscard]] bool wants_write() const noexcept { return !out_.empty(); }

    /// True when unparsed input bytes are buffered (e.g. frames parked
    /// behind a full admission queue under the block policy).
    [[nodiscard]] bool has_buffered_input() const noexcept { return in_.size() > consumed_; }

private:
    std::uint64_t id_;
    unique_fd fd_;
    std::vector<std::uint8_t> in_;  ///< raw unparsed bytes
    std::size_t consumed_ = 0;      ///< parse cursor into in_ (compacted lazily)
    std::deque<std::vector<std::uint8_t>> out_;  ///< framed responses awaiting write
    std::size_t out_offset_ = 0;    ///< bytes of out_.front() already written
};

}  // namespace hcq::serve

#endif  // HCQ_SERVE_SESSION_H
