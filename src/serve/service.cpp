#include "serve/service.h"

#include <memory>
#include <span>
#include <stdexcept>

#include "detect/transform.h"
#include "link/link_sim.h"
#include "metrics/ber.h"
#include "paths/registry.h"
#include "paths/workspace.h"
#include "util/rng.h"
#include "util/timer.h"
#include "wireless/channel_spec.h"
#include "wireless/mimo.h"

namespace hcq::serve {

batch_result run_batch(const request& req) {
    if (req.num_uses == 0 || req.num_uses > max_batch_uses) {
        throw std::invalid_argument("serve: num_uses " + std::to_string(req.num_uses) +
                                    " outside 1.." + std::to_string(max_batch_uses));
    }
    if (req.num_users == 0 || req.num_users > 64) {
        throw std::invalid_argument("serve: num_users " + std::to_string(req.num_users) +
                                    " outside 1..64");
    }
    if (req.spec.empty()) {
        throw std::invalid_argument("serve: empty detection-path spec");
    }

    const auto path = paths::registry::make(req.spec);
    const wireless::modulation mod = wireless::parse_modulation(req.mod);
    if (req.want_soft) {
        const std::size_t soft_bytes = static_cast<std::size_t>(req.num_uses) * req.num_users *
                                       wireless::bits_per_symbol(mod) * sizeof(double);
        if (soft_bytes > max_soft_payload_bytes) {
            throw std::invalid_argument(
                "serve: soft batch of " + std::to_string(soft_bytes) +
                " LLR bytes exceeds the " + std::to_string(max_soft_payload_bytes) +
                "-byte soft-payload cap (shrink num_uses or drop want_soft)");
        }
    }
    std::optional<wireless::channel_spec> channel;
    if (!req.channel.empty()) channel = wireless::channel_spec::parse(req.channel);

    // Identical resolution order to link::run_link_simulation: the channel
    // spec's snr_db override wins, est_err applies only with a spec, and the
    // frozen correlated-fading realisation draws from the fading domain.
    const std::uint64_t master = request_seed(req.tenant_id, req.request_seq, req.seed);
    const double snr_db = (channel && channel->snr_db) ? *channel->snr_db : req.snr_db;
    const double csi_est_err = channel ? channel->est_err : 0.0;
    std::unique_ptr<const wireless::channel_process> process;
    if (channel) {
        process = wireless::make_channel_process(
            *channel, req.num_users, req.num_users,
            util::rng(master).derive(link::stream_domains::fading));
    }

    wireless::mimo_config mimo;
    mimo.mod = mod;
    mimo.num_users = req.num_users;
    mimo.num_antennas = req.num_users;
    mimo.channel = req.noiseless ? wireless::channel_model::unit_gain_random_phase
                                 : wireless::channel_model::rayleigh;
    mimo.noise_variance =
        req.noiseless ? 0.0
                      : wireless::noise_variance_for_snr(mod, req.num_users, snr_db);

    const util::rng synth_base = util::rng(master).derive(link::stream_domains::synthesis);
    const util::rng solve_base = util::rng(master).derive(link::stream_domains::solve);
    const bool needs_qubo = path->needs_qubo();

    batch_result result;
    result.bits.resize(req.num_uses);
    result.ml_cost.resize(req.num_uses);
    metrics::ber_counter ber;

    // Serial over the batch: the server's parallelism is ACROSS requests
    // (the worker pool serves many sessions at once), which keeps each
    // batch's derived-stream consumption trivially schedule-independent.
    // One warm workspace serves the whole batch — each pool worker runs its
    // own run_batch, so the arena is never shared.
    paths::workspace ws;
    wireless::mimo_instance instance;
    detect::ml_qubo mq;
    paths::path_result cell;
    for (std::uint32_t u = 0; u < req.num_uses; ++u) {
        util::rng synth_rng = synth_base.derive(u);
        util::timer synth_clock;
        if (process) {
            wireless::synthesize_at_into(synth_rng, mimo, *process, static_cast<double>(u),
                                         csi_est_err, instance);
        } else {
            wireless::synthesize_into(synth_rng, mimo, instance);
        }
        result.synth_us += synth_clock.elapsed_us();

        if (needs_qubo) {
            util::timer reduce_clock;
            detect::ml_to_qubo_into(instance, ws.detect.qubo, mq);
            result.qubo_us += reduce_clock.elapsed_us();
        }

        // One path per request, so the link layer's solve-stream index
        // u * num_paths + p is just u.
        util::rng solve_rng = solve_base.derive(u);
        const paths::path_context ctx{instance, needs_qubo ? &mq : nullptr, solve_rng, &ws};
        util::timer solve_clock;
        path->run_block(std::span<const paths::path_context>(&ctx, 1),
                        std::span<paths::path_result>(&cell, 1));
        if (req.want_soft) {
            // The explicit opt-in second call of the path API; hard-decision
            // requests pay nothing.
            path->soft_output(ctx, cell);
            result.llrs.insert(result.llrs.end(), cell.llrs.begin(), cell.llrs.end());
        }
        result.solve_us += solve_clock.elapsed_us();

        ber.add_frame(instance.tx_bits, cell.bits);
        if (cell.bits == instance.tx_bits) ++result.exact_frames;
        result.sum_ml_cost += cell.ml_cost;
        result.ml_cost[u] = cell.ml_cost;
        result.bits[u] = cell.bits;  // copy: `cell` stays warm for the next use
    }

    result.bits_per_use =
        static_cast<std::size_t>(req.num_users) * wireless::bits_per_symbol(mod);
    result.bit_errors = ber.errors();
    result.total_bits = ber.total_bits();
    return result;
}

response make_ok_response(const request& req, const batch_result& result) {
    response resp;
    resp.state = status::ok;
    resp.tenant_id = req.tenant_id;
    resp.request_seq = req.request_seq;
    resp.num_uses = static_cast<std::uint32_t>(result.bits.size());
    resp.bits_per_use = static_cast<std::uint32_t>(result.bits_per_use);
    for (std::size_t u = 0; u < result.bits.size(); ++u) {
        pack_bits(resp.bits, u * result.bits_per_use, result.bits[u]);
    }
    // A batch whose every bit is zero packs to an empty-looking buffer;
    // size it explicitly so the wire length always matches the header.
    resp.bits.resize((result.bits.size() * result.bits_per_use + 7) / 8, 0);
    resp.ml_cost = result.ml_cost;
    resp.llrs = result.llrs;
    resp.synth_us = result.synth_us;
    resp.qubo_us = result.qubo_us;
    resp.solve_us = result.solve_us;
    return resp;
}

}  // namespace hcq::serve
