// End-to-end link-layer bench: sustained throughput, ARQ-budget latency,
// drop rate and BER for each detection path, measured through the whole
// channel-use -> QUBO -> solve -> BER system (link/link_sim.h) rather than
// on frozen solver corpora.
//
// This is the system-level complement to the figure benches: it answers
// "what does the paper's pipelined hybrid structure deliver at the link
// layer, with stage times measured from the real code paths?"
//
// Extra flags: --uses=<base count> (scaled by --scale), --load=<offered
// load>, --threads=<n>, --paths=<spec list> (paths::registry spec strings,
// e.g. zf,kbest:width=16,gsra,kxra:k=4), --buffer=<slots per replay stage;
// 0 = unbounded>, --policy=block|drop-oldest|drop-newest.  With --json the
// table is emitted as a JSON array of row objects — the format the CI
// bench-smoke job uploads as a BENCH_*.json artifact.
#include <vector>

#include "bench_common.h"
#include "link/link_sim.h"
#include "paths/registry.h"

int main(int argc, char** argv) {
    using namespace hcq;
    const bench::context ctx(argc, argv);
    ctx.banner("end-to-end link simulation",
               "Figure 2 (pipelined structure) with measured stage latencies; "
               "Section 4.2 workload");

    const std::size_t uses = ctx.scaled(static_cast<std::size_t>(ctx.flags.get_int("uses", 100)));
    const double load = ctx.flags.get_double("load", 0.9);
    const std::size_t threads = static_cast<std::size_t>(ctx.flags.get_int("threads", 0));
    const auto path_specs =
        paths::parse_spec_list(ctx.flags.get_string("paths", "zf,kbest,sphere,sa,gsra"));
    const auto buffer = static_cast<std::size_t>(ctx.flags.get_int("buffer", 256));
    const auto policy = pipeline::parse_backpressure(ctx.flags.get_string("policy", "block"));

    struct scenario {
        std::size_t users;
        wireless::modulation mod;
    };
    std::vector<scenario> scenarios{{2, wireless::modulation::qam16},
                                    {4, wireless::modulation::qpsk},
                                    {4, wireless::modulation::qam16}};
    if (ctx.scale == util::bench_scale::full) {
        scenarios.push_back({8, wireless::modulation::qam16});
    }

    util::table t({"users", "mod", "path", "BER", "exact uses", "svc mean us",
                   "thrpt use/ms", "p50 lat us", "p99 lat us", "drop rate", "wall s"});
    for (const auto& s : scenarios) {
        link::link_config config;
        config.num_uses = uses;
        config.num_users = s.users;
        config.mod = s.mod;
        config.paths = path_specs;
        config.offered_load = load;
        config.num_threads = threads;
        config.seed = ctx.seed;
        config.buffer_capacity = buffer == 0 ? pipeline::unbounded_capacity : buffer;
        config.policy = policy;

        const util::timer clock;
        const auto report = link::run_link_simulation(config);
        const double wall_s = clock.elapsed_s();

        for (const auto& path : report.paths) {
            // Per-path service downstream of the shared synthesis stage.
            t.add(s.users, wireless::to_string(s.mod), path.name,
                  util::format_double(path.ber.rate(), 5), path.exact_frames,
                  path.service.mean_us(), path.replay.throughput_per_us * 1000.0,
                  path.replay.p50_latency_us, path.replay.p99_latency_us,
                  util::format_double(path.replay.drop_rate, 5),
                  util::format_double(wall_s, 2));
        }
    }
    ctx.emit(t);
    return 0;
}
