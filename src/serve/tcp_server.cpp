#include "serve/tcp_server.h"

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "serve/service.h"

namespace hcq::serve {

tcp_server::tcp_server(server_config config)
    : config_(config), poller_(config.poll_backend) {
    if (config_.num_workers == 0) {
        throw std::invalid_argument("serve: server_config.num_workers must be >= 1");
    }
    if (config_.admission_capacity == 0) {
        throw std::invalid_argument("serve: server_config.admission_capacity must be >= 1");
    }
    listener_ = listen_loopback(config_.port, config_.listen_backlog);
    port_ = local_port(listener_.get());
    poller_.add(listener_.get(), /*want_read=*/true, /*want_write=*/false);
    poller_.add(wake_.read_fd(), /*want_read=*/true, /*want_write=*/false);
    pool_ = std::make_unique<util::thread_pool>(config_.num_workers);
    io_thread_ = std::thread([this] { io_loop(); });
}

tcp_server::~tcp_server() { stop(); }

void tcp_server::stop() {
    // stopped_ is only touched by the thread driving stop()/destruction,
    // which is the owner of the server object.
    if (stopped_) return;
    stopped_ = true;
    {
        const util::mutex_lock lock(mutex_);
        stop_ = true;
    }
    wake_.wake();
    if (io_thread_.joinable()) io_thread_.join();
    {
        // Abandon queued-but-unstarted requests so the surplus drain tasks
        // finish instantly; in-flight batches run to completion below.
        const util::mutex_lock lock(mutex_);
        pending_.clear();
    }
    pool_->stop();
}

server_stats tcp_server::stats() const {
    const util::mutex_lock lock(mutex_);
    return stats_;
}

bool tcp_server::stop_requested() const {
    const util::mutex_lock lock(mutex_);
    return stop_;
}

bool tcp_server::admission_full() const {
    const util::mutex_lock lock(mutex_);
    return pending_.size() >= config_.admission_capacity;
}

void tcp_server::bump(std::uint64_t server_stats::* counter) {
    const util::mutex_lock lock(mutex_);
    ++(stats_.*counter);
}

void tcp_server::io_loop() {
    std::vector<ready_event> events;
    while (!stop_requested()) {
        poller_.wait(events, /*timeout_ms=*/-1);
        if (stop_requested()) break;
        for (const auto& e : events) {
            if (e.fd == wake_.read_fd()) {
                wake_.drain();
                continue;
            }
            if (e.fd == listener_.get()) {
                accept_clients();
                continue;
            }
            const auto id_it = fd_to_id_.find(e.fd);
            if (id_it == fd_to_id_.end()) continue;  // closed earlier in this batch
            const std::uint64_t id = id_it->second;
            const auto s_it = sessions_.find(id);
            if (s_it == sessions_.end()) continue;
            session& s = s_it->second;
            if (e.error) {
                close_session(id);
                continue;
            }
            if (e.readable) {
                if (!s.read_ready()) {
                    // Peer hung up; any still-buffered requests have no
                    // deliverable response, so don't bother admitting them.
                    close_session(id);
                    continue;
                }
                if (!process_or_close(id, s)) continue;
            }
            if (e.writable) {
                if (!s.write_ready()) {
                    close_session(id);
                    continue;
                }
            }
            update_interest(s);
        }
        drain_completions();
        if (paused_ && !admission_full()) {
            // A worker freed queue capacity: resume socket reads and replay
            // the frames that were parked in session buffers by the pause.
            paused_ = false;
            resume_reads();
            std::vector<std::uint64_t> parked;
            for (const auto& [id, s] : sessions_) {
                if (s.has_buffered_input()) parked.push_back(id);
            }
            for (const std::uint64_t id : parked) {
                const auto it = sessions_.find(id);
                if (it == sessions_.end()) continue;
                if (process_or_close(id, it->second)) update_interest(it->second);
                if (paused_) break;  // refilled already; the rest stay parked
            }
        }
    }
}

void tcp_server::accept_clients() {
    for (;;) {
        unique_fd client = accept_client(listener_.get());
        if (!client.valid()) return;
        const int fd = client.get();
        const std::uint64_t id = next_session_id_++;
        poller_.add(fd, /*want_read=*/!paused_, /*want_write=*/false);
        fd_to_id_[fd] = id;
        sessions_.emplace(id, session(id, std::move(client)));
        bump(&server_stats::sessions_accepted);
    }
}

tcp_server::input_verdict tcp_server::process_input(session& s) {
    for (;;) {
        if (config_.policy == pipeline::backpressure::block && admission_full()) {
            if (!paused_) {
                paused_ = true;
                pause_reads();
            }
            return input_verdict::parked;
        }
        auto payload = s.next_frame();  // throws protocol_error on a bad prefix
        if (!payload) return input_verdict::drained;
        admit(s, decode_request(*payload));
    }
}

bool tcp_server::process_or_close(std::uint64_t session_id, session& s) {
    try {
        (void)process_input(s);
        return true;
    } catch (const protocol_error& pe) {
        // The stream beyond a malformed frame cannot be re-synchronised:
        // answer bad_request (best effort) and drop the connection.
        response resp;
        resp.state = status::bad_request;
        resp.message = pe.what();
        s.enqueue_output(frame(encode_response(resp)));
        (void)s.write_ready();
        bump(&server_stats::bad_requests);
        close_session(session_id);
        return false;
    }
}

void tcp_server::admit(session& s, request req) {
    std::optional<work_item> evicted;
    bool accepted = false;
    bool submit_drain = false;
    {
        const util::mutex_lock lock(mutex_);
        if (pending_.size() >= config_.admission_capacity) {
            if (config_.policy == pipeline::backpressure::drop_oldest) {
                evicted.emplace(std::move(pending_.front()));
                pending_.pop_front();
                pending_.push_back(work_item{s.id(), std::move(req), util::timer{}});
                ++stats_.evictions;
                ++stats_.rejected_busy;
                ++stats_.requests_admitted;
                accepted = true;
                // The evicted item's drain task now serves the newcomer:
                // one task per queued item stays balanced, no extra submit.
            } else {
                // drop_newest, or the block policy losing the race between
                // its capacity check and a concurrent burst: shed the
                // newcomer with an immediate BUSY.
                ++stats_.rejected_busy;
            }
        } else {
            pending_.push_back(work_item{s.id(), std::move(req), util::timer{}});
            ++stats_.requests_admitted;
            accepted = true;
            submit_drain = true;
        }
    }
    if (submit_drain) pool_->submit([this] { drain_one(); });
    if (evicted) {
        const response resp = rejection(
            evicted->req, status::busy, evicted->queued_at.elapsed_us(),
            "evicted after waiting: admission queue full (capacity " +
                std::to_string(config_.admission_capacity) + ", policy drop-oldest)");
        send_to_session(evicted->session_id, frame(encode_response(resp)),
                        /*close_after=*/false);
    }
    if (!accepted) {
        const response resp =
            rejection(req, status::busy, 0.0,
                      "admission queue full (capacity " +
                          std::to_string(config_.admission_capacity) + ", policy " +
                          pipeline::to_string(config_.policy) + ")");
        s.enqueue_output(frame(encode_response(resp)));
    }
}

void tcp_server::drain_one() {
    work_item item;
    {
        const util::mutex_lock lock(mutex_);
        if (pending_.empty()) return;  // surplus task after stop()'s abandon
        item = std::move(pending_.front());
        pending_.pop_front();
    }
    const double wait_us = item.queued_at.elapsed_us();
    response resp;
    if (item.req.deadline_us > 0.0 && wait_us > item.req.deadline_us) {
        resp = rejection(item.req, status::deadline, wait_us,
                         "queue wait " + std::to_string(wait_us) +
                             " us exceeded the request deadline of " +
                             std::to_string(item.req.deadline_us) + " us");
        bump(&server_stats::rejected_deadline);
    } else {
        try {
            const batch_result result = run_batch(item.req);
            resp = make_ok_response(item.req, result);
            resp.queue_wait_us = wait_us;
            const auto snap = pool_->snapshot();
            resp.in_flight = static_cast<std::uint32_t>(snap.in_flight);
            {
                const util::mutex_lock lock(mutex_);
                resp.queue_depth = static_cast<std::uint32_t>(pending_.size());
            }
            bump(&server_stats::served_ok);
        } catch (const std::invalid_argument& e) {
            resp = rejection(item.req, status::bad_request, wait_us, e.what());
            bump(&server_stats::bad_requests);
        } catch (const std::exception& e) {
            resp = rejection(item.req, status::error, wait_us, e.what());
            bump(&server_stats::internal_errors);
        }
    }
    {
        const util::mutex_lock lock(mutex_);
        completions_.push_back(
            completion{item.session_id, frame(encode_response(resp)), false});
    }
    wake_.wake();
}

void tcp_server::drain_completions() {
    std::deque<completion> batch;
    {
        const util::mutex_lock lock(mutex_);
        batch.swap(completions_);
    }
    for (auto& c : batch) {
        send_to_session(c.session_id, std::move(c.frame_bytes), c.close_after);
    }
}

void tcp_server::send_to_session(std::uint64_t session_id,
                                 std::vector<std::uint8_t> frame_bytes, bool close_after) {
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;  // session gone; drop the response
    it->second.enqueue_output(std::move(frame_bytes));
    if (!it->second.write_ready() || close_after) {
        close_session(session_id);
        return;
    }
    update_interest(it->second);
}

void tcp_server::close_session(std::uint64_t session_id) {
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    poller_.remove(it->second.fd());
    fd_to_id_.erase(it->second.fd());
    sessions_.erase(it);
    bump(&server_stats::sessions_closed);
}

void tcp_server::update_interest(session& s) {
    poller_.modify(s.fd(), /*want_read=*/!paused_, /*want_write=*/s.wants_write());
}

void tcp_server::pause_reads() {
    for (auto& [id, s] : sessions_) {
        poller_.modify(s.fd(), /*want_read=*/false, /*want_write=*/s.wants_write());
    }
}

void tcp_server::resume_reads() {
    for (auto& [id, s] : sessions_) {
        poller_.modify(s.fd(), /*want_read=*/true, /*want_write=*/s.wants_write());
    }
}

response tcp_server::rejection(const request& req, status st, double wait_us,
                               const std::string& message) {
    response resp;
    resp.state = st;
    resp.tenant_id = req.tenant_id;
    resp.request_seq = req.request_seq;
    resp.queue_wait_us = wait_us;
    resp.message = message;
    const auto snap = pool_->snapshot();
    resp.in_flight = static_cast<std::uint32_t>(snap.in_flight);
    {
        const util::mutex_lock lock(mutex_);
        resp.queue_depth = static_cast<std::uint32_t>(pending_.size());
    }
    return resp;
}

}  // namespace hcq::serve
