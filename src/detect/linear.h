// Linear detectors: zero-forcing and MMSE.
//
// Section 5 of the paper singles out linear solvers ("e.g., zero-forcing") as
// likely-better reverse-annealing initialisers than greedy search at the cost
// of a matrix inversion.  Both detectors equalise then slice each stream to
// the nearest constellation point.
#ifndef HCQ_DETECT_LINEAR_H
#define HCQ_DETECT_LINEAR_H

#include "detect/detector.h"
#include "linalg/decompose.h"

namespace hcq::detect {

/// Reusable intermediates of the linear detectors, including their
/// decomposition caches.  A cache entry is reused only when the current
/// channel matches the keyed copy EXACTLY (||H - H_key||_F == 0, tested
/// elementwise by linalg::exactly_equal) — a repeated channel yields the
/// identical factorisation, so cache hits are output-invariant by
/// construction; any other channel recomputes from scratch.  Under
/// correlated fading this amortises the QR / Cholesky preprocessing across
/// the paths and retransmission attempts that share one channel use.
struct linear_scratch {
    // Zero-forcing: QR factors of H.
    linalg::cmat zf_key;  ///< channel the cached `ls.factors` belong to
    bool zf_valid = false;
    linalg::ls_scratch<linalg::cxd> ls;

    // MMSE: Cholesky factor of H^H H + load I, keyed on (H, load).
    linalg::cmat mmse_key;
    double mmse_load = 0.0;
    bool mmse_valid = false;
    linalg::cmat gram;  ///< H^H H + load I
    linalg::cmat lfac;  ///< cached Cholesky factor L
    linalg::cmat lh;    ///< cached L^H
    linalg::cvec rhs;   ///< H^H y
    linalg::cvec z;     ///< forward-substitution intermediate

    linalg::cvec soft;  ///< equalised symbol estimates before slicing
};

/// Zero-forcing: x_hat = slice(H^+ y) with H^+ the least-squares pseudo-inverse.
class zf_detector final : public detector {
public:
    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    void detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                     detection_result& out) const override;
    [[nodiscard]] std::string name() const override { return "ZF"; }
};

/// Linear MMSE: x_hat = slice((H^H H + (sigma^2/E_s) I)^-1 H^H y).
/// With sigma^2 == 0 this degenerates to zero-forcing.
class mmse_detector final : public detector {
public:
    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    void detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                     detection_result& out) const override;
    [[nodiscard]] std::string name() const override { return "MMSE"; }
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_LINEAR_H
