#include "paths/detection_path.h"

#include <sstream>
#include <stdexcept>

#include "util/spec.h"
#include "wireless/soft.h"

namespace hcq::paths {
namespace {

// The paths-layer vocabulary for the shared util::spec grammar: every
// historical error text ("paths: bad spec '<text>': empty path kind", ...)
// is reproduced verbatim.
const util::spec::grammar& path_grammar() {
    static const util::spec::grammar g{"paths", "path kind"};
    return g;
}

}  // namespace

void detection_path::run_block(std::span<const path_context> ctxs,
                               std::span<path_result> out) const {
    if (ctxs.size() != out.size()) {
        throw std::invalid_argument("detection_path::run_block: span length mismatch");
    }
    for (std::size_t i = 0; i < ctxs.size(); ++i) out[i] = run(ctxs[i]);
}

void detection_path::soft_output(const path_context& /*ctx*/, path_result& out) const {
    // Default: clamped hard decisions — an out-of-tree path that never
    // heard of LLRs still feeds the coded link, at maximal confidence.
    out.llrs.resize(out.bits.size());
    for (std::size_t b = 0; b < out.bits.size(); ++b) {
        out.llrs[b] = wireless::signed_llr(out.bits[b], wireless::llr_cap);
    }
}

path_spec path_spec::parse(const std::string& text) {
    util::spec::parsed raw = util::spec::parse(path_grammar(), text);
    path_spec spec;
    spec.kind = std::move(raw.kind);
    spec.args = std::move(raw.args);
    return spec;
}

std::string path_spec::to_string() const {
    return util::spec::to_string({kind, args});
}

const std::string* path_spec::find(const std::string& key) const {
    for (const auto& [k, v] : args) {
        if (k == key) return &v;
    }
    return nullptr;
}

std::vector<path_spec> parse_spec_list(const std::string& text) {
    // Split on commas, re-attaching key=value segments to the spec that
    // precedes them (see the grammar note in the header).
    std::vector<std::string> spec_texts;
    std::istringstream is(text);
    std::string segment;
    while (std::getline(is, segment, ',')) {
        if (segment.empty()) continue;
        const std::size_t eq = segment.find('=');
        const std::size_t colon = segment.find(':');
        const bool continues_previous =
            eq != std::string::npos && (colon == std::string::npos || colon > eq) &&
            !spec_texts.empty();
        if (continues_previous) {
            // First argument of a bare kind opens its ':' form; later ones
            // join with ','.
            std::string& base = spec_texts.back();
            base += (base.find(':') == std::string::npos ? ':' : ',');
            base += segment;
        } else {
            spec_texts.push_back(segment);
        }
    }
    std::vector<path_spec> specs;
    specs.reserve(spec_texts.size());
    for (const auto& t : spec_texts) specs.push_back(path_spec::parse(t));
    return specs;
}

std::size_t spec_positive_size(const path_spec& spec, const std::string& key,
                               std::size_t fallback) {
    const std::string* raw = spec.find(key);
    if (raw == nullptr) return fallback;
    const auto value = util::spec::parse_size_value(*raw);
    if (!value.has_value() || *value == 0) {
        throw std::invalid_argument("paths: " + spec.kind + ": bad value '" + *raw +
                                    "' for key '" + key + "' (expected a positive integer)");
    }
    return *value;
}

double spec_double(const path_spec& spec, const std::string& key, double fallback) {
    const std::string* raw = spec.find(key);
    if (raw == nullptr) return fallback;
    const auto value = util::spec::parse_double_value(*raw);
    if (!value.has_value()) {
        throw std::invalid_argument("paths: " + spec.kind + ": bad value '" + *raw +
                                    "' for key '" + key + "' (expected a number)");
    }
    return *value;
}

std::string format_spec_value(double value) {
    return util::spec::format_value(value);
}

}  // namespace hcq::paths
