// Figure-2 demo: a stream of channel uses flowing through the pipelined
// classical-quantum structure, with stage timings measured from the real
// solver components (not synthetic constants).
//
// The hybrid structure is built from a detection-path spec string
// ("gsra:reads=N,sp=0.45") through paths::registry — the same API
// examples/link_sim and the link layer use — and its measured "classical" /
// "quantum" stage split drives the pipeline exploration below.
//
// Prints a short timeline of the first few channel uses (showing the
// classical unit working on use N+1 while the quantum unit processes use N)
// followed by steady-state throughput/latency for several read budgets.
//
// Usage: ./examples/hybrid_pipeline [--uses=N] [--reads=N]
#include <algorithm>
#include <iostream>
#include <string>

#include "detect/transform.h"
#include "paths/registry.h"
#include "pipeline/pipeline.h"
#include "util/cli.h"
#include "util/table.h"
#include "wireless/mimo.h"

int main(int argc, char** argv) try {
    using namespace hcq;
    const util::flag_set flags(argc, argv);
    const std::size_t uses = static_cast<std::size_t>(flags.get_int("uses", 1000));
    const std::size_t reads = static_cast<std::size_t>(flags.get_int("reads", 50));

    // Build the paper's hybrid structure from its spec string and measure
    // real stage costs on a representative channel use.
    const auto hybrid =
        paths::registry::make("gsra:reads=" + std::to_string(reads) + ",sp=0.45,pause_us=1");
    util::rng rng(4242);
    const auto instance = wireless::noiseless_paper_instance(rng, 8, wireless::modulation::qam16);
    const auto mq = detect::ml_to_qubo(instance);
    const paths::path_context ctx{instance, &mq, rng};
    const auto measured = hybrid->run(ctx);

    double classical_us = 1.0;
    double quantum_us = 0.0;
    for (const auto& stage : measured.stages) {
        if (stage.name == "classical") classical_us = std::max(stage.service_us, 1.0);
        if (stage.name == "quantum") quantum_us = stage.service_us;
    }
    const double read_us = quantum_us / static_cast<double>(reads);

    std::cout << "stage costs measured through the '" << hybrid->spec().to_string()
              << "' path on an 8-user 16-QAM use:\n"
              << "  classical greedy search: " << util::format_double(classical_us, 2)
              << " us\n  quantum RA (" << reads << " reads x "
              << util::format_double(read_us, 2)
              << " us): " << util::format_double(quantum_us, 2) << " us\n\n";

    // Timeline of the first 4 uses at saturation (Figure 2's picture).
    std::cout << "timeline at saturating load (times in us):\n";
    std::cout << "  use  classical[start, end)   quantum[start, end)\n";
    double cl_free = 0.0;
    double qu_free = 0.0;
    for (std::size_t n = 0; n < 4; ++n) {
        const double cl_start = cl_free;
        const double cl_end = cl_start + classical_us;
        const double qu_start = std::max(cl_end, qu_free);
        const double qu_end = qu_start + quantum_us;
        cl_free = cl_end;
        qu_free = qu_end;
        std::cout << "  " << n << "    [" << util::format_double(cl_start, 1) << ", "
                  << util::format_double(cl_end, 1) << ")"
                  << std::string(12, ' ') << "[" << util::format_double(qu_start, 1) << ", "
                  << util::format_double(qu_end, 1) << ")\n";
    }
    std::cout << "  (the classical unit starts use N+1 while the quantum unit still\n"
              << "   processes use N — the overlap of Figure 2)\n\n";

    // Steady state under varying load.
    util::table t({"reads/use", "load", "throughput use/ms", "p50 us", "p99 us",
                   "quantum util"});
    for (const std::size_t r : {10UL, 50UL, 200UL}) {
        const double q_us = 10.0 + read_us * static_cast<double>(r);
        const double bottleneck = std::max(classical_us, q_us);
        for (const double load : {0.6, 0.95}) {
            util::rng sim_rng(1 + r);
            const auto stages = pipeline::make_hybrid_stages(classical_us, read_us, r, 10.0);
            const auto result = pipeline::simulate(
                stages, uses, {.interarrival_us = bottleneck / load}, sim_rng);
            t.add(r, load, result.throughput_per_us * 1000.0, result.p50_latency_us,
                  result.p99_latency_us,
                  util::format_double(result.stage_utilization[1], 2));
        }
    }
    t.print(std::cout);

    // Full result detail for the middle read budget at near-saturation,
    // through the shared simulation_result formatter.
    std::cout << "\ndetail (50 reads/use, load 0.95):\n";
    util::rng detail_rng(51);
    const auto stages = pipeline::make_hybrid_stages(classical_us, read_us, 50, 10.0);
    const double bottleneck = std::max(classical_us, 10.0 + read_us * 50.0);
    const auto detail = pipeline::simulate(
        stages, uses, {.interarrival_us = bottleneck / 0.95}, detail_rng);
    pipeline::summary_table(detail, {"classical", "quantum"}).print(std::cout);
    return 0;
} catch (const std::exception& e) {
    std::cerr << "hybrid_pipeline: error: " << e.what() << "\n";
    return 2;
}
