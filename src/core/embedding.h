// Minor embedding of dense problems into the Chimera hardware graph.
//
// The paper's MIMO QUBOs are fully connected, but Chimera only offers degree
// <= L + 2 couplers per qubit, so each *logical* variable must be realised
// as a ferromagnetically-coupled *chain* of physical qubits (a minor
// embedding).  This module implements the classic clique embedding
// (Choi 2011): on a Chimera C_M with shore size L, logical variable
// i = L*a + b owns the cross-shaped chain
//     { horizontal qubit b of every cell in row a }  union
//     { vertical   qubit b of every cell in column a },
// connected through cell (a, a); any two chains meet in exactly the cells
// (a_i, a_j) / (a_j, a_i), guaranteeing a coupler for every logical pair.
// This supports cliques of up to L*M variables with chains of length 2M.
//
// Embedding a logical Ising model spreads each field h_i uniformly over its
// chain, places each coupling J_ij on the first available physical coupler,
// and adds ferromagnetic intra-chain couplings of strength -chain_strength.
// After sampling, chains are read out by majority vote; the fraction of
// broken chains (disagreeing qubits) is the standard health metric.
#ifndef HCQ_CORE_EMBEDDING_H
#define HCQ_CORE_EMBEDDING_H

#include <vector>

#include "core/topology.h"
#include "qubo/ising.h"
#include "qubo/model.h"
#include "util/rng.h"

namespace hcq::anneal {

/// One chain per logical variable (physical node ids).
using embedding = std::vector<std::vector<std::size_t>>;

/// Clique embedding of `num_logical` variables into `graph`; throws
/// std::invalid_argument when num_logical > shore_size * grid_size.
[[nodiscard]] embedding clique_embedding(const chimera_graph& graph, std::size_t num_logical);

/// True when every chain is non-empty, connected in `graph`, and disjoint
/// from every other chain.
[[nodiscard]] bool embedding_is_valid(const chimera_graph& graph, const embedding& chains);

/// A logical Ising model realised on hardware.
struct embedded_problem {
    qubo::ising_model physical;   ///< over graph.num_nodes() spins
    embedding chains;             ///< logical -> physical nodes
    std::size_t num_logical = 0;
    double chain_strength = 0.0;

    /// Majority-vote read-out of a physical assignment (ties broken by the
    /// chain's first qubit).
    [[nodiscard]] qubo::bit_vector unembed(std::span<const std::uint8_t> physical_bits) const;

    /// Fraction of chains whose qubits disagree.
    [[nodiscard]] double chain_break_fraction(std::span<const std::uint8_t> physical_bits) const;

    /// Spreads a logical assignment onto the chains (for reverse-anneal
    /// initial states on hardware).
    [[nodiscard]] qubo::bit_vector embed_state(std::span<const std::uint8_t> logical_bits) const;
};

/// Embeds a logical Ising model; `chain_strength` > 0 is the magnitude of
/// the ferromagnetic intra-chain coupling.  Throws std::invalid_argument if
/// the model does not fit the embedding or a required coupler is missing.
[[nodiscard]] embedded_problem embed_ising(const qubo::ising_model& logical,
                                           const chimera_graph& graph, const embedding& chains,
                                           double chain_strength);

/// Convenience: QUBO in, embedded problem out (via the exact Ising
/// conversion).
[[nodiscard]] embedded_problem embed_qubo(const qubo::qubo_model& logical,
                                          const chimera_graph& graph, const embedding& chains,
                                          double chain_strength);

}  // namespace hcq::anneal

#endif  // HCQ_CORE_EMBEDDING_H
