// Classical QUBO pre-processing by variable prefixing — the scheme the paper
// evaluates (and finds wanting on >32-40 variable MIMO problems) in
// Section 3.1 / Figure 3, after Lewis & Glover [33, 34].
//
// Rule (with symmetric coupling c_ij and linear term Q_ii): activating q_i
// changes the energy by Q_ii + sum_{j != i} c_ij q_j, bounded between
// Q_ii + sum of negative c_ij and Q_ii + sum of positive c_ij.  Hence
//   * Q_ii + sum_{j} min(0, c_ij) >= 0  ==>  q_i = 0 in some optimum,
//   * Q_ii + sum_{j} max(0, c_ij) <= 0  ==>  q_i = 1 in some optimum.
// (The paper's prose says the first case "can be fixed to 1"; the standard
// rule — and the one that provably preserves an optimum — fixes it to 0.  We
// implement the standard rule.)
//
// Each fixing substitutes the variable away, which may enable further
// fixings; `iterate == true` (default) runs to a fixpoint, while the paper's
// one-shot description corresponds to `iterate == false`.
#ifndef HCQ_QUBO_PREPROCESS_H
#define HCQ_QUBO_PREPROCESS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "qubo/model.h"

namespace hcq::qubo {

/// Outcome of the prefixing pass.
struct preprocess_result {
    /// Per original variable: the forced value, or nullopt if still free.
    std::vector<std::optional<std::uint8_t>> fixed;
    /// Reduced QUBO over the free variables (offset updated accordingly).
    qubo_model reduced;
    /// reduced index -> original index.
    std::vector<std::size_t> mapping;

    [[nodiscard]] std::size_t num_fixed() const;
    [[nodiscard]] bool simplified() const { return num_fixed() > 0; }

    /// Lifts an assignment of the reduced model back to the original
    /// variable space (fixed variables take their forced values).
    [[nodiscard]] bit_vector lift(std::span<const std::uint8_t> reduced_bits) const;
};

/// Runs the prefixing rules on `q`.
[[nodiscard]] preprocess_result prefix_variables(const qubo_model& q, bool iterate = true);

}  // namespace hcq::qubo

#endif  // HCQ_QUBO_PREPROCESS_H
