// Terminated convolutional encoder (feed-forward, rate 1/k).
//
// Encoding convention, shared with the Viterbi decoder (viterbi.h): the
// encoder state is the K-1 most recent input bits with the OLDEST bit in
// the least-significant position.  For each input bit b the window is
// `full = (b << (K-1)) | state`; output j is the parity of `full & g_j`
// (generators in the usual octal-literal convention); the next state is
// `full >> 1`.  After the information bits, K-1 zero tail bits drive the
// register back to state 0, terminating the trellis — so the decoder can
// anchor both ends.
//
// Output order: for each input bit (information then tail), the generator
// outputs in order g_0, g_1, ... — the order the interleaver and decoder
// assume.
#ifndef HCQ_FEC_CONV_H
#define HCQ_FEC_CONV_H

#include <cstdint>
#include <span>
#include <vector>

namespace hcq::fec {

class conv_encoder {
public:
    /// Throws std::invalid_argument on a constraint length outside [2, 16],
    /// fewer than one generator, or a generator with taps beyond the window.
    conv_encoder(std::size_t constraint_length, std::vector<std::uint32_t> generators);

    [[nodiscard]] std::size_t constraint_length() const noexcept { return k_; }
    [[nodiscard]] std::size_t num_generators() const noexcept { return generators_.size(); }
    /// Coded bits produced for `info_bits` information bits (tail included).
    [[nodiscard]] std::size_t coded_length(std::size_t info_bits) const noexcept {
        return (info_bits + k_ - 1) * generators_.size();
    }

    /// Encodes `info` (values 0/1) followed by the K-1 zero tail bits into
    /// `out` (resized to coded_length(info.size())).
    void encode(std::span<const std::uint8_t> info, std::vector<std::uint8_t>& out) const;

private:
    std::size_t k_;
    std::vector<std::uint32_t> generators_;
};

}  // namespace hcq::fec

#endif  // HCQ_FEC_CONV_H
