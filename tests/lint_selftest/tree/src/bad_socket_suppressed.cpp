// Fixture: the same violations as bad_socket.cpp, silenced by both
// suppression forms — must produce zero findings.
// hcq-lint: allow-file(raw-socket) fixture exercising the file-wide form
#include <sys/socket.h>

void bad_socket_suppressed_fixture() {
    int fd = ::socket(2, 1, 0);
    // hcq-lint: allow(raw-socket) line form must also hold inside allow-file
    send(fd, nullptr, 0, 0);
    poll(nullptr, 0, 0);
    setsockopt(fd, 0, 0, nullptr, 0);
}
