#include "detect/linear.h"

#include "linalg/decompose.h"
#include "util/timer.h"

namespace hcq::detect {

namespace {

detection_result slice_to_result(const wireless::mimo_instance& instance,
                                 const linalg::cvec& soft) {
    detection_result result;
    result.symbols = linalg::cvec(soft.size());
    for (std::size_t u = 0; u < soft.size(); ++u) {
        const auto bits = wireless::demodulate_symbol(instance.mod, soft[u]);
        result.symbols[u] = wireless::modulate_symbol(instance.mod, bits);
    }
    result.bits = wireless::demodulate(instance.mod, result.symbols);
    result.ml_cost = instance.ml_cost(result.symbols);
    return result;
}

}  // namespace

detection_result zf_detector::detect(const wireless::mimo_instance& instance) const {
    const util::timer clock;
    const auto soft = linalg::least_squares(instance.h, instance.y);
    auto result = slice_to_result(instance, soft);
    result.elapsed_us = clock.elapsed_us();
    return result;
}

detection_result mmse_detector::detect(const wireless::mimo_instance& instance) const {
    const util::timer clock;
    const auto hh = instance.h.hermitian();
    auto gram = hh * instance.h;
    const double load = instance.noise_variance / wireless::mean_symbol_energy(instance.mod);
    for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += load;

    const auto l = linalg::cholesky(gram);
    const auto rhs = hh * instance.y;
    const auto z = linalg::solve_lower(l, rhs);
    const auto soft = linalg::solve_upper(l.hermitian(), z);

    auto result = slice_to_result(instance, soft);
    result.elapsed_us = clock.elapsed_us();
    return result;
}

}  // namespace hcq::detect
