// Fluctuation-strength models: the map from the annealing parameter s to the
// effective exploration temperature of the emulated device.
//
// On real hardware the transverse field Gamma(s) decays from a large value
// at s = 0 to ~0 at s = 1, while the device sits at a fixed physical
// temperature; the *effective* stochasticity of the computation therefore
// decays monotonically in s.  The emulator models this with a dimensionless
// map f(s) (f(1) = 0, f decreasing) scaled by the problem's energy scale:
//     T(s) = temperature_scale * max|Q_ij| * f(s).
// Three families are provided; `rational` (the default) diverges as s -> 0,
// matching the "random bitstring if measured at s = 0" limit of Figure 5.
// The choice is a design parameter of the substitution and is exercised by
// the anneal-ablation bench.
#ifndef HCQ_CORE_TEMPERATURE_H
#define HCQ_CORE_TEMPERATURE_H

#include <string>

namespace hcq::anneal {

/// Shape families for f(s).
enum class temperature_map_kind {
    rational,     ///< f(s) = ((1 - s) / max(s, s_floor))^power
    linear,       ///< f(s) = 1 - s
    exponential,  ///< f(s) = (exp(g (1 - s)) - 1) / (exp(g) - 1)
};

/// "rational" / "linear" / "exponential".
[[nodiscard]] const char* to_string(temperature_map_kind kind) noexcept;

/// Dimensionless fluctuation-strength map f(s).
///
/// The default (rational with power 2) makes the hot-to-cold transition
/// steep: very hot below s ~ 0.25 (a mid-anneal measurement is near-random,
/// Figure 5's s = 0 limit), passing through the barrier scale of the paper's
/// MIMO QUBOs mid-range, and effectively frozen beyond s ~ 0.65.  That
/// steepness is what localises the paper's "s_p window" (Section 4.3).
class temperature_map {
public:
    explicit temperature_map(temperature_map_kind kind = temperature_map_kind::rational,
                             double gamma = 3.0, double s_floor = 0.02, double power = 2.0);

    /// f(s); s is clamped into [0, 1].  Monotone non-increasing, f(1) == 0.
    [[nodiscard]] double fluctuation(double s) const;

    [[nodiscard]] temperature_map_kind kind() const noexcept { return kind_; }

private:
    temperature_map_kind kind_;
    double gamma_;
    double s_floor_;
    double power_;
};

}  // namespace hcq::anneal

#endif  // HCQ_CORE_TEMPERATURE_H
