// Wall-clock timing helper.
#ifndef HCQ_UTIL_TIMER_H
#define HCQ_UTIL_TIMER_H

#include <chrono>

namespace hcq::util {

/// Monotonic stopwatch started at construction.
class timer {
public:
    timer() : start_(clock::now()) {}

    /// Restarts the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Elapsed time in microseconds.
    [[nodiscard]] double elapsed_us() const {
        return std::chrono::duration<double, std::micro>(clock::now() - start_).count();
    }

    /// Elapsed time in seconds.
    [[nodiscard]] double elapsed_s() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace hcq::util

#endif  // HCQ_UTIL_TIMER_H
