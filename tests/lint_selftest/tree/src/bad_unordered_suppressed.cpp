// Fixture: a justified pure-lookup use, suppressed line by line.
#include <unordered_map>  // hcq-lint: allow(unordered-container) fixture: pure lookup, never iterated

int fixture_unordered_suppressed() {
    // hcq-lint: allow(unordered-container) fixture: pure lookup, never iterated
    std::unordered_map<int, int> lookup;
    lookup[1] = 2;
    return lookup.at(1);
}
