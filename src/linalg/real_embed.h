// Real-valued embedding of complex linear systems.
//
// The standard MIMO detection trick: y = H x + n over C^m becomes
//   [Re y; Im y] = [Re H, -Im H; Im H, Re H] [Re x; Im x] + [Re n; Im n]
// over R^{2m}, which lets tree-search detectors (sphere decoder, K-best,
// FCSD) enumerate per-dimension PAM alphabets.
#ifndef HCQ_LINALG_REAL_EMBED_H
#define HCQ_LINALG_REAL_EMBED_H

#include "linalg/matrix.h"

namespace hcq::linalg {

/// [Re H, -Im H; Im H, Re H] (2m x 2n).
[[nodiscard]] rmat real_embedding(const cmat& h);

/// [Re v; Im v] (2m).
[[nodiscard]] rvec real_embedding(const cvec& v);

/// Inverse of real_embedding on vectors: first half real parts, second half
/// imaginary parts; size must be even.
[[nodiscard]] cvec complex_from_embedding(const rvec& v);

}  // namespace hcq::linalg

#endif  // HCQ_LINALG_REAL_EMBED_H
