#include "arq/arq.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/table.h"

namespace hcq::arq {
namespace {

// Stream tag keeping the replay's modeled frame-error draws disjoint from
// every other derived stream ("arq_ERRm").
constexpr std::uint64_t error_model_domain = 0x6172715f4552526dULL;

double parse_deadline(const std::string& value, arq_config& config) {
    if (value == "auto") {
        config.deadline_auto = true;
        return no_deadline;  // resolved per path by the caller
    }
    // A later explicit value overrides an earlier `auto` in the same spec.
    config.deadline_auto = false;
    if (value == "none" || value == "inf") return no_deadline;
    std::size_t consumed = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(value, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != value.size() || std::isnan(parsed) || parsed < 0.0) {
        throw std::invalid_argument("arq: bad deadline_us value '" + value +
                                    "' (expected auto, none, or a non-negative number of us)");
    }
    return parsed;
}

std::size_t parse_max_retx(const std::string& value) {
    std::size_t consumed = 0;
    long parsed = 0;
    try {
        parsed = std::stol(value, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != value.size() || parsed < 0) {
        throw std::invalid_argument("arq: bad max_retx value '" + value +
                                    "' (expected a non-negative integer)");
    }
    return static_cast<std::size_t>(parsed);
}

combining_mode parse_combining(const std::string& value) {
    if (value == "chase") return combining_mode::chase;
    if (value == "plain") return combining_mode::plain;
    throw std::invalid_argument("arq: bad combining value '" + value +
                                "' (expected chase or plain)");
}

}  // namespace

const char* to_string(combining_mode mode) noexcept {
    return mode == combining_mode::chase ? "chase" : "plain";
}

std::string arq_config::to_string() const {
    std::ostringstream out;
    out << "deadline_us=";
    if (deadline_auto) {
        out << "auto";
    } else if (deadline_us == no_deadline) {
        out << "none";
    } else {
        out << util::format_double(deadline_us);
    }
    out << ",max_retx=" << max_retx << ",combining=" << arq::to_string(combining);
    return out.str();
}

arq_config parse_arq(const std::string& text) {
    arq_config config;
    // A bare `--arq` flag parses to "true" (util::flag_set); treat it — and
    // an empty string — as "enable with defaults".
    if (text.empty() || text == "true" || text == "1") return config;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string part =
            text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        pos = comma == std::string::npos ? text.size() : comma + 1;
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw std::invalid_argument("arq: malformed option '" + part +
                                        "' (expected deadline_us=<auto|none|us>, "
                                        "max_retx=<n>, or combining=<chase|plain>)");
        }
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key == "deadline_us") {
            config.deadline_us = parse_deadline(value, config);
        } else if (key == "max_retx") {
            config.max_retx = parse_max_retx(value);
        } else if (key == "combining") {
            config.combining = parse_combining(value);
        } else {
            throw std::invalid_argument("arq: unknown option '" + key +
                                        "' (accepted: deadline_us, max_retx, combining)");
        }
    }
    return config;
}

bool needs_retx(const arq_config& config, bool bits_ok, std::size_t attempt) noexcept {
    if (attempt >= config.max_retx) return false;
    return !bits_ok || config.deadline_us == 0.0;
}

void counters::add_frame(std::size_t attempts_used, std::size_t wrong, bool first_ok,
                         bool final_ok) {
    ++frames;
    attempts += attempts_used;
    wrong_attempts += wrong;
    if (!final_ok) ++residual_errors;
    if (!first_ok && final_ok) ++corrected_frames;
}

double counters::residual_fer() const noexcept {
    return frames > 0 ? static_cast<double>(residual_errors) / static_cast<double>(frames) : 0.0;
}

double counters::retx_rate() const noexcept {
    return frames > 0 ? static_cast<double>(retransmissions()) / static_cast<double>(frames)
                      : 0.0;
}

double counters::mean_attempts() const noexcept {
    return frames > 0 ? static_cast<double>(attempts) / static_cast<double>(frames) : 0.0;
}

double counters::attempt_error_rate() const noexcept {
    return attempts > 0 ? static_cast<double>(wrong_attempts) / static_cast<double>(attempts)
                        : 0.0;
}

double replay_stats::miss_rate() const noexcept {
    return completions > 0
               ? static_cast<double>(deadline_misses) / static_cast<double>(completions)
               : 0.0;
}

double replay_stats::undelivered_rate() const noexcept {
    return frames > 0
               ? static_cast<double>(frames - std::min(frames, delivered)) /
                     static_cast<double>(frames)
               : 0.0;
}

closed_loop_report closed_loop_replay(const std::vector<pipeline::stage>& stages,
                                      std::size_t num_frames, double attempt_error_rate,
                                      double resolved_deadline_us, std::size_t max_retx,
                                      const pipeline::arrival_process& arrivals, util::rng& rng,
                                      const pipeline::sim_options& options) {
    if (!(attempt_error_rate >= 0.0) || !(attempt_error_rate <= 1.0)) {
        throw std::invalid_argument("arq: attempt error rate must be in [0, 1]");
    }
    if (std::isnan(resolved_deadline_us) || resolved_deadline_us < 0.0) {
        throw std::invalid_argument("arq: resolved deadline must be non-negative");
    }

    closed_loop_report report;
    report.stats.frames = num_frames;
    report.stats.resolved_deadline_us = resolved_deadline_us;

    // Error draws live on their own derived stream so adding the error
    // model never perturbs arrival or service randomness.
    util::rng error_rng = rng.derive(error_model_domain);
    const auto feedback = [&](const pipeline::completion& c) -> bool {
        ++report.stats.completions;
        // Deadline 0 is "always late" by definition — a zero-latency
        // degenerate attempt must still count as a miss.
        const bool late =
            resolved_deadline_us == 0.0 || c.latency_us() > resolved_deadline_us;
        // A retransmission is a fresh channel use, statistically a fresh
        // draw from the measured per-attempt frame-error probability.
        const bool wrong = error_rng.bernoulli(attempt_error_rate);
        if (late) ++report.stats.deadline_misses;
        if (wrong) ++report.stats.modeled_errors;
        if (!late && !wrong) {
            ++report.stats.delivered;
            return false;
        }
        if (c.attempt >= max_retx) {
            ++report.stats.exhausted;
            return false;
        }
        ++report.stats.retransmissions;
        return true;
    };

    report.replay = pipeline::simulate_closed_loop(stages, num_frames, arrivals, rng, options,
                                                   feedback);
    report.stats.injections = report.replay.num_jobs;
    report.stats.lost_to_drops = report.replay.jobs_dropped;
    report.stats.goodput_per_us =
        report.replay.makespan_us > 0.0
            ? static_cast<double>(report.stats.delivered) / report.replay.makespan_us
            : 0.0;
    return report;
}

}  // namespace hcq::arq
