#include "link/link_sim.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>  // hcq-lint: allow(unordered-container) pure-lookup thread registry

#include "fec/codec.h"
#include "metrics/stats.h"
#include "paths/registry.h"
#include "paths/workspace.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "wireless/mimo.h"
#include "wireless/soft.h"

namespace hcq::link {
namespace {

// Stream-id tags keeping channel-use synthesis draws disjoint from solver
// draws (same scheme as parallel_runner::sweep_stream_domain); the canonical
// values live in link_sim.h (stream_domains) because the serving front end
// derives from the same domains to reproduce served batches bit-for-bit.
//
// ARQ retransmission streams: attempt r of frame u draws from
// derive(arq_*_domain).derive(u [* num_paths + p]).derive(r) — globally
// indexed, so ARQ counters inherit the thread-count / stream-block
// invariance, and disjoint from the open-loop streams, so enabling
// ARQ never perturbs the golden open-loop statistics.
//
// Correlated-fading tap parameters (wireless/channel_spec.h) freeze from the
// fading stream — disjoint from every domain above, so configuring a channel
// spec never perturbs the synthesis/solve draws, and `--channel` unset
// stays byte-identical to the pre-spec implementation.
constexpr std::uint64_t synth_stream_domain = stream_domains::synthesis;
constexpr std::uint64_t solve_stream_domain = stream_domains::solve;
constexpr std::uint64_t arq_synth_domain = stream_domains::arq_synthesis;
constexpr std::uint64_t arq_solve_domain = stream_domains::arq_solve;
constexpr std::uint64_t fading_stream_domain = stream_domains::fading;
constexpr std::uint64_t fec_stream_domain = stream_domains::fec;

// An ARQ retransmission goes back on the air one channel use after the
// attempt it repeats: attempt r of frame u sees the fading process at
// t = u + r * retx_lag_uses.  At low Doppler (coherence time >> 1 use) a
// frame that failed in a deep fade therefore RETRIES inside the same fade —
// the retransmission-concentration behaviour the acceptance scenario
// measures — while at high Doppler the retry sees a fresh channel.
constexpr double retx_lag_uses = 1.0;

void validate(const link_config& config) {
    if (config.num_uses == 0) throw std::invalid_argument("link: zero channel uses");
    if (config.num_users == 0) throw std::invalid_argument("link: zero users");
    if (config.paths.empty()) throw std::invalid_argument("link: no detection paths");
    if (!(config.offered_load > 0.0) || !std::isfinite(config.offered_load)) {
        throw std::invalid_argument("link: offered load must be positive and finite");
    }
    if (config.buffer_capacity == 0) {
        throw std::invalid_argument(
            "link: buffer capacity 0 can never admit work; use >= 1 or "
            "pipeline::unbounded_capacity");
    }
    if (config.stream_block == 0) throw std::invalid_argument("link: zero stream block");
}

/// Shared setup of the measured-trace tandem-queue replay: the staged
/// service models and the arrival pacing — used by both the open-loop
/// replay and the ARQ closed-loop replay so the two see identical load.
struct replay_setup {
    std::vector<pipeline::stage> stages;
    double interarrival_us = 0.0;
    pipeline::sim_options options;
};

replay_setup build_replay(const path_report& path, const link_config& config) {
    replay_setup setup;
    double bottleneck_us = 0.0;
    for (std::size_t s = 0; s < path.stages.size(); ++s) {
        const auto& trace = path.stages[s];
        const std::size_t servers = path.stage_servers[s];
        setup.stages.push_back(pipeline::stage::from_trace(trace.name(), trace.replay_sample())
                                   .with_servers(servers));
        // Pace arrivals by the mean of the sample actually being replayed,
        // so the requested load is honoured against the cycled trace even
        // where the strided sample and the full-stream digest mean differ
        // slightly.  A stage bank of S devices drains S times faster than
        // one.
        metrics::running_stats sample_stats;
        for (const double v : trace.replay_sample()) sample_stats.add(v);
        bottleneck_us = std::max(bottleneck_us, sample_stats.mean() / static_cast<double>(servers));
    }
    // Arrivals pace the bottleneck at the configured load; the floor guards
    // against a degenerate all-zero trace from timer quantisation.
    setup.interarrival_us = std::max(bottleneck_us / config.offered_load, 1e-3);
    // Constant-memory replay: bounded buffers per the config, percentiles
    // from the digest instead of an O(uses) latency vector.
    setup.options = pipeline::sim_options{.buffer_capacity = config.buffer_capacity,
                                          .policy = config.policy,
                                          .record_latencies = false};
    return setup;
}

pipeline::simulation_result replay_traces(const path_report& path, const link_config& config) {
    const replay_setup setup = build_replay(path, config);
    util::rng arrivals_rng(config.seed);  // unused by deterministic arrivals
    return pipeline::simulate(setup.stages, config.num_uses,
                              {.interarrival_us = setup.interarrival_us}, arrivals_rng,
                              setup.options);
}

/// Per-(use, path) outcome of the streaming ARQ chain, filled by the pool
/// workers and folded serially.  Memory is O(stream_block x paths x
/// max_retx) — constant in num_uses.
struct arq_cell {
    std::size_t attempts = 1;   ///< transmissions incl. retransmissions
    std::size_t wrong = 0;      ///< attempts with wrong detected bits
    bool first_ok = true;
    bool final_ok = true;
    std::vector<double> retx_service_us;  ///< measured service per retransmission
};

/// Per-(frame, path) outcome of the coded link — the attempt-0 decode plus
/// the hybrid-ARQ chain when engaged — filled by the pool workers and folded
/// serially.  Memory is O(frames-per-window x paths), constant in num_uses.
struct fec_cell {
    qubo::bit_vector decoded0;  ///< attempt-0 decoded information bits
    std::size_t attempts = 1;   ///< transmissions incl. retransmissions
    std::size_t wrong = 0;      ///< attempts whose decode came out wrong
    bool first_ok = true;
    bool final_ok = true;
    std::vector<double> retx_service_us;  ///< measured service per retransmission
};

/// Per-worker FEC state: the codec (trellis tables + decode scratch — NOT
/// thread-safe) plus the frame-assembly buffers.  Handed out per thread by
/// codec_store, mirroring paths::workspace_store: acquire once, then work
/// lock-free.  Holds no statistic — which worker decodes a frame never
/// changes the (deterministic) decode.
struct fec_worker {
    explicit fec_worker(const fec::code_spec& spec) : codec(spec) {}
    fec::codec codec;
    std::vector<std::uint8_t> use_bits;   ///< one use's zero-padded coded bits
    std::vector<double> frame_llrs;       ///< assembled attempt-0 frame LLRs
    std::vector<double> attempt_llrs;     ///< one retransmission's frame LLRs
    std::vector<double> combined_llrs;    ///< chase-combining accumulator
    std::vector<std::uint8_t> decoded;    ///< retransmission decode scratch
};

std::uint64_t next_codec_store_id() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

/// One fec_worker per thread, created lazily on first request (same shape as
/// paths::workspace_store; see its header for the determinism argument).
class codec_store {
public:
    explicit codec_store(const fec::code_spec& spec)
        : id_(next_codec_store_id()), spec_(spec) {}
    codec_store(const codec_store&) = delete;
    codec_store& operator=(const codec_store&) = delete;

    [[nodiscard]] fec_worker& local() HCQ_EXCLUDES(mutex_) {
        thread_local std::uint64_t cached_id = 0;
        thread_local fec_worker* cached = nullptr;
        if (cached_id == id_ && cached != nullptr) return *cached;
        const util::mutex_lock lock(mutex_);
        std::unique_ptr<fec_worker>& slot = by_thread_[std::this_thread::get_id()];
        if (slot == nullptr) slot = std::make_unique<fec_worker>(spec_);
        cached_id = id_;
        cached = slot.get();
        return *slot;
    }

private:
    const std::uint64_t id_;  ///< globally unique, never reused
    const fec::code_spec spec_;
    util::mutex mutex_;
    // hcq-lint: allow(unordered-container) pure per-thread lookup, never iterated
    std::unordered_map<std::thread::id, std::unique_ptr<fec_worker>> by_thread_
        HCQ_GUARDED_BY(mutex_);
};

/// Coded bits of use `j` of a frame, zero-padded to a whole channel use (the
/// final use of a frame may carry fewer than bits_per_use coded bits).
void pad_use_bits(const qubo::bit_vector& coded, std::size_t j, std::size_t bits_per_use,
                  std::vector<std::uint8_t>& out) {
    out.assign(bits_per_use, 0);
    const std::size_t lo = j * bits_per_use;
    const std::size_t n = std::min(bits_per_use, coded.size() - lo);
    std::copy(coded.begin() + static_cast<std::ptrdiff_t>(lo),
              coded.begin() + static_cast<std::ptrdiff_t>(lo + n), out.begin());
}

/// Copies the non-padding prefix of one use's LLRs into the frame vector.
void gather_use_llrs(const std::vector<double>& llrs, std::size_t j, std::size_t bits_per_use,
                     std::size_t coded_bits, std::vector<double>& frame) {
    const std::size_t lo = j * bits_per_use;
    const std::size_t n = std::min(bits_per_use, coded_bits - lo);
    std::copy(llrs.begin(), llrs.begin() + static_cast<std::ptrdiff_t>(n),
              frame.begin() + static_cast<std::ptrdiff_t>(lo));
}

}  // namespace

stage_trace::stage_trace(std::string name, std::size_t sample_stride)
    : name_(std::move(name)), sample_stride_(std::max<std::size_t>(sample_stride, 1)) {}

stage_trace::stage_trace(std::string name, const std::vector<double>& service_us)
    : stage_trace(std::move(name)) {
    for (const double v : service_us) add(v);
}

void stage_trace::add(double service_us) {
    const std::uint64_t index = digest_.count();
    digest_.add(service_us);
    if (index % sample_stride_ == 0 && sample_.size() < replay_sample_capacity) {
        sample_.push_back(service_us);
    }
}

double burst_stats::mean_burst_length() const noexcept {
    if (bursts == 0) return 0.0;
    return static_cast<double>(error_frames) / static_cast<double>(bursts);
}

double fec_path_report::coded_fer() const noexcept {
    return frames > 0 ? static_cast<double>(frame_errors) / static_cast<double>(frames) : 0.0;
}

std::vector<std::string> path_report::stage_names() const {
    std::vector<std::string> names;
    names.reserve(stages.size());
    for (const auto& trace : stages) names.push_back(trace.name());
    return names;
}

const path_report& link_report::path(std::string_view query) const {
    for (const auto& p : paths) {
        if (p.kind == query || p.name == query || p.spec == query) return p;
    }
    throw std::out_of_range("link_report: no such path: " + std::string(query));
}

link_report run_link_simulation(const link_config& config) {
    validate(config);

    // Resolve every spec through the registry once; the paths are shared
    // read-only across workers.  Exact duplicates (same canonical spec)
    // would report two indistinguishable columns, so they are rejected —
    // but two *different* specs of the same kind (e.g. two K-best widths)
    // are a legitimate side-by-side comparison.
    const auto paths = paths::registry::make_all(config.paths);
    std::vector<std::string> canonical(paths.size());
    for (std::size_t p = 0; p < paths.size(); ++p) canonical[p] = paths[p]->spec().to_string();
    for (std::size_t a = 0; a < canonical.size(); ++a) {
        for (std::size_t b = a + 1; b < canonical.size(); ++b) {
            if (canonical[a] == canonical[b]) {
                throw std::invalid_argument("link: duplicate detection path '" + canonical[a] +
                                            "'");
            }
        }
    }

    const std::size_t num_paths = paths.size();
    const bool needs_qubo = std::any_of(paths.begin(), paths.end(),
                                        [](const auto& path) { return path->needs_qubo(); });

    // Replay samples stride uniformly across the stream so long replays are
    // not driven by warm-up-era service times alone.
    const std::size_t sample_stride =
        (config.num_uses + stage_trace::replay_sample_capacity - 1) /
        stage_trace::replay_sample_capacity;

    link_report report;
    report.config = config;
    report.synthesis = stage_trace("synth", sample_stride);
    report.reduction = stage_trace("qubo", sample_stride);
    report.paths.resize(num_paths);
    std::vector<std::vector<std::string>> solve_stages(num_paths);
    std::vector<std::size_t> first_solve_stage(num_paths);
    std::vector<std::uint8_t> path_needs_qubo(num_paths, 0);
    for (std::size_t p = 0; p < num_paths; ++p) {
        path_report& path = report.paths[p];
        path.kind = paths[p]->spec().kind;
        path.name = paths[p]->name();
        path.spec = canonical[p];
        path.service = stage_trace("service", sample_stride);
        path_needs_qubo[p] = paths[p]->needs_qubo() ? 1 : 0;

        solve_stages[p] = paths[p]->stage_names();
        const auto solve_servers = paths[p]->stage_servers();
        if (solve_servers.size() != solve_stages[p].size()) {
            throw std::logic_error("link: path '" + path.spec + "' declares " +
                                   std::to_string(solve_servers.size()) +
                                   " stage server counts for " +
                                   std::to_string(solve_stages[p].size()) + " stages");
        }
        path.stages.emplace_back("synth", sample_stride);
        path.stage_servers.push_back(1);
        if (paths[p]->needs_qubo()) {
            path.stages.emplace_back("qubo", sample_stride);
            path.stage_servers.push_back(1);
        }
        first_solve_stage[p] = path.stages.size();
        for (std::size_t s = 0; s < solve_stages[p].size(); ++s) {
            path.stages.emplace_back(solve_stages[p][s], sample_stride);
            path.stage_servers.push_back(solve_servers[s]);
        }
        if (config.fec) path.fec.emplace();
        if (config.arq) {
            path.arq.emplace();
            path.arq->retx_service = stage_trace("retx service", sample_stride);
        }
    }

    const util::rng synth_base = util::rng(config.seed).derive(synth_stream_domain);
    const util::rng solve_base = util::rng(config.seed).derive(solve_stream_domain);
    const util::rng arq_synth_base = util::rng(config.seed).derive(arq_synth_domain);
    const util::rng arq_solve_base = util::rng(config.seed).derive(arq_solve_domain);
    const util::rng fec_base = util::rng(config.seed).derive(fec_stream_domain);

    // Realistic-channel spec resolution: one frozen channel realisation per
    // run (correlated taps drawn from the dedicated fading domain), plus the
    // spec's SNR override and CSI estimation-error variance.  nullopt keeps
    // the legacy draw_channel path — and its byte stream — untouched.
    const double snr_db = (config.channel_spec && config.channel_spec->snr_db)
                              ? *config.channel_spec->snr_db
                              : config.snr_db;
    const double csi_est_err = config.channel_spec ? config.channel_spec->est_err : 0.0;
    std::unique_ptr<const wireless::channel_process> process;
    if (config.channel_spec) {
        process = wireless::make_channel_process(
            *config.channel_spec, config.num_users, config.num_users,
            util::rng(config.seed).derive(fading_stream_domain));
    }

    // Coded-link geometry.  One coded frame (rows x cols interleaved bits)
    // spans ceil(coded_bits / bits_per_use) consecutive channel uses with the
    // final use zero-padded; the stream must carry whole frames.
    const bool coded = config.fec.has_value();
    const std::size_t bits_per_use = config.num_users * wireless::bits_per_symbol(config.mod);
    const std::size_t coded_bits = coded ? config.fec->coded_bits() : 0;
    const std::size_t uses_per_frame =
        coded ? (coded_bits + bits_per_use - 1) / bits_per_use : 1;
    if (coded && config.num_uses % uses_per_frame != 0) {
        throw std::invalid_argument(
            "link: num_uses (" + std::to_string(config.num_uses) +
            ") must be a whole number of coded frames — '" + config.fec->to_string() +
            "' spans " + std::to_string(uses_per_frame) + " uses per frame at " +
            std::to_string(bits_per_use) + " bits per use");
    }

    // The stream is processed in fixed-size windows, each in three phases
    // with a barrier between them: (A) synthesise every use and build the
    // shared QUBO reductions block-at-a-time (per coded FRAME when FEC is
    // on: the frame's info bits are drawn, encoded, and spread over its
    // uses), (B) run every (path, use) detection cell batched through
    // detection_path::run_block — plus the explicit soft_output call when
    // FEC is on — and (C) run the ARQ retransmission chains (per use when
    // uncoded; per coded frame, with chase combining, when FEC is on).
    // Workers fill disjoint slots in parallel, then the window is folded
    // serially in use order into the constant-size aggregates above.  All
    // buffers below persist across windows, so after the first window the
    // steady state reuses their capacity; peak memory is
    // O(stream_block x paths), independent of num_uses.
    std::size_t block = std::min(config.stream_block, config.num_uses);
    if (coded) {
        // Whole frames per window: round the block down to a frame multiple
        // (at least one frame).  Pure scheduling — every draw, solve, and
        // decode is indexed by its GLOBAL use/frame index, so the rounding
        // affects no statistic (the invariance tests cover coded runs).
        block = std::max(uses_per_frame, block / uses_per_frame * uses_per_frame);
    }
    std::vector<wireless::mimo_instance> instances(block);
    std::vector<detect::ml_qubo> mqs(needs_qubo ? block : 0);
    std::vector<qubo::bit_vector> tx_bits(block);
    std::vector<double> synth_us(block, 0.0);
    std::vector<double> reduce_us(block, 0.0);
    std::vector<paths::path_result> cells(num_paths * block);  // path-major: [p * block + i]
    std::vector<arq_cell> arq_cells(config.arq && !coded ? num_paths * block : 0);

    // Coded-frame window state: per-frame info/coded bits (shared by every
    // path) and the path-major per-frame outcome cells.
    const std::size_t frames_per_block = coded ? block / uses_per_frame : 0;
    std::vector<qubo::bit_vector> frame_info(frames_per_block);
    std::vector<qubo::bit_vector> frame_coded(frames_per_block);
    std::vector<fec_cell> fec_cells(num_paths * frames_per_block);
    std::optional<codec_store> codecs;
    if (coded) {
        codecs.emplace(*config.fec);
        (void)codecs->local();  // eager main-thread construction surfaces spec errors here
    }

    // One scratch arena per worker thread (paths/workspace.h), warm across
    // windows.  With config.workspaces false every context instead carries
    // ws == nullptr and the paths take their allocate-per-call branch —
    // statistics are bit-identical either way (workspace_test.cpp).
    paths::workspace_store workspaces;

    const wireless::mimo_config mimo = [&] {
        wireless::mimo_config m;
        m.mod = config.mod;
        m.num_users = config.num_users;
        m.num_antennas = config.num_users;
        m.channel = config.channel;
        m.noise_variance = config.noiseless
                               ? 0.0
                               : wireless::noise_variance_for_snr(config.mod, config.num_users,
                                                                  snr_db);
        return m;
    }();

    // Per-path length of the error run currently open in the serial fold —
    // carried across windows so burst statistics are stream_block-invariant.
    std::vector<std::uint64_t> error_run(num_paths, 0);

    // One pool for the whole stream; num_threads == 1 degrades to a serial
    // loop like util::pool_for_each.
    std::optional<util::thread_pool> pool;
    if (config.num_threads != 1 && block > 1) pool.emplace(config.num_threads);

    // Batched detection granularity: run_block amortises per-call overhead
    // over a chunk of uses while leaving enough tasks per window for the
    // pool to balance.  Pure scheduling — every cell still draws from its
    // globally-indexed stream, so the chunk size affects no statistic.
    constexpr std::size_t run_chunk = 64;

    const auto run_all = [&](std::size_t count, const auto& task) {
        if (!pool || count < 2) {
            for (std::size_t i = 0; i < count; ++i) task(i);
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                pool->submit([&task, i] { task(i); });
            }
            pool->wait_idle();
        }
    };

    for (std::size_t base = 0; base < config.num_uses; base += block) {
        const std::size_t window = std::min(block, config.num_uses - base);
        // Phase A: synthesise the channel uses (channel draw + modulation)
        // and build the shared QUBO reductions (QuAMax transform)
        // block-at-a-time.  The reduction is shared by the QUBO-based paths
        // and skipped — trace stays zero — when only conventional detectors
        // are configured.
        const std::size_t window_frames = coded ? window / uses_per_frame : 0;
        const auto synth_use = [&](std::size_t i, std::span<const std::uint8_t> use_bits) {
            const std::size_t u = base + i;
            util::rng synth_rng = synth_base.derive(u);
            wireless::mimo_instance& instance = instances[i];
            util::timer synth_clock;
            if (process) {
                wireless::synthesize_at_coded_into(synth_rng, mimo, *process,
                                                   static_cast<double>(u), csi_est_err,
                                                   use_bits, instance);
            } else {
                wireless::synthesize_coded_into(synth_rng, mimo, use_bits, instance);
            }
            synth_us[i] = synth_clock.elapsed_us();
            tx_bits[i] = instance.tx_bits;

            reduce_us[i] = 0.0;
            if (needs_qubo) {
                util::timer reduce_clock;
                if (config.workspaces) {
                    detect::ml_to_qubo_into(instance, workspaces.local().detect.qubo, mqs[i]);
                } else {
                    mqs[i] = detect::ml_to_qubo(instance);
                }
                reduce_us[i] = reduce_clock.elapsed_us();
            }
        };
        const auto synth_cell = [&](std::size_t i) { synth_use(i, {}); };
        // Coded Phase A works frame-at-a-time: draw the frame's information
        // bits from the dedicated fec stream (indexed by GLOBAL frame),
        // encode + interleave once, then synthesise its uses with the coded
        // bits overriding the (still consumed) uniform tx-bit draws.
        const auto synth_frame = [&](std::size_t fi) {
            fec_worker& fw = codecs->local();
            const std::size_t f = base / uses_per_frame + fi;  // global frame index
            util::rng info_rng = fec_base.derive(f);
            info_rng.bits_into(fw.codec.info_bits(), frame_info[fi]);
            fw.codec.encode_frame(frame_info[fi], frame_coded[fi]);
            for (std::size_t j = 0; j < uses_per_frame; ++j) {
                pad_use_bits(frame_coded[fi], j, bits_per_use, fw.use_bits);
                synth_use(fi * uses_per_frame + j, fw.use_bits);
            }
        };
        if (coded) {
            run_all(window_frames, synth_frame);
        } else {
            run_all(window, synth_cell);
        }

        // Phase B: every configured path detects every use, batched through
        // run_block in chunks.  Each (use, path) cell draws from its own
        // derived stream indexed by the GLOBAL use index, so statistics do
        // not depend on the window size, the chunking, or which worker —
        // and hence which workspace — runs a given chunk.
        const std::size_t chunks_per_path = (window + run_chunk - 1) / run_chunk;
        const auto detect_chunk = [&](std::size_t task) {
            const std::size_t p = task / chunks_per_path;
            const std::size_t c0 = (task % chunks_per_path) * run_chunk;
            const std::size_t n = std::min(run_chunk, window - c0);
            paths::workspace* const ws = config.workspaces ? &workspaces.local() : nullptr;
            std::vector<util::rng> rngs;
            rngs.reserve(n);
            for (std::size_t j = 0; j < n; ++j) {
                const std::size_t u = base + c0 + j;
                rngs.push_back(solve_base.derive(u * num_paths + p));
            }
            std::vector<paths::path_context> ctxs;
            ctxs.reserve(n);
            for (std::size_t j = 0; j < n; ++j) {
                ctxs.push_back({instances[c0 + j], needs_qubo ? &mqs[c0 + j] : nullptr,
                                rngs[j], ws});
            }
            const auto out = std::span<paths::path_result>(cells).subspan(p * block + c0, n);
            paths[p]->run_block(ctxs, out);
            if (coded) {
                // The coded link needs soft information: the explicit opt-in
                // second call of the path API, on the same contexts the hard
                // run saw.  Deterministic and workspace-independent by the
                // soft_output contract, so LLRs inherit the invariances.
                for (std::size_t j = 0; j < n; ++j) paths[p]->soft_output(ctxs[j], out[j]);
            }
        };
        run_all(num_paths * chunks_per_path, detect_chunk);

        if (coded) {
            // Phase C' (coded link): decode every (frame, path) cell and,
            // when ARQ is engaged, run the hybrid-ARQ chain at FRAME
            // granularity.  A retransmission re-sends the SAME coded bits on
            // fresh channel uses — synthesis streams indexed by the global
            // (use, attempt), solve streams by (use * num_paths + p,
            // attempt), exactly the uncoded ARQ scheme — and the decode
            // combines attempts per arq_config::combining: chase accumulates
            // clamped LLRs across attempts, plain decodes each attempt
            // alone.  Everything here is deterministic (decode is a pure
            // function of the LLRs; the combining order is the fixed attempt
            // order), so coded counters inherit the thread-count /
            // stream-block / workspace invariances.  The retransmitted use
            // at (use, attempt) is shared across paths, memoised like the
            // uncoded phase C.
            const auto fec_frame = [&](std::size_t fi) {
                fec_worker& fw = codecs->local();
                paths::workspace* const ws = config.workspaces ? &workspaces.local() : nullptr;
                const std::size_t i0 = fi * uses_per_frame;
                const std::size_t max_retx = config.arq ? config.arq->max_retx : 0;
                struct retx_attempt {
                    wireless::mimo_instance instance;
                    detect::ml_qubo mq;
                    double reduce_us = 0.0;
                    bool reduced = false;
                };
                std::vector<std::optional<retx_attempt>> shared(uses_per_frame * max_retx);
                const auto attempt_for = [&](std::size_t j, std::size_t attempt,
                                             bool needs_reduction) -> retx_attempt& {
                    auto& slot = shared[j * max_retx + (attempt - 1)];
                    if (!slot) {
                        const std::size_t u = base + i0 + j;
                        util::rng retx_synth = arq_synth_base.derive(u).derive(attempt);
                        slot.emplace();
                        pad_use_bits(frame_coded[fi], j, bits_per_use, fw.use_bits);
                        if (process) {
                            wireless::synthesize_at_coded_into(
                                retx_synth, mimo, *process,
                                static_cast<double>(u) +
                                    static_cast<double>(attempt) * retx_lag_uses,
                                csi_est_err, fw.use_bits, slot->instance);
                        } else {
                            wireless::synthesize_coded_into(retx_synth, mimo, fw.use_bits,
                                                            slot->instance);
                        }
                    }
                    if (needs_reduction && !slot->reduced) {
                        util::timer reduce_clock;
                        if (ws != nullptr) {
                            detect::ml_to_qubo_into(slot->instance, ws->detect.qubo, slot->mq);
                        } else {
                            slot->mq = detect::ml_to_qubo(slot->instance);
                        }
                        slot->reduce_us = reduce_clock.elapsed_us();
                        slot->reduced = true;
                    }
                    return *slot;
                };
                for (std::size_t p = 0; p < num_paths; ++p) {
                    fec_cell& fc = fec_cells[p * frames_per_block + fi];
                    // Attempt 0: assemble the window cells' per-use LLRs
                    // (dropping each use's zero-padding tail) and decode.
                    fw.frame_llrs.resize(coded_bits);
                    for (std::size_t j = 0; j < uses_per_frame; ++j) {
                        gather_use_llrs(cells[p * block + i0 + j].llrs, j, bits_per_use,
                                        coded_bits, fw.frame_llrs);
                    }
                    fw.codec.decode_frame(fw.frame_llrs, fc.decoded0);
                    bool ok = fc.decoded0 == frame_info[fi];
                    fc.first_ok = ok;
                    fc.wrong = ok ? 0 : 1;
                    fc.retx_service_us.clear();  // keeps capacity across windows
                    std::size_t attempt = 0;
                    if (config.arq) {
                        const bool chase =
                            config.arq->combining == arq::combining_mode::chase;
                        if (chase) fw.combined_llrs = fw.frame_llrs;
                        const bool wants_qubo = path_needs_qubo[p] != 0;
                        while (arq::needs_retx(*config.arq, ok, attempt)) {
                            ++attempt;
                            double service_sum = 0.0;
                            fw.attempt_llrs.resize(coded_bits);
                            for (std::size_t j = 0; j < uses_per_frame; ++j) {
                                const std::size_t u = base + i0 + j;
                                retx_attempt& retx = attempt_for(j, attempt, wants_qubo);
                                if (wants_qubo) service_sum += retx.reduce_us;
                                util::rng retx_solve =
                                    arq_solve_base.derive(u * num_paths + p).derive(attempt);
                                const paths::path_context retx_ctx{
                                    retx.instance, wants_qubo ? &retx.mq : nullptr,
                                    retx_solve, ws};
                                paths::path_result result = paths[p]->run(retx_ctx);
                                paths[p]->soft_output(retx_ctx, result);
                                for (const auto& st : result.stages) {
                                    service_sum += st.service_us;
                                }
                                gather_use_llrs(result.llrs, j, bits_per_use, coded_bits,
                                                fw.attempt_llrs);
                            }
                            if (chase) {
                                wireless::accumulate_llrs(fw.attempt_llrs, fw.combined_llrs);
                                fw.codec.decode_frame(fw.combined_llrs, fw.decoded);
                            } else {
                                fw.codec.decode_frame(fw.attempt_llrs, fw.decoded);
                            }
                            ok = fw.decoded == frame_info[fi];
                            if (!ok) ++fc.wrong;
                            fc.retx_service_us.push_back(service_sum);
                        }
                    }
                    fc.attempts = attempt + 1;
                    fc.final_ok = ok;
                }
            };
            run_all(window_frames, fec_frame);
        } else if (config.arq) {
            // Phase C (ARQ only): run each path's retransmission chain.  A
            // retransmission is a REAL re-solve on a fresh channel use; its
            // RNG streams are indexed by (frame, attempt) globally, so the
            // resulting counters are invariant to threads and window size.
            // The retransmitted channel use at (frame, attempt) is shared
            // across paths (like the open-loop use), so synthesis and the
            // QUBO reduction are memoised per attempt rather than redone by
            // every retransmitting path; each path's service still counts
            // the reduction time its own pipeline would spend.
            const auto arq_use = [&](std::size_t i) {
                const std::size_t u = base + i;
                paths::workspace* const ws = config.workspaces ? &workspaces.local() : nullptr;
                struct retx_attempt {
                    wireless::mimo_instance instance;
                    detect::ml_qubo mq;
                    double reduce_us = 0.0;
                    bool reduced = false;
                };
                std::vector<std::optional<retx_attempt>> shared(config.arq->max_retx);
                const auto attempt_for = [&](std::size_t attempt,
                                             bool needs_reduction) -> retx_attempt& {
                    auto& slot = shared[attempt - 1];
                    if (!slot) {
                        util::rng retx_synth = arq_synth_base.derive(u).derive(attempt);
                        slot.emplace();
                        // Under correlated fading the retransmission sees the
                        // SAME frozen process one lag later per attempt; its
                        // noise/bit draws still come from the (frame, attempt)
                        // derived stream.
                        slot->instance =
                            process
                                ? wireless::synthesize_at(
                                      retx_synth, mimo, *process,
                                      static_cast<double>(u) +
                                          static_cast<double>(attempt) * retx_lag_uses,
                                      csi_est_err)
                                : wireless::synthesize(retx_synth, mimo);
                    }
                    if (needs_reduction && !slot->reduced) {
                        util::timer reduce_clock;
                        if (ws != nullptr) {
                            detect::ml_to_qubo_into(slot->instance, ws->detect.qubo, slot->mq);
                        } else {
                            slot->mq = detect::ml_to_qubo(slot->instance);
                        }
                        slot->reduce_us = reduce_clock.elapsed_us();
                        slot->reduced = true;
                    }
                    return *slot;
                };
                for (std::size_t p = 0; p < num_paths; ++p) {
                    arq_cell& ac = arq_cells[p * block + i];
                    ac.attempts = 1;
                    ac.wrong = 0;
                    ac.final_ok = true;
                    ac.retx_service_us.clear();  // keeps capacity across windows
                    bool ok = cells[p * block + i].bits == tx_bits[i];
                    ac.first_ok = ok;
                    if (!ok) ++ac.wrong;
                    std::size_t attempt = 0;
                    while (arq::needs_retx(*config.arq, ok, attempt)) {
                        ++attempt;
                        const bool wants_qubo = path_needs_qubo[p] != 0;
                        retx_attempt& retx = attempt_for(attempt, wants_qubo);
                        double service_sum = wants_qubo ? retx.reduce_us : 0.0;
                        util::rng retx_solve =
                            arq_solve_base.derive(u * num_paths + p).derive(attempt);
                        const paths::path_context retx_ctx{
                            retx.instance, wants_qubo ? &retx.mq : nullptr, retx_solve, ws};
                        const auto result = paths[p]->run(retx_ctx);
                        for (const auto& st : result.stages) service_sum += st.service_us;
                        ok = result.bits == retx.instance.tx_bits;
                        if (!ok) ++ac.wrong;
                        ac.retx_service_us.push_back(service_sum);
                    }
                    ac.attempts = attempt + 1;
                    ac.final_ok = ok;
                }
            };
            run_all(window, arq_use);
        }

        // Serial aggregation in use order: the merged statistics never
        // depend on the scheduling order above.
        for (std::size_t i = 0; i < window; ++i) {
            report.synthesis.add(synth_us[i]);
            report.reduction.add(reduce_us[i]);
            for (std::size_t p = 0; p < num_paths; ++p) {
                path_report& path = report.paths[p];
                const paths::path_result& cell = cells[p * block + i];
                if (cell.stages.size() != solve_stages[p].size()) {
                    throw std::logic_error("link: path '" + path.spec + "' returned " +
                                           std::to_string(cell.stages.size()) +
                                           " stage timings but declared " +
                                           std::to_string(solve_stages[p].size()));
                }
                path.ber.add_frame(tx_bits[i], cell.bits);
                if (cell.bits == tx_bits[i]) {
                    ++path.exact_frames;
                    error_run[p] = 0;
                } else {
                    ++path.bursts.error_frames;
                    if (++error_run[p] == 1) ++path.bursts.bursts;
                    path.bursts.longest_burst =
                        std::max(path.bursts.longest_burst, error_run[p]);
                }
                path.sum_ml_cost += cell.ml_cost;

                path.stages[0].add(synth_us[i]);
                double service_sum = 0.0;
                if (path_needs_qubo[p] != 0) {  // has the shared qubo stage
                    path.stages[1].add(reduce_us[i]);
                    service_sum += reduce_us[i];
                }
                for (std::size_t s = 0; s < cell.stages.size(); ++s) {
                    path.stages[first_solve_stage[p] + s].add(cell.stages[s].service_us);
                    service_sum += cell.stages[s].service_us;
                }
                path.service.add(service_sum);

                if (config.arq && !coded) {
                    const arq_cell& ac = arq_cells[p * block + i];
                    path.arq->counters.add_frame(ac.attempts, ac.wrong, ac.first_ok,
                                                 ac.final_ok);
                    for (const double s_us : ac.retx_service_us) {
                        path.arq->retx_service.add(s_us);
                    }
                }
            }
        }
        // Coded-frame fold, serial in frame order: attempt-0 decode
        // statistics and — when FEC + ARQ run together — the hybrid-ARQ
        // counters at frame granularity.
        for (std::size_t fi = 0; fi < window_frames; ++fi) {
            for (std::size_t p = 0; p < num_paths; ++p) {
                path_report& path = report.paths[p];
                const fec_cell& fc = fec_cells[p * frames_per_block + fi];
                ++path.fec->frames;
                if (!fc.first_ok) ++path.fec->frame_errors;
                path.fec->info_ber.add_frame(frame_info[fi], fc.decoded0);
                if (config.arq) {
                    path.arq->counters.add_frame(fc.attempts, fc.wrong, fc.first_ok,
                                                 fc.final_ok);
                    for (const double s_us : fc.retx_service_us) {
                        path.arq->retx_service.add(s_us);
                    }
                }
            }
        }
    }

    for (std::size_t p = 0; p < num_paths; ++p) {
        path_report& path = report.paths[p];
        path.replay = replay_traces(path, config);
        if (config.arq) {
            // Closed-loop replay: same stages and pacing as the open-loop
            // replay, with failed frames re-entering the chain.  `auto`
            // deadlines resolve to the open-loop replay's p99 — the ARQ
            // loop driven by the replay's own latency budget.  With FEC on,
            // the measured attempt_error_rate is frame-based while the
            // replayed jobs are still per-use attempts — a documented
            // approximation (the coded frame's uses share fate).
            arq_path_report& ar = *path.arq;
            const double resolved_deadline_us = config.arq->deadline_auto
                                                    ? path.replay.p99_latency_us
                                                    : config.arq->deadline_us;
            const replay_setup setup = build_replay(path, config);
            util::rng replay_rng(config.seed);
            auto closed = arq::closed_loop_replay(
                setup.stages, config.num_uses, ar.counters.attempt_error_rate(),
                resolved_deadline_us, config.arq->max_retx,
                {.interarrival_us = setup.interarrival_us}, replay_rng, setup.options);
            ar.replay_stats = closed.stats;
            ar.closed_replay = std::move(closed.replay);
        }
    }
    return report;
}

util::table summary_table(const link_report& report) {
    const bool fec_on = report.config.fec.has_value();
    const bool arq_on = report.config.arq.has_value();
    std::vector<std::string> headers{"path", "BER", "bit errs", "exact uses", "err burst",
                                     "svc mean us",
                                     "svc p50 us", "svc p99 us", "thrpt use/ms", "p50 lat us",
                                     "p99 lat us", "drop rate", "peak queue"};
    if (fec_on) {
        // Attempt-0 coded statistics (detection domain, bit-identical): the
        // raw BER columns to the left stay the uncoded per-use view.
        headers.insert(headers.end(), {"coded FER", "coded BER"});
    }
    if (arq_on) {
        // Detection-domain residual FER / retx rate (bit-identical), then
        // timing-domain deadline-miss rate / goodput (closed-loop replay).
        headers.insert(headers.end(),
                       {"resid FER", "retx rate", "miss rate", "goodput use/ms"});
    }
    util::table t(std::move(headers));
    for (const auto& path : report.paths) {
        // Per-path service: everything downstream of the shared synthesis
        // stage (for the hybrid that is qubo + classical + quantum).
        std::size_t peak_queue = 0;
        for (const std::size_t q : path.replay.max_queue_len) {
            peak_queue = std::max(peak_queue, q);
        }
        std::vector<std::string> row{path.name,
                                     util::format_double(path.ber.rate(), 5),
                                     std::to_string(path.ber.errors()),
                                     std::to_string(path.exact_frames),
                                     std::to_string(path.bursts.longest_burst),
                                     util::format_double(path.service.mean_us()),
                                     util::format_double(path.service.p50_us()),
                                     util::format_double(path.service.p99_us()),
                                     util::format_double(path.replay.throughput_per_us * 1000.0),
                                     util::format_double(path.replay.p50_latency_us),
                                     util::format_double(path.replay.p99_latency_us),
                                     util::format_double(path.replay.drop_rate, 5),
                                     std::to_string(peak_queue)};
        if (fec_on) {
            const fec_path_report& fr = *path.fec;
            row.push_back(util::format_double(fr.coded_fer(), 5));
            row.push_back(util::format_double(fr.info_ber.rate(), 5));
        }
        if (arq_on) {
            const arq_path_report& ar = *path.arq;
            row.push_back(util::format_double(ar.counters.residual_fer(), 5));
            row.push_back(util::format_double(ar.counters.retx_rate(), 4));
            row.push_back(util::format_double(ar.replay_stats.miss_rate(), 5));
            row.push_back(util::format_double(ar.replay_stats.goodput_per_us * 1000.0));
        }
        t.add_row(std::move(row));
    }
    return t;
}

}  // namespace hcq::link
