#include "core/hybrid_solver.h"

#include <stdexcept>

namespace hcq::hybrid {

hybrid_solver::hybrid_solver(const solvers::initializer& init,
                             const anneal::annealer_emulator& device,
                             anneal::anneal_schedule schedule, std::size_t num_reads)
    : init_(&init), device_(&device), schedule_(std::move(schedule)), num_reads_(num_reads) {
    if (!schedule_.starts_classical()) {
        throw std::invalid_argument(
            "hybrid_solver: schedule must start classical (reverse annealing)");
    }
    if (num_reads == 0) throw std::invalid_argument("hybrid_solver: zero reads");
}

std::string hybrid_solver::name() const { return init_->name() + "+RA"; }

hybrid_result hybrid_solver::solve(const qubo::qubo_model& q, util::rng& rng) const {
    hybrid_result out;
    out.initial = init_->initialize(q, rng);
    out.samples = device_->sample(q, schedule_, num_reads_, rng, out.initial.bits);
    out.classical_us = out.initial.elapsed_us;
    out.quantum_us = schedule_.duration_us() * static_cast<double>(num_reads_);

    out.best_bits = out.initial.bits;
    out.best_energy = out.initial.energy;
    const auto& best_sample = out.samples.best();
    if (best_sample.energy < out.best_energy) {
        out.best_bits = best_sample.bits;
        out.best_energy = best_sample.energy;
    }
    return out;
}

double hybrid_solver::solve_best_into(const qubo::qubo_model& q, util::rng& rng,
                                      solvers::solve_scratch& scratch, qubo::bit_vector& best,
                                      timings& times) const {
    init_->initialize_into(q, rng, scratch, scratch.init);
    const double device_energy = device_->sample_best_into(q, schedule_, num_reads_, rng,
                                                           &scratch.init.bits, scratch,
                                                           scratch.bits_b);
    times.classical_us = scratch.init.elapsed_us;
    times.quantum_us = schedule_.duration_us() * static_cast<double>(num_reads_);

    // Same winner rule as solve(): the device read must strictly beat the
    // classical candidate.
    if (device_energy < scratch.init.energy) {
        best.assign(scratch.bits_b.begin(), scratch.bits_b.end());
        return device_energy;
    }
    best.assign(scratch.init.bits.begin(), scratch.init.bits.end());
    return scratch.init.energy;
}

}  // namespace hcq::hybrid
