// Fixture: each raw-socket pattern category fires exactly once (5 findings:
// lifecycle, fd I/O, readiness, plumbing, include).
#include <sys/socket.h>

void bad_socket_fixture() {
    int fd = ::socket(2, 1, 0);
    send(fd, nullptr, 0, 0);
    poll(nullptr, 0, 0);
    setsockopt(fd, 0, 0, nullptr, 0);
}
