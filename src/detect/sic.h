// Ordered successive interference cancellation (V-BLAST style): detect the
// strongest remaining stream with a linear filter, slice it, subtract its
// contribution, repeat.  A classic middle ground between linear and tree
// detectors — another candidate classical module for the paper's Section-5
// hybrid designs.
#ifndef HCQ_DETECT_SIC_H
#define HCQ_DETECT_SIC_H

#include "detect/detector.h"

namespace hcq::detect {

/// ZF-based ordered SIC.
class sic_detector final : public detector {
public:
    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    void detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                     detection_result& out) const override;
    [[nodiscard]] std::string name() const override { return "SIC"; }
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_SIC_H
