// Parameter-sweep helpers for the Figure-8 style evaluations: run one
// schedule, estimate the per-read success probability p*, the mean solution
// quality, and TTS per Eq. (2).
#ifndef HCQ_CORE_SWEEP_H
#define HCQ_CORE_SWEEP_H

#include <optional>
#include <vector>

#include "core/device.h"
#include "core/schedule.h"
#include "core/tts.h"

namespace hcq::hybrid {

/// Aggregates of one (schedule, instance) evaluation.
struct schedule_eval {
    double p_star = 0.0;        ///< per-read ground-state probability
    double tts_us = 0.0;        ///< Eq. (2) at the requested confidence
    double mean_delta_e = 0.0;  ///< mean Delta-E% over reads
    double duration_us = 0.0;   ///< programmed schedule duration
    std::size_t reads = 0;
};

/// Samples `reads` anneals of `schedule` and aggregates the paper's metrics.
/// `initial` is required for reverse schedules.
[[nodiscard]] schedule_eval evaluate_schedule(
    const anneal::annealer_emulator& device, const qubo::qubo_model& q,
    const anneal::anneal_schedule& schedule, std::size_t reads, double optimal_energy,
    util::rng& rng, const std::optional<qubo::bit_vector>& initial = std::nullopt,
    double confidence_percent = 99.0, double energy_tolerance = 1e-6);

/// The paper's s_p grid: 0.25 to 0.99 in steps of 0.04 (Section 4.2).
[[nodiscard]] std::vector<double> paper_sp_grid();

/// Exhaustive-best ("oracle") forward-reverse evaluation: sweeps c_p over
/// the grid values above s_p and returns the best eval by TTS (ties by
/// p_star) together with the chosen c_p.  Grid points are evaluated on a
/// util::thread_pool (`num_threads` workers; 0 = hardware concurrency,
/// 1 = serial — pass 1 from inside an outer parallel region) with per-point
/// streams derived from one draw of `rng`, so the result is deterministic
/// and independent of the worker count.
struct fr_oracle_result {
    schedule_eval eval;
    double best_cp = 0.0;
};
[[nodiscard]] fr_oracle_result best_forward_reverse(
    const anneal::annealer_emulator& device, const qubo::qubo_model& q, double s_p, double t_p,
    double t_a, std::size_t reads, double optimal_energy, util::rng& rng,
    double confidence_percent = 99.0, std::size_t num_threads = 0);

}  // namespace hcq::hybrid

#endif  // HCQ_CORE_SWEEP_H
