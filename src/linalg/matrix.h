// Dense row-major matrices and vectors over double or std::complex<double>.
//
// Problem sizes in this library are small (tens of antennas/users), so a
// straightforward dense implementation is both sufficient and easy to verify.
#ifndef HCQ_LINALG_MATRIX_H
#define HCQ_LINALG_MATRIX_H

#include <cmath>
#include <complex>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace hcq::linalg {

using cxd = std::complex<double>;

/// conj that is the identity on reals (std::conj(double) would promote).
[[nodiscard]] inline double conj_value(double x) noexcept { return x; }
[[nodiscard]] inline cxd conj_value(const cxd& x) noexcept { return std::conj(x); }

/// |x|^2 for real or complex scalars.
[[nodiscard]] inline double abs_sq(double x) noexcept { return x * x; }
[[nodiscard]] inline double abs_sq(const cxd& x) noexcept { return std::norm(x); }

/// Dense row-major matrix over scalar T (double or cxd).
template <typename T>
class basic_matrix {
public:
    basic_matrix() = default;

    /// rows x cols zero matrix.
    basic_matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

    /// Row-major construction from a flat list; size must be rows*cols.
    basic_matrix(std::size_t rows, std::size_t cols, std::initializer_list<T> values)
        : rows_(rows), cols_(cols), data_(values) {
        if (data_.size() != rows * cols) {
            throw std::invalid_argument("basic_matrix: initializer size mismatch");
        }
    }

    [[nodiscard]] static basic_matrix identity(std::size_t n) {
        basic_matrix m(n, n);
        for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
        return m;
    }

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    /// Reshapes to rows x cols and zero-fills, reusing the existing
    /// allocation when it is large enough — the primitive behind every
    /// write-into-workspace overload (zero steady-state allocations once
    /// the scratch buffers have reached their high-water mark).
    void resize(std::size_t rows, std::size_t cols) {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, T{});
    }

    /// Raw row-major storage (rows() * cols() elements); hot kernels index
    /// rows as data() + r * cols().
    [[nodiscard]] T* data() noexcept { return data_.data(); }
    [[nodiscard]] const T* data() const noexcept { return data_.data(); }

    /// Element capacity of the underlying allocation (for the workspace
    /// growth instrumentation).
    [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }

    [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }

    /// Bounds-checked element access.
    [[nodiscard]] T& at(std::size_t r, std::size_t c) {
        check(r, c);
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
        check(r, c);
        return data_[r * cols_ + c];
    }

    /// Conjugate transpose (plain transpose for real T).
    [[nodiscard]] basic_matrix hermitian() const {
        basic_matrix out(cols_, rows_);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) out(c, r) = conj_value((*this)(r, c));
        }
        return out;
    }

    /// Plain transpose.
    [[nodiscard]] basic_matrix transpose() const {
        basic_matrix out(cols_, rows_);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
        }
        return out;
    }

    /// Frobenius norm.
    [[nodiscard]] double norm_fro() const {
        double s = 0.0;
        for (const auto& v : data_) s += abs_sq(v);
        return std::sqrt(s);
    }

    basic_matrix& operator+=(const basic_matrix& o) {
        require_same_shape(o);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
        return *this;
    }
    basic_matrix& operator-=(const basic_matrix& o) {
        require_same_shape(o);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
        return *this;
    }
    basic_matrix& operator*=(T scalar) {
        for (auto& v : data_) v *= scalar;
        return *this;
    }

    friend basic_matrix operator+(basic_matrix a, const basic_matrix& b) { return a += b; }
    friend basic_matrix operator-(basic_matrix a, const basic_matrix& b) { return a -= b; }
    friend basic_matrix operator*(basic_matrix a, T scalar) { return a *= scalar; }
    friend basic_matrix operator*(T scalar, basic_matrix a) { return a *= scalar; }

    /// Matrix product.
    friend basic_matrix operator*(const basic_matrix& a, const basic_matrix& b) {
        if (a.cols_ != b.rows_) throw std::invalid_argument("matrix multiply: shape mismatch");
        basic_matrix out(a.rows_, b.cols_);
        for (std::size_t r = 0; r < a.rows_; ++r) {
            for (std::size_t k = 0; k < a.cols_; ++k) {
                const T ark = a(r, k);
                if (ark == T{}) continue;
                for (std::size_t c = 0; c < b.cols_; ++c) out(r, c) += ark * b(k, c);
            }
        }
        return out;
    }

private:
    void check(std::size_t r, std::size_t c) const {
        if (r >= rows_ || c >= cols_) throw std::out_of_range("basic_matrix::at");
    }
    void require_same_shape(const basic_matrix& o) const {
        if (rows_ != o.rows_ || cols_ != o.cols_) {
            throw std::invalid_argument("basic_matrix: shape mismatch");
        }
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

/// Dense vector over scalar T.
template <typename T>
class basic_vector {
public:
    basic_vector() = default;
    explicit basic_vector(std::size_t n) : data_(n, T{}) {}
    basic_vector(std::initializer_list<T> values) : data_(values) {}
    explicit basic_vector(std::vector<T> values) : data_(std::move(values)) {}

    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    /// Resizes to n elements and zero-fills, reusing the allocation.
    void resize(std::size_t n) { data_.assign(n, T{}); }

    [[nodiscard]] T* data() noexcept { return data_.data(); }
    [[nodiscard]] const T* data() const noexcept { return data_.data(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }

    [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

    [[nodiscard]] T& at(std::size_t i) { return data_.at(i); }
    [[nodiscard]] const T& at(std::size_t i) const { return data_.at(i); }

    [[nodiscard]] std::vector<T>& raw() noexcept { return data_; }
    [[nodiscard]] const std::vector<T>& raw() const noexcept { return data_; }

    /// Euclidean norm.
    [[nodiscard]] double norm2() const {
        double s = 0.0;
        for (const auto& v : data_) s += abs_sq(v);
        return std::sqrt(s);
    }

    basic_vector& operator+=(const basic_vector& o) {
        require_same_size(o);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
        return *this;
    }
    basic_vector& operator-=(const basic_vector& o) {
        require_same_size(o);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
        return *this;
    }
    basic_vector& operator*=(T scalar) {
        for (auto& v : data_) v *= scalar;
        return *this;
    }

    friend basic_vector operator+(basic_vector a, const basic_vector& b) { return a += b; }
    friend basic_vector operator-(basic_vector a, const basic_vector& b) { return a -= b; }
    friend basic_vector operator*(basic_vector a, T scalar) { return a *= scalar; }
    friend basic_vector operator*(T scalar, basic_vector a) { return a *= scalar; }

private:
    void require_same_size(const basic_vector& o) const {
        if (data_.size() != o.data_.size()) {
            throw std::invalid_argument("basic_vector: size mismatch");
        }
    }

    std::vector<T> data_;
};

using cmat = basic_matrix<cxd>;
using cvec = basic_vector<cxd>;
using rmat = basic_matrix<double>;
using rvec = basic_vector<double>;

/// Matrix-vector product.
template <typename T>
[[nodiscard]] basic_vector<T> operator*(const basic_matrix<T>& m, const basic_vector<T>& v) {
    if (m.cols() != v.size()) throw std::invalid_argument("matrix-vector: shape mismatch");
    basic_vector<T> out(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        T acc{};
        for (std::size_t c = 0; c < m.cols(); ++c) acc += m(r, c) * v[c];
        out[r] = acc;
    }
    return out;
}

/// Inner product a^H b (conjugates the first argument for complex T).
template <typename T>
[[nodiscard]] T inner(const basic_vector<T>& a, const basic_vector<T>& b) {
    if (a.size() != b.size()) throw std::invalid_argument("inner: size mismatch");
    T acc{};
    for (std::size_t i = 0; i < a.size(); ++i) acc += conj_value(a[i]) * b[i];
    return acc;
}

// ---------------------------------------------------------------------------
// Write-into kernels for the detection hot path.
//
// Each kernel reuses the caller's output buffer (resize reuses capacity) and
// performs the SAME floating-point operations in the SAME order as the
// allocating operator it replaces — the library's golden statistics are
// pinned bit-for-bit, so these are restructurings of storage, never of
// arithmetic.  Loops run over raw row pointers so both supported compilers
// auto-vectorise them at -O2 without intrinsics.
// ---------------------------------------------------------------------------

/// out = a * b; bit-identical to operator* (same k-ascending accumulation,
/// same skip of exact-zero a(r, k) terms).
template <typename T>
void multiply_into(const basic_matrix<T>& a, const basic_matrix<T>& b, basic_matrix<T>& out) {
    if (a.cols() != b.rows()) throw std::invalid_argument("matrix multiply: shape mismatch");
    out.resize(a.rows(), b.cols());
    const std::size_t bc = b.cols();
    for (std::size_t r = 0; r < a.rows(); ++r) {
        T* orow = out.data() + r * bc;
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const T ark = a(r, k);
            if (ark == T{}) continue;
            const T* brow = b.data() + k * bc;
            for (std::size_t c = 0; c < bc; ++c) orow[c] += ark * brow[c];
        }
    }
}

/// out = m * v; bit-identical to the matrix-vector operator*.
template <typename T>
void matvec_into(const basic_matrix<T>& m, const basic_vector<T>& v, basic_vector<T>& out) {
    if (m.cols() != v.size()) throw std::invalid_argument("matrix-vector: shape mismatch");
    out.resize(m.rows());
    const std::size_t n = m.cols();
    const T* vp = v.data();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const T* row = m.data() + r * n;
        T acc{};
        for (std::size_t c = 0; c < n; ++c) acc += row[c] * vp[c];
        out[r] = acc;
    }
}

/// out = m.hermitian() * v without materialising the transpose: entry i is
/// sum_j conj(m(j, i)) * v[j] accumulated in ascending j — exactly the
/// operation sequence of the allocating m.hermitian() * v.
template <typename T>
void herm_matvec_into(const basic_matrix<T>& m, const basic_vector<T>& v, basic_vector<T>& out) {
    if (m.rows() != v.size()) throw std::invalid_argument("herm_matvec_into: shape mismatch");
    out.resize(m.cols());
    for (std::size_t i = 0; i < m.cols(); ++i) {
        T acc{};
        for (std::size_t j = 0; j < m.rows(); ++j) acc += conj_value(m(j, i)) * v[j];
        out[i] = acc;
    }
}

/// out = a.hermitian() (conjugate transpose) into a reused buffer.
template <typename T>
void hermitian_into(const basic_matrix<T>& a, basic_matrix<T>& out) {
    out.resize(a.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) out(c, r) = conj_value(a(r, c));
    }
}

/// out = a.hermitian() * a without materialising the transpose; bit-identical
/// to the allocating form (the zero-skip tests conj(a(k, r)), which is zero
/// exactly when a(k, r) is).
template <typename T>
void gram_into(const basic_matrix<T>& a, basic_matrix<T>& out) {
    out.resize(a.cols(), a.cols());
    const std::size_t n = a.cols();
    for (std::size_t r = 0; r < n; ++r) {
        T* orow = out.data() + r * n;
        for (std::size_t k = 0; k < a.rows(); ++k) {
            const T ark = conj_value(a(k, r));
            if (ark == T{}) continue;
            const T* arow = a.data() + k * n;
            for (std::size_t c = 0; c < n; ++c) orow[c] += ark * arow[c];
        }
    }
}

/// y += alpha * x over raw spans (the classic axpy; hot solver row updates).
template <typename T>
void axpy(T alpha, const T* x, T* y, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// True when a and b have the same shape and every element compares exactly
/// equal — the ||A - B||_F == 0 staleness test of the decomposition caches,
/// with early exit on the first differing element.
template <typename T>
[[nodiscard]] bool exactly_equal(const basic_matrix<T>& a, const basic_matrix<T>& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    const std::size_t n = a.rows() * a.cols();
    const T* pa = a.data();
    const T* pb = b.data();
    for (std::size_t i = 0; i < n; ++i) {
        if (pa[i] != pb[i]) return false;
    }
    return true;
}

}  // namespace hcq::linalg

#endif  // HCQ_LINALG_MATRIX_H
