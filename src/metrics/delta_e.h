// The paper's solution-quality metric Delta-E% (Section 4.3).
//
// The paper prints  Delta-E% = 100 * (E_g - |E_s|) / E_g , which is not zero
// at the optimum for the strictly negative minima produced by the ML-to-QUBO
// reduction (at E_s = E_g < 0 it evaluates to 200%).  The evidently intended
// definition — the one matching every statement made about the metric
// ("Delta-E% = 0% indicates that the global optimum has been found", "lower
// Delta-E% means the closer gap") — is the normalised optimality gap
//     Delta-E% = 100 * (E_s - E_g) / |E_g|,
// which is what this library computes.  The deviation is deliberate and
// documented in DESIGN.md.
#ifndef HCQ_METRICS_DELTA_E_H
#define HCQ_METRICS_DELTA_E_H

#include <cstddef>

namespace hcq::metrics {

/// Normalised optimality gap in percent; 0 iff the optimum was found.
/// Requires E_g != 0 and E_s >= E_g (up to numerical noise; small negative
/// gaps clamp to 0).  Throws std::invalid_argument for E_g == 0.
[[nodiscard]] double delta_e_percent(double sample_energy, double ground_energy);

/// Bin index for a Delta-E% value with the paper's bin width delta
/// (Figure 7 uses delta = 2%).
[[nodiscard]] std::size_t delta_e_bin(double delta_e, double bin_width_percent);

}  // namespace hcq::metrics

#endif  // HCQ_METRICS_DELTA_E_H
