// Depth-first sphere decoder with Schnorr-Euchner enumeration — exact
// maximum-likelihood detection.
//
// Serves as the optimal-detector baseline the paper's ground truths are
// checked against, and as the "oracle" initial-state source for the
// initial-state-quality experiments (Figures 7 and 8).
#ifndef HCQ_DETECT_SPHERE_H
#define HCQ_DETECT_SPHERE_H

#include "detect/detector.h"

namespace hcq::detect {

/// Exact ML detector.  Worst-case exponential; fine at the paper's sizes
/// (up to ~16 users 16-QAM in noiseless channels).
class sphere_detector final : public detector {
public:
    /// `initial_radius_sq` prunes the search from the start; infinity (the
    /// default) guarantees the ML point is found.
    explicit sphere_detector(double initial_radius_sq = 0.0);

    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    void detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                     detection_result& out) const override;
    [[nodiscard]] std::string name() const override { return "SD"; }

private:
    double initial_radius_sq_;
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_SPHERE_H
