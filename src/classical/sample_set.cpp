#include "classical/sample_set.h"

#include <stdexcept>

namespace hcq::solvers {

void sample_set::add(qubo::bit_vector bits, double energy) {
    samples_.push_back(sample{std::move(bits), energy});
}

const sample& sample_set::best() const {
    if (samples_.empty()) throw std::logic_error("sample_set::best: empty");
    const sample* b = &samples_.front();
    for (const auto& s : samples_) {
        if (s.energy < b->energy) b = &s;
    }
    return *b;
}

double sample_set::mean_energy() const {
    if (samples_.empty()) throw std::logic_error("sample_set::mean_energy: empty");
    double acc = 0.0;
    for (const auto& s : samples_) acc += s.energy;
    return acc / static_cast<double>(samples_.size());
}

std::size_t sample_set::count_at_or_below(double reference, double tolerance) const {
    std::size_t count = 0;
    for (const auto& s : samples_) {
        if (s.energy <= reference + tolerance) ++count;
    }
    return count;
}

double sample_set::success_probability(double reference, double tolerance) const {
    if (samples_.empty()) return 0.0;
    return static_cast<double>(count_at_or_below(reference, tolerance)) /
           static_cast<double>(samples_.size());
}

std::vector<double> sample_set::energies() const {
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_) out.push_back(s.energy);
    return out;
}

void sample_set::merge(const sample_set& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

}  // namespace hcq::solvers
