#include "classical/solver.h"

#include <stdexcept>

#include "util/timer.h"

namespace hcq::solvers {

double solver::solve_best_into(const qubo::qubo_model& q, util::rng& rng, solve_scratch&,
                               qubo::bit_vector& best) const {
    const sample_set samples = solve(q, rng);
    const sample& b = samples.best();
    best.assign(b.bits.begin(), b.bits.end());
    return b.energy;
}

void initializer::initialize_into(const qubo::qubo_model& q, util::rng& rng, solve_scratch&,
                                  initial_state& out) const {
    out = initialize(q, rng);
}

initial_state random_initializer::initialize(const qubo::qubo_model& q, util::rng& rng) const {
    const util::timer clock;
    initial_state out;
    out.bits = rng.bits(q.num_variables());
    out.energy = q.energy(out.bits);
    out.elapsed_us = clock.elapsed_us();
    return out;
}

void random_initializer::initialize_into(const qubo::qubo_model& q, util::rng& rng,
                                         solve_scratch&, initial_state& out) const {
    const util::timer clock;
    rng.bits_into(q.num_variables(), out.bits);
    out.energy = q.energy(out.bits);
    out.elapsed_us = clock.elapsed_us();
}

fixed_initializer::fixed_initializer(qubo::bit_vector bits, std::string label)
    : bits_(std::move(bits)), label_(std::move(label)) {}

initial_state fixed_initializer::initialize(const qubo::qubo_model& q, util::rng&) const {
    if (bits_.size() != q.num_variables()) {
        throw std::invalid_argument("fixed_initializer: bit count mismatch");
    }
    initial_state out;
    out.bits = bits_;
    out.energy = q.energy(out.bits);
    out.elapsed_us = 0.0;
    return out;
}

}  // namespace hcq::solvers
