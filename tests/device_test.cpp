// Tests for the annealer emulator and its temperature maps — the hardware
// substitution's contract (see DESIGN.md).
#include <gtest/gtest.h>

#include "classical/metropolis.h"
#include "core/device.h"
#include "core/schedule.h"
#include "core/temperature.h"
#include "qubo/brute_force.h"
#include "qubo/generator.h"
#include "qubo/ising.h"
#include "util/rng.h"

namespace {

namespace an = hcq::anneal;
namespace q = hcq::qubo;

TEST(TemperatureMap, VanishesAtSOne) {
    for (const auto kind : {an::temperature_map_kind::rational,
                            an::temperature_map_kind::linear,
                            an::temperature_map_kind::exponential}) {
        const an::temperature_map map(kind);
        EXPECT_NEAR(map.fluctuation(1.0), 0.0, 1e-12) << an::to_string(kind);
    }
}

TEST(TemperatureMap, MonotoneNonIncreasing) {
    for (const auto kind : {an::temperature_map_kind::rational,
                            an::temperature_map_kind::linear,
                            an::temperature_map_kind::exponential}) {
        const an::temperature_map map(kind);
        double prev = map.fluctuation(0.0);
        for (double s = 0.05; s <= 1.0; s += 0.05) {
            const double cur = map.fluctuation(s);
            EXPECT_LE(cur, prev + 1e-12) << an::to_string(kind) << " at s=" << s;
            prev = cur;
        }
    }
}

TEST(TemperatureMap, RationalDivergesTowardsSZero) {
    const an::temperature_map map(an::temperature_map_kind::rational, 3.0, 0.05);
    EXPECT_GT(map.fluctuation(0.0), 10.0);
    EXPECT_NEAR(map.fluctuation(0.5), 1.0, 1e-12);
}

TEST(TemperatureMap, ClampsInput) {
    const an::temperature_map map;
    EXPECT_DOUBLE_EQ(map.fluctuation(-1.0), map.fluctuation(0.0));
    EXPECT_DOUBLE_EQ(map.fluctuation(2.0), map.fluctuation(1.0));
}

TEST(TemperatureMap, Validation) {
    EXPECT_THROW(an::temperature_map(an::temperature_map_kind::rational, -1.0),
                 std::invalid_argument);
    EXPECT_THROW(an::temperature_map(an::temperature_map_kind::rational, 1.0, 0.0),
                 std::invalid_argument);
    EXPECT_STREQ(an::to_string(an::temperature_map_kind::linear), "linear");
}

TEST(Device, ConfigValidation) {
    an::annealer_config config;
    config.sweeps_per_us = 0.0;
    EXPECT_THROW(an::annealer_emulator{config}, std::invalid_argument);
    config = {};
    config.temperature_scale = -1.0;
    EXPECT_THROW(an::annealer_emulator{config}, std::invalid_argument);
    config = {};
    config.freeze_fraction = -1.0;
    EXPECT_THROW(an::annealer_emulator{config}, std::invalid_argument);
}

TEST(Device, SweepsScaleWithDuration) {
    an::annealer_config config;
    config.sweeps_per_us = 10.0;
    const an::annealer_emulator device(config);
    EXPECT_EQ(device.sweeps_for(an::anneal_schedule::forward_plain(2.0)), 20u);
    EXPECT_EQ(device.sweeps_for(an::anneal_schedule::forward_plain(0.01)), 1u);  // minimum 1
}

TEST(Device, ReverseScheduleRequiresInitialState) {
    hcq::util::rng rng(1);
    const auto m = q::random_qubo(rng, 8, 1.0, -1.0, 1.0);
    const an::annealer_emulator device;
    const auto ra = an::anneal_schedule::reverse(0.5, 1.0);
    EXPECT_THROW((void)device.anneal_once(m, ra, rng), std::invalid_argument);
    EXPECT_THROW((void)device.anneal_once(m, ra, rng, q::bit_vector(3, 0)),
                 std::invalid_argument);
    // With a state it runs fine.
    const auto bits = device.anneal_once(m, ra, rng, q::bit_vector(8, 0));
    EXPECT_EQ(bits.size(), 8u);
}

TEST(Device, FrozenScheduleIsIdentityOnInitialState) {
    hcq::util::rng rng(2);
    const auto m = q::random_qubo(rng, 10, 1.0, -1.0, 1.0);
    const an::annealer_emulator device;
    // Hold at s = 1 throughout: zero fluctuation... but note Metropolis at
    // T=0 still performs strictly-downhill moves; a true frozen register
    // requires the initial state to be a local minimum.  Use one.
    auto bits = rng.bits(10);
    hcq::solvers::metropolis_engine descent(m, bits);
    for (int i = 0; i < 50; ++i) descent.sweep(0.0, rng);
    const auto local_min = descent.state();
    const an::anneal_schedule hold({{0.0, 1.0}, {2.0, 1.0}}, "hold");
    const auto out = device.anneal_once(m, hold, rng, local_min);
    EXPECT_EQ(out, local_min);
}

TEST(Device, ForwardStartIsRandomised) {
    // At s ~ 0 the fluctuation is huge: an immediately-measured forward
    // anneal behaves like a random bitstring source.  Run many very hot,
    // very short anneals and check the marginal of each bit is ~1/2.
    hcq::util::rng rng(3);
    const auto m = q::random_qubo(rng, 6, 1.0, -0.2, 0.2);
    an::annealer_config config;
    config.sweeps_per_us = 4.0;
    const an::annealer_emulator device(config);
    const an::anneal_schedule hot({{0.0, 0.0}, {0.25, 0.05}}, "hot");
    std::vector<int> ones(6, 0);
    const int reads = 400;
    for (int r = 0; r < reads; ++r) {
        const auto bits = device.anneal_once(m, hot, rng);
        for (std::size_t i = 0; i < 6; ++i) ones[i] += bits[i];
    }
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_NEAR(static_cast<double>(ones[i]) / reads, 0.5, 0.15);
    }
}

TEST(Device, ForwardAnnealingSolvesEasyInstance) {
    const auto m = q::to_qubo(q::ferromagnetic_chain(10));
    const auto exact = q::brute_force_minimize(m);
    hcq::util::rng rng(4);
    const an::annealer_emulator device;
    const auto samples =
        device.sample(m, an::anneal_schedule::forward_plain(4.0), 50, rng);
    EXPECT_GT(samples.success_probability(exact.best_energy), 0.5);
}

TEST(Device, ReverseFromOptimumAtHighSpStaysOptimal) {
    hcq::util::rng rng(5);
    const auto m = q::random_qubo(rng, 12, 1.0, -1.0, 1.0);
    const auto exact = q::brute_force_minimize(m);
    const an::annealer_emulator device;
    // s_p = 0.95: barely any fluctuation — a refined local search around the
    // ground state must keep finding it.
    const auto samples = device.sample(m, an::anneal_schedule::reverse(0.95, 1.0), 40, rng,
                                       exact.best_bits);
    EXPECT_GT(samples.success_probability(exact.best_energy), 0.9);
}

TEST(Device, ReverseAtVeryLowSpWipesOutInitialState) {
    // s_p near 0 wipes the initial-state information (paper Section 4.3):
    // success from the ground state should drop markedly vs high s_p.
    hcq::util::rng rng(6);
    const auto m = q::random_qubo(rng, 14, 1.0, -1.0, 1.0);
    const auto exact = q::brute_force_minimize(m);
    const an::annealer_emulator device;
    const auto high =
        device.sample(m, an::anneal_schedule::reverse(0.9, 1.0), 60, rng, exact.best_bits);
    const auto low =
        device.sample(m, an::anneal_schedule::reverse(0.05, 1.0), 60, rng, exact.best_bits);
    EXPECT_GE(high.success_probability(exact.best_energy),
              low.success_probability(exact.best_energy));
}

TEST(Device, SampleCountAndDeterminism) {
    hcq::util::rng rng_a(7);
    hcq::util::rng rng_b(7);
    const auto m = q::random_qubo(rng_a, 8, 1.0, -1.0, 1.0);
    const auto m2 = q::random_qubo(rng_b, 8, 1.0, -1.0, 1.0);
    const an::annealer_emulator device;
    const auto fa = an::anneal_schedule::forward_plain(1.0);
    const auto s1 = device.sample(m, fa, 25, rng_a);
    const auto s2 = device.sample(m2, fa, 25, rng_b);
    ASSERT_EQ(s1.size(), 25u);
    ASSERT_EQ(s2.size(), 25u);
    for (std::size_t i = 0; i < 25; ++i) {
        EXPECT_EQ(s1[i].bits, s2[i].bits);  // same seed, same stream
    }
    EXPECT_THROW((void)device.sample(m, fa, 0, rng_a), std::invalid_argument);
}

TEST(Device, RepeatedSampleCallsDiffer) {
    hcq::util::rng rng(8);
    const auto m = q::random_qubo(rng, 10, 1.0, -1.0, 1.0);
    const an::annealer_emulator device;
    // End the schedule while still hot so final states stay spread out (a
    // full anneal may legitimately funnel every read into one basin).
    const an::anneal_schedule hot({{0.0, 0.0}, {1.0, 0.15}}, "hot-end");
    const auto s1 = device.sample(m, hot, 10, rng);
    const auto s2 = device.sample(m, hot, 10, rng);
    int differing = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        if (s1[i].bits != s2[i].bits) ++differing;
    }
    EXPECT_GT(differing, 0);  // the salt advances the caller's generator
}

TEST(Device, SampleEnergiesMatchModel) {
    hcq::util::rng rng(9);
    const auto m = q::random_qubo(rng, 9, 1.0, -1.0, 1.0);
    const an::annealer_emulator device;
    const auto samples = device.sample(m, an::anneal_schedule::forward_plain(1.0), 15, rng);
    for (const auto& s : samples.all()) {
        EXPECT_NEAR(s.energy, m.energy(s.bits), 1e-10);
    }
}

}  // namespace
