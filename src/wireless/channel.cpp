#include "wireless/channel.h"

#include <cmath>
#include <stdexcept>

namespace hcq::wireless {

const char* to_string(channel_model model) noexcept {
    switch (model) {
        case channel_model::unit_gain_random_phase: return "random-phase";
        case channel_model::rayleigh: return "rayleigh";
    }
    return "?";
}

linalg::cmat draw_channel(util::rng& rng, channel_model model, std::size_t num_antennas,
                          std::size_t num_users) {
    linalg::cmat h;
    draw_channel_into(rng, model, num_antennas, num_users, h);
    return h;
}

void draw_channel_into(util::rng& rng, channel_model model, std::size_t num_antennas,
                       std::size_t num_users, linalg::cmat& h) {
    if (num_antennas == 0 || num_users == 0) {
        throw std::invalid_argument("draw_channel: empty dimensions");
    }
    h.resize(num_antennas, num_users);
    for (std::size_t r = 0; r < num_antennas; ++r) {
        for (std::size_t c = 0; c < num_users; ++c) {
            switch (model) {
                case channel_model::unit_gain_random_phase: {
                    const double theta = rng.angle();
                    h(r, c) = linalg::cxd(std::cos(theta), std::sin(theta));
                    break;
                }
                case channel_model::rayleigh: {
                    h(r, c) = linalg::cxd(rng.normal() / std::sqrt(2.0),
                                          rng.normal() / std::sqrt(2.0));
                    break;
                }
            }
        }
    }
}

void add_awgn(util::rng& rng, linalg::cvec& y, double noise_variance) {
    if (noise_variance < 0.0) throw std::invalid_argument("add_awgn: negative variance");
    if (noise_variance == 0.0) return;
    const double sigma_per_dim = std::sqrt(noise_variance / 2.0);
    for (std::size_t i = 0; i < y.size(); ++i) {
        y[i] += linalg::cxd(rng.normal(0.0, sigma_per_dim), rng.normal(0.0, sigma_per_dim));
    }
}

double noise_variance_for_snr(modulation mod, std::size_t num_users, double snr_db) {
    if (num_users == 0) throw std::invalid_argument("noise_variance_for_snr: no users");
    const double signal_power = static_cast<double>(num_users) * mean_symbol_energy(mod);
    const double snr_linear = std::pow(10.0, snr_db / 10.0);
    return signal_power / snr_linear;
}

}  // namespace hcq::wireless
