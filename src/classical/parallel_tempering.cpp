#include "classical/parallel_tempering.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "classical/metropolis.h"

namespace hcq::solvers {

parallel_tempering::parallel_tempering(pt_config config) : config_(config) {
    if (config_.num_replicas < 2) throw std::invalid_argument("parallel_tempering: need >= 2 replicas");
    if (config_.num_rounds == 0 || config_.sweeps_per_round == 0) {
        throw std::invalid_argument("parallel_tempering: zero rounds or sweeps");
    }
    if (config_.cold_fraction <= 0.0 || config_.cold_fraction > config_.hot_fraction) {
        throw std::invalid_argument("parallel_tempering: bad temperature fractions");
    }
}

sample_set parallel_tempering::solve(const qubo::qubo_model& q, util::rng& rng) const {
    const double scale = std::max(q.max_abs_coefficient(), 1e-12);
    const std::size_t r = config_.num_replicas;
    std::vector<double> temperature(r);
    const double t_hot = config_.hot_fraction * scale;
    const double t_cold = config_.cold_fraction * scale;
    const double ratio = std::pow(t_cold / t_hot, 1.0 / static_cast<double>(r - 1));
    for (std::size_t k = 0; k < r; ++k) {
        temperature[k] = t_hot * std::pow(ratio, static_cast<double>(k));
    }

    std::vector<std::unique_ptr<metropolis_engine>> replicas;
    replicas.reserve(r);
    for (std::size_t k = 0; k < r; ++k) {
        replicas.push_back(
            std::make_unique<metropolis_engine>(q, rng.bits(q.num_variables())));
    }

    sample_set out;
    out.reserve(config_.num_rounds + 1);
    qubo::bit_vector best_bits = replicas.back()->state();
    double best_energy = replicas.back()->energy();

    for (std::size_t round = 0; round < config_.num_rounds; ++round) {
        for (std::size_t k = 0; k < r; ++k) {
            for (std::size_t s = 0; s < config_.sweeps_per_round; ++s) {
                replicas[k]->sweep(temperature[k], rng);
            }
        }
        // Adjacent swap attempts (alternate even/odd pairs per round).
        for (std::size_t k = round % 2; k + 1 < r; k += 2) {
            const double beta_a = 1.0 / temperature[k];
            const double beta_b = 1.0 / temperature[k + 1];
            // Detailed balance for the pair exchange: accept with probability
            // min(1, exp((beta_b - beta_a) * (E_b - E_a))).
            const double delta =
                (beta_b - beta_a) * (replicas[k + 1]->energy() - replicas[k]->energy());
            if (delta >= 0.0 || rng.uniform() < std::exp(delta)) {
                std::swap(replicas[k], replicas[k + 1]);
            }
        }
        const auto& cold = *replicas.back();
        out.add(cold.state(), cold.energy());
        for (const auto& rep : replicas) {
            if (rep->energy() < best_energy) {
                best_energy = rep->energy();
                best_bits = rep->state();
            }
        }
    }
    out.add(std::move(best_bits), best_energy);
    return out;
}

}  // namespace hcq::solvers
