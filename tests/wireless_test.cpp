// Tests for hcq::wireless — modulation maps, channels, and MIMO instance
// synthesis (the paper's Section 4.2 corpus recipe).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "wireless/channel.h"
#include "wireless/mimo.h"
#include "wireless/modulation.h"

namespace {

namespace wl = hcq::wireless;
using wl::modulation;

TEST(Modulation, BitCounts) {
    EXPECT_EQ(wl::bits_per_symbol(modulation::bpsk), 1u);
    EXPECT_EQ(wl::bits_per_symbol(modulation::qpsk), 2u);
    EXPECT_EQ(wl::bits_per_symbol(modulation::qam16), 4u);
    EXPECT_EQ(wl::bits_per_symbol(modulation::qam64), 6u);
    EXPECT_EQ(wl::bits_per_dimension(modulation::qam64), 3u);
    EXPECT_FALSE(wl::uses_quadrature(modulation::bpsk));
    EXPECT_TRUE(wl::uses_quadrature(modulation::qpsk));
}

TEST(Modulation, Names) {
    EXPECT_EQ(wl::to_string(modulation::bpsk), "BPSK");
    EXPECT_EQ(wl::to_string(modulation::qam16), "16-QAM");
    EXPECT_EQ(wl::all_modulations().size(), 4u);
}

TEST(Modulation, MeanSymbolEnergy) {
    EXPECT_DOUBLE_EQ(wl::mean_symbol_energy(modulation::bpsk), 1.0);
    EXPECT_DOUBLE_EQ(wl::mean_symbol_energy(modulation::qpsk), 2.0);
    EXPECT_DOUBLE_EQ(wl::mean_symbol_energy(modulation::qam16), 10.0);
    EXPECT_DOUBLE_EQ(wl::mean_symbol_energy(modulation::qam64), 42.0);
}

TEST(Modulation, PamAmplitudeSingleBit) {
    const std::vector<std::uint8_t> zero{0};
    const std::vector<std::uint8_t> one{1};
    EXPECT_DOUBLE_EQ(wl::pam_amplitude(zero), -1.0);
    EXPECT_DOUBLE_EQ(wl::pam_amplitude(one), 1.0);
}

TEST(Modulation, PamAmplitudeTwoBitsNaturalOrder) {
    const std::vector<std::vector<std::uint8_t>> patterns{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<double> expected{-3.0, -1.0, 1.0, 3.0};
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        EXPECT_DOUBLE_EQ(wl::pam_amplitude(patterns[i]), expected[i]);
    }
}

TEST(Modulation, PamAmplitudeThreeBitsCoversLattice) {
    std::set<double> amps;
    for (int p = 0; p < 8; ++p) {
        const std::vector<std::uint8_t> bits{static_cast<std::uint8_t>((p >> 2) & 1),
                                             static_cast<std::uint8_t>((p >> 1) & 1),
                                             static_cast<std::uint8_t>(p & 1)};
        amps.insert(wl::pam_amplitude(bits));
    }
    EXPECT_EQ(amps.size(), 8u);
    EXPECT_DOUBLE_EQ(*amps.begin(), -7.0);
    EXPECT_DOUBLE_EQ(*amps.rbegin(), 7.0);
}

TEST(Modulation, PamAmplitudeRejectsBadInput) {
    EXPECT_THROW((void)wl::pam_amplitude({}), std::invalid_argument);
    const std::vector<std::uint8_t> bad{2};
    EXPECT_THROW((void)wl::pam_amplitude(bad), std::invalid_argument);
}

TEST(Modulation, PamBitsRoundTrip) {
    for (std::size_t k = 1; k <= 3; ++k) {
        const double max_amp = std::pow(2.0, static_cast<double>(k)) - 1.0;
        for (double a = -max_amp; a <= max_amp; a += 2.0) {
            const auto bits = wl::pam_bits(a, k);
            EXPECT_DOUBLE_EQ(wl::pam_amplitude(bits), a) << "k=" << k << " a=" << a;
        }
    }
}

TEST(Modulation, PamBitsSlicesToNearest) {
    EXPECT_DOUBLE_EQ(wl::pam_amplitude(wl::pam_bits(0.4, 2)), 1.0);
    EXPECT_DOUBLE_EQ(wl::pam_amplitude(wl::pam_bits(-0.4, 2)), -1.0);
    EXPECT_DOUBLE_EQ(wl::pam_amplitude(wl::pam_bits(100.0, 2)), 3.0);   // clamps high
    EXPECT_DOUBLE_EQ(wl::pam_amplitude(wl::pam_bits(-100.0, 2)), -3.0); // clamps low
    EXPECT_THROW((void)wl::pam_bits(0.0, 0), std::invalid_argument);
}

class ModulationRoundTrip : public ::testing::TestWithParam<modulation> {};

TEST_P(ModulationRoundTrip, SymbolBitsRoundTrip) {
    const modulation mod = GetParam();
    const std::size_t bps = wl::bits_per_symbol(mod);
    for (std::size_t pattern = 0; pattern < (std::size_t{1} << bps); ++pattern) {
        std::vector<std::uint8_t> bits(bps);
        for (std::size_t j = 0; j < bps; ++j) {
            bits[j] = static_cast<std::uint8_t>((pattern >> (bps - 1 - j)) & 1U);
        }
        const auto symbol = wl::modulate_symbol(mod, bits);
        EXPECT_EQ(wl::demodulate_symbol(mod, symbol), bits);
    }
}

TEST_P(ModulationRoundTrip, VectorRoundTrip) {
    const modulation mod = GetParam();
    hcq::util::rng rng(static_cast<std::uint64_t>(mod) + 100);
    const auto bits = rng.bits(6 * wl::bits_per_symbol(mod));
    const auto symbols = wl::modulate(mod, bits);
    EXPECT_EQ(symbols.size(), 6u);
    EXPECT_EQ(wl::demodulate(mod, symbols), bits);
}

TEST_P(ModulationRoundTrip, ConstellationDistinctAndComplete) {
    const modulation mod = GetParam();
    const auto points = wl::constellation(mod);
    EXPECT_EQ(points.size(), std::size_t{1} << wl::bits_per_symbol(mod));
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = i + 1; j < points.size(); ++j) {
            EXPECT_GT(std::abs(points[i] - points[j]), 0.5);
        }
    }
}

TEST_P(ModulationRoundTrip, ConstellationMeanEnergyMatches) {
    const modulation mod = GetParam();
    const auto points = wl::constellation(mod);
    double acc = 0.0;
    for (const auto& p : points) acc += std::norm(p);
    EXPECT_NEAR(acc / static_cast<double>(points.size()), wl::mean_symbol_energy(mod), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, ModulationRoundTrip,
                         ::testing::Values(modulation::bpsk, modulation::qpsk,
                                           modulation::qam16, modulation::qam64));

TEST(Modulation, BpskIsReal) {
    const auto points = wl::constellation(modulation::bpsk);
    for (const auto& p : points) EXPECT_DOUBLE_EQ(p.imag(), 0.0);
}

TEST(Modulation, ModulateRejectsWrongBitCount) {
    const std::vector<std::uint8_t> bits{0, 1, 0};
    EXPECT_THROW((void)wl::modulate(modulation::qam16, bits), std::invalid_argument);
    EXPECT_THROW((void)wl::modulate_symbol(modulation::qpsk, bits), std::invalid_argument);
}

TEST(Modulation, GrayCodeRoundTripAndAdjacency) {
    for (std::uint32_t v = 0; v < 64; ++v) {
        EXPECT_EQ(wl::gray_decode(wl::gray_encode(v)), v);
    }
    for (std::uint32_t v = 0; v + 1 < 64; ++v) {
        const std::uint32_t diff = wl::gray_encode(v) ^ wl::gray_encode(v + 1);
        EXPECT_EQ(__builtin_popcount(diff), 1);
    }
}

TEST(Channel, RandomPhaseEntriesHaveUnitModulus) {
    hcq::util::rng rng(7);
    const auto h = wl::draw_channel(rng, wl::channel_model::unit_gain_random_phase, 6, 4);
    EXPECT_EQ(h.rows(), 6u);
    EXPECT_EQ(h.cols(), 4u);
    for (std::size_t r = 0; r < 6; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_NEAR(std::abs(h(r, c)), 1.0, 1e-12);
        }
    }
}

TEST(Channel, RandomPhaseIsActuallyRandom) {
    hcq::util::rng rng(8);
    const auto h = wl::draw_channel(rng, wl::channel_model::unit_gain_random_phase, 4, 4);
    std::set<double> phases;
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) phases.insert(std::arg(h(r, c)));
    }
    EXPECT_GT(phases.size(), 10u);
}

TEST(Channel, RayleighUnitMeanSquare) {
    hcq::util::rng rng(9);
    double acc = 0.0;
    const int n = 200;
    const auto h = wl::draw_channel(rng, wl::channel_model::rayleigh, n, 10);
    for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r) {
        for (std::size_t c = 0; c < 10; ++c) acc += std::norm(h(r, c));
    }
    EXPECT_NEAR(acc / (n * 10), 1.0, 0.1);
}

TEST(Channel, RayleighEnvelopeDistributionIsRayleigh) {
    // Goodness of fit for the i.i.d. rayleigh draw itself, not just its mean
    // power: |H_ij| ~ Rayleigh with CDF F(r) = 1 - exp(-r^2) (unit mean
    // square).  KS critical value at alpha=0.01 for n=6000 is
    // 1.63/sqrt(6000) ~= 0.021; fixed seed keeps the run deterministic.
    hcq::util::rng rng(20240807);
    const auto h = wl::draw_channel(rng, wl::channel_model::rayleigh, 100, 60);
    std::vector<double> samples;
    samples.reserve(6000);
    for (std::size_t r = 0; r < 100; ++r) {
        for (std::size_t c = 0; c < 60; ++c) samples.push_back(std::abs(h(r, c)));
    }
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    double ks = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double cdf = 1.0 - std::exp(-samples[i] * samples[i]);
        ks = std::max({ks, std::fabs(cdf - static_cast<double>(i) / n),
                       std::fabs(static_cast<double>(i + 1) / n - cdf)});
    }
    EXPECT_LT(ks, 0.025);
}

TEST(Channel, NoiseVarianceForSnrRealisesRequestedSnr) {
    // Round trip: synthesise y = Hx + n with noise_variance_for_snr and
    // check the REALISED per-antenna SNR (signal power / noise power over
    // many uses) lands on the requested value.  E[|row of Hx|^2] =
    // users * E_s through a unit-mean-square channel, so at 10 dB the ratio
    // must come out near 10.
    const double snr_db = 10.0;
    wl::mimo_config config;
    config.mod = modulation::qam16;
    config.num_users = 4;
    config.num_antennas = 4;
    config.channel = wl::channel_model::rayleigh;
    config.noise_variance = wl::noise_variance_for_snr(config.mod, config.num_users, snr_db);
    hcq::util::rng rng(606);
    double signal_power = 0.0;
    double noise_power = 0.0;
    std::size_t count = 0;
    for (int u = 0; u < 800; ++u) {
        const auto inst = wl::synthesize(rng, config);
        const auto clean = inst.h * inst.tx_symbols;
        for (std::size_t a = 0; a < config.num_antennas; ++a) {
            signal_power += std::norm(clean[a]);
            noise_power += std::norm(inst.y[a] - clean[a]);
            ++count;
        }
    }
    const double realised_snr_db =
        10.0 * std::log10(signal_power / noise_power);
    EXPECT_NEAR(realised_snr_db, snr_db, 0.3);
    // And the noise itself realises the configured variance.
    EXPECT_NEAR(noise_power / static_cast<double>(count), config.noise_variance,
                0.05 * config.noise_variance);
}

TEST(Channel, DrawRejectsEmpty) {
    hcq::util::rng rng(1);
    EXPECT_THROW((void)wl::draw_channel(rng, wl::channel_model::rayleigh, 0, 3),
                 std::invalid_argument);
}

TEST(Channel, AwgnZeroVarianceIsNoOp) {
    hcq::util::rng rng(10);
    hcq::linalg::cvec y(3);
    y[0] = {1.0, 2.0};
    wl::add_awgn(rng, y, 0.0);
    EXPECT_EQ(y[0], hcq::linalg::cxd(1.0, 2.0));
    EXPECT_THROW(wl::add_awgn(rng, y, -1.0), std::invalid_argument);
}

TEST(Channel, AwgnVarianceMatches) {
    hcq::util::rng rng(11);
    const std::size_t n = 20000;
    hcq::linalg::cvec y(n);
    wl::add_awgn(rng, y, 4.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += std::norm(y[i]);
    EXPECT_NEAR(acc / static_cast<double>(n), 4.0, 0.15);
}

TEST(Channel, NoiseVarianceForSnr) {
    // 0 dB: noise power == signal power == users * E_s.
    EXPECT_NEAR(wl::noise_variance_for_snr(modulation::qpsk, 4, 0.0), 8.0, 1e-12);
    // +10 dB: one tenth.
    EXPECT_NEAR(wl::noise_variance_for_snr(modulation::qpsk, 4, 10.0), 0.8, 1e-12);
    EXPECT_THROW((void)wl::noise_variance_for_snr(modulation::qpsk, 0, 0.0),
                 std::invalid_argument);
}

TEST(Mimo, NoiselessInstanceSatisfiesModel) {
    hcq::util::rng rng(12);
    const auto inst = wl::noiseless_paper_instance(rng, 6, modulation::qam16);
    EXPECT_EQ(inst.num_users, 6u);
    EXPECT_EQ(inst.num_antennas, 6u);
    EXPECT_EQ(inst.num_bits(), 24u);
    EXPECT_EQ(inst.tx_bits.size(), 24u);
    // y == H x exactly, so the ML cost of the truth is 0.
    EXPECT_NEAR(inst.ml_cost(inst.tx_symbols), 0.0, 1e-18);
    EXPECT_NEAR(inst.ml_cost_bits(inst.tx_bits), 0.0, 1e-18);
}

TEST(Mimo, MlCostPositiveForWrongCandidate) {
    hcq::util::rng rng(13);
    const auto inst = wl::noiseless_paper_instance(rng, 4, modulation::qpsk);
    auto bits = inst.tx_bits;
    bits[0] ^= 1U;
    EXPECT_GT(inst.ml_cost_bits(bits), 1e-6);
}

TEST(Mimo, SynthesizeValidation) {
    hcq::util::rng rng(14);
    wl::mimo_config config;
    config.num_users = 4;
    config.num_antennas = 2;  // fewer antennas than users
    EXPECT_THROW((void)wl::synthesize(rng, config), std::invalid_argument);
    config.num_users = 0;
    EXPECT_THROW((void)wl::synthesize(rng, config), std::invalid_argument);
}

TEST(Mimo, NoisyInstanceHasNonzeroResidual) {
    hcq::util::rng rng(15);
    wl::mimo_config config;
    config.mod = modulation::qpsk;
    config.num_users = 4;
    config.num_antennas = 6;
    config.channel = wl::channel_model::rayleigh;
    config.noise_variance = 1.0;
    const auto inst = wl::synthesize(rng, config);
    EXPECT_GT(inst.ml_cost(inst.tx_symbols), 0.0);
    EXPECT_EQ(inst.num_antennas, 6u);
}

TEST(Mimo, UsersForVariables) {
    EXPECT_EQ(wl::users_for_variables(modulation::bpsk, 36), 36u);
    EXPECT_EQ(wl::users_for_variables(modulation::qpsk, 36), 18u);
    EXPECT_EQ(wl::users_for_variables(modulation::qam16, 36), 9u);
    EXPECT_EQ(wl::users_for_variables(modulation::qam64, 36), 6u);
    EXPECT_THROW((void)wl::users_for_variables(modulation::qam16, 34), std::invalid_argument);
    EXPECT_THROW((void)wl::users_for_variables(modulation::qam16, 0), std::invalid_argument);
}

TEST(Mimo, DeterministicGivenSeed) {
    hcq::util::rng a(99);
    hcq::util::rng b(99);
    const auto i1 = wl::noiseless_paper_instance(a, 3, modulation::qpsk);
    const auto i2 = wl::noiseless_paper_instance(b, 3, modulation::qpsk);
    EXPECT_EQ(i1.tx_bits, i2.tx_bits);
    EXPECT_NEAR((i1.h - i2.h).norm_fro(), 0.0, 0.0);
}

}  // namespace
