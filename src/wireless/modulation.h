// Modulation schemes used by the paper (BPSK, QPSK, 16-QAM, 64-QAM) with the
// bit <-> amplitude maps required by the QuAMax ML-to-QUBO transform [29].
//
// Each complex symbol carries `bits_per_symbol` bits, split evenly across the
// I and Q dimensions (BPSK is real-only).  Within one dimension carrying k
// bits, the *natural linear* map
//     amplitude(b_1..b_k) = sum_j 2^{k-j} * (2 b_j - 1)
// produces the odd PAM lattice {-(2^k - 1), ..., -1, +1, ..., +(2^k - 1)}.
// This map is linear in the bits, which is exactly what keeps the maximum-
// likelihood objective quadratic (a QUBO) after expansion; a Gray map, while
// standard for BER, is non-linear in the bits, so the transform layer uses
// the natural map and Gray utilities are provided separately for BER work.
#ifndef HCQ_WIRELESS_MODULATION_H
#define HCQ_WIRELESS_MODULATION_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace hcq::wireless {

using linalg::cxd;

/// Modulations evaluated in the paper (Section 4.2).
enum class modulation { bpsk, qpsk, qam16, qam64 };

/// All supported modulations, in paper order.
[[nodiscard]] const std::vector<modulation>& all_modulations();

/// "BPSK", "QPSK", "16-QAM", "64-QAM".
[[nodiscard]] std::string to_string(modulation mod);

/// Parses the names above plus the CLI-friendly aliases "bpsk", "qpsk",
/// "qam16"/"16qam", "qam64"/"64qam"; throws std::invalid_argument otherwise.
[[nodiscard]] modulation parse_modulation(const std::string& name);

/// Bits carried per complex symbol: 1, 2, 4, 6.
[[nodiscard]] std::size_t bits_per_symbol(modulation mod) noexcept;

/// Bits per I (or Q) dimension: 1, 1, 2, 3.  BPSK uses only the I dimension.
[[nodiscard]] std::size_t bits_per_dimension(modulation mod) noexcept;

/// True when the modulation uses the Q dimension (everything except BPSK).
[[nodiscard]] bool uses_quadrature(modulation mod) noexcept;

/// Mean symbol energy of the unnormalised lattice (e.g. 16-QAM: 10).
[[nodiscard]] double mean_symbol_energy(modulation mod) noexcept;

/// Natural-map PAM amplitude for one dimension; bits.size() == k.
[[nodiscard]] double pam_amplitude(std::span<const std::uint8_t> bits);

/// Inverse of pam_amplitude after slicing `value` to the nearest odd lattice
/// point in {-(2^k-1), ..., (2^k-1)}.
[[nodiscard]] std::vector<std::uint8_t> pam_bits(double value, std::size_t k);

/// Maps bits_per_symbol(mod) bits to one complex symbol (natural map,
/// I bits first, then Q bits).
[[nodiscard]] cxd modulate_symbol(modulation mod, std::span<const std::uint8_t> bits);

/// Hard nearest-lattice demap of one complex symbol back to bits.
[[nodiscard]] std::vector<std::uint8_t> demodulate_symbol(modulation mod, cxd symbol);

/// Full constellation (size 2^bits_per_symbol), indexed by the natural-map
/// bit pattern read MSB-first.
[[nodiscard]] std::vector<cxd> constellation(modulation mod);

/// Maps a bit vector (num_symbols * bits_per_symbol entries) to symbols.
[[nodiscard]] linalg::cvec modulate(modulation mod, std::span<const std::uint8_t> bits);

/// Hard-demaps a symbol vector to bits.
[[nodiscard]] std::vector<std::uint8_t> demodulate(modulation mod, const linalg::cvec& symbols);

// Write-into variants for the detection hot path: identical slicing and bit
// maps, but bits land in caller-owned storage so repeated calls allocate
// nothing after warm-up.

/// pam_bits written to out[0..k): same slicing, no vector.
void pam_bits_into(double value, std::size_t k, std::uint8_t* out);

/// demodulate_symbol written to out[0..bits_per_symbol(mod)).
void demodulate_symbol_into(modulation mod, cxd symbol, std::uint8_t* out);

/// modulate into a reused symbol vector.
void modulate_into(modulation mod, std::span<const std::uint8_t> bits, linalg::cvec& out);

/// demodulate into a reused bit vector.
void demodulate_into(modulation mod, const linalg::cvec& symbols, std::vector<std::uint8_t>& out);

/// Gray code utilities (for BER-oriented labelling experiments; the QUBO
/// transform itself uses the natural map above).
[[nodiscard]] std::uint32_t gray_encode(std::uint32_t value) noexcept;
[[nodiscard]] std::uint32_t gray_decode(std::uint32_t value) noexcept;

}  // namespace hcq::wireless

#endif  // HCQ_WIRELESS_MODULATION_H
