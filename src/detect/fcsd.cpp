#include "detect/fcsd.h"

#include <cmath>
#include <limits>

#include "detect/real_model.h"
#include "detect/scratch.h"
#include "util/timer.h"

namespace hcq::detect {

namespace {

/// Completes a branch below `level` by greedy slicing; returns total cost.
double babai_complete(const real_model& model, std::vector<double>& amplitudes,
                      std::size_t level, double partial_cost, std::size_t& nodes) {
    double cost = partial_cost;
    for (std::size_t step = level + 1; step-- > 0;) {
        double acc = model.y_eff[step];
        for (std::size_t j = step + 1; j < model.dims; ++j) {
            acc -= model.r(step, j) * amplitudes[j];
        }
        const double center = acc / model.r(step, step);
        const double amplitude = slice_amplitude(center, model.alphabet);
        amplitudes[step] = amplitude;
        const double residual = acc - model.r(step, step) * amplitude;
        cost += residual * residual;
        ++nodes;
        if (step == 0) break;
    }
    return cost;
}

/// Enumerates the top `remaining` levels exhaustively, Babai below.  The
/// `completed` buffer is reused across leaves (babai_complete never recurses
/// back into enumerate, so one shared buffer suffices).
void enumerate(const real_model& model, std::vector<double>& amplitudes, std::size_t level,
               std::size_t remaining, double partial_cost, std::vector<double>& best,
               double& best_cost, std::size_t& nodes, std::vector<double>& completed) {
    if (remaining == 0 || level + 1 == 0) {
        completed = amplitudes;
        const double cost = babai_complete(model, completed, level, partial_cost, nodes);
        if (cost < best_cost) {
            best_cost = cost;
            best = completed;
        }
        return;
    }
    double acc = model.y_eff[level];
    for (std::size_t j = level + 1; j < model.dims; ++j) {
        acc -= model.r(level, j) * amplitudes[j];
    }
    for (const double amplitude : model.alphabet) {
        const double residual = acc - model.r(level, level) * amplitude;
        amplitudes[level] = amplitude;
        ++nodes;
        const double cost = partial_cost + residual * residual;
        if (level == 0) {
            if (cost < best_cost) {
                best_cost = cost;
                best = amplitudes;
            }
            continue;
        }
        enumerate(model, amplitudes, level - 1, remaining - 1, cost, best, best_cost, nodes,
                  completed);
    }
}

}  // namespace

fcsd_detector::fcsd_detector(std::size_t full_levels) : full_levels_(full_levels) {}

std::string fcsd_detector::name() const { return "FCSD" + std::to_string(full_levels_); }

detection_result fcsd_detector::detect(const wireless::mimo_instance& instance) const {
    detect_scratch scratch;
    detection_result result;
    detect_into(instance, scratch, result);
    return result;
}

void fcsd_detector::detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                                detection_result& out) const {
    const util::timer clock;
    lattice_scratch& lat = scratch.lattice;
    const real_model& model = make_real_model_into(instance, lat);

    lat.chosen.assign(model.dims, 0.0);
    lat.best.assign(model.dims, 0.0);
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t nodes = 0;

    if (full_levels_ == 0) {
        best_cost = babai_complete(model, lat.best, model.dims - 1, 0.0, nodes);
    } else {
        enumerate(model, lat.chosen, model.dims - 1, std::min(full_levels_, model.dims), 0.0,
                  lat.best, best_cost, nodes, lat.completed);
    }

    assemble_result_into(instance, lat.best, nodes, scratch.residual, out);
    out.elapsed_us = clock.elapsed_us();
}

}  // namespace hcq::detect
