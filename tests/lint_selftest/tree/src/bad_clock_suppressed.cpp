// Fixture: wall-clock suppression — file-level allow silences everything.
// hcq-lint: allow-file(wall-clock) fixture: exercising the allow-file form
#include <chrono>

double fixture_wall_clock_suppressed() {
    const auto wall = std::chrono::system_clock::now();
    const auto mono = std::chrono::steady_clock::now();
    (void)wall;
    (void)mono;
    return 0.0;
}
