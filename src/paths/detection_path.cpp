#include "paths/detection_path.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace hcq::paths {
namespace {

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
    throw std::invalid_argument("paths: bad spec '" + text + "': " + why);
}

}  // namespace

path_spec path_spec::parse(const std::string& text) {
    path_spec spec;
    const std::size_t colon = text.find(':');
    spec.kind = text.substr(0, colon);
    if (spec.kind.empty()) bad_spec(text, "empty path kind");
    if (spec.kind.find('=') != std::string::npos) {
        bad_spec(text, "path kind '" + spec.kind + "' contains '='");
    }
    if (colon == std::string::npos) return spec;

    std::istringstream rest(text.substr(colon + 1));
    std::string item;
    while (std::getline(rest, item, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) bad_spec(text, "argument '" + item + "' is not key=value");
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        if (key.empty()) bad_spec(text, "empty key in '" + item + "'");
        if (value.empty()) bad_spec(text, "empty value for key '" + key + "'");
        if (spec.find(key) != nullptr) bad_spec(text, "duplicate key '" + key + "'");
        spec.args.emplace_back(std::move(key), std::move(value));
    }
    if (spec.args.empty()) bad_spec(text, "trailing ':' without arguments");
    return spec;
}

std::string path_spec::to_string() const {
    std::string out = kind;
    for (std::size_t i = 0; i < args.size(); ++i) {
        out += (i == 0 ? ':' : ',');
        out += args[i].first;
        out += '=';
        out += args[i].second;
    }
    return out;
}

const std::string* path_spec::find(const std::string& key) const {
    for (const auto& [k, v] : args) {
        if (k == key) return &v;
    }
    return nullptr;
}

std::vector<path_spec> parse_spec_list(const std::string& text) {
    // Split on commas, re-attaching key=value segments to the spec that
    // precedes them (see the grammar note in the header).
    std::vector<std::string> spec_texts;
    std::istringstream is(text);
    std::string segment;
    while (std::getline(is, segment, ',')) {
        if (segment.empty()) continue;
        const std::size_t eq = segment.find('=');
        const std::size_t colon = segment.find(':');
        const bool continues_previous =
            eq != std::string::npos && (colon == std::string::npos || colon > eq) &&
            !spec_texts.empty();
        if (continues_previous) {
            // First argument of a bare kind opens its ':' form; later ones
            // join with ','.
            std::string& base = spec_texts.back();
            base += (base.find(':') == std::string::npos ? ':' : ',');
            base += segment;
        } else {
            spec_texts.push_back(segment);
        }
    }
    std::vector<path_spec> specs;
    specs.reserve(spec_texts.size());
    for (const auto& t : spec_texts) specs.push_back(path_spec::parse(t));
    return specs;
}

std::size_t spec_positive_size(const path_spec& spec, const std::string& key,
                               std::size_t fallback) {
    const std::string* raw = spec.find(key);
    if (raw == nullptr) return fallback;
    std::size_t value = 0;
    const char* end = raw->data() + raw->size();
    const auto [ptr, ec] = std::from_chars(raw->data(), end, value);
    if (ec != std::errc{} || ptr != end || value == 0) {
        throw std::invalid_argument("paths: " + spec.kind + ": bad value '" + *raw +
                                    "' for key '" + key + "' (expected a positive integer)");
    }
    return value;
}

double spec_double(const path_spec& spec, const std::string& key, double fallback) {
    const std::string* raw = spec.find(key);
    if (raw == nullptr) return fallback;
    try {
        std::size_t consumed = 0;
        const double value = std::stod(*raw, &consumed);
        if (consumed == raw->size()) return value;
    } catch (const std::exception&) {
        // fall through to the uniform error below
    }
    throw std::invalid_argument("paths: " + spec.kind + ": bad value '" + *raw + "' for key '" +
                                key + "' (expected a number)");
}

std::string format_spec_value(double value) {
    std::ostringstream os;
    os.precision(15);
    os << value;
    return os.str();
}

}  // namespace hcq::paths
