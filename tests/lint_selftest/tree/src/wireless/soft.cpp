// Fixture: the allowlisted soft-information module — it OWNS the sign
// convention, so the same idioms that fire elsewhere must stay clean here.
double fixture_signed_llr(int bit, double llr_mag) {
    return bit ? -llr_mag : llr_mag;
}
