// Tests for anneal schedules — the paper's waypoint algebra (Section 4.1)
// must be reproduced exactly, including the total-duration formulas that
// enter TTS.
#include <gtest/gtest.h>

#include "core/schedule.h"

namespace {

using hcq::anneal::anneal_schedule;
using hcq::anneal::protocol;
using hcq::anneal::schedule_point;

TEST(Schedule, ForwardPlainEndpoints) {
    const auto s = anneal_schedule::forward_plain(2.0);
    EXPECT_DOUBLE_EQ(s.duration_us(), 2.0);
    EXPECT_DOUBLE_EQ(s.s_at(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.s_at(1.0), 0.5);
    EXPECT_DOUBLE_EQ(s.s_at(2.0), 1.0);
    EXPECT_FALSE(s.starts_classical());
    EXPECT_THROW((void)anneal_schedule::forward_plain(0.0), std::invalid_argument);
}

TEST(Schedule, PaperForwardWaypoints) {
    // FA: [0,0] -> [sp,sp] -> [sp+tp,sp] -> [ta+tp,1]; ta=1, sp=0.41, tp=1.
    const auto s = anneal_schedule::forward(1.0, 0.41, 1.0);
    ASSERT_EQ(s.points().size(), 4u);
    EXPECT_DOUBLE_EQ(s.points()[1].time_us, 0.41);
    EXPECT_DOUBLE_EQ(s.points()[1].s, 0.41);
    EXPECT_DOUBLE_EQ(s.points()[2].time_us, 1.41);
    EXPECT_DOUBLE_EQ(s.points()[2].s, 0.41);
    EXPECT_DOUBLE_EQ(s.duration_us(), 2.0);  // t_a + t_p
    EXPECT_FALSE(s.starts_classical());
}

TEST(Schedule, PaperReverseWaypointsAndDuration) {
    // RA: [0,1] -> [1-sp,sp] -> [1-sp+tp,sp] -> [2(1-sp)+tp,1]; sp=0.41, tp=1.
    const auto s = anneal_schedule::reverse(0.41, 1.0);
    ASSERT_EQ(s.points().size(), 4u);
    EXPECT_DOUBLE_EQ(s.points()[0].s, 1.0);
    EXPECT_DOUBLE_EQ(s.points()[1].time_us, 0.59);
    EXPECT_DOUBLE_EQ(s.points()[1].s, 0.41);
    EXPECT_DOUBLE_EQ(s.points()[3].time_us, 2.0 * 0.59 + 1.0);
    EXPECT_DOUBLE_EQ(s.duration_us(), 2.0 * (1.0 - 0.41) + 1.0);
    EXPECT_TRUE(s.starts_classical());
}

TEST(Schedule, PaperForwardReverseWaypointsAndDuration) {
    // FR: [0,0] -> [cp,cp] -> [2cp-sp,sp] -> [2cp-sp+tp,sp] ->
    //     [2cp-2sp+tp+ta,1]; cp=0.7, sp=0.4, tp=1, ta=1.
    const auto s = anneal_schedule::forward_reverse(0.7, 0.4, 1.0, 1.0);
    ASSERT_EQ(s.points().size(), 5u);
    EXPECT_DOUBLE_EQ(s.points()[1].time_us, 0.7);
    EXPECT_DOUBLE_EQ(s.points()[1].s, 0.7);
    EXPECT_DOUBLE_EQ(s.points()[2].time_us, 2 * 0.7 - 0.4);
    EXPECT_DOUBLE_EQ(s.points()[2].s, 0.4);
    EXPECT_NEAR(s.duration_us(), 2 * 0.7 - 2 * 0.4 + 1.0 + 1.0, 1e-12);
    EXPECT_FALSE(s.starts_classical());
}

TEST(Schedule, DurationFormulasAcrossGrid) {
    for (double sp = 0.25; sp <= 0.97; sp += 0.04) {
        EXPECT_NEAR(anneal_schedule::reverse(sp, 1.0).duration_us(), 2.0 * (1.0 - sp) + 1.0,
                    1e-12);
        if (sp < 1.0) {
            EXPECT_NEAR(anneal_schedule::forward(1.0, sp, 1.0).duration_us(), 2.0, 1e-12);
        }
    }
}

TEST(Schedule, ReverseIsVShaped) {
    const auto s = anneal_schedule::reverse(0.4, 0.5);
    EXPECT_DOUBLE_EQ(s.s_at(0.0), 1.0);
    EXPECT_NEAR(s.s_at(0.3), 0.7, 1e-12);       // descending
    EXPECT_NEAR(s.s_at(0.6), 0.4, 1e-12);       // at the bottom
    EXPECT_NEAR(s.s_at(0.9), 0.4, 1e-12);       // pausing
    EXPECT_NEAR(s.s_at(1.4), 0.7, 1e-12);       // ascending
    EXPECT_DOUBLE_EQ(s.s_at(s.duration_us()), 1.0);
}

TEST(Schedule, SAtClampsOutsideDomain) {
    const auto s = anneal_schedule::reverse(0.5, 1.0);
    EXPECT_DOUBLE_EQ(s.s_at(-5.0), 1.0);
    EXPECT_DOUBLE_EQ(s.s_at(1e9), 1.0);
}

TEST(Schedule, ZeroPauseCollapsesDuplicatePoints) {
    const auto s = anneal_schedule::forward(1.0, 0.5, 0.0);
    EXPECT_EQ(s.points().size(), 3u);
    EXPECT_DOUBLE_EQ(s.duration_us(), 1.0);
}

TEST(Schedule, BuilderValidation) {
    EXPECT_THROW((void)anneal_schedule::forward(1.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)anneal_schedule::forward(1.0, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)anneal_schedule::forward(0.3, 0.5, 1.0), std::invalid_argument);
    EXPECT_THROW((void)anneal_schedule::forward(1.0, 0.5, -1.0), std::invalid_argument);
    EXPECT_THROW((void)anneal_schedule::reverse(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)anneal_schedule::reverse(1.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)anneal_schedule::forward_reverse(0.3, 0.5, 1.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)anneal_schedule::forward_reverse(0.5, 0.5, 1.0, 1.0),
                 std::invalid_argument);
}

TEST(Schedule, CustomPointValidation) {
    EXPECT_THROW(anneal_schedule({{0.0, 0.0}}), std::invalid_argument);
    EXPECT_THROW(anneal_schedule({{0.5, 0.0}, {1.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(anneal_schedule({{0.0, 0.0}, {1.0, 1.5}}), std::invalid_argument);
    EXPECT_THROW(anneal_schedule({{0.0, 0.0}, {0.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(anneal_schedule({{0.0, 0.5}, {1.0, 0.6}, {0.5, 1.0}}), std::invalid_argument);
    // A flat hold at s = 1 is a valid (degenerate) schedule.
    const anneal_schedule hold({{0.0, 1.0}, {3.0, 1.0}}, "hold");
    EXPECT_TRUE(hold.starts_classical());
    EXPECT_DOUBLE_EQ(hold.s_at(1.7), 1.0);
    EXPECT_EQ(hold.label(), "hold");
}

TEST(Schedule, ProtocolFactoryAndNames) {
    const auto fa = anneal_schedule::make(protocol::forward, 0.41, 1.0);
    EXPECT_EQ(fa.label(), "FA");
    const auto ra = anneal_schedule::make(protocol::reverse, 0.41, 1.0);
    EXPECT_EQ(ra.label(), "RA");
    const auto fr = anneal_schedule::make(protocol::forward_reverse, 0.41, 1.0, 1.0, 0.73);
    EXPECT_EQ(fr.label(), "FR");
    EXPECT_STREQ(hcq::anneal::to_string(protocol::forward), "FA");
    EXPECT_STREQ(hcq::anneal::to_string(protocol::reverse), "RA");
    EXPECT_STREQ(hcq::anneal::to_string(protocol::forward_reverse), "FR");
}

TEST(Schedule, InterpolationIsPiecewiseLinear) {
    const anneal_schedule s({{0.0, 0.0}, {2.0, 1.0}, {4.0, 0.5}}, "zigzag");
    EXPECT_NEAR(s.s_at(1.0), 0.5, 1e-12);
    EXPECT_NEAR(s.s_at(3.0), 0.75, 1e-12);
    EXPECT_NEAR(s.s_at(4.0), 0.5, 1e-12);
}

}  // namespace
