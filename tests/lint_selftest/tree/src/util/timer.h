// Fixture: the timing module is the wall-clock allowlist — steady_clock and
// <chrono> are legal here and must not fire.
#ifndef FIXTURE_TIMER_H
#define FIXTURE_TIMER_H

#include <chrono>

namespace fixture {
using clock = std::chrono::steady_clock;
}

#endif  // FIXTURE_TIMER_H
