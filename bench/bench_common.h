// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --scale=smoke|quick|full   sample-count preset (default quick; full
//                              approaches the paper's counts)
//   --seed=<n>                 master seed (default 7)
//   --csv                      emit CSV instead of aligned tables
//   --json                     emit a JSON array of row objects (the
//                              BENCH_*.json CI artifact format; takes
//                              precedence over --csv)
// plus bench-specific flags documented in each binary's banner.
#ifndef HCQ_BENCH_BENCH_COMMON_H
#define HCQ_BENCH_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace hcq::bench {

/// Parsed common options.
struct context {
    util::flag_set flags;
    util::bench_scale scale = util::bench_scale::quick;
    std::uint64_t seed = 7;
    bool csv = false;
    bool json = false;

    context(int argc, const char* const argv[]) : flags(argc, argv) {
        scale = util::parse_scale(flags);
        seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
        csv = flags.get_bool("csv", false);
        json = flags.get_bool("json", false);
    }

    /// Scales a base count by the preset factor (>= 1).
    [[nodiscard]] std::size_t scaled(std::size_t base) const {
        const double f = util::scale_factor(scale);
        const double v = std::ceil(static_cast<double>(base) * f);
        return static_cast<std::size_t>(std::max(1.0, v));
    }

    /// Prints the bench banner (suppressed in JSON mode, where stdout must
    /// stay machine-parseable for the CI artifact).
    void banner(const std::string& title, const std::string& paper_ref) const {
        if (json) return;
        std::cout << "== " << title << " ==\n"
                  << "reproduces: " << paper_ref << "\n"
                  << "scale: " << util::to_string(scale) << "  seed: " << seed << "\n\n";
    }

    /// Emits a table in the selected format.
    void emit(const util::table& t) const {
        if (json) {
            t.print_json(std::cout);
            return;
        }
        if (csv) {
            t.print_csv(std::cout);
        } else {
            t.print(std::cout);
        }
        std::cout << "\n";
    }
};

}  // namespace hcq::bench

#endif  // HCQ_BENCH_BENCH_COMMON_H
