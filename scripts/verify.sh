#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest in Debug and Release with
# warnings-as-errors, mirroring .github/workflows/ci.yml.
#
# Usage:  scripts/verify.sh [--tsan] [--asan] [--lint] [--tidy] [--clean]
#                           [--help]
#   --tsan   additionally build the threading-sensitive suites with
#            -fsanitize=thread and run them (proves the parallel runner,
#            thread pool, bounded-buffer pipeline, and link simulator
#            race-free)
#   --asan   additionally build the detection/link/hybrid suites with
#            -fsanitize=address,undefined and run them (mirrors the CI
#            asan job)
#   --lint   additionally run the repo contract linter (scripts/hcq_lint.py)
#            and its selftest over the fixture tree
#   --tidy   additionally run the clang-tidy gate (scripts/run_tidy.sh);
#            requires clang-tidy on PATH or CLANG_TIDY set
#   --clean  remove the build trees first
#   --help   print this help
#
# The gate covers the whole tree, including the end-to-end link simulator
# (src/link, examples/link_sim, bench/bench_link_e2e — the measured-stage-
# latency path; see docs/ARCHITECTURE.md).  CI additionally builds the
# Doxygen docs target (-DHCQ_BUILD_DOCS=ON) and uploads a BENCH_*.json
# artifact from bench_link_e2e (the bench-smoke job), so documentation and
# perf-trajectory breakage surface in review instead of rotting silently.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
    # Prints the header comment block (everything up to the first non-'#'
    # line), so the help text cannot drift out of sync with it.
    sed -n '/^#/!q; 2,$s/^# \{0,1\}//p' "$0"
}

run_tsan=0
run_asan=0
run_lint=0
run_tidy=0
clean=0
for arg in "$@"; do
    case "$arg" in
        --tsan) run_tsan=1 ;;
        --asan) run_asan=1 ;;
        --lint) run_lint=1 ;;
        --tidy) run_tidy=1 ;;
        --clean) clean=1 ;;
        --help|-h) usage; exit 0 ;;
        *) echo "unknown argument: $arg" >&2; usage >&2; exit 2 ;;
    esac
done

# Cheap gates first: a lint finding should surface before a full rebuild.
if [[ $run_lint -eq 1 ]]; then
    echo "== lint: repo contract linter + selftest =="
    python3 scripts/hcq_lint.py
    python3 tests/lint_selftest/selftest.py
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for config in Debug Release; do
    dir="build-verify-$(echo "$config" | tr '[:upper:]' '[:lower:]')"
    [[ $clean -eq 1 ]] && rm -rf "$dir"
    echo "== $config: configure + build + ctest =="
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE="$config" -DHCQ_WARNINGS_AS_ERRORS=ON
    cmake --build "$dir" -j "$jobs"
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
done

if [[ $run_tsan -eq 1 ]]; then
    dir="build-verify-tsan"
    [[ $clean -eq 1 ]] && rm -rf "$dir"
    echo "== TSan: parallel runner + thread pool + link simulator + pipeline + ARQ + serve =="
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHCQ_SANITIZE=thread \
        -DHCQ_BUILD_EXAMPLES=OFF -DHCQ_BUILD_BENCHES=OFF
    cmake --build "$dir" -j "$jobs" --target parallel_runner_test util_test link_test \
        paths_test pipeline_test arq_test serve_test workspace_test
    "$dir/tests/parallel_runner_test"
    "$dir/tests/util_test" --gtest_filter='ThreadPool.*:ParallelFor.*'
    "$dir/tests/link_test"
    "$dir/tests/paths_test"
    "$dir/tests/pipeline_test"
    "$dir/tests/arq_test"
    "$dir/tests/serve_test"
    "$dir/tests/workspace_test"
fi

if [[ $run_asan -eq 1 ]]; then
    dir="build-asan"
    [[ $clean -eq 1 ]] && rm -rf "$dir"
    echo "== ASan+UBSan: detection paths + link simulator + hybrid solver + ARQ + FEC + serve =="
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHCQ_SANITIZE=address \
        -DHCQ_BUILD_EXAMPLES=OFF -DHCQ_BUILD_BENCHES=OFF
    cmake --build "$dir" -j "$jobs" --target paths_test link_test hybrid_test arq_test \
        fec_test serve_test workspace_test
    "$dir/tests/paths_test"
    "$dir/tests/link_test"
    "$dir/tests/hybrid_test"
    "$dir/tests/arq_test"
    "$dir/tests/fec_test"
    "$dir/tests/serve_test"
    "$dir/tests/workspace_test"
fi

if [[ $run_tidy -eq 1 ]]; then
    echo "== clang-tidy: curated check set vs scripts/tidy_baseline.txt =="
    scripts/run_tidy.sh
fi

echo "verify: all gates passed"
