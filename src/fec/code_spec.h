// Forward-error-correction selection by spec string — the coding-side twin
// of wireless::channel_spec and paths::path_spec.
//
// A code_spec names a convolutional-code kind plus its knobs in the shared
// `kind:key=value,...` grammar (util/spec.h):
//
//     "k7"                            NASA-standard K=7 code, rate 1/2,
//                                     16x8 block interleaver (the default)
//     "k7:rate=1/2,interleave=16x8"   same, fully explicit (canonical form)
//     "k5:interleave=8x8"             K=5 code over an 8x8 interleaver
//     "k3:interleave=4x8"             toy K=3 code (fast tests)
//
// The kinds are terminated rate-1/2 convolutional codes named by their
// constraint length K (generator polynomials, octal): k3 = (7, 5),
// k5 = (23, 35), k7 = (133, 171).  `interleave=RxC` sets the row/column
// block interleaver dimensions; one CODED frame is rows x cols bits, so the
// frame carries rows*cols/2 - (K-1) information bits (the K-1 tail bits
// terminate the trellis).  `rate` currently accepts only "1/2" — the key
// exists so future punctured rates extend the grammar, not the API.
//
// Errors are self-documenting in the registry style: an unknown kind lists
// the valid kinds, an unknown key lists the accepted keys, and an
// out-of-range value names the key, the offending value, and the accepted
// range.
#ifndef HCQ_FEC_CODE_SPEC_H
#define HCQ_FEC_CODE_SPEC_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hcq::fec {

/// A parsed FEC specification.  Defaults are the `k7` defaults.
struct code_spec {
    std::string kind = "k7";  ///< k3 | k5 | k7

    std::size_t rate_num = 1;  ///< code rate numerator (fixed 1 for now)
    std::size_t rate_den = 2;  ///< code rate denominator (fixed 2 for now)
    std::size_t rows = 16;     ///< interleaver rows
    std::size_t cols = 8;      ///< interleaver columns

    /// Parses `kind` or `kind:key=value,...`.  Throws std::invalid_argument
    /// with a self-documenting message on an unknown kind (listing kinds()),
    /// an unknown or duplicate key, a malformed value, an unsupported rate,
    /// or an interleaver too small to carry one information bit.
    [[nodiscard]] static code_spec parse(const std::string& text);

    /// Canonical text form with every accepted key explicit (so "k7" and
    /// "k7:rate=1/2" canonicalise identically): "k7:rate=1/2,interleave=16x8".
    [[nodiscard]] std::string to_string() const;

    /// Constraint length K of the kind (3, 5, or 7).
    [[nodiscard]] std::size_t constraint_length() const;

    /// Generator polynomials of the kind, octal-literal convention
    /// (LSB = newest input bit), rate_den entries.
    [[nodiscard]] std::vector<std::uint32_t> generators() const;

    /// Coded bits per frame: rows * cols (one full interleaver block).
    [[nodiscard]] std::size_t coded_bits() const noexcept { return rows * cols; }

    /// Information bits per frame: coded_bits/rate_den minus the K-1
    /// termination tail.
    [[nodiscard]] std::size_t info_bits() const {
        return coded_bits() / rate_den - (constraint_length() - 1);
    }

    /// All code kinds, sorted — the error-message and help listing.
    [[nodiscard]] static std::vector<std::string> kinds();

    /// Multi-line human-readable listing of kinds and keys (CLI --help body).
    [[nodiscard]] static std::string help();
};

}  // namespace hcq::fec

#endif  // HCQ_FEC_CODE_SPEC_H
