#include "core/embedding.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hcq::anneal {

embedding clique_embedding(const chimera_graph& graph, std::size_t num_logical) {
    const std::size_t m = graph.grid_size();
    const std::size_t l = graph.shore_size();
    if (num_logical == 0) throw std::invalid_argument("clique_embedding: zero variables");
    if (num_logical > l * m) {
        throw std::invalid_argument("clique_embedding: clique of " +
                                    std::to_string(num_logical) + " exceeds capacity " +
                                    std::to_string(l * m));
    }
    embedding chains(num_logical);
    for (std::size_t i = 0; i < num_logical; ++i) {
        const std::size_t a = i / l;  // block (row & column) index
        const std::size_t b = i % l;  // shore index
        auto& chain = chains[i];
        chain.reserve(2 * m);
        for (std::size_t c = 0; c < m; ++c) chain.push_back(graph.node(a, c, 1, b));
        for (std::size_t r = 0; r < m; ++r) chain.push_back(graph.node(r, a, 0, b));
    }
    return chains;
}

bool embedding_is_valid(const chimera_graph& graph, const embedding& chains) {
    std::set<std::size_t> used;
    for (const auto& chain : chains) {
        if (chain.empty()) return false;
        for (const std::size_t node : chain) {
            if (node >= graph.num_nodes()) return false;
            if (!used.insert(node).second) return false;  // overlap
        }
        // Connectivity by BFS within the chain.
        std::set<std::size_t> in_chain(chain.begin(), chain.end());
        std::vector<std::size_t> frontier{chain.front()};
        std::set<std::size_t> seen{chain.front()};
        while (!frontier.empty()) {
            const std::size_t u = frontier.back();
            frontier.pop_back();
            for (const std::size_t v : graph.neighbors(u)) {
                if (in_chain.count(v) && !seen.count(v)) {
                    seen.insert(v);
                    frontier.push_back(v);
                }
            }
        }
        if (seen.size() != in_chain.size()) return false;
    }
    return true;
}

qubo::bit_vector embedded_problem::unembed(std::span<const std::uint8_t> physical_bits) const {
    if (physical_bits.size() != physical.num_spins()) {
        throw std::invalid_argument("embedded_problem::unembed: size mismatch");
    }
    qubo::bit_vector out(num_logical, 0);
    for (std::size_t i = 0; i < num_logical; ++i) {
        std::size_t ones = 0;
        for (const std::size_t node : chains[i]) ones += physical_bits[node];
        const std::size_t len = chains[i].size();
        if (2 * ones > len) {
            out[i] = 1;
        } else if (2 * ones < len) {
            out[i] = 0;
        } else {
            out[i] = physical_bits[chains[i].front()];  // tie
        }
    }
    return out;
}

double embedded_problem::chain_break_fraction(
    std::span<const std::uint8_t> physical_bits) const {
    if (physical_bits.size() != physical.num_spins()) {
        throw std::invalid_argument("embedded_problem::chain_break_fraction: size mismatch");
    }
    std::size_t broken = 0;
    for (const auto& chain : chains) {
        std::size_t ones = 0;
        for (const std::size_t node : chain) ones += physical_bits[node];
        if (ones != 0 && ones != chain.size()) ++broken;
    }
    return chains.empty() ? 0.0
                          : static_cast<double>(broken) / static_cast<double>(chains.size());
}

qubo::bit_vector embedded_problem::embed_state(
    std::span<const std::uint8_t> logical_bits) const {
    if (logical_bits.size() != num_logical) {
        throw std::invalid_argument("embedded_problem::embed_state: size mismatch");
    }
    qubo::bit_vector out(physical.num_spins(), 0);
    for (std::size_t i = 0; i < num_logical; ++i) {
        for (const std::size_t node : chains[i]) out[node] = logical_bits[i];
    }
    return out;
}

embedded_problem embed_ising(const qubo::ising_model& logical, const chimera_graph& graph,
                             const embedding& chains, double chain_strength) {
    if (chain_strength <= 0.0) throw std::invalid_argument("embed_ising: chain_strength <= 0");
    if (logical.num_spins() > chains.size()) {
        throw std::invalid_argument("embed_ising: embedding too small for the model");
    }
    embedded_problem out;
    out.num_logical = logical.num_spins();
    out.chains = chains;
    out.chains.resize(out.num_logical);
    out.chain_strength = chain_strength;
    out.physical = qubo::ising_model(graph.num_nodes());

    // Fields: spread uniformly along the chain.
    for (std::size_t i = 0; i < out.num_logical; ++i) {
        const auto& chain = out.chains[i];
        if (chain.empty()) throw std::invalid_argument("embed_ising: empty chain");
        const double share = logical.field(i) / static_cast<double>(chain.size());
        for (const std::size_t node : chain) out.physical.set_field(node, share);
    }

    // Logical couplings: first available physical coupler between the chains.
    for (std::size_t i = 0; i < out.num_logical; ++i) {
        for (std::size_t j = i + 1; j < out.num_logical; ++j) {
            const double jij = logical.coupling(i, j);
            if (jij == 0.0) continue;
            bool placed = false;
            for (const std::size_t u : out.chains[i]) {
                for (const std::size_t v : out.chains[j]) {
                    if (graph.adjacent(u, v)) {
                        out.physical.set_coupling(u, v, jij);
                        placed = true;
                        break;
                    }
                }
                if (placed) break;
            }
            if (!placed) {
                throw std::invalid_argument("embed_ising: no coupler between chains " +
                                            std::to_string(i) + " and " + std::to_string(j));
            }
        }
    }

    // Ferromagnetic chains: couple every adjacent pair inside each chain.
    for (const auto& chain : out.chains) {
        for (std::size_t a = 0; a < chain.size(); ++a) {
            for (std::size_t b = a + 1; b < chain.size(); ++b) {
                if (graph.adjacent(chain[a], chain[b])) {
                    out.physical.set_coupling(chain[a], chain[b], -chain_strength);
                }
            }
        }
    }
    out.physical.set_offset(logical.offset());
    return out;
}

embedded_problem embed_qubo(const qubo::qubo_model& logical, const chimera_graph& graph,
                            const embedding& chains, double chain_strength) {
    return embed_ising(qubo::to_ising(logical), graph, chains, chain_strength);
}

}  // namespace hcq::anneal
