#include "qubo/generator.h"

#include <cmath>
#include <stdexcept>

namespace hcq::qubo {

qubo_model random_qubo(util::rng& rng, std::size_t n, double density, double lo, double hi) {
    if (n == 0) throw std::invalid_argument("random_qubo: n == 0");
    if (density < 0.0 || density > 1.0) throw std::invalid_argument("random_qubo: bad density");
    qubo_model q(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            if (rng.uniform() < density) q.set_term(i, j, rng.uniform(lo, hi));
        }
    }
    return q;
}

ising_model sk_spin_glass(util::rng& rng, std::size_t n) {
    if (n < 2) throw std::invalid_argument("sk_spin_glass: need n >= 2");
    ising_model m(n);
    const double scale = 1.0 / std::sqrt(static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            m.set_coupling(i, j, rng.normal() * scale);
        }
    }
    return m;
}

ising_model ferromagnetic_chain(std::size_t n, double coupling, double field) {
    if (n == 0) throw std::invalid_argument("ferromagnetic_chain: n == 0");
    ising_model m(n);
    for (std::size_t i = 0; i < n; ++i) m.set_field(i, field);
    for (std::size_t i = 0; i + 1 < n; ++i) m.set_coupling(i, i + 1, coupling);
    return m;
}

}  // namespace hcq::qubo
