// Client side of the serving front end: a blocking request/response (and
// pipelining-capable) connection, plus the load generator that drives a
// server with open-loop Poisson or closed-loop traffic over real sockets
// and reports goodput, reject rate, and tail latency.
//
// Determinism: the load generator derives every stochastic choice (Poisson
// inter-arrival gaps) from loadgen_config::seed through util::rng streams,
// and stamps requests with tenant_id = tenant_base + connection index and a
// per-connection request_seq counter — so any served batch can be replayed
// offline through link::run_link_simulation at
// serve::request_seed(tenant_id, request_seq, seed).
#ifndef HCQ_SERVE_CLIENT_H
#define HCQ_SERVE_CLIENT_H

#include <cstdint>
#include <optional>
#include <string>

#include "metrics/digest.h"
#include "serve/protocol.h"
#include "serve/socket.h"

namespace hcq::serve {

/// One blocking loopback connection to a detector-bank server.
class client {
public:
    /// Connects to 127.0.0.1:`port`; throws std::runtime_error on refusal.
    explicit client(std::uint16_t port);

    /// Strict request/response: send one request, block for its response.
    /// Throws on a connection failure or an undecodable response.
    [[nodiscard]] response call(const request& req);

    /// Pipelined send: writes the framed request without waiting.
    // hcq-lint: allow(raw-socket) member function named `send`, not the syscall
    void send(const request& req);

    /// Sends raw pre-framed (or deliberately malformed) bytes — the tests'
    /// hook for probing the server's decode hardening.
    void send_raw(const void* data, std::size_t len);

    /// Blocks for the next response frame; nullopt on a clean server close
    /// between frames.  Throws on an error, a mid-frame close, or an
    /// undecodable payload.
    [[nodiscard]] std::optional<response> receive();

private:
    unique_fd fd_;
};

/// How run_loadgen drives the server.
enum class loadgen_mode {
    closed_loop,  ///< each connection: send, wait, repeat (window of 1)
    open_loop,    ///< Poisson arrivals, pipelined regardless of completions
};

struct loadgen_config {
    std::uint16_t port = 0;
    loadgen_mode mode = loadgen_mode::closed_loop;
    std::size_t num_connections = 4;
    std::size_t total_requests = 64;  ///< closed loop: total across connections
    double offered_rps = 100.0;       ///< open loop: aggregate arrival rate
    double duration_s = 1.0;          ///< open loop: schedule horizon
    std::uint64_t tenant_base = 1;    ///< connection c gets tenant_base + c
    std::uint64_t seed = 1;           ///< arrival-process randomness
    request request_template;         ///< spec/mod/batch settings for every request
};

/// What the run produced.  Counts partition `sent`; latency digests are in
/// microseconds and aggregated across connections via merge().
struct loadgen_report {
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t busy = 0;
    std::uint64_t deadline = 0;
    std::uint64_t bad_request = 0;
    std::uint64_t internal_error = 0;
    std::uint64_t uses_served = 0;  ///< channel uses across ok responses
    double elapsed_s = 0.0;
    metrics::latency_digest latency;     ///< end-to-end per request, us
    metrics::latency_digest queue_wait;  ///< server-reported admission wait, us

    /// ok / sent (0 when nothing was sent).
    [[nodiscard]] double goodput_fraction() const noexcept;
    /// (busy + deadline) / sent — the shed fraction.
    [[nodiscard]] double reject_fraction() const noexcept;
    /// Served channel uses per second of wall clock.
    [[nodiscard]] double goodput_uses_per_s() const noexcept;
};

/// Runs the configured traffic against a live server and blocks until every
/// sent request has been answered.  Throws std::invalid_argument on a
/// nonsensical config (no connections, no work, non-positive rate).
[[nodiscard]] loadgen_report run_loadgen(const loadgen_config& config);

/// One-line human summary ("sent=... ok=... p99=...us ...") for examples.
[[nodiscard]] std::string summarize(const loadgen_report& report);

}  // namespace hcq::serve

#endif  // HCQ_SERVE_CLIENT_H
