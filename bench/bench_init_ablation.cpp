// Section 5 (future work) — "The combination of application-specific
// classical solvers and RA is very likely to improve over the GS
// initialization.  Classical approximate solvers for possible combinations
// with RA include ... linear solvers and tree search-based solvers."
//
// This bench implements that proposed next step: it compares initialisers
// (random, GS in both rank orders, tabu, ZF, MMSE, K-best, FCSD, exact SD)
// on (a) initial-state quality Delta-E_IS%, (b) measured classical time, and
// (c) end-to-end hybrid TTS with the classical time amortised per read.
//
// Note on the noiseless corpus: the paper's experiments exclude AWGN, where
// linear detectors are exact (Delta-E_IS = 0).  To exercise the quality-vs-
// cost tradeoff the paper describes, this bench also runs a noisy variant
// (--snr, default 14 dB) where the ordering GS < linear < tree search
// becomes visible.
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "classical/greedy.h"
#include "classical/tabu.h"
#include "core/device.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/sphere.h"
#include "detect/transform.h"
#include "metrics/delta_e.h"
#include "metrics/stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace wl = hcq::wireless;
namespace dt = hcq::detect;

struct initializer_entry {
    std::string name;
    std::function<hcq::solvers::initial_state(const hy::experiment_instance&, hcq::util::rng&)>
        run;
};

hcq::solvers::initial_state from_detector(const dt::detector& det,
                                          const hy::experiment_instance& e) {
    const auto result = det.detect(e.instance);
    hcq::solvers::initial_state out;
    out.bits = result.bits;
    out.energy = e.reduced.model.energy(out.bits);
    out.elapsed_us = result.elapsed_us;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Initialiser ablation: who should seed reverse annealing?",
               "Kim et al., HotNets'20, Section 5 (proposed hybrid designs)");

    const std::size_t instances = ctx.scaled(4);
    const std::size_t reads = ctx.scaled(250);
    const double snr_db = ctx.flags.get_double("snr", 14.0);
    const an::annealer_emulator device;

    const std::vector<initializer_entry> inits{
        {"random",
         [](const hy::experiment_instance& e, hcq::util::rng& rng) {
             return hcq::solvers::random_initializer().initialize(e.reduced.model, rng);
         }},
        {"GS(asc)",
         [](const hy::experiment_instance& e, hcq::util::rng& rng) {
             return hcq::solvers::greedy_search(hcq::solvers::rank_order::least_decided_first)
                 .initialize(e.reduced.model, rng);
         }},
        {"GS(desc)",
         [](const hy::experiment_instance& e, hcq::util::rng& rng) {
             return hcq::solvers::greedy_search(hcq::solvers::rank_order::most_decided_first)
                 .initialize(e.reduced.model, rng);
         }},
        {"Tabu",
         [](const hy::experiment_instance& e, hcq::util::rng& rng) {
             return hcq::solvers::tabu_search().initialize(e.reduced.model, rng);
         }},
        {"ZF",
         [](const hy::experiment_instance& e, hcq::util::rng&) {
             return from_detector(dt::zf_detector(), e);
         }},
        {"MMSE",
         [](const hy::experiment_instance& e, hcq::util::rng&) {
             return from_detector(dt::mmse_detector(), e);
         }},
        {"KB4",
         [](const hy::experiment_instance& e, hcq::util::rng&) {
             return from_detector(dt::kbest_detector(4), e);
         }},
        {"KB16",
         [](const hy::experiment_instance& e, hcq::util::rng&) {
             return from_detector(dt::kbest_detector(16), e);
         }},
        {"FCSD1",
         [](const hy::experiment_instance& e, hcq::util::rng&) {
             return from_detector(dt::fcsd_detector(1), e);
         }},
        {"SD(oracle)",
         [](const hy::experiment_instance& e, hcq::util::rng&) {
             return from_detector(dt::sphere_detector(), e);
         }},
    };

    const auto run_variant = [&](const char* title, bool noisy) {
        std::cout << title << "\n";
        // Build the corpus: 8-user 16-QAM as in Figures 7/8.
        std::vector<hy::experiment_instance> corpus;
        for (std::size_t i = 0; i < instances; ++i) {
            hcq::util::rng rng(hcq::util::rng(ctx.seed + (noisy ? 5000 : 0)).derive(i)());
            if (!noisy) {
                corpus.push_back(hy::make_paper_instance(rng, 8, wl::modulation::qam16));
            } else {
                wl::mimo_config config;
                config.mod = wl::modulation::qam16;
                config.num_users = 8;
                config.num_antennas = 8;
                config.channel = wl::channel_model::unit_gain_random_phase;
                config.noise_variance = wl::noise_variance_for_snr(config.mod, 8, snr_db);
                hy::experiment_instance e;
                e.instance = wl::synthesize(rng, config);
                e.reduced = dt::ml_to_qubo(e.instance);
                // Ground truth by exact sphere decoding (noise may move the
                // ML optimum away from the transmitted bits).
                const auto sd = dt::sphere_detector().detect(e.instance);
                e.optimal_bits = sd.bits;
                e.optimal_energy = e.reduced.model.energy(sd.bits);
                corpus.push_back(std::move(e));
            }
        }

        hcq::util::table t({"initialiser", "mean dE_IS%", "mean classical us",
                            "mean best-RA p*", "mean hybrid TTS us", "TTS vs GS(asc)"});
        std::vector<double> mean_tts(inits.size(), 0.0);
        std::vector<std::string> rows_cache;

        struct agg {
            hcq::metrics::running_stats gap, classical_us, p_star, tts;
        };
        std::vector<agg> aggs(inits.size());

        hcq::util::parallel_for(inits.size(), [&](std::size_t k) {
            for (std::size_t i = 0; i < corpus.size(); ++i) {
                const auto& e = corpus[i];
                hcq::util::rng rng(hcq::util::rng(ctx.seed + 91 * k).derive(i)());
                const auto init = inits[k].run(e, rng);
                aggs[k].gap.add(
                    hcq::metrics::delta_e_percent(init.energy, e.optimal_energy));
                aggs[k].classical_us.add(init.elapsed_us);
                const double cl_per_read =
                    init.elapsed_us / static_cast<double>(std::max<std::size_t>(1, reads));
                double best_tts = std::numeric_limits<double>::infinity();
                double best_p = 0.0;
                for (const double sp : {0.29, 0.37, 0.45, 0.53}) {
                    const auto schedule = an::anneal_schedule::reverse(sp, 1.0);
                    const auto eval = hy::evaluate_schedule(device, e.reduced.model, schedule,
                                                            reads, e.optimal_energy, rng,
                                                            init.bits);
                    const double tts =
                        eval.p_star > 0.0
                            ? hy::time_to_solution_us(schedule.duration_us() + cl_per_read,
                                                      eval.p_star)
                            : std::numeric_limits<double>::infinity();
                    if (tts < best_tts) {
                        best_tts = tts;
                        best_p = eval.p_star;
                    }
                }
                aggs[k].p_star.add(best_p);
                if (!std::isinf(best_tts)) aggs[k].tts.add(best_tts);
            }
        });

        const double gs_ref = aggs[1].tts.count() > 0 ? aggs[1].tts.mean() : 0.0;
        for (std::size_t k = 0; k < inits.size(); ++k) {
            const bool has_tts = aggs[k].tts.count() > 0;
            t.add(inits[k].name, aggs[k].gap.mean(), aggs[k].classical_us.mean(),
                  aggs[k].p_star.mean(),
                  has_tts ? hcq::util::format_double(aggs[k].tts.mean(), 1) : "inf",
                  has_tts && gs_ref > 0.0
                      ? hcq::util::format_double(gs_ref / aggs[k].tts.mean(), 2) + "x"
                      : "-");
        }
        ctx.emit(t);
        (void)mean_tts;
        (void)rows_cache;
    };

    run_variant("[A] Paper corpus (noiseless): linear/tree detectors are exact here", false);
    char title[128];
    std::snprintf(title, sizeof title,
                  "[B] Noisy variant (SNR = %.1f dB): the quality/cost tradeoff of Section 5",
                  snr_db);
    run_variant(title, true);

    std::cout << "Paper shape check ([B]): ZF/K-best/FCSD initialisers reach lower Delta-E_IS%\n"
                 "than GS at higher classical cost, improving end-to-end hybrid TTS — the\n"
                 "tradeoff Section 5 predicts for application-specific initialisers.\n";
    return 0;
}
