#include "classical/metropolis.h"

#include <cmath>
#include <stdexcept>

namespace hcq::solvers {

metropolis_engine::metropolis_engine(const qubo::qubo_model& q, qubo::bit_vector initial)
    : model_(&q), bits_(std::move(initial)) {
    if (bits_.size() != q.num_variables()) {
        throw std::invalid_argument("metropolis_engine: bit count mismatch");
    }
    rebuild();
}

void metropolis_engine::set_state(qubo::bit_vector bits) {
    if (bits.size() != model_->num_variables()) {
        throw std::invalid_argument("metropolis_engine::set_state: bit count mismatch");
    }
    bits_ = std::move(bits);
    rebuild();
}

void metropolis_engine::rebuild() {
    energy_ = model_->energy(bits_);
    fields_ = model_->local_fields(bits_);
}

bool metropolis_engine::try_flip(std::size_t i, double temperature, util::rng& rng) {
    if (temperature < 0.0) throw std::invalid_argument("metropolis: negative temperature");
    const double delta = bits_[i] ? -fields_[i] : fields_[i];
    bool accept = delta <= 0.0;
    if (!accept && temperature > 0.0) {
        accept = rng.uniform() < std::exp(-delta / temperature);
    }
    if (!accept) return false;
    force_flip(i);
    return true;
}

void metropolis_engine::force_flip(std::size_t i) {
    const double delta = bits_[i] ? -fields_[i] : fields_[i];
    const double step = bits_[i] ? -1.0 : 1.0;  // q_i change
    bits_[i] ^= 1U;
    energy_ += delta;
    const auto row = model_->row(i);
    const std::size_t n = bits_.size();
    for (std::size_t j = 0; j < n; ++j) {
        if (j != i) fields_[j] += row[j] * step;
    }
}

std::size_t metropolis_engine::sweep(double temperature, util::rng& rng) {
    std::size_t accepted = 0;
    const std::size_t n = bits_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (try_flip(i, temperature, rng)) ++accepted;
    }
    return accepted;
}

}  // namespace hcq::solvers
