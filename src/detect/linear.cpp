// hcq-hot-path: steady-state code in this file must not allocate — reuse
// workspace scratch (enforced by the hot-path-alloc lint rule).
#include "detect/linear.h"

#include <span>

#include "detect/scratch.h"
#include "linalg/decompose.h"
#include "util/timer.h"

namespace hcq::detect {

namespace {

// Slices each equalised estimate to the nearest constellation point and
// assembles the detection_result: symbols, bits, and the ML cost of the
// sliced word.  The per-call temporaries of the historical slice_to_result
// (fresh symbol vector, per-symbol heap bit vectors, demodulated bit vector,
// ml_cost residual) now live in `scratch` / `out` — the arithmetic and hence
// the outputs are unchanged.
void slice_to_result_into(const wireless::mimo_instance& instance, const linalg::cvec& soft,
                          detect_scratch& scratch, detection_result& out) {
    out.symbols.resize(soft.size());
    std::uint8_t bits[8];  // bits_per_symbol is at most 6
    const std::size_t bps = wireless::bits_per_symbol(instance.mod);
    for (std::size_t u = 0; u < soft.size(); ++u) {
        wireless::demodulate_symbol_into(instance.mod, soft[u], bits);
        out.symbols[u] =
            wireless::modulate_symbol(instance.mod, std::span<const std::uint8_t>(bits, bps));
    }
    wireless::demodulate_into(instance.mod, out.symbols, out.bits);
    out.ml_cost = instance.ml_cost(out.symbols, scratch.residual);
    out.nodes_visited = 0;
}

}  // namespace

detection_result zf_detector::detect(const wireless::mimo_instance& instance) const {
    detect_scratch scratch;
    detection_result result;
    detect_into(instance, scratch, result);
    return result;
}

void zf_detector::detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                              detection_result& out) const {
    const util::timer clock;
    linear_scratch& s = scratch.linear;
    // Coherence cache: an EXACTLY repeated channel (another attempt on the
    // same use, or a static channel) reuses the QR factors; the
    // factorisation is a pure function of H, so hits are output-invariant.
    if (!s.zf_valid || !linalg::exactly_equal(instance.h, s.zf_key)) {
        linalg::householder_qr_into(instance.h, s.ls.qr, s.ls.factors);
        s.zf_key = instance.h;
        s.zf_valid = true;
    }
    linalg::herm_matvec_into(s.ls.factors.q, instance.y, s.ls.qhy);
    linalg::solve_upper_into(s.ls.factors.r, s.ls.qhy, s.soft);
    slice_to_result_into(instance, s.soft, scratch, out);
    out.elapsed_us = clock.elapsed_us();
}

detection_result mmse_detector::detect(const wireless::mimo_instance& instance) const {
    detect_scratch scratch;
    detection_result result;
    detect_into(instance, scratch, result);
    return result;
}

void mmse_detector::detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                                detection_result& out) const {
    const util::timer clock;
    linear_scratch& s = scratch.linear;
    const double load = instance.noise_variance / wireless::mean_symbol_energy(instance.mod);
    if (!s.mmse_valid || s.mmse_load != load || !linalg::exactly_equal(instance.h, s.mmse_key)) {
        linalg::gram_into(instance.h, s.gram);
        for (std::size_t i = 0; i < s.gram.rows(); ++i) s.gram(i, i) += load;
        linalg::cholesky_into(s.gram, s.lfac);
        linalg::hermitian_into(s.lfac, s.lh);
        s.mmse_key = instance.h;
        s.mmse_load = load;
        s.mmse_valid = true;
    }
    linalg::herm_matvec_into(instance.h, instance.y, s.rhs);
    linalg::solve_lower_into(s.lfac, s.rhs, s.z);
    linalg::solve_upper_into(s.lh, s.z, s.soft);
    slice_to_result_into(instance, s.soft, scratch, out);
    out.elapsed_us = clock.elapsed_us();
}

}  // namespace hcq::detect
