#include "qubo/ising.h"

#include <stdexcept>

namespace hcq::qubo {

ising_model::ising_model(std::size_t n) : n_(n), h_(n, 0.0), j_(n * n, 0.0) {}

void ising_model::reset(std::size_t n) {
    n_ = n;
    offset_ = 0.0;
    h_.assign(n, 0.0);
    j_.assign(n * n, 0.0);
}

void ising_model::check(std::size_t i) const {
    if (i >= n_) throw std::out_of_range("ising_model: spin index out of range");
}

double ising_model::field(std::size_t i) const {
    check(i);
    return h_[i];
}

void ising_model::set_field(std::size_t i, double h) {
    check(i);
    h_[i] = h;
}

double ising_model::coupling(std::size_t i, std::size_t j) const {
    check(i);
    check(j);
    if (i == j) throw std::invalid_argument("ising_model::coupling: i == j");
    return j_[i * n_ + j];
}

void ising_model::set_coupling(std::size_t i, std::size_t j, double jij) {
    check(i);
    check(j);
    if (i == j) throw std::invalid_argument("ising_model::set_coupling: i == j");
    j_[i * n_ + j] = jij;
    j_[j * n_ + i] = jij;
}

double ising_model::energy(std::span<const std::int8_t> spins) const {
    if (spins.size() != n_) throw std::invalid_argument("ising_model::energy: wrong spin count");
    double e = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
        if (spins[i] != 1 && spins[i] != -1) {
            throw std::invalid_argument("ising_model::energy: spin not +/-1");
        }
        e += h_[i] * spins[i];
        for (std::size_t j = i + 1; j < n_; ++j) {
            e += j_[i * n_ + j] * spins[i] * spins[j];
        }
    }
    return e;
}

ising_model to_ising(const qubo_model& q) {
    const std::size_t n = q.num_variables();
    ising_model out(n);
    double offset = q.offset();
    for (std::size_t i = 0; i < n; ++i) {
        double h = q.linear(i) / 2.0;
        offset += q.linear(i) / 2.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            h += q.coefficient(i, j) / 4.0;  // symmetric accessor: counts each pair once per endpoint
        }
        out.set_field(i, h);
        for (std::size_t j = i + 1; j < n; ++j) {
            const double c = q.coefficient(i, j);
            if (c != 0.0) out.set_coupling(i, j, c / 4.0);
            offset += c / 4.0;
        }
    }
    out.set_offset(offset);
    return out;
}

qubo_model to_qubo(const ising_model& ising) {
    qubo_model out;
    to_qubo_into(ising, out);
    return out;
}

void to_qubo_into(const ising_model& ising, qubo_model& out) {
    // h_i s_i             = 2 h_i q_i - h_i
    // J_ij s_i s_j        = 4 J_ij q_i q_j - 2 J_ij q_i - 2 J_ij q_j + J_ij
    const std::size_t n = ising.num_spins();
    out.reset(n);
    double offset = ising.offset();
    for (std::size_t i = 0; i < n; ++i) {
        double lin = 2.0 * ising.field(i);
        offset -= ising.field(i);
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i) lin -= 2.0 * ising.coupling(i, j);
        }
        out.set_term(i, i, lin);
        for (std::size_t j = i + 1; j < n; ++j) {
            const double jij = ising.coupling(i, j);
            if (jij != 0.0) out.set_term(i, j, 4.0 * jij);
            offset += jij;
        }
    }
    out.set_offset(offset);
}

spin_vector spins_from_bits(std::span<const std::uint8_t> bits) {
    spin_vector out(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] > 1) throw std::invalid_argument("spins_from_bits: bit not 0/1");
        out[i] = bits[i] ? 1 : -1;
    }
    return out;
}

bit_vector bits_from_spins(std::span<const std::int8_t> spins) {
    bit_vector out(spins.size());
    for (std::size_t i = 0; i < spins.size(); ++i) {
        if (spins[i] != 1 && spins[i] != -1) {
            throw std::invalid_argument("bits_from_spins: spin not +/-1");
        }
        out[i] = spins[i] == 1 ? 1 : 0;
    }
    return out;
}

}  // namespace hcq::qubo
