// Figure 7 — "Expectation value of the cost function and success probability
// out of RA samples for a 8-user 16-QAM decoding instance across different
// Delta-E_IS%" (initial states binned in steps of delta = 2%).
//
// Paper shape to reproduce: success probability and expected cost improve
// monotonically as the initial-state quality Delta-E_IS% approaches 0.
#include <vector>

#include "bench_common.h"
#include "core/device.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "metrics/stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace wl = hcq::wireless;

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Figure 7: RA outcome vs initial-state quality (8-user 16-QAM)",
               "Kim et al., HotNets'20, Section 4.3 / Figure 7");

    const std::size_t instances = ctx.scaled(3);
    const std::size_t reads = ctx.scaled(400);
    const std::size_t harvest_attempts = ctx.scaled(60000);  // paper: 750,000+
    const std::size_t states_per_bin = ctx.scaled(8);
    const double sp = ctx.flags.get_double("sp", 0.45);
    const double bin_width = 2.0;   // the paper's delta
    const double max_gap = 10.0;    // "No initial candidate achieved less than 0.4%"

    const an::annealer_emulator device;
    const std::size_t num_bins = static_cast<std::size_t>(max_gap / bin_width);

    std::vector<hcq::metrics::running_stats> p_star(num_bins);
    std::vector<hcq::metrics::running_stats> mean_cost(num_bins);
    std::vector<std::size_t> harvested(num_bins, 0);

    for (std::size_t i = 0; i < instances; ++i) {
        hcq::util::rng rng(hcq::util::rng(ctx.seed).derive(i)());
        const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
        // Paper methodology: initial states are themselves annealer samples.
        const auto bins = hy::harvest_annealer_states(e, device, bin_width, max_gap,
                                                      harvest_attempts / 100, rng);

        for (std::size_t b = 0; b < num_bins; ++b) {
            harvested[b] += bins.states[b].size();
            const std::size_t use = std::min(states_per_bin, bins.states[b].size());
            std::vector<hy::schedule_eval> evals(use);
            hcq::util::parallel_for(use, [&](std::size_t s) {
                hcq::util::rng srng(hcq::util::rng(ctx.seed + 31 * i).derive(b * 1000 + s)());
                evals[s] = hy::evaluate_schedule(device, e.reduced.model,
                                                 an::anneal_schedule::reverse(sp, 1.0), reads,
                                                 e.optimal_energy, srng, bins.states[b][s]);
            });
            for (const auto& eval : evals) {
                p_star[b].add(eval.p_star);
                mean_cost[b].add(eval.mean_delta_e);
            }
        }
    }

    hcq::util::table t({"Delta-E_IS% bin", "states", "success prob p*", "mean Delta-E% after RA"});
    for (std::size_t b = 0; b < num_bins; ++b) {
        char label[64];
        std::snprintf(label, sizeof label, "(%.0f, %.0f]", b * bin_width, (b + 1) * bin_width);
        if (p_star[b].count() == 0) {
            t.add(label, harvested[b], "-", "-");
            continue;
        }
        t.add(label, harvested[b], p_star[b].mean(), mean_cost[b].mean());
    }
    std::cout << instances << " instance(s), s_p = " << sp << ", " << reads
              << " reads per initial state\n";
    ctx.emit(t);
    std::cout << "Paper shape check: p* decreases and the expected cost increases as\n"
                 "Delta-E_IS% grows (monotone degradation with initial-state quality).\n";
    return 0;
}
