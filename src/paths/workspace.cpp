#include "paths/workspace.h"

#include <atomic>
#include <cstdint>

namespace hcq::paths {

namespace {

std::uint64_t next_store_id() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

}  // namespace

workspace_store::workspace_store() : id_(next_store_id()) {}

workspace& workspace_store::local() {
    // Fast path: this thread already resolved this store.  The id is never
    // reused, so a stale cache entry (from a destroyed store) can only miss.
    thread_local std::uint64_t cached_id = 0;
    thread_local workspace* cached = nullptr;
    if (cached_id == id_ && cached != nullptr) return *cached;

    const util::mutex_lock lock(mutex_);
    std::unique_ptr<workspace>& slot = by_thread_[std::this_thread::get_id()];
    if (slot == nullptr) slot = std::make_unique<workspace>();
    cached_id = id_;
    cached = slot.get();
    return *slot;
}

}  // namespace hcq::paths
