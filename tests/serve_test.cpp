// Serving front end (src/serve/): wire-protocol hardening, the in-process
// ephemeral-port TCP server under concurrent clients, admission-control
// policies, per-request deadlines, and the determinism golden — a served
// batch is bit-identical to the same batch run in process and, through the
// shared derived-RNG streams, to link::run_link_simulation at
// serve::request_seed(tenant, seq, seed).
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "link/link_sim.h"
#include "paths/registry.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/socket.h"
#include "serve/tcp_server.h"
#include "util/rng.h"

namespace {

using namespace hcq;

serve::request small_request(std::uint64_t tenant, std::uint64_t seq) {
    serve::request req;
    req.tenant_id = tenant;
    req.request_seq = seq;
    req.seed = 42;
    req.num_uses = 6;
    req.num_users = 4;
    req.snr_db = 14.0;
    req.mod = "qam16";
    req.spec = "zf";
    return req;
}

serve::server_config test_server(std::size_t workers) {
    serve::server_config config;
    config.port = 0;  // ephemeral
    config.num_workers = workers;
    return config;
}

// ---------------------------------------------------------------------------
// Protocol layer
// ---------------------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsExactly) {
    serve::request req = small_request(7, 11);
    req.deadline_us = 1234.5;
    req.noiseless = true;
    req.channel = "jakes:doppler_hz=5";
    req.want_soft = true;
    const auto decoded = serve::decode_request(serve::encode_request(req));
    EXPECT_EQ(decoded.tenant_id, req.tenant_id);
    EXPECT_EQ(decoded.request_seq, req.request_seq);
    EXPECT_EQ(decoded.seed, req.seed);
    EXPECT_EQ(decoded.deadline_us, req.deadline_us);
    EXPECT_EQ(decoded.num_uses, req.num_uses);
    EXPECT_EQ(decoded.num_users, req.num_users);
    EXPECT_EQ(decoded.snr_db, req.snr_db);
    EXPECT_EQ(decoded.noiseless, req.noiseless);
    EXPECT_EQ(decoded.want_soft, req.want_soft);
    EXPECT_EQ(decoded.mod, req.mod);
    EXPECT_EQ(decoded.spec, req.spec);
    EXPECT_EQ(decoded.channel, req.channel);
}

TEST(ServeProtocol, ResponseRoundTripsExactly) {
    serve::response resp;
    resp.state = serve::status::ok;
    resp.tenant_id = 3;
    resp.request_seq = 9;
    resp.queue_depth = 5;
    resp.in_flight = 2;
    resp.queue_wait_us = 77.25;
    resp.num_uses = 3;
    resp.bits_per_use = 16;
    resp.bits.assign((3 * 16 + 7) / 8, 0);
    resp.bits[0] = 0xA5;
    resp.ml_cost = {1.5, 2.5, 3.25};
    resp.synth_us = 10.0;
    resp.qubo_us = 20.0;
    resp.solve_us = 30.0;
    const auto decoded = serve::decode_response(serve::encode_response(resp));
    EXPECT_EQ(decoded.state, resp.state);
    EXPECT_EQ(decoded.tenant_id, resp.tenant_id);
    EXPECT_EQ(decoded.request_seq, resp.request_seq);
    EXPECT_EQ(decoded.queue_depth, resp.queue_depth);
    EXPECT_EQ(decoded.in_flight, resp.in_flight);
    EXPECT_EQ(decoded.queue_wait_us, resp.queue_wait_us);
    EXPECT_EQ(decoded.bits, resp.bits);
    EXPECT_EQ(decoded.ml_cost, resp.ml_cost);
    EXPECT_EQ(decoded.synth_us, resp.synth_us);
}

TEST(ServeProtocol, SoftResponseRoundTripsLlrBitPatterns) {
    serve::response resp;
    resp.state = serve::status::ok;
    resp.num_uses = 2;
    resp.bits_per_use = 3;
    resp.bits.assign(1, 0x2B);
    resp.ml_cost = {0.5, 0.75};
    // Exercise the values the clamp layer can emit: the cap, a subnormal-ish
    // magnitude, zero (erased bit), and negatives.
    resp.llrs = {1.0e4, -1.0e4, 0.0, 1e-3, -42.125, 7.0};
    const auto decoded = serve::decode_response(serve::encode_response(resp));
    ASSERT_EQ(decoded.llrs.size(), resp.llrs.size());
    for (std::size_t i = 0; i < resp.llrs.size(); ++i) {
        EXPECT_EQ(decoded.llrs[i], resp.llrs[i]) << "llr " << i;  // exact f64
    }
    // A hard-decision response stays LLR-free on the wire and after decode.
    resp.llrs.clear();
    EXPECT_TRUE(serve::decode_response(serve::encode_response(resp)).llrs.empty());
}

TEST(ServeProtocol, SoftResponseSizeMismatchAndBadFlagAreRejected) {
    serve::response resp;
    resp.state = serve::status::ok;
    resp.num_uses = 2;
    resp.bits_per_use = 3;
    resp.bits.assign(1, 0);
    resp.ml_cost = {0.0, 0.0};
    resp.llrs = {1.0, 2.0, 3.0};  // != num_uses * bits_per_use
    EXPECT_THROW((void)serve::encode_response(resp), serve::protocol_error);
    resp.llrs.clear();
    auto bytes = serve::encode_response(resp);
    // has_soft sits immediately before the three trailing f64 timings.
    bytes[bytes.size() - 3 * 8 - 1] = 2;
    EXPECT_THROW((void)serve::decode_response(bytes), serve::protocol_error);
}

TEST(ServeProtocol, TruncatedRequestNamesTheStarvedField) {
    auto bytes = serve::encode_request(small_request(1, 1));
    bytes.resize(10);  // cuts inside tenant/seq region
    try {
        (void)serve::decode_request(bytes);
        FAIL() << "decode_request accepted a truncated payload";
    } catch (const serve::protocol_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated at field"), std::string::npos)
            << e.what();
    }
}

TEST(ServeProtocol, WrongVersionAndTrailingGarbageAreRejected) {
    auto bytes = serve::encode_request(small_request(1, 1));
    auto bad_version = bytes;
    bad_version[0] = 99;
    EXPECT_THROW((void)serve::decode_request(bad_version), serve::protocol_error);
    auto trailing = bytes;
    trailing.push_back(0);
    EXPECT_THROW((void)serve::decode_request(trailing), serve::protocol_error);
}

TEST(ServeProtocol, FrameLengthBoundsAreEnforced) {
    EXPECT_THROW(serve::check_frame_length(0), serve::protocol_error);
    EXPECT_THROW(serve::check_frame_length(serve::max_frame_bytes + 1),
                 serve::protocol_error);
    serve::check_frame_length(1);
    serve::check_frame_length(serve::max_frame_bytes);
}

TEST(ServeProtocol, BatchSizeBoundsAreEnforced) {
    auto req = small_request(1, 1);
    req.num_uses = 0;
    EXPECT_THROW((void)serve::decode_request(serve::encode_request(req)),
                 serve::protocol_error);
    req.num_uses = serve::max_batch_uses + 1;
    EXPECT_THROW((void)serve::decode_request(serve::encode_request(req)),
                 serve::protocol_error);
}

TEST(ServeProtocol, PackUnpackBitsRoundTrips) {
    util::rng rng(5);
    std::vector<std::uint8_t> packed;
    std::vector<std::vector<std::uint8_t>> uses;
    const std::size_t bits_per_use = 13;  // deliberately not byte-aligned
    for (std::size_t u = 0; u < 7; ++u) {
        uses.push_back(rng.bits(bits_per_use));
        serve::pack_bits(packed, u * bits_per_use, uses.back());
    }
    for (std::size_t u = 0; u < 7; ++u) {
        EXPECT_EQ(serve::unpack_bits(packed, u * bits_per_use, bits_per_use), uses[u]);
    }
}

TEST(ServeProtocol, RequestSeedIsTheDoubleDerivation) {
    EXPECT_EQ(serve::request_seed(7, 3, 42),
              util::rng(42).derive(7).derive(3).seed());
    // Distinct tenants / sequence numbers get distinct streams.
    EXPECT_NE(serve::request_seed(7, 3, 42), serve::request_seed(8, 3, 42));
    EXPECT_NE(serve::request_seed(7, 3, 42), serve::request_seed(7, 4, 42));
}

// ---------------------------------------------------------------------------
// Determinism goldens
// ---------------------------------------------------------------------------

// A served batch consumes the SAME derived streams as run_link_simulation at
// the request seed, so the detection-domain aggregates match exactly.
TEST(ServeGolden, RunBatchMatchesLinkSimulationAggregates) {
    serve::request req = small_request(7, 3);
    req.spec = "sa";
    req.num_uses = 10;

    link::link_config config;
    config.num_uses = req.num_uses;
    config.num_users = req.num_users;
    config.mod = wireless::modulation::qam16;
    config.snr_db = req.snr_db;
    config.paths = paths::parse_spec_list(req.spec);
    config.seed = serve::request_seed(req.tenant_id, req.request_seq, req.seed);

    const auto batch = serve::run_batch(req);
    const auto report = link::run_link_simulation(config);
    const auto& path = report.paths.at(0);
    EXPECT_EQ(batch.bit_errors, path.ber.errors());
    EXPECT_EQ(batch.total_bits, path.ber.total_bits());
    EXPECT_EQ(batch.exact_frames, path.exact_frames);
    EXPECT_EQ(batch.sum_ml_cost, path.sum_ml_cost);  // identical serial sum
}

TEST(ServeGolden, RunBatchMatchesLinkSimulationUnderChannelSpec) {
    serve::request req = small_request(2, 5);
    req.spec = "zf";
    req.num_uses = 8;
    req.channel = "jakes:doppler_hz=5,est_err=0.05";

    link::link_config config;
    config.num_uses = req.num_uses;
    config.num_users = req.num_users;
    config.mod = wireless::modulation::qam16;
    config.snr_db = req.snr_db;
    config.channel_spec = wireless::channel_spec::parse(req.channel);
    config.paths = paths::parse_spec_list(req.spec);
    config.seed = serve::request_seed(req.tenant_id, req.request_seq, req.seed);

    const auto batch = serve::run_batch(req);
    const auto report = link::run_link_simulation(config);
    const auto& path = report.paths.at(0);
    EXPECT_EQ(batch.bit_errors, path.ber.errors());
    EXPECT_EQ(batch.total_bits, path.ber.total_bits());
    EXPECT_EQ(batch.exact_frames, path.exact_frames);
    EXPECT_EQ(batch.sum_ml_cost, path.sum_ml_cost);
}

// ---------------------------------------------------------------------------
// Server: echo/roundtrip and the served-vs-in-process golden
// ---------------------------------------------------------------------------

void expect_served_matches_in_process(const serve::response& resp,
                                      const serve::request& req) {
    ASSERT_EQ(resp.state, serve::status::ok) << resp.message;
    EXPECT_EQ(resp.tenant_id, req.tenant_id);
    EXPECT_EQ(resp.request_seq, req.request_seq);
    const auto local = serve::run_batch(req);
    ASSERT_EQ(resp.num_uses, req.num_uses);
    ASSERT_EQ(resp.bits_per_use, local.bits_per_use);
    for (std::uint32_t u = 0; u < resp.num_uses; ++u) {
        EXPECT_EQ(serve::unpack_bits(resp.bits,
                                     static_cast<std::size_t>(u) * resp.bits_per_use,
                                     resp.bits_per_use),
                  local.bits[u])
            << "use " << u;
    }
    EXPECT_EQ(resp.ml_cost, local.ml_cost);  // exact f64 bit patterns
}

TEST(ServeServer, ServedBatchBitIdenticalToInProcessWithOneWorker) {
    serve::tcp_server server(test_server(1));
    serve::client cl(server.port());
    serve::request req = small_request(1, 0);
    req.spec = "kxra:k=2";
    expect_served_matches_in_process(cl.call(req), req);
    const auto stats = server.stats();
    EXPECT_EQ(stats.served_ok, 1u);
    EXPECT_EQ(stats.requests_admitted, 1u);
}

TEST(ServeServer, ServedBatchesBitIdenticalToInProcessWithEightWorkers) {
    serve::tcp_server server(test_server(8));
    constexpr std::size_t kClients = 8;
    constexpr std::uint64_t kRequestsEach = 3;
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            serve::client cl(server.port());
            for (std::uint64_t seq = 0; seq < kRequestsEach; ++seq) {
                serve::request req = small_request(100 + c, seq);
                req.spec = (c % 2 == 0) ? "sa" : "kxra:k=2";
                const auto resp = cl.call(req);
                expect_served_matches_in_process(resp, req);
                if (resp.state != serve::status::ok) failures.fetch_add(1);
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.stats().served_ok, kClients * kRequestsEach);
}

// Soft round trip (protocol v2): a want_soft batch comes back with LLRs that
// are bit-identical to the in-process run, and they harden to the served bits.
TEST(ServeServer, SoftBatchBitIdenticalToInProcessAndHardensToBits) {
    serve::tcp_server server(test_server(1));
    serve::client cl(server.port());
    serve::request req = small_request(9, 0);
    req.want_soft = true;
    const auto resp = cl.call(req);
    ASSERT_EQ(resp.state, serve::status::ok) << resp.message;
    const auto local = serve::run_batch(req);
    ASSERT_EQ(resp.llrs.size(),
              static_cast<std::size_t>(resp.num_uses) * resp.bits_per_use);
    ASSERT_EQ(resp.llrs.size(), local.llrs.size());
    for (std::size_t i = 0; i < local.llrs.size(); ++i) {
        EXPECT_EQ(resp.llrs[i], local.llrs[i]) << "llr " << i;  // exact f64
    }
    // Sign convention: positive LLR means bit 0, so the served soft and hard
    // views of the same use can never disagree.
    for (std::uint32_t u = 0; u < resp.num_uses; ++u) {
        const auto hard = serve::unpack_bits(
            resp.bits, static_cast<std::size_t>(u) * resp.bits_per_use,
            resp.bits_per_use);
        for (std::uint32_t b = 0; b < resp.bits_per_use; ++b) {
            const double l = resp.llrs[static_cast<std::size_t>(u) * resp.bits_per_use + b];
            EXPECT_EQ(hard[b], l > 0.0 ? 0 : 1) << "use " << u << " bit " << b;
        }
    }
    // Hard-decision requests stay LLR-free.
    serve::request hard_req = small_request(9, 1);
    EXPECT_TRUE(cl.call(hard_req).llrs.empty());
}

TEST(ServeServer, OversizedSoftBatchIsRejectedAndConnectionSurvives) {
    serve::tcp_server server(test_server(1));
    serve::client cl(server.port());
    serve::request req = small_request(1, 0);
    req.want_soft = true;
    req.num_uses = 8192;  // 8192 uses * 16 bits * 8 bytes = 1 MiB of LLRs
    const auto resp = cl.call(req);
    EXPECT_EQ(resp.state, serve::status::bad_request);
    EXPECT_NE(resp.message.find("soft-payload cap"), std::string::npos) << resp.message;
    // The frame was well-formed, so the connection stays usable.
    serve::request good = small_request(1, 1);
    expect_served_matches_in_process(cl.call(good), good);
}

TEST(ServeServer, PollBackendServesIdentically) {
    serve::server_config config = test_server(2);
    config.poll_backend = serve::poller::backend::poll_backend;
    serve::tcp_server server(config);
    serve::client cl(server.port());
    const serve::request req = small_request(4, 2);
    expect_served_matches_in_process(cl.call(req), req);
}

// ---------------------------------------------------------------------------
// Hardening: malformed frames, invalid specs, config validation
// ---------------------------------------------------------------------------

TEST(ServeServer, MalformedPayloadGetsBadRequestThenClose) {
    serve::tcp_server server(test_server(1));
    serve::client cl(server.port());
    const std::vector<std::uint8_t> garbage = {3, 0, 0, 0, 0xFF, 0xFF, 0xFF};
    cl.send_raw(garbage.data(), garbage.size());
    const auto resp = cl.receive();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->state, serve::status::bad_request);
    EXPECT_FALSE(resp->message.empty());
    // Framing downstream of a malformed frame is untrusted: server closes.
    EXPECT_FALSE(cl.receive().has_value());
    EXPECT_GE(server.stats().bad_requests, 1u);
}

TEST(ServeServer, OversizedLengthPrefixGetsBadRequestThenClose) {
    serve::tcp_server server(test_server(1));
    serve::client cl(server.port());
    const std::uint32_t huge = serve::max_frame_bytes + 1;
    std::uint8_t prefix[4];
    for (int i = 0; i < 4; ++i) prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
    cl.send_raw(prefix, sizeof(prefix));
    const auto resp = cl.receive();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->state, serve::status::bad_request);
    EXPECT_FALSE(cl.receive().has_value());
}

TEST(ServeServer, UnknownSpecGetsBadRequestAndConnectionSurvives) {
    serve::tcp_server server(test_server(1));
    serve::client cl(server.port());
    serve::request req = small_request(1, 0);
    req.spec = "no-such-detector";
    const auto resp = cl.call(req);
    EXPECT_EQ(resp.state, serve::status::bad_request);
    EXPECT_FALSE(resp.message.empty());
    // The frame itself was well-formed, so the connection stays usable.
    serve::request good = small_request(1, 1);
    expect_served_matches_in_process(cl.call(good), good);
}

TEST(ServeServer, RejectsNonsenseConfig) {
    serve::server_config config = test_server(0);
    EXPECT_THROW(serve::tcp_server{config}, std::invalid_argument);
    config = test_server(1);
    config.admission_capacity = 0;
    EXPECT_THROW(serve::tcp_server{config}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Admission control: deadlines and the three backpressure policies
// ---------------------------------------------------------------------------

TEST(ServeServer, DeadlineExceededInQueueIsRejectedWithoutSolving) {
    serve::tcp_server server(test_server(1));
    serve::client cl(server.port());
    serve::request req = small_request(1, 0);
    // Any real queue wait exceeds a 1e-6 us budget; the worker must answer
    // status::deadline without running the batch.
    req.deadline_us = 1e-6;
    const auto resp = cl.call(req);
    EXPECT_EQ(resp.state, serve::status::deadline);
    EXPECT_GT(resp.queue_wait_us, 0.0);
    EXPECT_EQ(resp.num_uses, 0u);
    EXPECT_EQ(server.stats().rejected_deadline, 1u);

    serve::request relaxed = small_request(1, 1);
    relaxed.deadline_us = 60e6;  // a minute of budget: must be served
    expect_served_matches_in_process(cl.call(relaxed), relaxed);
}

// Floods one pipelined connection against a single worker and a one-slot
// admission queue, so rejections are guaranteed while the first admitted
// batch is still solving.
TEST(ServeServer, DropNewestShedsBurstsWithBusy) {
    serve::server_config config = test_server(1);
    config.admission_capacity = 1;
    config.policy = pipeline::backpressure::drop_newest;
    serve::tcp_server server(config);
    serve::client cl(server.port());
    constexpr std::uint64_t kBurst = 24;
    for (std::uint64_t seq = 0; seq < kBurst; ++seq) {
        serve::request req = small_request(1, seq);
        req.spec = "sa";  // slow enough that the burst outruns the worker
        req.num_uses = 32;
        cl.send(req);
    }
    std::uint64_t ok = 0;
    std::uint64_t busy = 0;
    for (std::uint64_t i = 0; i < kBurst; ++i) {
        const auto resp = cl.receive();
        ASSERT_TRUE(resp.has_value()) << "response " << i;
        if (resp->state == serve::status::ok) ++ok;
        if (resp->state == serve::status::busy) {
            ++busy;
            EXPECT_FALSE(resp->message.empty());
        }
    }
    EXPECT_GE(ok, 1u);    // the first admitted request is always served
    EXPECT_GE(busy, 1u);  // and the burst must overflow the one-slot queue
    EXPECT_EQ(server.stats().rejected_busy, busy);
}

TEST(ServeServer, DropOldestEvictsTheLongestWaiter) {
    serve::server_config config = test_server(1);
    config.admission_capacity = 1;
    config.policy = pipeline::backpressure::drop_oldest;
    serve::tcp_server server(config);
    serve::client cl(server.port());
    constexpr std::uint64_t kBurst = 16;
    for (std::uint64_t seq = 0; seq < kBurst; ++seq) {
        serve::request req = small_request(1, seq);
        req.spec = "sa";
        req.num_uses = 32;
        cl.send(req);
    }
    std::uint64_t ok = 0;
    std::uint64_t busy = 0;
    for (std::uint64_t i = 0; i < kBurst; ++i) {
        const auto resp = cl.receive();
        ASSERT_TRUE(resp.has_value()) << "response " << i;
        if (resp->state == serve::status::ok) ++ok;
        if (resp->state == serve::status::busy) ++busy;
    }
    EXPECT_EQ(ok + busy, kBurst);
    EXPECT_GE(server.stats().evictions, 1u);
    // Evicted requests report how long they waited before being shed.
    EXPECT_EQ(server.stats().rejected_busy, busy);
}

// Under the block policy nothing is shed: a full admission queue pauses
// socket reads (TCP backpressure) and parked frames replay once a worker
// frees capacity — every request in the burst must eventually be served.
TEST(ServeServer, BlockPolicyServesTheWholeBurstWithoutRejections) {
    serve::server_config config = test_server(1);
    config.admission_capacity = 1;
    config.policy = pipeline::backpressure::block;
    serve::tcp_server server(config);
    serve::client cl(server.port());
    constexpr std::uint64_t kBurst = 12;
    for (std::uint64_t seq = 0; seq < kBurst; ++seq) {
        serve::request req = small_request(1, seq);
        cl.send(req);
    }
    for (std::uint64_t i = 0; i < kBurst; ++i) {
        const auto resp = cl.receive();
        ASSERT_TRUE(resp.has_value()) << "response " << i;
        EXPECT_EQ(resp->state, serve::status::ok) << resp->message;
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.served_ok, kBurst);
    EXPECT_EQ(stats.rejected_busy, 0u);
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

TEST(ServeLoadgen, ClosedLoopServesEveryRequest) {
    serve::tcp_server server(test_server(4));
    serve::loadgen_config config;
    config.port = server.port();
    config.mode = serve::loadgen_mode::closed_loop;
    config.num_connections = 3;
    config.total_requests = 9;
    config.request_template = small_request(0, 0);
    const auto report = serve::run_loadgen(config);
    EXPECT_EQ(report.sent, 9u);
    EXPECT_EQ(report.ok, 9u);
    EXPECT_EQ(report.reject_fraction(), 0.0);
    EXPECT_GT(report.uses_served, 0u);
    EXPECT_EQ(report.latency.count(), 9u);
    EXPECT_GT(report.latency.p99(), 0.0);
}

TEST(ServeLoadgen, OpenLoopPoissonDrivesAndDrains) {
    serve::tcp_server server(test_server(4));
    serve::loadgen_config config;
    config.port = server.port();
    config.mode = serve::loadgen_mode::open_loop;
    config.num_connections = 2;
    config.offered_rps = 200.0;
    config.duration_s = 0.25;
    config.request_template = small_request(0, 0);
    const auto report = serve::run_loadgen(config);
    EXPECT_GT(report.sent, 0u);
    EXPECT_EQ(report.ok, report.sent);  // tiny zf batches: nothing sheds
    EXPECT_EQ(report.latency.count(), report.sent);
}

TEST(ServeLoadgen, RejectsNonsenseConfig) {
    serve::loadgen_config config;
    config.num_connections = 0;
    EXPECT_THROW((void)serve::run_loadgen(config), std::invalid_argument);
    config.num_connections = 1;
    config.mode = serve::loadgen_mode::open_loop;
    config.offered_rps = 0.0;
    EXPECT_THROW((void)serve::run_loadgen(config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Poller / socket layer details worth pinning directly
// ---------------------------------------------------------------------------

TEST(ServeSocket, PollerBookkeepingMisuseThrowsLogicError) {
    serve::poller p(serve::poller::backend::poll_backend);
    serve::wake_pipe pipe;
    p.add(pipe.read_fd(), true, false);
    EXPECT_THROW(p.add(pipe.read_fd(), true, false), std::logic_error);
    p.modify(pipe.read_fd(), true, true);
    p.remove(pipe.read_fd());
    EXPECT_THROW(p.modify(pipe.read_fd(), true, false), std::logic_error);
    EXPECT_THROW(p.remove(pipe.read_fd()), std::logic_error);
}

TEST(ServeSocket, WakePipeInterruptsWait) {
    serve::poller p;  // default backend (epoll on Linux)
    serve::wake_pipe pipe;
    p.add(pipe.read_fd(), true, false);
    pipe.wake();
    std::vector<serve::ready_event> events;
    p.wait(events, /*timeout_ms=*/1000);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].fd, pipe.read_fd());
    EXPECT_TRUE(events[0].readable);
    pipe.drain();
}

}  // namespace
