// Request execution against the detection-path registry — the piece of the
// serving front end that actually computes, shared by the TCP server's
// worker pool and by in-process callers (tests, benches).
//
// Determinism contract (the served-vs-in-process golden): run_batch derives
// its master seed via serve::request_seed(tenant_id, request_seq, seed) and
// then consumes the SAME link-layer stream domains as
// link::run_link_simulation (link::stream_domains) — channel use u from
// rng(master).derive(synthesis).derive(u), its solve from
// rng(master).derive(solve).derive(u) (one path, so the link layer's
// u * num_paths + p collapses to u).  A served batch is therefore
// bit-identical to a link_config{paths = {spec}, seed = request_seed(...),
// same users/mod/snr/channel} run: identical detected bits, ML costs, and
// ground-truth aggregates, pinned by tests/serve_test.cpp at 1 and 8 server
// worker threads.  Only the measured timings vary run to run.
//
// Concurrency contract: run_batch is a pure function of its request (plus a
// per-call registry lookup); the server runs many batches concurrently on
// pool workers with no shared mutable state between them.
#ifndef HCQ_SERVE_SERVICE_H
#define HCQ_SERVE_SERVICE_H

#include <cstddef>
#include <vector>

#include "qubo/model.h"
#include "serve/protocol.h"

namespace hcq::serve {

/// Everything one served batch produced.  `bits`/`ml_cost` are the wire
/// payload; the ground-truth aggregates exist so goldens can pin a served
/// batch against link::run_link_simulation without shipping tx bits.
struct batch_result {
    std::vector<qubo::bit_vector> bits;  ///< detected bits per use (natural map)
    std::vector<double> ml_cost;         ///< ||y - H x_hat||^2 per use
    /// Per-bit LLRs, use-major flat layout (llrs[u * bits_per_use + b]),
    /// from detection_path::soft_output; filled iff the request set
    /// want_soft, empty otherwise.  Deterministic like `bits`.
    std::vector<double> llrs;
    std::size_t bits_per_use = 0;

    // Detection-domain aggregates against the synthesized ground truth —
    // exactly link's path_report view of the same stream.
    std::size_t bit_errors = 0;
    std::size_t total_bits = 0;
    std::size_t exact_frames = 0;  ///< uses whose detected bits match tx exactly
    double sum_ml_cost = 0.0;

    // Measured totals across the batch (timing domain; vary run to run).
    double synth_us = 0.0;
    double qubo_us = 0.0;
    double solve_us = 0.0;
};

/// Validates and serves one request in the calling thread.  Throws
/// std::invalid_argument (self-documenting, in the registry style) on an
/// unknown/malformed path spec, modulation, or channel spec, or an invalid
/// num_users; protocol-level bounds (num_uses) were already enforced by
/// decode_request.
[[nodiscard]] batch_result run_batch(const request& req);

/// Builds the ok-response for a served batch (packs bits, copies costs and
/// timings, echoes the request identity).  Admission fields are zero; the
/// server fills them.
[[nodiscard]] response make_ok_response(const request& req, const batch_result& result);

}  // namespace hcq::serve

#endif  // HCQ_SERVE_SERVICE_H
