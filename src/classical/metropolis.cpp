// hcq-hot-path: steady-state code in this file must not allocate — reuse
// workspace scratch (enforced by the hot-path-alloc lint rule).
#include "classical/metropolis.h"

#include <cmath>
#include <stdexcept>

namespace hcq::solvers {

metropolis_engine::metropolis_engine(const qubo::qubo_model& q, qubo::bit_vector initial)
    : model_(&q), bits_(std::move(initial)) {
    if (bits_.size() != q.num_variables()) {
        throw std::invalid_argument("metropolis_engine: bit count mismatch");
    }
    rebuild();
}

void metropolis_engine::reset(const qubo::qubo_model& q, std::span<const std::uint8_t> initial) {
    if (initial.size() != q.num_variables()) {
        throw std::invalid_argument("metropolis_engine: bit count mismatch");
    }
    model_ = &q;
    bits_.assign(initial.begin(), initial.end());
    rebuild();
}

void metropolis_engine::set_state(qubo::bit_vector bits) {
    if (bits.size() != model_->num_variables()) {
        throw std::invalid_argument("metropolis_engine::set_state: bit count mismatch");
    }
    bits_ = std::move(bits);
    rebuild();
}

void metropolis_engine::rebuild() {
    energy_ = model_->energy(bits_);
    model_->local_fields_into(bits_, fields_);
}

}  // namespace hcq::solvers
