// Fixture: src/serve/socket.cpp is the allowlisted home of the raw socket
// syscalls — the same tokens that fire in bad_socket.cpp must stay clean
// here.  Also a decoy member call / qualified name per pattern category,
// which must never match anywhere.
#include <sys/socket.h>

struct fake_client {
    int send(int) { return 0; }
    int connect(int) { return 0; }
};

void allowed_socket_fixture() {
    int fd = ::socket(2, 1, 0);
    send(fd, nullptr, 0, 0);
    poll(nullptr, 0, 0);
    setsockopt(fd, 0, 0, nullptr, 0);
    fake_client cl;
    cl.send(fd);     // member call: dot-qualified, not a syscall
    cl.connect(fd);  // member call: dot-qualified, not a syscall
}
