// Composable channel selection by spec string — the channel-side twin of the
// detection-path registry (paths/registry.h).
//
// A channel_spec names a channel kind plus its knobs, in exactly the
// detection-path grammar `kind` or `kind:key=value,key=value`:
//
//     "rayleigh"                          i.i.d. CN(0,1) per use (the default)
//     "random-phase"                      i.i.d. unit-gain random phase (paper 4.2)
//     "jakes:doppler_hz=50"               time-correlated flat Clarke/Jakes fading
//     "watterson:taps=2,spread_hz=1"      multipath composite of Gaussian-spread taps
//     "jakes:doppler_hz=5,est_err=0.05"   ... with pilot-estimated (imperfect) CSI
//
// Every kind accepts the `est_err` modifier (pilot-based channel-estimation
// error variance: detectors see H_est = H_true + E, E_ij ~ CN(0, est_err),
// while the channel applies H_true) and an optional `snr_db` override of the
// link-level SNR.  The correlated kinds express their rates in Hz against a
// `use_rate_hz` channel-use rate (default 1000 uses/s), so
// `jakes:doppler_hz=5` is a normalised Doppler of 0.005 per use — a
// coherence time of ~85 uses, the burst-error regime — while doppler_hz near
// use_rate_hz/2 approaches independent draws.
//
// Errors are self-documenting in the registry style: an unknown kind lists
// the valid kinds, an unknown key lists the kind's accepted keys, and an
// out-of-range value names the key, the offending value, and the accepted
// range.
//
// Determinism contract (mirrors link/link_sim.h): a correlated
// channel_process freezes ALL its randomness at construction from the
// caller-provided derived rng — per-(antenna, user, tap) sum-of-sinusoids
// parameters — after which `at(t)` is a pure function of t, bit-identical
// at any thread count and stream order.  The i.i.d. kinds draw from the
// per-use rng handed to `at`, as the FIRST consumer, reproducing
// draw_channel byte-for-byte — so `--channel rayleigh` (and est_err=0)
// equals the legacy enum path bit-for-bit.
#ifndef HCQ_WIRELESS_CHANNEL_SPEC_H
#define HCQ_WIRELESS_CHANNEL_SPEC_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"
#include "wireless/channel.h"

namespace hcq::wireless {

/// A parsed channel specification.  Field defaults are the `jakes` defaults;
/// `parse` applies per-kind defaults (watterson's doppler_hz — its Doppler
/// SHIFT — defaults to 0) before applying the user's keys.
struct channel_spec {
    std::string kind = "rayleigh";  ///< rayleigh | random-phase | jakes | watterson

    double doppler_hz = 50.0;    ///< jakes: max Doppler; watterson: Doppler shift (default 0)
    double spread_hz = 1.0;      ///< watterson: per-tap Gaussian Doppler spread
    std::size_t taps = 2;        ///< watterson: multipath tap count (1..4)
    double use_rate_hz = 1000.0; ///< channel uses per second (Hz -> per-use mapping)
    std::size_t sinusoids = 16;  ///< sum-of-sinusoids order per tap (4..4096)
    double est_err = 0.0;        ///< CSI estimation-error variance (any kind)
    std::optional<double> snr_db;  ///< per-spec SNR override of link_config::snr_db

    /// Parses `kind` or `kind:key=value,...`.  Throws std::invalid_argument
    /// with a self-documenting message on an unknown kind (listing kinds()),
    /// an unknown or duplicate key (listing the kind's accepted keys), a
    /// malformed value, or an out-of-range value (Doppler/spread beyond
    /// use_rate_hz/2, taps outside 1..4, ...).
    [[nodiscard]] static channel_spec parse(const std::string& text);

    /// Canonical text form: every accepted key explicit (like path specs, so
    /// "jakes" and "jakes:doppler_hz=50" canonicalise identically); snr_db
    /// appears only when set.
    [[nodiscard]] std::string to_string() const;

    /// True for the time-correlated kinds (jakes, watterson).
    [[nodiscard]] bool correlated() const noexcept;

    /// Doppler / spread normalised per channel use.
    [[nodiscard]] double doppler_norm() const noexcept { return doppler_hz / use_rate_hz; }
    [[nodiscard]] double spread_norm() const noexcept { return spread_hz / use_rate_hz; }

    /// All channel kinds, sorted — the error-message and help listing.
    [[nodiscard]] static std::vector<std::string> kinds();

    /// Multi-line human-readable listing of kinds and keys (CLI --help body).
    [[nodiscard]] static std::string help();
};

/// One frozen channel realisation across a stream.  Instances are immutable
/// after construction; `at` is const-thread-safe.
class channel_process {
public:
    virtual ~channel_process() = default;

    /// The TRUE channel at time `t` (channel uses).  Correlated kinds
    /// evaluate their frozen tap processes closed-form and leave `use_rng`
    /// untouched; i.i.d. kinds ignore `t` and draw from `use_rng` exactly
    /// like draw_channel (same draw order — the first consumer of the
    /// per-use stream).
    [[nodiscard]] virtual linalg::cmat at(double t, util::rng& use_rng) const = 0;

    /// at() into a reused matrix — identical draws and element values; the
    /// built-in kinds override this to make warmed-up evaluation
    /// allocation-free (the correlated kinds additionally evaluate their
    /// sinusoid banks out of flattened contiguous storage).  The default
    /// delegates to at().
    virtual void at_into(double t, util::rng& use_rng, linalg::cmat& out) const {
        out = at(t, use_rng);
    }

    /// True when consecutive uses are correlated (jakes/watterson).
    [[nodiscard]] virtual bool correlated() const noexcept = 0;

    [[nodiscard]] virtual std::size_t num_antennas() const noexcept = 0;
    [[nodiscard]] virtual std::size_t num_users() const noexcept = 0;
};

/// Builds the frozen realisation of `spec` for an antennas x users channel.
/// Correlated kinds consume `base` (copied) to freeze their per-(antenna,
/// user, tap) sum-of-sinusoids parameters; i.i.d. kinds ignore it.  Throws
/// std::invalid_argument on empty dimensions or an invalid spec.
[[nodiscard]] std::unique_ptr<const channel_process> make_channel_process(
    const channel_spec& spec, std::size_t num_antennas, std::size_t num_users,
    const util::rng& base);

}  // namespace hcq::wireless

#endif  // HCQ_WIRELESS_CHANNEL_SPEC_H
