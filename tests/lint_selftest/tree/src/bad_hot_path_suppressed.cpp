// Fixture: the same violations, silenced per line.  // hcq-hot-path
#include <vector>

void suppressed() {
    // hcq-lint: allow(hot-path-alloc) cold path: one-time setup
    int* once = new int(7);
    // hcq-lint: allow(hot-path-alloc) cold path: warm-up sizing
    std::vector<double> owned(16);
    owned[0] = static_cast<double>(*once);
    delete once;  // hcq-lint: allow(hot-path-alloc) teardown
}
