// Fixture: hash-ordered containers in src/ — include and use both fire.
#include <unordered_map>

int fixture_unordered() {
    std::unordered_map<int, int> counts;
    counts[1] = 2;
    return static_cast<int>(counts.size());
}
