// End-to-end streaming link simulator (hcq::link) — the full
// channel-use -> QUBO -> solve -> BER path of the paper, run as ONE system.
//
// Where the figure benches study solvers on frozen corpora and
// pipeline/pipeline.h studies queueing on synthetic service models, this
// layer closes the loop: it generates successive wireless channel uses
// (wireless/channel.h + wireless/mimo.h + modulation), reduces each to QUBO
// form through the QuAMax transform (detect/transform.h) when any path needs
// it, and dispatches the solves across util::thread_pool side by side.
//
// Detection paths are *not* hard-coded: each entry of link_config::paths is
// a paths::path_spec ("zf", "kbest:width=16", "gsra:reads=80,sp=0.29",
// "kxra:k=4", ...) resolved through paths::registry, so any registered path
// — conventional detector, classical QUBO heuristic, or hybrid
// classical-quantum structure — can ride the stream without touching this
// layer.  Measured per-stage wall times feed pipeline::simulate via
// stage::from_trace, so Figure-2 throughput/latency numbers come from the
// actual code paths instead of lognormal stand-ins; the replay runs with the
// configured bounded stage buffers and backpressure policy, reporting drop
// rates and queue occupancy.
//
// Scaling: the stream is processed in fixed-size windows of
// link_config::stream_block uses — the workers fill one window in parallel,
// then the statistics are folded serially in use order into constant-size
// aggregates (exact BER / ML-cost / exact-frame counters plus
// metrics::latency_digest summaries and a bounded replay sample per stage).
// Memory is therefore O(stream_block x paths), independent of num_uses —
// million-use runs are first-class.
//
// Determinism: every channel use draws from an RNG stream derived from
// (seed, domain, use index) and every (use, path) solve from
// (seed, domain, use * num_paths + path), following the parallel_runner
// scheme — the thread pool decides only *when* a cell runs, never *what* it
// computes, and aggregation is serial in use order.  All link-layer
// statistics (BER, ML costs, exact-frame counts) are therefore bit-identical
// at any thread count AND any stream_block size; only the measured wall
// times vary run to run.  The golden-value tests in tests/link_test.cpp pin
// these statistics to the values the pre-registry (enum-dispatch, per-cell
// storage) implementation produced.
//
// Concurrency contract: lock-free steady state by design.  Workers fill
// disjoint, preallocated per-use slots of the current window and the fold is
// serial; the only annotated locking on the path is inside util::thread_pool
// and the one-time per-thread arena acquisition (paths::workspace_store and
// the coded link's codec store — both thread-local-cached after first touch).
// TSan (verify.sh --tsan) and the thread-count-invariance tests enforce
// the contract; see docs/ARCHITECTURE.md, "The determinism contract as
// enforceable rules".
#ifndef HCQ_LINK_LINK_SIM_H
#define HCQ_LINK_LINK_SIM_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "arq/arq.h"
#include "fec/code_spec.h"
#include "metrics/ber.h"
#include "metrics/digest.h"
#include "paths/detection_path.h"
#include "pipeline/pipeline.h"
#include "util/table.h"
#include "wireless/channel.h"
#include "wireless/channel_spec.h"
#include "wireless/modulation.h"

namespace hcq::link {

/// Derived-RNG stream-domain tags of the link layer.  Channel-use synthesis
/// draws come from rng(seed).derive(synthesis).derive(u) and the (use, path)
/// solve draws from rng(seed).derive(solve).derive(u * num_paths + p); the
/// ARQ and fading domains keep retransmission and frozen-tap draws disjoint.
/// These values predate the registry redesign and must never change: the
/// golden-value tests pin link statistics to the enum-dispatch implementation
/// that used them, and the serving front end (serve/service.h) reproduces a
/// served batch bit-for-bit by deriving from the SAME domains.
namespace stream_domains {
inline constexpr std::uint64_t synthesis = 0x6c696e6b5f434855ULL;       // "link_CHU"
inline constexpr std::uint64_t solve = 0x6c696e6b5f534c56ULL;           // "link_SLV"
inline constexpr std::uint64_t arq_synthesis = 0x6172715f5f434855ULL;   // "arq__CHU"
inline constexpr std::uint64_t arq_solve = 0x6172715f5f534c56ULL;       // "arq__SLV"
inline constexpr std::uint64_t fading = 0x6c696e6b5f464144ULL;          // "link_FAD"
/// Per-frame information-bit draws of the coded link (link_config::fec):
/// frame f's info bits come from rng(seed).derive(fec).derive(f) — disjoint
/// from every domain above, so enabling FEC never perturbs the channel or
/// noise draws (the coded use overrides the tx bits but still consumes the
/// synthesis stream identically; see wireless::synthesize_coded_into).
inline constexpr std::uint64_t fec = 0x6c696e6b5f464543ULL;             // "link_FEC"
}  // namespace stream_domains

/// Link-simulation knobs.  Defaults exercise the acceptance scenario: >= 100
/// channel uses through wireless -> QUBO -> {linear, tree search, exact
/// sphere, SA, hybrid}.  Per-path knobs (K-best width, SA budget, hybrid
/// reads/schedule, ...) live inside the specs, not here.
struct link_config {
    std::size_t num_uses = 120;   ///< channel uses in the stream
    std::size_t num_users = 4;    ///< transmit streams, N_r = N_t
    wireless::modulation mod = wireless::modulation::qam16;
    wireless::channel_model channel = wireless::channel_model::rayleigh;
    bool noiseless = false;       ///< paper Section-4.2 corpus setting (no AWGN)
    double snr_db = 16.0;         ///< per-antenna SNR when AWGN is enabled

    /// Realistic-channel spec (wireless/channel_spec.h) overriding `channel`
    /// when set: time-correlated fading ("jakes:doppler_hz=5",
    /// "watterson:taps=2,spread_hz=1"), imperfect CSI (est_err=...), and an
    /// optional per-spec snr_db override of `snr_db`.  nullopt keeps the
    /// legacy i.i.d. `channel` draw byte-for-byte — and so does an explicit
    /// "rayleigh" spec with est_err unset (pinned by the golden tests).
    /// Correlated fading draws its frozen tap parameters from a dedicated
    /// derived stream, one realisation per run; an ARQ retransmission
    /// attempt r of frame u sees the process at t = u + r (one use later),
    /// so low-Doppler retries land inside the fade that failed them.
    std::optional<wireless::channel_spec> channel_spec;

    /// Paths every use is detected by, in report order; resolved through
    /// paths::registry.  Two specs may share a kind (e.g. two K-best widths
    /// side by side) but exact duplicates — same canonical spec — throw.
    std::vector<paths::path_spec> paths =
        paths::parse_spec_list("zf,kbest,sphere,sa,gsra");

    std::size_t num_threads = 0;   ///< worker threads (0 = hardware concurrency)
    std::uint64_t seed = 1;        ///< master seed for all derived streams
    double offered_load = 0.9;     ///< arrival rate / bottleneck rate in the replay

    /// Tandem-queue replay buffering: waiting slots in front of every
    /// replayed stage, and what happens when one fills.
    /// pipeline::unbounded_capacity restores the legacy unbounded model;
    /// 0 throws (see pipeline::simulate).
    std::size_t buffer_capacity = 256;
    pipeline::backpressure policy = pipeline::backpressure::block;

    /// Channel uses processed per aggregation window; bounds peak memory at
    /// O(stream_block x paths) without affecting any statistic.  0 throws.
    std::size_t stream_block = 1024;

    /// Per-worker workspaces (paths/workspace.h): when true (the default),
    /// every worker reuses scratch buffers and exact-content-keyed
    /// decomposition caches across uses, making the warmed-up hot path
    /// allocation-free.  Statistics are bit-identical either way — the
    /// caches key on exact channel content, so a hit replays a pure function
    /// of the same input — which tests/workspace_test.cpp pins.  false keeps
    /// the allocate-per-call behaviour for that A/B comparison.
    bool workspaces = true;

    /// Forward error correction (fec/code_spec.h): when set, the stream
    /// carries CODED frames — each frame's information bits (drawn from the
    /// dedicated fec stream domain) are convolutionally encoded and
    /// interleaved into rows x cols coded bits spanning ceil(coded_bits /
    /// bits_per_use) consecutive channel uses (the last use zero-padded),
    /// every path's per-use soft output (detection_path::soft_output) is
    /// decoded per frame by a soft-decision Viterbi decoder, and the report
    /// gains coded FER / coded BER beside the raw per-use statistics.
    /// num_uses must be a whole number of frames.  With `arq` also set the
    /// ARQ unit becomes the coded frame (hybrid ARQ): a frame whose decode
    /// fails is retransmitted — same coded bits, fresh channel/noise from
    /// the (use, attempt) derived streams — and decoded against chase-
    /// combined (or per-attempt, combining=plain) LLRs.  unset = uncoded,
    /// bit-identical to the pre-FEC link (golden-pinned).
    std::optional<fec::code_spec> fec;

    /// ARQ / retransmission loop (arq/arq.h): when set, every frame whose
    /// detected bits are wrong (or every frame, when deadline_us == 0) is
    /// re-solved on fresh derived-RNG channel uses up to max_retx times in
    /// the streaming loop — the detection-domain counters stay bit-identical
    /// at any thread count and stream_block size — and the measured traces
    /// are additionally replayed CLOSED loop (failures re-enter the chain as
    /// retransmission load, deadline judged on replayed latency).  nullopt
    /// keeps the simulator open loop, byte-for-byte as before.
    std::optional<arq::arq_config> arq;
};

/// Streaming summary of one named processing stage across the stream: exact
/// count/mean/max, digest-backed p50/p99, and a bounded head sample used to
/// replay the stage through the Figure-2 tandem queue.  Memory is fixed
/// regardless of stream length.
///
/// Percentile semantics: an empty trace has mean_us() == p50_us() ==
/// p99_us() == 0.0 (there is nothing to summarise, and 0 keeps replay
/// arithmetic finite); a single-entry trace returns that entry for every
/// percentile (the digest clamps into [min, max]).  With two or more entries
/// the percentiles come from metrics::latency_digest — log-binned, ~0.4%
/// relative error.
class stage_trace {
public:
    /// Service times kept verbatim for the tandem-queue replay: up to this
    /// many entries, strided uniformly across the stream (see below).
    /// pipeline::stage::from_trace cycles the sample over longer replays.
    static constexpr std::size_t replay_sample_capacity = 512;

    stage_trace() = default;
    /// `sample_stride` spaces the replay sample across the stream: every
    /// stride-th added entry is kept (first entry always).  Callers that
    /// know the stream length use ceil(length / replay_sample_capacity) so
    /// the sample covers the WHOLE stream uniformly instead of just the
    /// warm-up head — warm-up service times run slower than steady state
    /// and would otherwise bias long replays.  0 or 1 keeps every entry
    /// until the capacity is reached.
    explicit stage_trace(std::string name, std::size_t sample_stride = 1);
    /// Pre-filled trace (adds every entry, stride 1); convenience for tests.
    stage_trace(std::string name, const std::vector<double>& service_us);

    /// Folds one per-use service time into the summary.
    void add(double service_us);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::uint64_t count() const noexcept { return digest_.count(); }
    [[nodiscard]] double mean_us() const { return digest_.mean(); }
    [[nodiscard]] double p50_us() const { return digest_.p50(); }
    [[nodiscard]] double p99_us() const { return digest_.p99(); }
    [[nodiscard]] double max_us() const { return digest_.max(); }
    [[nodiscard]] const std::vector<double>& replay_sample() const noexcept { return sample_; }

private:
    std::string name_;
    std::size_t sample_stride_ = 1;
    metrics::latency_digest digest_;
    std::vector<double> sample_;
};

/// Deterministic frame-error burst statistics, folded serially in use order
/// — bit-identical at any thread count and stream_block size, like BER.  A
/// burst is a maximal run of consecutive channel uses whose detected bits
/// were wrong.  On an i.i.d. channel bursts stay near geometric (mean
/// ~1/(1-FER)); under low-Doppler correlated fading errors concentrate into
/// long runs — the regime split tests/channel_stats_test.cpp pins.
struct burst_stats {
    std::uint64_t error_frames = 0;   ///< uses whose detected bits were wrong
    std::uint64_t bursts = 0;         ///< maximal error runs
    std::uint64_t longest_burst = 0;  ///< length of the longest error run

    /// Mean error-run length (0 when the stream had no errors).
    [[nodiscard]] double mean_burst_length() const noexcept;
};

/// Per-path ARQ outcome (present on path_report when link_config::arq is
/// set).  `counters` and `retx_service`'s count are detection-domain
/// (bit-identical at any thread count / stream block); `replay_stats` and
/// `closed_replay` are timing-domain (measured traces, vary run to run).
struct arq_path_report {
    arq::counters counters;        ///< residual FER / retx rate / attempts, exact
    stage_trace retx_service;      ///< measured per-retransmission service (qubo + solve)
    /// Deadline misses, delivered frames, goodput — and the deadline the
    /// replay actually ran against (after `auto` resolution to the
    /// open-loop replay's p99): replay_stats.resolved_deadline_us.  The
    /// configuration itself lives in link_report::config.arq.
    arq::replay_stats replay_stats;
    pipeline::simulation_result closed_replay;  ///< the feedback tandem-queue replay
};

/// Per-path coded-link outcome (present on path_report when
/// link_config::fec is set).  Everything here is detection-domain:
/// bit-identical at any thread count, stream_block size, and workspace
/// setting, like BER.  The attempt-0 statistics are ARQ-independent — they
/// describe the first decode of every frame even when hybrid ARQ then
/// retransmits it (the ARQ outcome lives in arq_path_report, whose frame
/// unit becomes the coded frame when FEC is on).
struct fec_path_report {
    std::uint64_t frames = 0;        ///< coded frames offered
    std::uint64_t frame_errors = 0;  ///< frames whose attempt-0 decode was wrong
    metrics::ber_counter info_ber;   ///< attempt-0 decoded info bits vs true info bits

    /// Coded frame-error rate (attempt 0): decode failures / frames.
    [[nodiscard]] double coded_fer() const noexcept;
};

/// Everything one detection path accumulated over the stream.
struct path_report {
    std::string kind;  ///< registry kind, e.g. "kbest"
    std::string name;  ///< display name, e.g. "K-best"
    std::string spec;  ///< canonical spec, e.g. "kbest:width=8"
    metrics::ber_counter ber;        ///< detected bits vs transmitted bits
    std::size_t exact_frames = 0;    ///< uses whose detected bits match tx exactly
    double sum_ml_cost = 0.0;        ///< sum of ||y - H x_hat||^2 (deterministic)
    burst_stats bursts;              ///< frame-error run structure (deterministic)

    /// Per-stage streaming service summaries, front-end first (synthesis and
    /// QUBO reduction are shared across paths; solve stages are per path —
    /// e.g. the hybrid splits into its classical and quantum halves).
    std::vector<stage_trace> stages;

    /// Parallel-device count per entry of `stages` (1 except for stages a
    /// path declares multi-device, e.g. the kxra quantum stage).
    std::vector<std::size_t> stage_servers;

    /// Total per-use service downstream of the shared synthesis stage (for
    /// the hybrid that is qubo + classical + quantum).
    stage_trace service;

    /// Tandem-queue replay of the measured traces at the configured offered
    /// load and buffering (pipeline::simulate over stage::from_trace with
    /// the link_config's buffer capacity / backpressure policy).
    pipeline::simulation_result replay;

    /// Coded-link outcome; engaged iff link_config::fec was set.
    std::optional<fec_path_report> fec;

    /// ARQ loop outcome; engaged iff link_config::arq was set.  When
    /// link_config::fec is also set the counters count coded FRAMES (hybrid
    /// ARQ at frame granularity), not channel uses.
    std::optional<arq_path_report> arq;

    [[nodiscard]] std::vector<std::string> stage_names() const;
};

/// Full link-simulation outcome.
struct link_report {
    link_config config;
    stage_trace synthesis;  ///< channel + modulation synthesis, shared front-end
    stage_trace reduction;  ///< ML -> QUBO transform, shared by the QUBO-based
                            ///< paths (all-zero when none is configured)
    std::vector<path_report> paths;

    /// First path whose registry kind, display name, or canonical spec
    /// equals `query` (e.g. "sphere", "SD", or "kbest:width=16"); throws
    /// std::out_of_range when absent.
    [[nodiscard]] const path_report& path(std::string_view query) const;
};

/// Runs the stream end to end.  Throws std::invalid_argument on zero uses,
/// users, or stream block, an empty path list, an unknown/malformed path
/// spec, a duplicated canonical spec, a non-positive offered load, or a zero
/// buffer capacity.
[[nodiscard]] link_report run_link_simulation(const link_config& config);

/// One row per path: BER, error-burst length, measured mean/p50/p99 solve
/// service, the replay's
/// sustained throughput and p50/p99 latency (the ARQ budget view), and the
/// replay's drop rate and peak queue occupancy under the configured
/// backpressure policy.  When the link runs coded (link_config::fec), two
/// more columns: coded FER and coded BER (attempt-0 decode, detection
/// domain).  When the ARQ loop is engaged, four more columns: residual FER
/// and retransmission rate (detection domain, bit-identical), deadline-miss
/// rate and goodput (timing domain, from the closed-loop replay).
[[nodiscard]] util::table summary_table(const link_report& report);

}  // namespace hcq::link

#endif  // HCQ_LINK_LINK_SIM_H
