// Steady-state allocation regression gate for the workspace hot path.
//
// Replaces global operator new with a counting wrapper, warms a per-worker
// workspace up on a handful of channel uses, then pins the invariant the
// redesign promises: once warm, a full use — QUBO reduction (where the path
// needs one) plus detection/solve through run_block — performs ZERO heap
// allocations, for a cached linear path (zf), a sweep solver (sa), and the
// hybrid (gsra), even as the channel content changes use to use.
//
// This suite must NOT run under ASan/TSan (the sanitizers interpose their
// own allocator); scripts/verify.sh builds only its named suites for the
// sanitizer jobs, so keeping this file out of those lists is sufficient.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "detect/transform.h"
#include "paths/detection_path.h"
#include "paths/registry.h"
#include "paths/workspace.h"
#include "util/rng.h"
#include "wireless/mimo.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting wrappers for every replaceable allocation form the library can
// reach (plain, aligned, array).  Deallocation is not counted: the gate is
// about acquiring memory on the hot path.
void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) - 1) &
                                         ~(static_cast<std::size_t>(align) - 1))) {
        return p;
    }
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

namespace pt = hcq::paths;
namespace wl = hcq::wireless;
namespace dt = hcq::detect;

/// Runs `spec` over rotating channel instances with one warm workspace and
/// returns the allocation count of the steady-state phase.
std::uint64_t steady_state_allocations(const char* spec) {
    const auto path = pt::registry::make(std::string(spec));
    const bool needs_qubo = path->needs_qubo();

    wl::mimo_config mimo;
    mimo.mod = wl::modulation::qam16;
    mimo.num_users = 4;
    mimo.num_antennas = 4;
    mimo.noise_variance = wl::noise_variance_for_snr(mimo.mod, 4, 16.0);

    // Distinct channel contents so the steady-state phase also exercises
    // decomposition-cache misses (restores into warm buffers, not allocs).
    hcq::util::rng synth_rng(7);
    std::vector<wl::mimo_instance> instances(4);
    for (auto& instance : instances) wl::synthesize_into(synth_rng, mimo, instance);

    pt::workspace ws;
    dt::ml_qubo mq;
    pt::path_result cell;
    hcq::util::rng solve_base(9);
    std::uint64_t use = 0;

    const auto run_use = [&](const wl::mimo_instance& instance) {
        if (needs_qubo) dt::ml_to_qubo_into(instance, ws.detect.qubo, mq);
        hcq::util::rng solve_rng = solve_base.derive(use++);
        const pt::path_context ctx{instance, needs_qubo ? &mq : nullptr, solve_rng, &ws};
        path->run_block(std::span<const pt::path_context>(&ctx, 1),
                        std::span<pt::path_result>(&cell, 1));
    };

    // Warm-up: two full passes size every scratch buffer to its high-water
    // mark (solver reads, cache slots, result vectors).
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto& instance : instances) run_use(instance);
    }

    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int pass = 0; pass < 3; ++pass) {
        for (const auto& instance : instances) run_use(instance);
    }
    return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(AllocRegression, ZfSteadyStateIsAllocationFree) {
    EXPECT_EQ(steady_state_allocations("zf"), 0U);
}

TEST(AllocRegression, SaSteadyStateIsAllocationFree) {
    EXPECT_EQ(steady_state_allocations("sa:reads=4,sweeps=40"), 0U);
}

TEST(AllocRegression, GsraSteadyStateIsAllocationFree) {
    EXPECT_EQ(steady_state_allocations("gsra:reads=4"), 0U);
}

// The counter itself must be live, or the zeros above prove nothing.
TEST(AllocRegression, CounterObservesAllocations) {
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    std::vector<double>* v = new std::vector<double>(1024);
    delete v;
    EXPECT_GT(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
