#include "serve/protocol.h"

#include <cstring>

#include "util/rng.h"

namespace hcq::serve {
namespace {

constexpr std::uint8_t type_request = 1;
constexpr std::uint8_t type_response = 2;

/// Strings inside a payload are capped separately from the frame so a
/// corrupt length cannot demand a huge allocation before the frame bound
/// would catch it.
constexpr std::uint32_t max_string_bytes = 4096;

/// Little-endian byte writer.
class writer {
public:
    void u8(std::uint8_t v) { out_.push_back(v); }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void f64(double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
    void str(const std::string& s) {
        if (s.size() > max_string_bytes) {
            throw protocol_error("serve: encode: string field of " + std::to_string(s.size()) +
                                 " bytes exceeds the " + std::to_string(max_string_bytes) +
                                 "-byte cap");
        }
        u32(static_cast<std::uint32_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }
    void bytes(std::span<const std::uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }

    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

private:
    std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reader; every primitive names the field it
/// is decoding so a truncated payload produces a self-documenting error.
class reader {
public:
    reader(std::span<const std::uint8_t> data, const char* what) : data_(data), what_(what) {}

    [[nodiscard]] std::uint8_t u8(const char* field) {
        need(1, field);
        return data_[pos_++];
    }
    [[nodiscard]] std::uint32_t u32(const char* field) {
        need(4, field);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }
    [[nodiscard]] std::uint64_t u64(const char* field) {
        need(8, field);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }
    [[nodiscard]] double f64(const char* field) {
        const std::uint64_t bits = u64(field);
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    [[nodiscard]] std::string str(const char* field) {
        const std::uint32_t len = u32(field);
        if (len > max_string_bytes) {
            throw protocol_error(std::string("serve: decode ") + what_ + ": field '" + field +
                                 "' declares " + std::to_string(len) + " bytes (cap " +
                                 std::to_string(max_string_bytes) + ")");
        }
        need(len, field);
        std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
        pos_ += len;
        return s;
    }
    [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t len, const char* field) {
        need(len, field);
        const auto view = data_.subspan(pos_, len);
        pos_ += len;
        return view;
    }

    /// Rejects trailing garbage: a payload longer than its fields signals a
    /// framing or version mismatch worth failing loudly on.
    void expect_end() const {
        if (pos_ != data_.size()) {
            throw protocol_error(std::string("serve: decode ") + what_ + ": " +
                                 std::to_string(data_.size() - pos_) +
                                 " trailing byte(s) after the last field");
        }
    }

private:
    void need(std::size_t n, const char* field) const {
        if (data_.size() - pos_ < n) {
            throw protocol_error(std::string("serve: decode ") + what_ +
                                 ": truncated at field '" + field + "' (need " +
                                 std::to_string(n) + " byte(s), have " +
                                 std::to_string(data_.size() - pos_) + ")");
        }
    }

    std::span<const std::uint8_t> data_;
    const char* what_;
    std::size_t pos_ = 0;
};

void check_header(reader& r, const char* what, std::uint8_t expected_type) {
    const std::uint8_t version = r.u8("version");
    if (version != protocol_version) {
        throw protocol_error(std::string("serve: decode ") + what + ": protocol version " +
                             std::to_string(version) + " (this build speaks version " +
                             std::to_string(protocol_version) + ")");
    }
    const std::uint8_t type = r.u8("type");
    if (type != expected_type) {
        throw protocol_error(std::string("serve: decode ") + what + ": payload type " +
                             std::to_string(type) + " (expected " +
                             std::to_string(expected_type) + ")");
    }
}

}  // namespace

const char* to_string(status s) noexcept {
    switch (s) {
        case status::ok: return "ok";
        case status::busy: return "busy";
        case status::deadline: return "deadline";
        case status::bad_request: return "bad-request";
        case status::error: return "error";
    }
    return "unknown";
}

std::uint64_t request_seed(std::uint64_t tenant_id, std::uint64_t request_seq,
                           std::uint64_t seed) {
    return util::rng(seed).derive(tenant_id).derive(request_seq).seed();
}

std::vector<std::uint8_t> encode_request(const request& req) {
    writer w;
    w.u8(protocol_version);
    w.u8(type_request);
    w.u64(req.tenant_id);
    w.u64(req.request_seq);
    w.u64(req.seed);
    w.f64(req.deadline_us);
    w.u32(req.num_uses);
    w.u32(req.num_users);
    w.f64(req.snr_db);
    w.u8(req.noiseless ? 1 : 0);
    w.u8(req.want_soft ? 1 : 0);
    w.str(req.mod);
    w.str(req.spec);
    w.str(req.channel);
    return w.take();
}

request decode_request(std::span<const std::uint8_t> payload) {
    reader r(payload, "request");
    check_header(r, "request", type_request);
    request req;
    req.tenant_id = r.u64("tenant_id");
    req.request_seq = r.u64("request_seq");
    req.seed = r.u64("seed");
    req.deadline_us = r.f64("deadline_us");
    req.num_uses = r.u32("num_uses");
    req.num_users = r.u32("num_users");
    req.snr_db = r.f64("snr_db");
    req.noiseless = r.u8("noiseless") != 0;
    req.want_soft = r.u8("want_soft") != 0;
    req.mod = r.str("mod");
    req.spec = r.str("spec");
    req.channel = r.str("channel");
    r.expect_end();
    if (req.num_uses == 0 || req.num_uses > max_batch_uses) {
        throw protocol_error("serve: decode request: num_uses " + std::to_string(req.num_uses) +
                             " outside 1.." + std::to_string(max_batch_uses));
    }
    return req;
}

std::vector<std::uint8_t> encode_response(const response& resp) {
    writer w;
    w.u8(protocol_version);
    w.u8(type_response);
    w.u8(static_cast<std::uint8_t>(resp.state));
    w.u64(resp.tenant_id);
    w.u64(resp.request_seq);
    w.u32(resp.queue_depth);
    w.u32(resp.in_flight);
    w.f64(resp.queue_wait_us);
    w.str(resp.message);
    w.u32(resp.num_uses);
    w.u32(resp.bits_per_use);
    w.bytes(resp.bits);
    for (const double c : resp.ml_cost) w.f64(c);
    const std::size_t total_bits =
        static_cast<std::size_t>(resp.num_uses) * resp.bits_per_use;
    if (!resp.llrs.empty() && resp.llrs.size() != total_bits) {
        throw protocol_error("serve: encode response: " + std::to_string(resp.llrs.size()) +
                             " LLRs for " + std::to_string(total_bits) + " batch bits");
    }
    w.u8(resp.llrs.empty() ? 0 : 1);
    for (const double l : resp.llrs) w.f64(l);
    w.f64(resp.synth_us);
    w.f64(resp.qubo_us);
    w.f64(resp.solve_us);
    return w.take();
}

response decode_response(std::span<const std::uint8_t> payload) {
    reader r(payload, "response");
    check_header(r, "response", type_response);
    response resp;
    const std::uint8_t state = r.u8("status");
    if (state > static_cast<std::uint8_t>(status::error)) {
        throw protocol_error("serve: decode response: status code " + std::to_string(state) +
                             " (accepted: 0..4)");
    }
    resp.state = static_cast<status>(state);
    resp.tenant_id = r.u64("tenant_id");
    resp.request_seq = r.u64("request_seq");
    resp.queue_depth = r.u32("queue_depth");
    resp.in_flight = r.u32("in_flight");
    resp.queue_wait_us = r.f64("queue_wait_us");
    resp.message = r.str("message");
    resp.num_uses = r.u32("num_uses");
    resp.bits_per_use = r.u32("bits_per_use");
    if (resp.num_uses > max_batch_uses) {
        throw protocol_error("serve: decode response: num_uses " +
                             std::to_string(resp.num_uses) + " exceeds the batch cap " +
                             std::to_string(max_batch_uses));
    }
    if (resp.bits_per_use > 4096) {
        throw protocol_error("serve: decode response: bits_per_use " +
                             std::to_string(resp.bits_per_use) + " is implausible (cap 4096)");
    }
    const std::size_t total_bits =
        static_cast<std::size_t>(resp.num_uses) * resp.bits_per_use;
    const std::size_t packed_len = (total_bits + 7) / 8;
    const auto packed = r.bytes(packed_len, "bits");
    resp.bits.assign(packed.begin(), packed.end());
    resp.ml_cost.resize(resp.num_uses);
    for (std::uint32_t u = 0; u < resp.num_uses; ++u) resp.ml_cost[u] = r.f64("ml_cost");
    const std::uint8_t has_soft = r.u8("has_soft");
    if (has_soft > 1) {
        throw protocol_error("serve: decode response: has_soft flag " +
                             std::to_string(has_soft) + " (accepted: 0 or 1)");
    }
    if (has_soft == 1) {
        // Bounds-check the whole LLR block BEFORE sizing the vector, so a
        // hostile header cannot demand a huge allocation the payload does
        // not back (total_bits is already capped by the checks above).
        const auto llr_bytes = r.bytes(total_bits * 8, "llrs");
        resp.llrs.resize(total_bits);
        for (std::size_t b = 0; b < total_bits; ++b) {
            std::uint64_t v = 0;
            for (int i = 0; i < 8; ++i) {
                v |= static_cast<std::uint64_t>(llr_bytes[b * 8 + i]) << (8 * i);
            }
            std::memcpy(&resp.llrs[b], &v, sizeof(double));
        }
    }
    resp.synth_us = r.f64("synth_us");
    resp.qubo_us = r.f64("qubo_us");
    resp.solve_us = r.f64("solve_us");
    r.expect_end();
    return resp;
}

std::vector<std::uint8_t> frame(std::vector<std::uint8_t> payload) {
    check_frame_length(static_cast<std::uint32_t>(payload.size()));
    std::vector<std::uint8_t> out;
    out.reserve(4 + payload.size());
    const auto len = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void check_frame_length(std::uint32_t payload_len) {
    if (payload_len == 0) {
        throw protocol_error("serve: frame declares an empty payload");
    }
    if (payload_len > max_frame_bytes) {
        throw protocol_error("serve: frame declares " + std::to_string(payload_len) +
                             " payload bytes (cap " + std::to_string(max_frame_bytes) + ")");
    }
}

void pack_bits(std::vector<std::uint8_t>& packed, std::size_t bit_base,
               std::span<const std::uint8_t> use_bits) {
    const std::size_t need = (bit_base + use_bits.size() + 7) / 8;
    if (packed.size() < need) packed.resize(need, 0);
    for (std::size_t b = 0; b < use_bits.size(); ++b) {
        if (use_bits[b] != 0) {
            packed[(bit_base + b) / 8] |= static_cast<std::uint8_t>(1u << ((bit_base + b) % 8));
        }
    }
}

std::vector<std::uint8_t> unpack_bits(std::span<const std::uint8_t> packed,
                                      std::size_t bit_base, std::size_t count) {
    std::vector<std::uint8_t> out(count, 0);
    for (std::size_t b = 0; b < count; ++b) {
        const std::size_t bit = bit_base + b;
        if (bit / 8 >= packed.size()) {
            throw protocol_error("serve: unpack_bits: bit " + std::to_string(bit) +
                                 " beyond the packed buffer (" + std::to_string(packed.size()) +
                                 " bytes)");
        }
        out[b] = (packed[bit / 8] >> (bit % 8)) & 1u;
    }
    return out;
}

}  // namespace hcq::serve
