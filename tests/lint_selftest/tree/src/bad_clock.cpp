// Fixture: wall-clock violations — the banned clocks anywhere, and
// steady_clock / <chrono> outside the timing modules.
#include <chrono>

double fixture_wall_clock() {
    const auto wall = std::chrono::system_clock::now();
    const auto hires = std::chrono::high_resolution_clock::now();
    const auto mono = std::chrono::steady_clock::now();
    (void)wall;
    (void)hires;
    (void)mono;
    return 0.0;
}
