// Figure 6 — "Average distribution of cost function value percentile out of
// 200,000-600,000 anneal samples of 20 instances of 36-variable decoding
// problems for different modulations and algorithms: (Left) forward
// annealing or QuAMax, (Center) reverse annealing starting at a randomly
// picked initial state, (Right) reverse annealing starting at the result
// state of greedy search (hybrid processing with the simplest classical
// solver)."
//
// Paper shape to reproduce: the RA(GS) panel concentrates its mass towards
// Delta-E% = 0, RA(random) is *worse* than FA (skewed to low quality).
#include <optional>
#include <vector>

#include "bench_common.h"
#include "classical/greedy.h"
#include "core/device.h"
#include "core/experiment.h"
#include "core/parallel_runner.h"
#include "core/sweep.h"
#include "metrics/delta_e.h"
#include "metrics/histogram.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace wl = hcq::wireless;
namespace an = hcq::anneal;
namespace hy = hcq::hybrid;

enum class algorithm { fa, ra_random, ra_greedy };

/// Collects Delta-E% for all reads of one algorithm on one instance at one s_p.
std::vector<double> run_samples(const an::annealer_emulator& device,
                                const hy::experiment_instance& e, algorithm algo, double sp,
                                std::size_t reads, hcq::util::rng& rng) {
    std::optional<hcq::qubo::bit_vector> initial;
    an::anneal_schedule schedule = an::anneal_schedule::forward(1.0, sp, 1.0);
    switch (algo) {
        case algorithm::fa:
            break;
        case algorithm::ra_random:
            schedule = an::anneal_schedule::reverse(sp, 1.0);
            initial = rng.bits(e.num_variables());
            break;
        case algorithm::ra_greedy: {
            schedule = an::anneal_schedule::reverse(sp, 1.0);
            initial = hcq::solvers::greedy_search().initialize(e.reduced.model, rng).bits;
            break;
        }
    }
    const auto samples = device.sample(e.reduced.model, schedule, reads, rng, initial);
    std::vector<double> gaps;
    gaps.reserve(samples.size());
    for (const auto& s : samples.all()) {
        gaps.push_back(hcq::metrics::delta_e_percent(s.energy, e.optimal_energy));
    }
    return gaps;
}

/// Picks the best s_p for an algorithm on one instance: highest ground-state
/// rate (the metric behind the paper's TTS), ties broken by mean Delta-E%.
double best_sp(const an::annealer_emulator& device, const hy::experiment_instance& e,
               algorithm algo, std::size_t calib_reads, std::uint64_t seed) {
    const auto grid = hy::paper_sp_grid();
    double best = grid.front();
    double best_rate = -1.0;
    double best_gap = 1e300;
    for (const double sp : grid) {
        double total = 0.0;
        std::size_t hits = 0;
        std::size_t count = 0;
        hcq::util::rng rng(seed);
        for (const double g : run_samples(device, e, algo, sp, calib_reads, rng)) {
            total += g;
            if (g <= 1e-9) ++hits;
            ++count;
        }
        const double rate = static_cast<double>(hits) / static_cast<double>(count);
        const double mean = total / static_cast<double>(count);
        if (rate > best_rate + 1e-12 ||
            (std::fabs(rate - best_rate) <= 1e-12 && mean < best_gap)) {
            best_rate = rate;
            best_gap = mean;
            best = sp;
        }
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Figure 6: solution-quality distributions of FA / RA(random) / RA(GS)",
               "Kim et al., HotNets'20, Section 4.3 / Figure 6");

    const std::size_t instances = ctx.scaled(8);   // paper: 20
    const std::size_t reads = ctx.scaled(500);     // paper: 10,000+/setting
    const std::size_t calib_reads = ctx.scaled(80);
    const std::size_t num_vars = 36;

    const std::vector<algorithm> algos{algorithm::fa, algorithm::ra_random,
                                       algorithm::ra_greedy};

    const hy::parallel_runner runner;

    for (const auto mod : wl::all_modulations()) {
        const std::size_t users = wl::users_for_variables(mod, num_vars);
        const auto corpus = runner.make_corpus(ctx.seed, instances, users, mod);
        const an::annealer_emulator device;

        hcq::util::table t({"Delta-E% bin", "FA", "RA(random)", "RA(GS)"});
        hcq::metrics::histogram hists[3] = {hcq::metrics::histogram(0.0, 20.0, 10),
                                            hcq::metrics::histogram(0.0, 20.0, 10),
                                            hcq::metrics::histogram(0.0, 20.0, 10)};
        double means[3] = {0.0, 0.0, 0.0};
        double optimum_rate[3] = {0.0, 0.0, 0.0};
        double chosen_sp[3] = {0.0, 0.0, 0.0};

        hcq::util::parallel_for(algos.size(), [&](std::size_t a) {
            const algorithm algo = algos[a];
            double total = 0.0;
            double sp_total = 0.0;
            std::size_t hits = 0;
            std::size_t count = 0;
            for (std::size_t i = 0; i < corpus.size(); ++i) {
                // Per-instance best parameter setting, as in the paper's
                // per-instance TTS comparisons.
                const double sp = best_sp(device, corpus[i], algo, calib_reads,
                                          hcq::util::rng(ctx.seed + a).derive(i)());
                sp_total += sp;
                hcq::util::rng rng(hcq::util::rng(ctx.seed + 100 + a).derive(i)());
                for (const double g : run_samples(device, corpus[i], algo, sp, reads, rng)) {
                    hists[a].add(g);
                    total += g;
                    if (g <= 1e-9) ++hits;
                    ++count;
                }
            }
            means[a] = total / static_cast<double>(count);
            optimum_rate[a] = static_cast<double>(hits) / static_cast<double>(count);
            chosen_sp[a] = sp_total / static_cast<double>(corpus.size());
        });

        std::cout << wl::to_string(mod) << " (" << users << " users, " << num_vars
                  << " variables, " << instances << " instances x " << reads
                  << " reads; mean best s_p: FA=" << chosen_sp[0]
                  << " RA(random)=" << chosen_sp[1] << " RA(GS)=" << chosen_sp[2] << ")\n";
        for (std::size_t b = 0; b < hists[0].num_bins(); ++b) {
            char label[64];
            std::snprintf(label, sizeof label, "[%.0f, %.0f)", hists[0].bin_lower(b),
                          hists[0].bin_lower(b) + hists[0].bin_width());
            t.add(label, hists[0].fraction(b), hists[1].fraction(b), hists[2].fraction(b));
        }
        t.add(">= 20", hists[0].fraction(hists[0].num_bins()),
              hists[1].fraction(hists[1].num_bins()), hists[2].fraction(hists[2].num_bins()));
        t.add("mean Delta-E%", means[0], means[1], means[2]);
        t.add("P(optimum)", optimum_rate[0], optimum_rate[1], optimum_rate[2]);
        ctx.emit(t);
    }

    std::cout << "Paper shape check: RA(GS) column concentrates at the lowest bins;\n"
                 "RA(random) carries more high-Delta-E mass than FA.\n";
    return 0;
}
