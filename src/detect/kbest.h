// K-best sphere decoder (Guo & Nilsson [17]) — breadth-first tree search
// with a fixed beam width, giving tunable, parallelism-friendly complexity.
// One of the paper's Section-5 candidates for hybrid initialisation.
#ifndef HCQ_DETECT_KBEST_H
#define HCQ_DETECT_KBEST_H

#include "detect/detector.h"

namespace hcq::detect {

/// Breadth-first detector keeping the `k` lowest-cost partial paths per level.
class kbest_detector final : public detector {
public:
    explicit kbest_detector(std::size_t k = 8);

    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    void detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                     detection_result& out) const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] std::size_t beam_width() const noexcept { return k_; }

private:
    std::size_t k_;
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_KBEST_H
