#!/usr/bin/env bash
# clang-tidy gate: runs the curated .clang-tidy check set over every hcq
# translation unit in a compile_commands.json and fails on any finding not
# covered by the tracked suppression baseline (scripts/tidy_baseline.txt).
#
# Usage:  scripts/run_tidy.sh [-p BUILD_DIR] [--update-baseline] [--help]
#   -p BUILD_DIR        build tree holding compile_commands.json (default:
#                       build-tidy; configured automatically when missing)
#   --update-baseline   rewrite scripts/tidy_baseline.txt from the current
#                       findings instead of failing — review the diff and
#                       justify every retained line before committing
#   --help              print this help
#
# Findings are normalised to "path:check-name" (no line numbers), so the
# baseline survives unrelated edits; a baselined entry suppresses every
# instance of that check in that file, which is why fixing beats baselining.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
    sed -n '/^#/!q; 2,$s/^# \{0,1\}//p' "$0"
}

build_dir="build-tidy"
update_baseline=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        -p) [[ $# -ge 2 ]] || { echo "-p needs a directory" >&2; exit 2; }
            build_dir="$2"; shift 2 ;;
        --update-baseline) update_baseline=1; shift ;;
        --help|-h) usage; exit 0 ;;
        *) echo "unknown argument: $1" >&2; usage >&2; exit 2 ;;
    esac
done

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
    for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                     clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
        if command -v "$candidate" >/dev/null 2>&1; then
            tidy="$candidate"
            break
        fi
    done
fi
if [[ -z "$tidy" ]]; then
    echo "run_tidy: no clang-tidy found (set CLANG_TIDY to override)" >&2
    exit 2
fi
echo "run_tidy: using $($tidy --version | head -n 1)"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "run_tidy: configuring $build_dir for compile_commands.json"
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DHCQ_BUILD_TESTS=OFF -DHCQ_BUILD_EXAMPLES=OFF -DHCQ_BUILD_BENCHES=OFF \
        >/dev/null
fi

# Library sources only: tests/examples/benches compile against gtest and CLI
# scaffolding whose idioms (e.g. benchmark loop clones) drown the signal.
mapfile -t sources < <(find src -name '*.cpp' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
    echo "run_tidy: no sources found under src/" >&2
    exit 2
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

# run-clang-tidy parallelises per TU when available; otherwise xargs does.
if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "$tidy" -p "$build_dir" -j "$jobs" \
        -quiet "${sources[@]/#/^}" >"$log" 2>/dev/null || true
else
    printf '%s\n' "${sources[@]}" |
        xargs -P "$jobs" -I {} "$tidy" -p "$build_dir" --quiet {} \
            >>"$log" 2>/dev/null || true
fi

# Normalise "path:line:col: warning: msg [check]" -> "path:check".
findings="$(sed -n -E \
    's#^.*/?((src|tests|examples|bench)/[^:]+):[0-9]+:[0-9]+: (warning|error): .*\[([a-z0-9.,-]+)\]$#\1:\4#p' \
    "$log" | sort -u)"

baseline_file="scripts/tidy_baseline.txt"
baseline="$(sed -e 's/[[:space:]]*#.*$//' -e '/^$/d' "$baseline_file" | sort -u)"

if [[ $update_baseline -eq 1 ]]; then
    {
        echo "# clang-tidy suppression baseline — one \"path:check-name\" per line."
        echo "# Every entry must carry a trailing '# reason'.  Regenerate with"
        echo "# scripts/run_tidy.sh --update-baseline, then re-justify survivors."
        [[ -n "$findings" ]] && echo "$findings"
    } >"$baseline_file"
    echo "run_tidy: baseline rewritten with $(echo -n "$findings" | grep -c . || true) entries"
    exit 0
fi

new_findings="$(comm -23 <(echo "$findings") <(echo "$baseline"))"
stale_baseline="$(comm -13 <(echo "$findings") <(echo "$baseline"))"

if [[ -n "$stale_baseline" ]]; then
    echo "run_tidy: stale baseline entries (finding no longer fires; remove them):"
    echo "$stale_baseline" | sed 's/^/  /'
fi
if [[ -n "$new_findings" ]]; then
    echo "run_tidy: NEW findings (fix them, or justify in $baseline_file):"
    echo "$new_findings" | sed 's/^/  /'
    echo
    echo "full diagnostics:"
    grep -E ': (warning|error): ' "$log" | sort -u | sed 's/^/  /'
    exit 1
fi
echo "run_tidy: clean ($(echo -n "$findings" | grep -c . || true) baselined finding(s))"
