// Fixture: src/wireless/ is the channel-spec-literal allowlist — no finding
// here (the parser itself has to build the struct it returns).
namespace hcq::wireless {
struct channel_spec {
    const char* kind;
};

channel_spec make_default() { return channel_spec{"rayleigh"}; }
}  // namespace hcq::wireless
