// One coded frame end to end: conv_encoder -> interleaver on the way in,
// deinterleaver -> soft-decision Viterbi on the way out, all configured by
// one fec::code_spec.
//
// A frame is exactly one interleaver block (rows x cols coded bits); the
// codec owns the scratch buffers, so a warmed-up instance encodes and
// decodes without allocating.  Instances are NOT thread-safe (they carry
// scratch) — the link layer keeps one per worker, like paths::workspace.
#ifndef HCQ_FEC_CODEC_H
#define HCQ_FEC_CODEC_H

#include <cstdint>
#include <span>
#include <vector>

#include "fec/code_spec.h"
#include "fec/conv.h"
#include "fec/interleaver.h"
#include "fec/viterbi.h"

namespace hcq::fec {

class codec {
public:
    explicit codec(const code_spec& spec);

    [[nodiscard]] const code_spec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::size_t info_bits() const noexcept { return info_bits_; }
    [[nodiscard]] std::size_t coded_bits() const noexcept { return inter_.size(); }

    /// Encodes one frame of info_bits() information bits into coded_bits()
    /// interleaved coded bits (out resized).  Throws std::invalid_argument
    /// on a length mismatch.
    void encode_frame(std::span<const std::uint8_t> info, std::vector<std::uint8_t>& out);

    /// Decodes one frame from coded_bits() channel LLRs (interleaved order,
    /// sign convention of wireless/soft.h) into info_bits() information bits
    /// (out resized).  Deterministic: a pure function of the LLR vector.
    void decode_frame(std::span<const double> llrs, std::vector<std::uint8_t>& out);

private:
    code_spec spec_;
    std::size_t info_bits_;
    conv_encoder encoder_;
    interleaver inter_;
    viterbi_decoder decoder_;
    std::vector<std::uint8_t> coded_scratch_;
    std::vector<double> llr_scratch_;
    viterbi_decoder::scratch viterbi_scratch_;
};

}  // namespace hcq::fec

#endif  // HCQ_FEC_CODEC_H
