// Annotated synchronisation primitives — the std primitives wrapped so Clang
// Thread Safety Analysis can see them (util/thread_annotations.h).
//
// libstdc++ ships std::mutex without capability attributes, which makes
// GUARDED_BY members unverifiable through it: clang has no idea a
// std::scoped_lock holds anything.  These wrappers restore the contract at
// zero cost — each is a thin shell over the std type with the attributes
// attached — so every mutex-guarded structure in the concurrent core
// (util::thread_pool's task queue, the paths registry map) is checked at
// compile time under -Wthread-safety, not just probed at runtime by TSan.
//
// Usage:
//     util::mutex mutex_;
//     std::queue<task> tasks_ HCQ_GUARDED_BY(mutex_);
//     ...
//     { const util::mutex_lock lock(mutex_); tasks_.push(t); }
//
// Condition-variable waits keep the capability held across the call from the
// analysis's point of view (the lock is held on entry and on return, which
// is the contract callers rely on).  Write wait loops with the predicate in
// the *calling* scope — `while (!ready_) cv_.wait(lock);` — so the analysis
// checks the guarded reads against the held lock; a predicate lambda would
// be analysed as an unannotated separate function.
#ifndef HCQ_UTIL_SYNC_H
#define HCQ_UTIL_SYNC_H

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace hcq::util {

/// Annotated std::mutex.  Prefer util::mutex_lock over calling
/// lock()/unlock() directly; the RAII form cannot leak the capability.
class HCQ_CAPABILITY("mutex") mutex {
public:
    mutex() = default;
    mutex(const mutex&) = delete;
    mutex& operator=(const mutex&) = delete;

    void lock() HCQ_ACQUIRE() { m_.lock(); }
    void unlock() HCQ_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() HCQ_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /// The wrapped std::mutex, for interop with std waiting machinery.
    [[nodiscard]] std::mutex& native() noexcept { return m_; }

private:
    std::mutex m_;
};

/// RAII lock over util::mutex (the std::scoped_lock shape, annotated).
class HCQ_SCOPED_CAPABILITY mutex_lock {
public:
    explicit mutex_lock(mutex& m) HCQ_ACQUIRE(m) : lock_(m.native()) {}
    ~mutex_lock() HCQ_RELEASE() = default;

    mutex_lock(const mutex_lock&) = delete;
    mutex_lock& operator=(const mutex_lock&) = delete;

private:
    friend class cond_var;
    std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a util::mutex_lock.  As with
/// std::condition_variable, every waiter must hold the lock the notifier
/// uses to guard the awaited state.
class cond_var {
public:
    cond_var() = default;
    cond_var(const cond_var&) = delete;
    cond_var& operator=(const cond_var&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /// One blocking wait (atomically releases and reacquires the lock).
    /// Spurious wakeups happen; always call from a predicate loop.
    void wait(mutex_lock& lock) { cv_.wait(lock.lock_); }

private:
    std::condition_variable cv_;
};

}  // namespace hcq::util

#endif  // HCQ_UTIL_SYNC_H
