// Figure 3 — "Empirical results of the simplifying QUBO scheme for 50
// instances of MIMO detection across different problem sizes and
// modulations: (Left) ratio of simplified QUBOs and (Right) average number
// of fixed variables in the simplified cases."
//
// Paper finding to reproduce: the prefixing scheme achieves nearly no effect
// for problems over 32-40 variables, regardless of modulation.
#include <map>
#include <vector>

#include "bench_common.h"
#include "detect/transform.h"
#include "qubo/preprocess.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "wireless/mimo.h"

namespace {

namespace wl = hcq::wireless;

struct cell {
    double simplified_ratio = 0.0;
    double mean_fixed = 0.0;  // among simplified instances
};

cell measure(std::uint64_t seed, std::size_t num_users, wl::modulation mod,
             std::size_t num_instances, bool iterate) {
    std::vector<std::size_t> fixed_counts(num_instances, 0);
    hcq::util::parallel_for(num_instances, [&](std::size_t i) {
        hcq::util::rng rng(hcq::util::rng(seed).derive(i * 4096 + num_users * 8 +
                                                       static_cast<std::size_t>(mod))());
        const auto inst = wl::noiseless_paper_instance(rng, num_users, mod);
        const auto mq = hcq::detect::ml_to_qubo(inst);
        fixed_counts[i] = hcq::qubo::prefix_variables(mq.model, iterate).num_fixed();
    });
    cell out;
    std::size_t simplified = 0;
    std::size_t fixed_total = 0;
    for (const auto f : fixed_counts) {
        if (f > 0) {
            ++simplified;
            fixed_total += f;
        }
    }
    out.simplified_ratio = static_cast<double>(simplified) / static_cast<double>(num_instances);
    out.mean_fixed =
        simplified > 0 ? static_cast<double>(fixed_total) / static_cast<double>(simplified) : 0.0;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Figure 3: QUBO variable-prefixing on MIMO detection problems",
               "Kim et al., HotNets'20, Section 3.1 / Figure 3");

    const std::size_t instances = ctx.scaled(50);  // the paper uses 50
    const bool iterate = ctx.flags.get_bool("iterate", true);

    // Problem sizes (QUBO variables) from very small up to beyond the
    // paper's 32-40 variable no-effect threshold.
    const std::vector<std::size_t> sizes{2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48, 60};

    hcq::util::table left({"variables", "BPSK", "QPSK", "16-QAM", "64-QAM"});
    hcq::util::table right({"variables", "BPSK", "QPSK", "16-QAM", "64-QAM"});

    for (const auto vars : sizes) {
        std::vector<std::string> ratio_row{std::to_string(vars)};
        std::vector<std::string> fixed_row{std::to_string(vars)};
        for (const auto mod : wl::all_modulations()) {
            const std::size_t per = wl::bits_per_symbol(mod);
            if (vars % per != 0 || vars / per == 0) {
                ratio_row.push_back("-");
                fixed_row.push_back("-");
                continue;
            }
            const cell c = measure(ctx.seed, vars / per, mod, instances, iterate);
            ratio_row.push_back(hcq::util::format_double(c.simplified_ratio, 3));
            fixed_row.push_back(hcq::util::format_double(c.mean_fixed, 2));
        }
        left.add_row(ratio_row);
        right.add_row(fixed_row);
    }

    std::cout << "(Left) ratio of instances simplified at all (" << instances
              << " instances/cell):\n";
    ctx.emit(left);
    std::cout << "(Right) mean #fixed variables among simplified instances:\n";
    ctx.emit(right);
    std::cout << "Paper shape check: ratios should collapse to ~0 at >= 32-40 variables\n"
                 "for every modulation.\n";
    return 0;
}
