// Plain geometric-schedule simulated annealing — the standard classical
// baseline for QUBO heuristics, and a reference point distinct from the
// schedule-driven annealer emulator in core/anneal.
#ifndef HCQ_CLASSICAL_SIMULATED_ANNEALING_H
#define HCQ_CLASSICAL_SIMULATED_ANNEALING_H

#include "classical/solver.h"

namespace hcq::solvers {

/// Parameters of the geometric cooling schedule.
struct sa_config {
    std::size_t num_reads = 10;    ///< independent restarts
    std::size_t num_sweeps = 100;  ///< sweeps per read
    double hot_fraction = 1.0;     ///< T_hot = hot_fraction * max|Q|
    double cold_fraction = 1e-3;   ///< T_cold = cold_fraction * max|Q|
};

/// Geometric simulated annealing from uniform random starts.
class simulated_annealing final : public solver {
public:
    explicit simulated_annealing(sa_config config = {});

    [[nodiscard]] sample_set solve(const qubo::qubo_model& q, util::rng& rng) const override;
    double solve_best_into(const qubo::qubo_model& q, util::rng& rng, solve_scratch& scratch,
                           qubo::bit_vector& best) const override;
    [[nodiscard]] std::string name() const override { return "SA"; }

    [[nodiscard]] const sa_config& config() const noexcept { return config_; }

private:
    sa_config config_;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_SIMULATED_ANNEALING_H
