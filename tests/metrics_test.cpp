// Tests for hcq::metrics — running stats, percentiles, histograms, BER, and
// the fixed-memory latency_digest quantile sketch (pinned against the exact
// percentile implementation it replaces in streaming aggregation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "metrics/ber.h"
#include "metrics/digest.h"
#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "util/rng.h"

namespace {

namespace mt = hcq::metrics;

TEST(RunningStats, MeanVarianceMinMax) {
    mt::running_stats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, DegenerateCases) {
    mt::running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(mt::percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(mt::percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(mt::percentile(v, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(mt::median(v), 25.0);
    EXPECT_DOUBLE_EQ(mt::percentile({7.0}, 30.0), 7.0);
}

TEST(Percentile, OrderIndependentAndValidated) {
    EXPECT_DOUBLE_EQ(mt::percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
    EXPECT_THROW((void)mt::percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW((void)mt::percentile({1.0}, -1.0), std::invalid_argument);
    EXPECT_THROW((void)mt::percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
    mt::histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.num_bins(), 5u);
    EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
    h.add(0.0);   // bin 0
    h.add(1.99);  // bin 0
    h.add(2.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(10.0);  // overflow
    h.add(42.0);  // overflow
    h.add(-3.0);  // clamps to bin 0
    EXPECT_EQ(h.count(0), 3u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, FractionsAndCdf) {
    mt::histogram h(0.0, 4.0, 4);
    for (const double x : {0.5, 1.5, 1.6, 2.5, 3.5, 3.6, 3.7, 9.0}) h.add(x);
    EXPECT_DOUBLE_EQ(h.fraction(0), 1.0 / 8.0);
    EXPECT_DOUBLE_EQ(h.fraction(1), 2.0 / 8.0);
    EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 3.0 / 8.0);
    EXPECT_DOUBLE_EQ(h.cumulative_fraction(3), 7.0 / 8.0);
    EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 1.0);  // incl. overflow
}

TEST(Histogram, BinGeometry) {
    mt::histogram h(-1.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.bin_lower(0), -1.0);
    EXPECT_DOUBLE_EQ(h.bin_center(0), -0.75);
    EXPECT_DOUBLE_EQ(h.bin_lower(3), 0.5);
    EXPECT_EQ(h.bin_index(-0.999), 0u);
    EXPECT_EQ(h.bin_index(0.999), 3u);
    EXPECT_EQ(h.bin_index(1.0), 4u);  // overflow index
}

TEST(Histogram, Validation) {
    EXPECT_THROW(mt::histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(mt::histogram(0.0, 1.0, 0), std::invalid_argument);
    mt::histogram h(0.0, 1.0, 2);
    EXPECT_THROW((void)h.count(5), std::out_of_range);
    EXPECT_THROW((void)h.bin_lower(5), std::out_of_range);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);  // empty histogram
}

TEST(Ber, CountsErrors) {
    const std::vector<std::uint8_t> a{0, 1, 0, 1};
    const std::vector<std::uint8_t> b{0, 1, 1, 0};
    EXPECT_EQ(mt::bit_errors(a, b), 2u);
    EXPECT_EQ(mt::bit_errors(a, a), 0u);
    const std::vector<std::uint8_t> c{0};
    EXPECT_THROW((void)mt::bit_errors(a, c), std::invalid_argument);
}

TEST(Ber, CounterAccumulates) {
    mt::ber_counter counter;
    EXPECT_DOUBLE_EQ(counter.rate(), 0.0);
    const std::vector<std::uint8_t> ref{0, 0, 0, 0};
    const std::vector<std::uint8_t> det{0, 1, 0, 0};
    counter.add_frame(ref, det);
    counter.add_frame(ref, ref);
    EXPECT_EQ(counter.errors(), 1u);
    EXPECT_EQ(counter.total_bits(), 8u);
    EXPECT_DOUBLE_EQ(counter.rate(), 0.125);
}

TEST(LatencyDigest, EmptyAndSingleSampleAreExact) {
    mt::latency_digest d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.quantile(50.0), 0.0);
    d.add(42.5);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 42.5);
    // Clamping into [min, max] makes every quantile of a single-sample (or
    // all-equal) stream exact.
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 42.5);
    EXPECT_DOUBLE_EQ(d.p50(), 42.5);
    EXPECT_DOUBLE_EQ(d.p99(), 42.5);
    EXPECT_DOUBLE_EQ(d.min(), 42.5);
    EXPECT_DOUBLE_EQ(d.max(), 42.5);
}

TEST(LatencyDigest, TracksExactPercentilesWithinBinResolution) {
    // The streaming-aggregation regression: the digest's p50/p99 must land
    // within its documented ~0.4% relative error of metrics::percentile
    // (the exact per-cell implementation it replaces) on latency-shaped
    // data spanning several orders of magnitude.
    hcq::util::rng rng(99);
    mt::latency_digest d;
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::exp(rng.normal(std::log(50.0), 1.5));  // heavy tail
        values.push_back(v);
        d.add(v);
    }
    for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
        SCOPED_TRACE(p);
        const double exact = mt::percentile(values, p);
        EXPECT_NEAR(d.quantile(p), exact, 0.01 * exact);
    }
    EXPECT_DOUBLE_EQ(d.min(), *std::min_element(values.begin(), values.end()));
    EXPECT_DOUBLE_EQ(d.max(), *std::max_element(values.begin(), values.end()));
}

TEST(LatencyDigest, QuantilesAreMonotoneAndClamped) {
    mt::latency_digest d;
    for (const double v : {1.0, 10.0, 100.0, 1000.0}) d.add(v);
    double prev = 0.0;
    for (const double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
        const double q = d.quantile(p);
        EXPECT_GE(q, prev);
        EXPECT_GE(q, d.min());
        EXPECT_LE(q, d.max());
        prev = q;
    }
}

TEST(LatencyDigest, OutOfRangeSamplesLandInUnderOverflowBuckets) {
    mt::latency_digest d(1.0, 100.0, 16);
    d.add(0.0);     // below lo: underflow bucket
    d.add(0.5);     // below lo
    d.add(1e6);     // above hi: overflow bucket
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);   // extrema stay exact
    EXPECT_DOUBLE_EQ(d.max(), 1e6);
    // Low quantiles clamp to min, high ones to max.
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.quantile(100.0), 1e6);
}

TEST(LatencyDigest, MergeEqualsConcatenation) {
    mt::latency_digest a;
    mt::latency_digest b;
    mt::latency_digest both;
    hcq::util::rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const double v = 1.0 + 50.0 * rng.uniform();
        ((i % 2 == 0) ? a : b).add(v);
        both.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_DOUBLE_EQ(a.min(), both.min());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
    EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
    for (const double p : {10.0, 50.0, 99.0}) {
        EXPECT_DOUBLE_EQ(a.quantile(p), both.quantile(p));
    }
    mt::latency_digest other_geometry(1.0, 10.0, 4);
    EXPECT_THROW(a.merge(other_geometry), std::invalid_argument);
}

TEST(LatencyDigest, Validation) {
    EXPECT_THROW((void)mt::latency_digest(0.0, 1.0, 8), std::invalid_argument);
    EXPECT_THROW((void)mt::latency_digest(2.0, 1.0, 8), std::invalid_argument);
    EXPECT_THROW((void)mt::latency_digest(1.0, 2.0, 0), std::invalid_argument);
    mt::latency_digest d;
    EXPECT_THROW(d.add(-1.0), std::invalid_argument);
    EXPECT_THROW((void)d.quantile(101.0), std::invalid_argument);
    EXPECT_THROW((void)d.quantile(-1.0), std::invalid_argument);
}

}  // namespace
