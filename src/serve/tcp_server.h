// Async TCP front end over the detection-path registry: one IO thread
// multiplexes every client session through a serve::poller (epoll or poll),
// while a util::thread_pool of workers executes batches against the device
// bank.  The two sides meet in a mutex-guarded admission queue (requests in)
// and completion queue (framed responses out).
//
// Admission control reuses the pipeline layer's backpressure vocabulary
// (pipeline::backpressure) with server semantics:
//
//   block        When the admission queue is full the IO thread stops
//                reading client sockets entirely — bytes pile up in the
//                kernel buffers, the TCP window closes, and senders stall.
//                Nothing is rejected; latency absorbs the overload.
//   drop_newest  A request arriving at a full queue is answered
//                status::busy immediately (503-style load shedding).
//   drop_oldest  The longest-waiting queued request is evicted and answered
//                status::busy; the newcomer takes its place.  Freshness
//                beats fairness.
//
// Independently of policy, a request whose queue wait exceeds its own
// deadline_us is answered status::deadline by the worker WITHOUT being
// solved — a per-request latency budget on top of the global queue bound.
//
// Threading contract: sessions_, the poller, and the fd maps belong to the
// IO thread exclusively (no locks).  Workers communicate only through the
// guarded queues plus wake_pipe.  Completions route by monotonic session id,
// never by fd, so a response for a closed session is dropped instead of
// being delivered to whichever new client inherited the fd.
#ifndef HCQ_SERVE_TCP_SERVER_H
#define HCQ_SERVE_TCP_SERVER_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "pipeline/pipeline.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "serve/socket.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hcq::serve {

struct server_config {
    std::uint16_t port = 0;         ///< 0 = kernel-assigned ephemeral (see tcp_server::port)
    std::size_t num_workers = 4;    ///< worker-pool threads executing batches
    std::size_t admission_capacity = 256;  ///< max queued (not yet executing) requests
    pipeline::backpressure policy = pipeline::backpressure::block;
    poller::backend poll_backend = poller::default_backend();
    int listen_backlog = 128;
};

/// Monotonic counters, readable at any time via tcp_server::stats().
struct server_stats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t requests_admitted = 0;
    std::uint64_t served_ok = 0;
    std::uint64_t rejected_busy = 0;      ///< admission-policy rejections (both drop flavours)
    std::uint64_t rejected_deadline = 0;  ///< queue wait exceeded the request's budget
    std::uint64_t bad_requests = 0;       ///< malformed frames / invalid specs
    std::uint64_t internal_errors = 0;
    std::uint64_t evictions = 0;          ///< drop_oldest evictions (subset of rejected_busy)
};

/// The server.  The constructor binds 127.0.0.1:port, spins up the worker
/// pool and the IO thread, and starts accepting; the destructor (or stop())
/// shuts everything down.  Throws std::runtime_error when the port cannot
/// be bound.
class tcp_server {
public:
    explicit tcp_server(server_config config);
    ~tcp_server();

    tcp_server(const tcp_server&) = delete;
    tcp_server& operator=(const tcp_server&) = delete;

    /// The actually bound port (resolves an ephemeral port 0 request).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    [[nodiscard]] const server_config& config() const noexcept { return config_; }

    /// Consistent snapshot of the counters.
    [[nodiscard]] server_stats stats() const HCQ_EXCLUDES(mutex_);

    /// Worker-pool queue state (exercises util::thread_pool::snapshot).
    [[nodiscard]] util::thread_pool::queue_snapshot pool_snapshot() const {
        return pool_->snapshot();
    }

    /// Stops accepting, abandons queued-but-unstarted requests, waits for
    /// in-flight batches, and joins all threads.  Idempotent.
    void stop() HCQ_EXCLUDES(mutex_);

private:
    /// One queued request awaiting a worker.
    struct work_item {
        std::uint64_t session_id = 0;
        request req;
        util::timer queued_at;  ///< started at admission; measures queue wait
    };

    /// One framed response travelling worker -> IO thread.
    struct completion {
        std::uint64_t session_id = 0;
        std::vector<std::uint8_t> frame_bytes;
        bool close_after = false;  ///< bad_request: framing downstream is untrusted
    };

    enum class input_verdict { drained, parked };

    void io_loop();
    void accept_clients();
    /// Extracts and admits every complete frame buffered on `s`; returns
    /// parked when the block policy paused intake mid-buffer.  Throws
    /// protocol_error on an unparseable stream.
    input_verdict process_input(session& s) HCQ_EXCLUDES(mutex_);
    /// process_input with the protocol_error handler attached: on an
    /// unparseable stream answers status::bad_request and closes the
    /// session.  Returns false when the session was closed.
    bool process_or_close(std::uint64_t session_id, session& s) HCQ_EXCLUDES(mutex_);
    void admit(session& s, request req) HCQ_EXCLUDES(mutex_);
    void drain_one() HCQ_EXCLUDES(mutex_);  ///< worker-side: pop + serve one item
    void drain_completions() HCQ_EXCLUDES(mutex_);
    void send_to_session(std::uint64_t session_id, std::vector<std::uint8_t> frame_bytes,
                         bool close_after);
    void close_session(std::uint64_t session_id) HCQ_EXCLUDES(mutex_);
    void update_interest(session& s);
    void pause_reads();
    void resume_reads();
    [[nodiscard]] bool admission_full() const HCQ_EXCLUDES(mutex_);
    [[nodiscard]] bool stop_requested() const HCQ_EXCLUDES(mutex_);
    [[nodiscard]] response rejection(const request& req, status st, double wait_us,
                                     const std::string& message) HCQ_EXCLUDES(mutex_);
    void bump(std::uint64_t server_stats::* counter) HCQ_EXCLUDES(mutex_);

    server_config config_;
    std::uint16_t port_ = 0;
    unique_fd listener_;
    wake_pipe wake_;
    poller poller_;
    std::unique_ptr<util::thread_pool> pool_;
    std::thread io_thread_;
    bool stopped_ = false;  ///< set once stop() has fully run (main thread only)

    // --- IO-thread-only state (unsynchronised by design) ---
    std::map<std::uint64_t, session> sessions_;
    std::map<int, std::uint64_t> fd_to_id_;
    std::uint64_t next_session_id_ = 1;
    bool paused_ = false;  ///< block policy engaged: socket reads suspended

    // --- shared state ---
    mutable util::mutex mutex_;
    bool stop_ HCQ_GUARDED_BY(mutex_) = false;
    std::deque<work_item> pending_ HCQ_GUARDED_BY(mutex_);
    std::deque<completion> completions_ HCQ_GUARDED_BY(mutex_);
    server_stats stats_ HCQ_GUARDED_BY(mutex_);
};

}  // namespace hcq::serve

#endif  // HCQ_SERVE_TCP_SERVER_H
