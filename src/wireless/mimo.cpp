#include "wireless/mimo.h"

#include <cmath>
#include <stdexcept>

namespace hcq::wireless {

double mimo_instance::ml_cost(const linalg::cvec& x) const {
    if (x.size() != num_users) throw std::invalid_argument("ml_cost: wrong symbol count");
    linalg::cvec residual = y;
    residual -= h * x;
    const double n = residual.norm2();
    return n * n;
}

double mimo_instance::ml_cost_bits(std::span<const std::uint8_t> bits) const {
    return ml_cost(modulate(mod, bits));
}

mimo_instance synthesize(util::rng& rng, const mimo_config& config) {
    if (config.num_users == 0 || config.num_antennas == 0) {
        throw std::invalid_argument("synthesize: empty dimensions");
    }
    if (config.num_antennas < config.num_users) {
        throw std::invalid_argument("synthesize: needs num_antennas >= num_users");
    }
    mimo_instance inst;
    inst.mod = config.mod;
    inst.num_users = config.num_users;
    inst.num_antennas = config.num_antennas;
    inst.h = draw_channel(rng, config.channel, config.num_antennas, config.num_users);
    inst.tx_bits = rng.bits(config.num_users * bits_per_symbol(config.mod));
    inst.tx_symbols = modulate(config.mod, inst.tx_bits);
    inst.y = inst.h * inst.tx_symbols;
    inst.noise_variance = config.noise_variance;
    add_awgn(rng, inst.y, config.noise_variance);
    return inst;
}

mimo_instance synthesize_at(util::rng& rng, const mimo_config& config,
                            const channel_process& process, double t,
                            double csi_error_variance) {
    if (config.num_users == 0 || config.num_antennas == 0) {
        throw std::invalid_argument("synthesize_at: empty dimensions");
    }
    if (config.num_antennas < config.num_users) {
        throw std::invalid_argument("synthesize_at: needs num_antennas >= num_users");
    }
    if (process.num_antennas() != config.num_antennas ||
        process.num_users() != config.num_users) {
        throw std::invalid_argument("synthesize_at: process dimensions mismatch config");
    }
    if (csi_error_variance < 0.0) {
        throw std::invalid_argument("synthesize_at: negative csi_error_variance");
    }
    mimo_instance inst;
    inst.mod = config.mod;
    inst.num_users = config.num_users;
    inst.num_antennas = config.num_antennas;
    // Same per-use draw order as synthesize: channel, bits, AWGN — with the
    // estimation-error perturbation appended strictly after, and only when
    // active, so est_err == 0 stays byte-identical to the legacy path.
    inst.h = process.at(t, rng);
    inst.tx_bits = rng.bits(config.num_users * bits_per_symbol(config.mod));
    inst.tx_symbols = modulate(config.mod, inst.tx_bits);
    inst.y = inst.h * inst.tx_symbols;
    inst.noise_variance = config.noise_variance;
    add_awgn(rng, inst.y, config.noise_variance);
    if (csi_error_variance > 0.0) {
        inst.h_true = inst.h;
        inst.csi_error_variance = csi_error_variance;
        const double sigma_per_dim = std::sqrt(csi_error_variance / 2.0);
        for (std::size_t r = 0; r < inst.h.rows(); ++r) {
            for (std::size_t c = 0; c < inst.h.cols(); ++c) {
                inst.h(r, c) += linalg::cxd(rng.normal(0.0, sigma_per_dim),
                                            rng.normal(0.0, sigma_per_dim));
            }
        }
    }
    return inst;
}

mimo_instance noiseless_paper_instance(util::rng& rng, std::size_t num_users, modulation mod) {
    mimo_config config;
    config.mod = mod;
    config.num_users = num_users;
    config.num_antennas = num_users;
    config.channel = channel_model::unit_gain_random_phase;
    config.noise_variance = 0.0;
    return synthesize(rng, config);
}

std::size_t users_for_variables(modulation mod, std::size_t num_variables) {
    const std::size_t per = bits_per_symbol(mod);
    if (num_variables == 0 || num_variables % per != 0) {
        throw std::invalid_argument("users_for_variables: " + std::to_string(num_variables) +
                                    " variables not divisible by " + to_string(mod));
    }
    return num_variables / per;
}

}  // namespace hcq::wireless
