// Tests for hcq::linalg — matrix/vector algebra, QR, solves, Cholesky, and
// the real embedding of complex systems.
#include <gtest/gtest.h>

#include "linalg/decompose.h"
#include "linalg/matrix.h"
#include "linalg/real_embed.h"
#include "util/rng.h"

namespace {

using hcq::linalg::cmat;
using hcq::linalg::cvec;
using hcq::linalg::cxd;
using hcq::linalg::rmat;
using hcq::linalg::rvec;

cmat random_cmat(hcq::util::rng& rng, std::size_t r, std::size_t c) {
    cmat m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) m(i, j) = cxd(rng.normal(), rng.normal());
    }
    return m;
}

rmat random_rmat(hcq::util::rng& rng, std::size_t r, std::size_t c) {
    rmat m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
    }
    return m;
}

cvec random_cvec(hcq::util::rng& rng, std::size_t n) {
    cvec v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = cxd(rng.normal(), rng.normal());
    return v;
}

TEST(Matrix, ZeroConstructionAndShape) {
    const cmat m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m(2, 3), cxd(0.0, 0.0));
}

TEST(Matrix, InitializerListAndAt) {
    const rmat m(2, 2, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
    EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
    EXPECT_THROW(rmat(2, 2, {1.0}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
    hcq::util::rng rng(1);
    const cmat a = random_cmat(rng, 4, 4);
    const cmat i4 = cmat::identity(4);
    const cmat prod = a * i4;
    EXPECT_NEAR((prod - a).norm_fro(), 0.0, 1e-12);
}

TEST(Matrix, MultiplyKnownValues) {
    const rmat a(2, 3, {1, 2, 3, 4, 5, 6});
    const rmat b(3, 2, {7, 8, 9, 10, 11, 12});
    const rmat c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
    const rmat a(2, 3);
    const rmat b(2, 3);
    EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(Matrix, AdditionSubtractionScaling) {
    const rmat a(1, 2, {1, 2});
    const rmat b(1, 2, {10, 20});
    const rmat sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 1), 22.0);
    const rmat diff = b - a;
    EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
    const rmat scaled = a * 3.0;
    EXPECT_DOUBLE_EQ(scaled(0, 1), 6.0);
    EXPECT_THROW((void)(a + rmat(2, 2)), std::invalid_argument);
}

TEST(Matrix, HermitianConjugates) {
    cmat m(1, 2);
    m(0, 0) = cxd(1.0, 2.0);
    m(0, 1) = cxd(3.0, -4.0);
    const cmat h = m.hermitian();
    EXPECT_EQ(h.rows(), 2u);
    EXPECT_EQ(h(0, 0), cxd(1.0, -2.0));
    EXPECT_EQ(h(1, 0), cxd(3.0, 4.0));
}

TEST(Matrix, TransposeDoesNotConjugate) {
    cmat m(1, 2);
    m(0, 0) = cxd(1.0, 2.0);
    const cmat t = m.transpose();
    EXPECT_EQ(t(0, 0), cxd(1.0, 2.0));
}

TEST(Matrix, FrobeniusNorm) {
    const rmat m(2, 2, {3, 0, 0, 4});
    EXPECT_DOUBLE_EQ(m.norm_fro(), 5.0);
}

TEST(Vector, NormAndArithmetic) {
    const rvec v({3.0, 4.0});
    EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
    rvec w({1.0, 1.0});
    w += v;
    EXPECT_DOUBLE_EQ(w[0], 4.0);
    w -= v;
    EXPECT_DOUBLE_EQ(w[1], 1.0);
    EXPECT_THROW(w += rvec(3), std::invalid_argument);
}

TEST(Vector, InnerProductConjugatesFirstArgument) {
    const cvec a({cxd(0.0, 1.0)});
    const cvec b({cxd(0.0, 1.0)});
    const cxd ip = inner(a, b);
    EXPECT_NEAR(ip.real(), 1.0, 1e-15);
    EXPECT_NEAR(ip.imag(), 0.0, 1e-15);
}

TEST(Vector, MatVecKnownValues) {
    const rmat a(2, 2, {1, 2, 3, 4});
    const rvec x({1.0, 1.0});
    const rvec y = a * x;
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_THROW((void)(a * rvec(3)), std::invalid_argument);
}

class QrShapes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapes, ComplexQrReconstructsAndIsOrthonormal) {
    const auto [m, n] = GetParam();
    hcq::util::rng rng(m * 100 + n);
    const cmat a = random_cmat(rng, m, n);
    const auto qr = hcq::linalg::householder_qr(a);

    const cmat qhq = qr.q.hermitian() * qr.q;
    EXPECT_NEAR((qhq - cmat::identity(n)).norm_fro(), 0.0, 1e-9);

    const cmat recon = qr.q * qr.r;
    EXPECT_NEAR((recon - a).norm_fro(), 0.0, 1e-9);

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            EXPECT_NEAR(std::abs(qr.r(i, j)), 0.0, 1e-12);
        }
        EXPECT_GT(qr.r(i, i).real(), 0.0);          // diagonal real positive
        EXPECT_NEAR(qr.r(i, i).imag(), 0.0, 1e-9);  // by construction
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrShapes,
                         ::testing::Values(std::make_pair(std::size_t{2}, std::size_t{2}),
                                           std::make_pair(std::size_t{4}, std::size_t{3}),
                                           std::make_pair(std::size_t{8}, std::size_t{8}),
                                           std::make_pair(std::size_t{16}, std::size_t{8}),
                                           std::make_pair(std::size_t{12}, std::size_t{12})));

TEST(Qr, RealMatrixAlsoWorks) {
    hcq::util::rng rng(5);
    const rmat a = random_rmat(rng, 6, 4);
    const auto qr = hcq::linalg::householder_qr(a);
    EXPECT_NEAR((qr.q * qr.r - a).norm_fro(), 0.0, 1e-10);
}

TEST(Qr, RejectsUnderdeterminedAndEmpty) {
    EXPECT_THROW((void)hcq::linalg::householder_qr(rmat(2, 3)), std::invalid_argument);
    EXPECT_THROW((void)hcq::linalg::householder_qr(rmat(0, 0)), std::invalid_argument);
}

TEST(Qr, DetectsRankDeficiency) {
    rmat a(3, 2);
    a(0, 0) = 1.0;
    a(1, 0) = 2.0;
    a(2, 0) = 3.0;
    // Second column is a multiple of the first.
    a(0, 1) = 2.0;
    a(1, 1) = 4.0;
    a(2, 1) = 6.0;
    EXPECT_THROW((void)hcq::linalg::householder_qr(a), std::runtime_error);
}

TEST(Solve, UpperTriangular) {
    const rmat r(2, 2, {2.0, 1.0, 0.0, 4.0});
    const rvec b({5.0, 8.0});
    const rvec x = hcq::linalg::solve_upper(r, b);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[0], 1.5, 1e-12);
    EXPECT_THROW((void)hcq::linalg::solve_upper(r, rvec(3)), std::invalid_argument);
}

TEST(Solve, LowerTriangular) {
    const rmat l(2, 2, {2.0, 0.0, 1.0, 4.0});
    const rvec b({4.0, 10.0});
    const rvec x = hcq::linalg::solve_lower(l, b);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularThrows) {
    const rmat r(2, 2, {1.0, 1.0, 0.0, 0.0});
    EXPECT_THROW((void)hcq::linalg::solve_upper(r, rvec(2)), std::runtime_error);
}

TEST(LeastSquares, RecoversExactSolution) {
    hcq::util::rng rng(9);
    const cmat a = random_cmat(rng, 10, 6);
    const cvec x_true = random_cvec(rng, 6);
    const cvec y = a * x_true;
    const cvec x = hcq::linalg::least_squares(a, y);
    cvec diff = x;
    diff -= x_true;
    EXPECT_NEAR(diff.norm2(), 0.0, 1e-9);
}

TEST(LeastSquares, MinimisesResidualAgainstPerturbations) {
    hcq::util::rng rng(10);
    const cmat a = random_cmat(rng, 8, 4);
    const cvec y = random_cvec(rng, 8);
    const cvec x = hcq::linalg::least_squares(a, y);
    cvec base = y;
    base -= a * x;
    const double best = base.norm2();
    for (int trial = 0; trial < 10; ++trial) {
        cvec xp = x;
        xp[rng.uniform_index(4)] += cxd(rng.normal() * 0.1, rng.normal() * 0.1);
        cvec res = y;
        res -= a * xp;
        EXPECT_GE(res.norm2() + 1e-12, best);
    }
}

TEST(Inverse, RoundTrip) {
    hcq::util::rng rng(12);
    const cmat a = random_cmat(rng, 5, 5);
    const cmat inv = hcq::linalg::inverse(a);
    EXPECT_NEAR((a * inv - cmat::identity(5)).norm_fro(), 0.0, 1e-9);
    EXPECT_NEAR((inv * a - cmat::identity(5)).norm_fro(), 0.0, 1e-9);
    EXPECT_THROW((void)hcq::linalg::inverse(cmat(2, 3)), std::invalid_argument);
}

TEST(Cholesky, FactorsHermitianPositiveDefinite) {
    hcq::util::rng rng(15);
    const cmat b = random_cmat(rng, 6, 4);
    cmat a = b.hermitian() * b;  // PSD; add ridge to make PD
    for (std::size_t i = 0; i < 4; ++i) a(i, i) += 0.5;
    const cmat l = hcq::linalg::cholesky(a);
    EXPECT_NEAR((l * l.hermitian() - a).norm_fro(), 0.0, 1e-9);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = i + 1; j < 4; ++j) EXPECT_EQ(l(i, j), cxd(0.0, 0.0));
    }
}

TEST(Cholesky, RejectsIndefinite) {
    rmat a(2, 2, {1.0, 2.0, 2.0, 1.0});  // eigenvalues 3, -1
    EXPECT_THROW((void)hcq::linalg::cholesky(a), std::runtime_error);
}

TEST(RealEmbed, MatrixBlocksCorrect) {
    cmat h(1, 1);
    h(0, 0) = cxd(2.0, 3.0);
    const rmat e = hcq::linalg::real_embedding(h);
    ASSERT_EQ(e.rows(), 2u);
    ASSERT_EQ(e.cols(), 2u);
    EXPECT_DOUBLE_EQ(e(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(e(0, 1), -3.0);
    EXPECT_DOUBLE_EQ(e(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(e(1, 1), 2.0);
}

TEST(RealEmbed, ProductCommutesWithEmbedding) {
    hcq::util::rng rng(21);
    const cmat h = random_cmat(rng, 4, 3);
    const cvec x = random_cvec(rng, 3);
    const cvec y = h * x;
    const rvec y_embed = hcq::linalg::real_embedding(y);
    const rvec y_via_real = hcq::linalg::real_embedding(h) * hcq::linalg::real_embedding(x);
    rvec diff = y_embed;
    diff -= y_via_real;
    EXPECT_NEAR(diff.norm2(), 0.0, 1e-12);
}

TEST(RealEmbed, VectorRoundTrip) {
    hcq::util::rng rng(22);
    const cvec v = random_cvec(rng, 5);
    const cvec back = hcq::linalg::complex_from_embedding(hcq::linalg::real_embedding(v));
    cvec diff = back;
    diff -= v;
    EXPECT_NEAR(diff.norm2(), 0.0, 1e-15);
    EXPECT_THROW((void)hcq::linalg::complex_from_embedding(rvec(3)), std::invalid_argument);
}

}  // namespace
