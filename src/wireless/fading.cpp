// hcq-hot-path: steady-state code in this file must not allocate — reuse
// workspace scratch (enforced by the hot-path-alloc lint rule).
#include "wireless/fading.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hcq::wireless {

fading_tap::fading_tap(util::rng& rng, fading_spectrum spectrum, double doppler_norm,
                       std::size_t num_sinusoids, double shift_norm) {
    if (num_sinusoids == 0) {
        throw std::invalid_argument("fading_tap: needs at least one sinusoid");
    }
    if (!(doppler_norm >= 0.0) || !std::isfinite(doppler_norm)) {
        throw std::invalid_argument("fading_tap: doppler_norm must be finite and >= 0");
    }
    constexpr double two_pi = 2.0 * std::numbers::pi;
    sinusoids_.resize(num_sinusoids);
    for (auto& s : sinusoids_) {
        switch (spectrum) {
            case fading_spectrum::jakes:
                // Isotropic arrival: w = 2*pi*fd*cos(alpha), alpha ~ U[0, 2pi).
                s.omega = two_pi * doppler_norm * std::cos(rng.angle());
                break;
            case fading_spectrum::gaussian:
                // Watterson tap: Gaussian spread around the Doppler shift.
                s.omega = two_pi * (shift_norm + doppler_norm * rng.normal());
                break;
        }
        s.phase_i = rng.angle();
        s.phase_q = rng.angle();
    }
    amplitude_ = 1.0 / std::sqrt(static_cast<double>(num_sinusoids));
}

linalg::cxd fading_tap::gain(double t) const noexcept {
    double gain_i = 0.0;
    double gain_q = 0.0;
    for (const auto& s : sinusoids_) {
        const double arg = s.omega * t;
        gain_i += std::cos(arg + s.phase_i);
        gain_q += std::cos(arg + s.phase_q);
    }
    return {amplitude_ * gain_i, amplitude_ * gain_q};
}

double jakes_autocorrelation(double doppler_norm, double tau) {
    return bessel_j0(2.0 * std::numbers::pi * doppler_norm * tau);
}

double gaussian_autocorrelation(double spread_norm, double tau) {
    const double x = std::numbers::pi * spread_norm * tau;
    return std::exp(-2.0 * x * x);
}

double bessel_j0(double x) {
    // Abramowitz & Stegun 9.4.1 (|x| <= 3) and 9.4.3 (|x| > 3).
    const double ax = std::fabs(x);
    if (ax <= 3.0) {
        const double y = (x / 3.0) * (x / 3.0);
        return 1.0 +
               y * (-2.2499997 +
                    y * (1.2656208 +
                         y * (-0.3163866 +
                              y * (0.0444479 + y * (-0.0039444 + y * 0.0002100)))));
    }
    const double y = 3.0 / ax;
    const double f0 = 0.79788456 +
                      y * (-0.00000077 +
                           y * (-0.00552740 +
                                y * (-0.00009512 +
                                     y * (0.00137237 +
                                          y * (-0.00072805 + y * 0.00014476)))));
    const double theta0 = ax - 0.78539816 +
                          y * (-0.04166397 +
                               y * (-0.00003954 +
                                    y * (0.00262573 +
                                         y * (-0.00054125 +
                                              y * (-0.00029333 + y * 0.00013558)))));
    return f0 * std::cos(theta0) / std::sqrt(ax);
}

}  // namespace hcq::wireless
