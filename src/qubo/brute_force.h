// Exact QUBO minimisation by Gray-code exhaustive enumeration.
//
// Visits all 2^N assignments flipping exactly one bit per step, so each step
// costs one O(N) local-field evaluation.  Practical to ~26 variables; used as
// the ground-truth oracle in tests and for small evaluation instances.  (The
// paper's noiseless corpus does not need it — there the transmitted bits are
// the global optimum by construction — but an oracle with no such assumption
// is required to *verify* that property.)
#ifndef HCQ_QUBO_BRUTE_FORCE_H
#define HCQ_QUBO_BRUTE_FORCE_H

#include "qubo/model.h"

namespace hcq::qubo {

/// Result of exhaustive minimisation.
struct brute_force_result {
    bit_vector best_bits;       ///< lexicographically-first optimal assignment
    double best_energy = 0.0;   ///< minimum of Eq. (1) (offset not included)
    std::size_t num_optima = 0; ///< assignments within `tie_tolerance` of the minimum
};

/// Exhaustively minimises `q`.  Throws std::invalid_argument when
/// q.num_variables() exceeds `max_variables` (guard against accidental
/// exponential blow-up) or the model is empty.
[[nodiscard]] brute_force_result brute_force_minimize(const qubo_model& q,
                                                      std::size_t max_variables = 26,
                                                      double tie_tolerance = 1e-9);

}  // namespace hcq::qubo

#endif  // HCQ_QUBO_BRUTE_FORCE_H
