// Tour of the QUBO toolbox: the pre-processing and soft-information
// machinery the paper explores (and mostly rejects) in Section 3.1, applied
// to real MIMO-detection QUBOs.
//
//   * Ising <-> QUBO round trip,
//   * variable prefixing (Figure 3's scheme) on small vs large problems,
//   * Figure 4's constellation-prior constraints and their effect on the
//     searched space,
//   * exact brute-force verification on a small instance.
//
// Usage: ./examples/qubo_toolbox
#include <iostream>

#include "detect/transform.h"
#include "qubo/brute_force.h"
#include "qubo/constraints.h"
#include "qubo/ising.h"
#include "qubo/preprocess.h"
#include "util/rng.h"
#include "wireless/mimo.h"

int main() {
    using namespace hcq;
    util::rng rng(31337);

    // --- A 2-user QPSK problem (4 variables): small enough to inspect. ---
    const auto small = wireless::noiseless_paper_instance(rng, 2, wireless::modulation::qpsk);
    auto mq = detect::ml_to_qubo(small);
    std::cout << "2-user QPSK -> QUBO on " << mq.model.num_variables()
              << " variables, offset " << mq.model.offset() << "\n";

    // Ising view (what an annealer natively programs).
    const auto ising = qubo::to_ising(mq.model);
    std::cout << "Ising fields h:";
    for (std::size_t i = 0; i < ising.num_spins(); ++i) std::cout << " " << ising.field(i);
    std::cout << "\n";

    // Exact optimum == transmitted bits (noiseless channel).
    const auto exact = qubo::brute_force_minimize(mq.model);
    std::cout << "brute force optimum energy " << exact.best_energy << " ("
              << exact.num_optima << " optimum), matches transmitted bits: "
              << (exact.best_bits == small.tx_bits ? "yes" : "no") << "\n\n";

    // --- Prefixing: tiny BPSK problems sometimes simplify... ---
    std::size_t simplified = 0;
    for (int t = 0; t < 20; ++t) {
        const auto tiny = wireless::noiseless_paper_instance(rng, 2, wireless::modulation::bpsk);
        if (qubo::prefix_variables(detect::ml_to_qubo(tiny).model).simplified()) ++simplified;
    }
    std::cout << "prefixing simplified " << simplified
              << "/20 tiny 2-variable BPSK problems\n";

    // ...but the paper-scale problems never do (Figure 3's finding).
    const auto large = wireless::noiseless_paper_instance(rng, 9, wireless::modulation::qam16);
    const auto large_result = qubo::prefix_variables(detect::ml_to_qubo(large).model);
    std::cout << "prefixing fixed " << large_result.num_fixed()
              << "/36 variables of a 9-user 16-QAM problem (paper: no effect >= 32-40 vars)\n\n";

    // --- Figure 4: symbol prior on a 16-QAM user. ---
    const auto frame = wireless::noiseless_paper_instance(rng, 2, wireless::modulation::qam16);
    auto prior_mq = detect::ml_to_qubo(frame);
    const std::vector<std::uint8_t> believed{frame.tx_bits.begin(), frame.tx_bits.begin() + 4};
    detect::apply_symbol_prior(prior_mq, /*user=*/0, believed, /*strength=*/25.0);
    const auto base_exact = qubo::brute_force_minimize(detect::ml_to_qubo(frame).model);
    const auto prior_exact = qubo::brute_force_minimize(prior_mq.model);
    std::cout << "with a correct symbol prior the optimum is unchanged: "
              << (prior_exact.best_bits == base_exact.best_bits ? "yes" : "no") << "\n";

    // A *wrong* prior distorts the landscape — the paper's tuning hazard.
    auto wrong_mq = detect::ml_to_qubo(frame);
    std::vector<std::uint8_t> wrong = believed;
    for (auto& b : wrong) b ^= 1U;
    detect::apply_symbol_prior(wrong_mq, 0, wrong, 1e4);
    const auto wrong_exact = qubo::brute_force_minimize(wrong_mq.model);
    std::cout << "with an overweighted wrong prior the optimum moves away: "
              << (wrong_exact.best_bits != base_exact.best_bits ? "yes (hazard!)" : "no")
              << "\n";
    return 0;
}
