#include "detect/real_model.h"

#include <cmath>
#include <stdexcept>

#include "linalg/decompose.h"
#include "linalg/real_embed.h"

namespace hcq::detect {

namespace {

std::vector<double> pam_alphabet(std::size_t bits_per_dim) {
    const double max_amp = std::pow(2.0, static_cast<double>(bits_per_dim)) - 1.0;
    std::vector<double> out;
    for (double a = -max_amp; a <= max_amp; a += 2.0) out.push_back(a);
    return out;
}

}  // namespace

real_model make_real_model(const wireless::mimo_instance& instance) {
    real_model model;
    model.mod = instance.mod;
    model.num_users = instance.num_users;
    model.quadrature = wireless::uses_quadrature(instance.mod);
    model.alphabet = pam_alphabet(wireless::bits_per_dimension(instance.mod));

    linalg::rmat a_real;
    linalg::rvec y_real = linalg::real_embedding(instance.y);
    if (model.quadrature) {
        a_real = linalg::real_embedding(instance.h);
        model.dims = 2 * instance.num_users;
    } else {
        // BPSK: stack [Re H; Im H], imaginary transmit components are zero.
        const auto& h = instance.h;
        a_real = linalg::rmat(2 * h.rows(), h.cols());
        for (std::size_t r = 0; r < h.rows(); ++r) {
            for (std::size_t c = 0; c < h.cols(); ++c) {
                a_real(r, c) = h(r, c).real();
                a_real(h.rows() + r, c) = h(r, c).imag();
            }
        }
        model.dims = instance.num_users;
    }

    const auto qr = linalg::householder_qr(a_real);
    model.r = qr.r;
    model.y_eff = qr.q.hermitian() * y_real;
    return model;
}

detection_result assemble_result(const wireless::mimo_instance& instance,
                                 const std::vector<double>& amplitudes,
                                 std::size_t nodes_visited) {
    const bool quadrature = wireless::uses_quadrature(instance.mod);
    const std::size_t n = instance.num_users;
    const std::size_t expected = quadrature ? 2 * n : n;
    if (amplitudes.size() != expected) {
        throw std::invalid_argument("assemble_result: wrong amplitude count");
    }
    detection_result result;
    result.symbols = linalg::cvec(n);
    for (std::size_t u = 0; u < n; ++u) {
        const double re = amplitudes[u];
        const double im = quadrature ? amplitudes[n + u] : 0.0;
        result.symbols[u] = linalg::cxd(re, im);
    }
    result.bits = wireless::demodulate(instance.mod, result.symbols);
    result.ml_cost = instance.ml_cost(result.symbols);
    result.nodes_visited = nodes_visited;
    return result;
}

double slice_amplitude(double value, const std::vector<double>& alphabet) {
    if (alphabet.empty()) throw std::invalid_argument("slice_amplitude: empty alphabet");
    double best = alphabet.front();
    double best_dist = std::fabs(value - best);
    for (const double a : alphabet) {
        const double d = std::fabs(value - a);
        if (d < best_dist) {
            best = a;
            best_dist = d;
        }
    }
    return best;
}

}  // namespace hcq::detect
