#include "core/topology.h"

#include <stdexcept>

namespace hcq::anneal {

chimera_graph::chimera_graph(std::size_t grid_size, std::size_t shore_size)
    : m_(grid_size), l_(shore_size) {
    if (grid_size == 0 || shore_size == 0) {
        throw std::invalid_argument("chimera_graph: zero dimension");
    }
}

std::size_t chimera_graph::num_edges() const {
    const std::size_t intra = m_ * m_ * l_ * l_;           // bipartite in-cell
    const std::size_t vertical = m_ > 1 ? (m_ - 1) * m_ * l_ : 0;
    const std::size_t horizontal = m_ > 1 ? m_ * (m_ - 1) * l_ : 0;
    return intra + vertical + horizontal;
}

std::size_t chimera_graph::node(std::size_t row, std::size_t column, std::size_t side,
                                std::size_t index) const {
    if (row >= m_ || column >= m_ || side > 1 || index >= l_) {
        throw std::out_of_range("chimera_graph::node: coordinates out of range");
    }
    return ((row * m_ + column) * 2 + side) * l_ + index;
}

chimera_graph::coordinates chimera_graph::locate(std::size_t node_id) const {
    check_node(node_id);
    coordinates c;
    c.index = node_id % l_;
    const std::size_t rest = node_id / l_;
    c.side = rest % 2;
    const std::size_t cell = rest / 2;
    c.column = cell % m_;
    c.row = cell / m_;
    return c;
}

void chimera_graph::check_node(std::size_t node_id) const {
    if (node_id >= num_nodes()) throw std::out_of_range("chimera_graph: node out of range");
}

bool chimera_graph::adjacent(std::size_t u, std::size_t v) const {
    if (u == v) return false;
    const coordinates a = locate(u);
    const coordinates b = locate(v);
    // Intra-cell: complete bipartite between the two shores.
    if (a.row == b.row && a.column == b.column) return a.side != b.side;
    // Vertical shore couples along the column, same index.
    if (a.side == 0 && b.side == 0 && a.column == b.column && a.index == b.index) {
        return a.row + 1 == b.row || b.row + 1 == a.row;
    }
    // Horizontal shore couples along the row, same index.
    if (a.side == 1 && b.side == 1 && a.row == b.row && a.index == b.index) {
        return a.column + 1 == b.column || b.column + 1 == a.column;
    }
    return false;
}

std::vector<std::size_t> chimera_graph::neighbors(std::size_t node_id) const {
    const coordinates c = locate(node_id);
    std::vector<std::size_t> out;
    // Opposite shore of the same cell.
    for (std::size_t k = 0; k < l_; ++k) {
        out.push_back(node(c.row, c.column, 1 - c.side, k));
    }
    if (c.side == 0) {
        if (c.row > 0) out.push_back(node(c.row - 1, c.column, 0, c.index));
        if (c.row + 1 < m_) out.push_back(node(c.row + 1, c.column, 0, c.index));
    } else {
        if (c.column > 0) out.push_back(node(c.row, c.column - 1, 1, c.index));
        if (c.column + 1 < m_) out.push_back(node(c.row, c.column + 1, 1, c.index));
    }
    return out;
}

std::vector<std::pair<std::size_t, std::size_t>> chimera_graph::edges() const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    out.reserve(num_edges());
    for (std::size_t u = 0; u < num_nodes(); ++u) {
        for (const std::size_t v : neighbors(u)) {
            if (u < v) out.emplace_back(u, v);
        }
    }
    return out;
}

}  // namespace hcq::anneal
