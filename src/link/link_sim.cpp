#include "link/link_sim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "metrics/stats.h"
#include "paths/registry.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "wireless/mimo.h"

namespace hcq::link {
namespace {

// Stream-id tags keeping channel-use synthesis draws disjoint from solver
// draws (same scheme as parallel_runner::sweep_stream_domain).  These values
// predate the registry redesign and must never change: the golden-value test
// pins link statistics to the enum-dispatch implementation that used them.
constexpr std::uint64_t synth_stream_domain = 0x6c696e6b5f434855ULL;  // "link_CHU"
constexpr std::uint64_t solve_stream_domain = 0x6c696e6b5f534c56ULL;  // "link_SLV"

void validate(const link_config& config) {
    if (config.num_uses == 0) throw std::invalid_argument("link: zero channel uses");
    if (config.num_users == 0) throw std::invalid_argument("link: zero users");
    if (config.paths.empty()) throw std::invalid_argument("link: no detection paths");
    if (!(config.offered_load > 0.0) || !std::isfinite(config.offered_load)) {
        throw std::invalid_argument("link: offered load must be positive and finite");
    }
}

pipeline::simulation_result replay_traces(const path_report& path, const link_config& config) {
    std::vector<pipeline::stage> stages;
    double bottleneck_us = 0.0;
    for (const auto& trace : path.stages) {
        stages.push_back(pipeline::stage::from_trace(trace.name, trace.service_us));
        bottleneck_us = std::max(bottleneck_us, trace.mean_us());
    }
    // Arrivals pace the bottleneck at the configured load; the floor guards
    // against a degenerate all-zero trace from timer quantisation.
    const double interarrival_us = std::max(bottleneck_us / config.offered_load, 1e-3);
    util::rng arrivals_rng(config.seed);  // unused by deterministic arrivals
    return pipeline::simulate(stages, config.num_uses, {.interarrival_us = interarrival_us},
                              arrivals_rng);
}

}  // namespace

double stage_trace::mean_us() const {
    metrics::running_stats stats;
    for (const double v : service_us) stats.add(v);
    return stats.mean();  // running_stats yields 0.0 on no data
}

double stage_trace::p50_us() const {
    return service_us.empty() ? 0.0 : metrics::percentile(service_us, 50.0);
}

double stage_trace::p99_us() const {
    return service_us.empty() ? 0.0 : metrics::percentile(service_us, 99.0);
}

std::vector<std::string> path_report::stage_names() const {
    std::vector<std::string> names;
    names.reserve(stages.size());
    for (const auto& trace : stages) names.push_back(trace.name);
    return names;
}

const path_report& link_report::path(std::string_view query) const {
    for (const auto& p : paths) {
        if (p.kind == query || p.name == query || p.spec == query) return p;
    }
    throw std::out_of_range("link_report: no such path: " + std::string(query));
}

link_report run_link_simulation(const link_config& config) {
    validate(config);

    // Resolve every spec through the registry once; the paths are shared
    // read-only across workers.  Exact duplicates (same canonical spec)
    // would report two indistinguishable columns, so they are rejected —
    // but two *different* specs of the same kind (e.g. two K-best widths)
    // are a legitimate side-by-side comparison.
    const auto paths = paths::registry::make_all(config.paths);
    std::vector<std::string> canonical(paths.size());
    for (std::size_t p = 0; p < paths.size(); ++p) canonical[p] = paths[p]->spec().to_string();
    for (std::size_t a = 0; a < canonical.size(); ++a) {
        for (std::size_t b = a + 1; b < canonical.size(); ++b) {
            if (canonical[a] == canonical[b]) {
                throw std::invalid_argument("link: duplicate detection path '" + canonical[a] +
                                            "'");
            }
        }
    }

    const std::size_t num_paths = paths.size();
    const bool needs_qubo = std::any_of(paths.begin(), paths.end(),
                                        [](const auto& path) { return path->needs_qubo(); });
    std::vector<qubo::bit_vector> tx_bits(config.num_uses);
    std::vector<double> synth_us(config.num_uses, 0.0);
    std::vector<double> reduce_us(config.num_uses, 0.0);
    std::vector<paths::path_result> cells(config.num_uses * num_paths);

    const util::rng synth_base = util::rng(config.seed).derive(synth_stream_domain);
    const util::rng solve_base = util::rng(config.seed).derive(solve_stream_domain);

    util::pool_for_each(
        config.num_uses,
        [&](std::size_t u) {
            // Stage 1: synthesise the channel use (channel draw + modulation).
            util::rng synth_rng = synth_base.derive(u);
            wireless::mimo_config mimo;
            mimo.mod = config.mod;
            mimo.num_users = config.num_users;
            mimo.num_antennas = config.num_users;
            mimo.channel = config.channel;
            mimo.noise_variance =
                config.noiseless ? 0.0
                                 : wireless::noise_variance_for_snr(config.mod, config.num_users,
                                                                    config.snr_db);
            util::timer synth_clock;
            const auto instance = wireless::synthesize(synth_rng, mimo);
            synth_us[u] = synth_clock.elapsed_us();
            tx_bits[u] = instance.tx_bits;

            // Stage 2: QUBO reduction (QuAMax transform), shared by the
            // QUBO-based paths (skipped — trace stays zero — when only
            // conventional detectors are configured).
            detect::ml_qubo mq;
            if (needs_qubo) {
                util::timer reduce_clock;
                mq = detect::ml_to_qubo(instance);
                reduce_us[u] = reduce_clock.elapsed_us();
            }

            // Stage 3: every configured path detects the same use, each on
            // its own derived RNG stream.
            for (std::size_t p = 0; p < num_paths; ++p) {
                util::rng solve_rng = solve_base.derive(u * num_paths + p);
                const paths::path_context ctx{instance, needs_qubo ? &mq : nullptr, solve_rng};
                cells[u * num_paths + p] = paths[p]->run(ctx);
            }
        },
        config.num_threads);

    // Serial aggregation in use order: the merged statistics never depend on
    // the scheduling order above.
    link_report report;
    report.config = config;
    report.synthesis = {"synth", synth_us};
    report.reduction = {"qubo", reduce_us};
    report.paths.resize(num_paths);
    for (std::size_t p = 0; p < num_paths; ++p) {
        path_report& path = report.paths[p];
        path.kind = paths[p]->spec().kind;
        path.name = paths[p]->name();
        path.spec = canonical[p];

        const auto solve_stages = paths[p]->stage_names();
        path.stages.push_back({"synth", synth_us});
        if (paths[p]->needs_qubo()) path.stages.push_back({"qubo", reduce_us});
        const std::size_t first_solve_stage = path.stages.size();
        for (const auto& stage : solve_stages) {
            path.stages.push_back({stage, std::vector<double>(config.num_uses, 0.0)});
        }

        for (std::size_t u = 0; u < config.num_uses; ++u) {
            const paths::path_result& cell = cells[u * num_paths + p];
            if (cell.stages.size() != solve_stages.size()) {
                throw std::logic_error("link: path '" + path.spec + "' returned " +
                                       std::to_string(cell.stages.size()) +
                                       " stage timings but declared " +
                                       std::to_string(solve_stages.size()));
            }
            path.ber.add_frame(tx_bits[u], cell.bits);
            if (cell.bits == tx_bits[u]) ++path.exact_frames;
            path.sum_ml_cost += cell.ml_cost;
            for (std::size_t s = 0; s < cell.stages.size(); ++s) {
                path.stages[first_solve_stage + s].service_us[u] = cell.stages[s].service_us;
            }
        }
        path.replay = replay_traces(path, config);
    }
    return report;
}

util::table summary_table(const link_report& report) {
    util::table t({"path", "BER", "bit errs", "exact uses", "svc mean us", "svc p50 us",
                   "svc p99 us", "thrpt use/ms", "p50 lat us", "p99 lat us"});
    for (const auto& path : report.paths) {
        // Per-path service: everything downstream of the shared synthesis
        // stage (for the hybrid that is qubo + classical + quantum).
        stage_trace service{"service", std::vector<double>(report.config.num_uses, 0.0)};
        for (std::size_t s = 1; s < path.stages.size(); ++s) {
            for (std::size_t u = 0; u < report.config.num_uses; ++u) {
                service.service_us[u] += path.stages[s].service_us[u];
            }
        }
        t.add(path.name, util::format_double(path.ber.rate(), 5), path.ber.errors(),
              path.exact_frames, service.mean_us(), service.p50_us(), service.p99_us(),
              path.replay.throughput_per_us * 1000.0, path.replay.p50_latency_us,
              path.replay.p99_latency_us);
    }
    return t;
}

}  // namespace hcq::link
