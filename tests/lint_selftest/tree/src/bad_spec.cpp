// Fixture: a hand-built path_spec literal outside src/paths/ fires
// spec-literal; the parsed form does not.
namespace hcq::paths {
struct path_spec {
    const char* kind;
};
}  // namespace hcq::paths

void fixture_spec_literal() {
    const hcq::paths::path_spec spec = hcq::paths::path_spec{"kbest"};
    (void)spec;
}
