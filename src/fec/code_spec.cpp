#include "fec/code_spec.h"

#include <sstream>
#include <stdexcept>

#include "util/spec.h"

namespace hcq::fec {
namespace {

const util::spec::grammar kGrammar{"fec", "code kind"};

struct kind_info {
    const char* name;
    std::size_t constraint_length;
    std::uint32_t g0;
    std::uint32_t g1;
    const char* summary;
};

// Octal generator convention: bit j of g selects tap j of the shift
// register window [newest input .. oldest], LSB = oldest state bit after
// the encoder's `full = (b << (K-1)) | state` packing (see conv.cpp).
constexpr kind_info kKinds[] = {
    {"k3", 3, 07, 05, "toy K=3 code (7,5) - fast tests"},
    {"k5", 5, 023, 035, "K=5 code (23,35)"},
    {"k7", 7, 0133, 0171, "NASA-standard K=7 code (133,171)"},
};

const kind_info& find_kind(const std::string& kind, const std::string& text) {
    for (const auto& info : kKinds) {
        if (kind == info.name) return info;
    }
    std::ostringstream why;
    why << "unknown code kind '" << kind << "' (valid:";
    for (const auto& info : kKinds) why << " " << info.name;
    why << ")";
    util::spec::fail(kGrammar, text, why.str());
}

void parse_interleave(const std::string& value, const std::string& text, code_spec& spec) {
    const std::size_t x = value.find('x');
    const auto rows = x == std::string::npos
                          ? std::nullopt
                          : util::spec::parse_size_value(value.substr(0, x));
    const auto cols = x == std::string::npos
                          ? std::nullopt
                          : util::spec::parse_size_value(value.substr(x + 1));
    if (!rows || !cols || *rows == 0 || *cols == 0) {
        util::spec::fail(kGrammar, text,
                         "bad interleave value '" + value +
                             "' (expected ROWSxCOLS, both positive, e.g. 16x8)");
    }
    if (*rows > 4096 || *cols > 4096) {
        util::spec::fail(kGrammar, text,
                         "interleave value '" + value + "' out of range (rows, cols <= 4096)");
    }
    spec.rows = *rows;
    spec.cols = *cols;
}

}  // namespace

code_spec code_spec::parse(const std::string& text) {
    code_spec spec;
    bool kind_seen = false;
    const auto on_kind = [&](const std::string& kind) {
        (void)find_kind(kind, text);
        spec.kind = kind;
        kind_seen = true;
    };
    const auto on_key = [&](const std::string& key, const std::string& value) {
        if (key == "rate") {
            if (value != "1/2") {
                util::spec::fail(kGrammar, text,
                                 "bad rate value '" + value + "' (only 1/2 is supported)");
            }
            spec.rate_num = 1;
            spec.rate_den = 2;
        } else if (key == "interleave") {
            parse_interleave(value, text, spec);
        } else {
            util::spec::fail(kGrammar, text,
                             "unknown key '" + key + "' (accepted: rate, interleave)");
        }
    };
    (void)util::spec::parse(kGrammar, text, on_key, on_kind);
    if (!kind_seen) util::spec::fail(kGrammar, text, "empty code kind");
    // Geometry must fit the code: a whole number of code branches, with at
    // least one information bit after the terminating tail.
    if (spec.coded_bits() % spec.rate_den != 0) {
        util::spec::fail(kGrammar, text,
                         "interleaver of " + std::to_string(spec.coded_bits()) +
                             " bits is not a multiple of the rate denominator " +
                             std::to_string(spec.rate_den));
    }
    if (spec.coded_bits() / spec.rate_den <= spec.constraint_length() - 1) {
        util::spec::fail(kGrammar, text,
                         "interleaver of " + std::to_string(spec.coded_bits()) +
                             " bits leaves no information bits after the " +
                             std::to_string(spec.constraint_length() - 1) + "-bit tail");
    }
    return spec;
}

std::string code_spec::to_string() const {
    std::ostringstream out;
    out << kind << ":rate=" << rate_num << "/" << rate_den << ",interleave=" << rows << "x"
        << cols;
    return out.str();
}

std::size_t code_spec::constraint_length() const {
    return find_kind(kind, kind).constraint_length;
}

std::vector<std::uint32_t> code_spec::generators() const {
    const kind_info& info = find_kind(kind, kind);
    return {info.g0, info.g1};
}

std::vector<std::string> code_spec::kinds() {
    std::vector<std::string> names;
    for (const auto& info : kKinds) names.emplace_back(info.name);
    return names;
}

std::string code_spec::help() {
    std::ostringstream out;
    out << "FEC code kinds (--fec kind:key=value,...):\n";
    for (const auto& info : kKinds) {
        out << "  " << info.name << "  " << info.summary << "\n";
    }
    out << "keys (every kind):\n"
        << "  rate        code rate (only 1/2 is supported; default 1/2)\n"
        << "  interleave  block interleaver ROWSxCOLS = coded bits per frame\n"
        << "              (default 16x8; frame info bits = R*C/2 - (K-1))\n";
    return out.str();
}

}  // namespace hcq::fec
