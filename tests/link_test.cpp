// Tests for the end-to-end link simulator: deterministic statistics at any
// thread count, golden values pinning the registry-driven implementation to
// the pre-redesign enum dispatch, correct report shapes, exactness of the
// sphere path on the paper's noiseless corpus, stage_trace percentile
// semantics, and configuration validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/schedule.h"
#include "link/link_sim.h"
#include "paths/registry.h"

namespace {

namespace lk = hcq::link;
namespace pt = hcq::paths;
namespace wl = hcq::wireless;

lk::link_config small_config() {
    lk::link_config config;
    config.num_uses = 24;
    config.num_users = 2;
    config.mod = wl::modulation::qpsk;
    config.snr_db = 12.0;
    config.paths = pt::parse_spec_list("zf,mmse,kbest,sphere,sa:reads=4,sweeps=40,gsra:reads=10");
    config.seed = 77;
    return config;
}

TEST(LinkSim, StatisticsBitIdenticalAcrossThreadCounts) {
    auto config = small_config();

    config.num_threads = 1;
    const auto serial = lk::run_link_simulation(config);
    for (const std::size_t threads : {2UL, 8UL}) {
        config.num_threads = threads;
        const auto parallel = lk::run_link_simulation(config);
        ASSERT_EQ(parallel.paths.size(), serial.paths.size());
        for (std::size_t p = 0; p < serial.paths.size(); ++p) {
            SCOPED_TRACE(serial.paths[p].name + " @ " + std::to_string(threads) + " threads");
            EXPECT_EQ(parallel.paths[p].ber.errors(), serial.paths[p].ber.errors());
            EXPECT_EQ(parallel.paths[p].ber.total_bits(), serial.paths[p].ber.total_bits());
            EXPECT_EQ(parallel.paths[p].exact_frames, serial.paths[p].exact_frames);
            // Bit-identical, not just close: the serial use-order aggregation
            // must make the sum independent of scheduling.
            EXPECT_EQ(parallel.paths[p].sum_ml_cost, serial.paths[p].sum_ml_cost);
        }
    }
}

// Golden values recorded from the pre-registry (enum-dispatch) link
// simulator at commit b461477, via a standalone dump of this exact config —
// the redesign must not change a single statistic.  Integer statistics are
// exact; summed double costs are compared to a relative 1e-9 (identical
// operation order on identical inputs, with headroom for FMA contraction
// differences across compilers).
struct golden_row {
    const char* query;
    std::size_t errors;
    std::size_t total_bits;
    std::size_t exact_frames;
    double sum_ml_cost;
};

void expect_golden(const lk::link_report& report, const golden_row& want) {
    SCOPED_TRACE(want.query);
    const auto& path = report.path(want.query);
    EXPECT_EQ(path.ber.errors(), want.errors);
    EXPECT_EQ(path.ber.total_bits(), want.total_bits);
    EXPECT_EQ(path.exact_frames, want.exact_frames);
    EXPECT_NEAR(path.sum_ml_cost, want.sum_ml_cost, 1e-9 * want.sum_ml_cost);
}

TEST(LinkSim, GoldenStatisticsMatchEnumImplementation) {
    const golden_row golden[] = {
        {"ZF", 4, 96, 21, 28.866302186627369},
        {"MMSE", 3, 96, 22, 19.799982204356507},
        {"K-best", 0, 96, 24, 11.190680449434273},
        {"SD", 0, 96, 24, 11.190680449434273},
        {"SA", 0, 96, 24, 11.190680449434273},
        {"GS+RA", 0, 96, 24, 11.190680449434273},
    };
    auto config = small_config();
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        config.num_threads = threads;
        const auto report = lk::run_link_simulation(config);
        for (const auto& row : golden) expect_golden(report, row);
    }
}

TEST(LinkSim, GoldenStatisticsMatchEnumImplementationHardScenario) {
    // A noisier 4-user 16-QAM stream where every path produces a distinct
    // statistic (no path is all-exact), so a dispatch or RNG-stream
    // regression in any single path is caught.
    const golden_row golden[] = {
        {"ZF", 48, 256, 2, 380.54334068809885},
        {"MMSE", 37, 256, 5, 140.27658721395753},
        {"K-best", 35, 256, 8, 111.36663255406008},
        {"SD", 30, 256, 9, 78.790187337827376},
        {"SA", 25, 256, 8, 100.86800242586055},
        {"GS+RA", 27, 256, 10, 82.485979987233051},
    };
    lk::link_config config;
    config.num_uses = 16;
    config.num_users = 4;
    config.mod = wl::modulation::qam16;
    config.snr_db = 14.0;
    config.paths = pt::parse_spec_list(
        "zf,mmse,kbest:width=4,sphere,sa:reads=3,sweeps=30,gsra:reads=8");
    config.seed = 2026;
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        config.num_threads = threads;
        const auto report = lk::run_link_simulation(config);
        for (const auto& row : golden) expect_golden(report, row);
    }
}

TEST(LinkSim, SpherePathIsExactOnNoiselessPaperCorpus) {
    auto config = small_config();
    config.noiseless = true;
    config.channel = wl::channel_model::unit_gain_random_phase;
    config.paths = pt::parse_spec_list("sphere");
    const auto report = lk::run_link_simulation(config);
    const auto& sd = report.path("sphere");
    EXPECT_EQ(sd.ber.errors(), 0u);
    EXPECT_EQ(sd.exact_frames, config.num_uses);
    EXPECT_NEAR(sd.sum_ml_cost, 0.0, 1e-6);
}

TEST(LinkSim, ReportShapesAndStageComposition) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("zf,sa:reads=4,sweeps=40,gsra:reads=10");
    const auto report = lk::run_link_simulation(config);

    EXPECT_EQ(report.synthesis.count(), config.num_uses);
    EXPECT_EQ(report.reduction.count(), config.num_uses);
    ASSERT_EQ(report.paths.size(), 3u);

    const auto& zf = report.path("zf");
    EXPECT_EQ(zf.stage_names(), (std::vector<std::string>{"synth", "detect"}));
    const auto& sa = report.path("sa");
    EXPECT_EQ(sa.stage_names(), (std::vector<std::string>{"synth", "qubo", "solve"}));
    const auto& hybrid = report.path("gsra");
    EXPECT_EQ(hybrid.stage_names(),
              (std::vector<std::string>{"synth", "qubo", "classical", "quantum"}));

    for (const auto& path : report.paths) {
        EXPECT_EQ(path.ber.total_bits(),
                  config.num_uses * config.num_users * wl::bits_per_symbol(config.mod));
        EXPECT_EQ(path.stage_servers.size(), path.stages.size());
        for (const auto& trace : path.stages) {
            EXPECT_EQ(trace.count(), config.num_uses);
            EXPECT_EQ(trace.replay_sample().size(),
                      std::min<std::size_t>(config.num_uses,
                                            lk::stage_trace::replay_sample_capacity));
            EXPECT_GE(trace.p99_us(), trace.p50_us());
        }
        EXPECT_EQ(path.service.count(), config.num_uses);
        EXPECT_EQ(path.replay.num_jobs, config.num_uses);
        EXPECT_EQ(path.replay.stage_utilization.size(), path.stages.size());
        EXPECT_GT(path.replay.throughput_per_us, 0.0);
    }

    // The hybrid's quantum stage is its programmed occupancy: duration x
    // reads (the spec defaults: s_p = 0.29, t_p = 1 us, 10 reads here).
    const double programmed_us =
        hcq::anneal::anneal_schedule::reverse(0.29, 1.0).duration_us() * 10.0;
    const auto& quantum = hybrid.stages.back();
    EXPECT_DOUBLE_EQ(quantum.max_us(), programmed_us);
    EXPECT_NEAR(quantum.mean_us(), programmed_us, 1e-9 * programmed_us);
    for (const double q_us : quantum.replay_sample()) {
        EXPECT_DOUBLE_EQ(q_us, programmed_us);
    }

    EXPECT_THROW((void)report.path("kbest"), std::out_of_range);
}

TEST(LinkSim, PathLookupMatchesKindNameAndSpec) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("kbest:width=16,gsra:reads=10");
    const auto report = lk::run_link_simulation(config);
    EXPECT_EQ(&report.path("kbest"), &report.paths[0]);
    EXPECT_EQ(&report.path("K-best"), &report.paths[0]);
    EXPECT_EQ(&report.path("kbest:width=16"), &report.paths[0]);
    EXPECT_EQ(&report.path("GS+RA"), &report.paths[1]);
    EXPECT_EQ(report.paths[1].spec, "gsra:reads=10,sp=0.29,pause_us=1,init=gs");
}

TEST(LinkSim, SameKindTwiceWithDifferentKnobsRunsSideBySide) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("kbest:width=1,kbest:width=8");
    const auto report = lk::run_link_simulation(config);
    ASSERT_EQ(report.paths.size(), 2u);
    EXPECT_EQ(report.paths[0].name, report.paths[1].name);
    // The wider beam's surviving set is a superset at every tree level, so
    // its summed ML cost can only be lower on the same uses.
    EXPECT_GE(report.path("kbest:width=1").sum_ml_cost,
              report.path("kbest:width=8").sum_ml_cost);
}

TEST(LinkSim, SummaryTableHasOneRowPerPath) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("zf,gsra:reads=10");
    const auto report = lk::run_link_simulation(config);
    const auto t = lk::summary_table(report);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 12u);  // incl. the replay's drop rate + peak queue
}

TEST(LinkSim, StageTracePercentileSemantics) {
    // Empty trace: nothing to summarise — mean/p50/p99 are all 0.
    const lk::stage_trace empty{"empty"};
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.mean_us(), 0.0);
    EXPECT_EQ(empty.p50_us(), 0.0);
    EXPECT_EQ(empty.p99_us(), 0.0);
    EXPECT_TRUE(empty.replay_sample().empty());

    // Single entry: every percentile is that entry exactly (the digest
    // clamps into [min, max]).
    const lk::stage_trace single{"single", std::vector<double>{42.5}};
    EXPECT_DOUBLE_EQ(single.mean_us(), 42.5);
    EXPECT_DOUBLE_EQ(single.p50_us(), 42.5);
    EXPECT_DOUBLE_EQ(single.p99_us(), 42.5);
    EXPECT_DOUBLE_EQ(single.max_us(), 42.5);

    // Two distinct entries: digest percentiles stay within the data range
    // and keep their ordering; the mean is exact.
    const lk::stage_trace pair{"pair", {10.0, 20.0}};
    EXPECT_DOUBLE_EQ(pair.mean_us(), 15.0);
    EXPECT_GE(pair.p50_us(), 10.0);
    EXPECT_LE(pair.p50_us(), 20.0);
    EXPECT_GE(pair.p99_us(), pair.p50_us());
    EXPECT_LE(pair.p99_us(), 20.0);
    EXPECT_EQ(pair.replay_sample(), (std::vector<double>{10.0, 20.0}));
}

TEST(LinkSim, StageTraceSampleIsBoundedButStatisticsCoverEverything) {
    lk::stage_trace trace{"bounded"};
    const std::size_t n = lk::stage_trace::replay_sample_capacity + 100;
    for (std::size_t i = 0; i < n; ++i) trace.add(static_cast<double>(i % 7) + 1.0);
    EXPECT_EQ(trace.count(), n);
    EXPECT_EQ(trace.replay_sample().size(), lk::stage_trace::replay_sample_capacity);
    EXPECT_DOUBLE_EQ(trace.replay_sample()[3], 4.0);  // stream order preserved
    EXPECT_DOUBLE_EQ(trace.max_us(), 7.0);            // exact over ALL entries
}

TEST(LinkSim, StageTraceStrideSpreadsTheSampleAcrossTheStream) {
    // With a stride the sample covers the whole stream uniformly instead of
    // just the warm-up head: entry i is kept iff i % stride == 0.
    lk::stage_trace strided{"strided", 4};
    for (std::size_t i = 0; i < 16; ++i) strided.add(static_cast<double>(i));
    EXPECT_EQ(strided.count(), 16u);
    EXPECT_EQ(strided.replay_sample(), (std::vector<double>{0.0, 4.0, 8.0, 12.0}));
    EXPECT_DOUBLE_EQ(strided.max_us(), 15.0);  // digest still sees everything
}

TEST(LinkSim, KxraStatisticsIdenticalToGsra) {
    // The acceptance criterion: K interchangeable (emulated) annealer
    // devices round-robining one stream must produce the same detection
    // statistics as the single-device hybrid with the same knobs — every
    // (use, path) cell draws from the same derived RNG stream, device
    // multiplicity only changes the pipeline replay.
    auto config = small_config();
    config.paths = pt::parse_spec_list("gsra:reads=10");
    const auto gsra = lk::run_link_simulation(config);
    config.paths = pt::parse_spec_list("kxra:k=2,reads=10");
    const auto kxra = lk::run_link_simulation(config);

    const auto& g = gsra.path("gsra");
    const auto& k = kxra.path("kxra");
    EXPECT_EQ(k.ber.errors(), g.ber.errors());
    EXPECT_EQ(k.ber.total_bits(), g.ber.total_bits());
    EXPECT_EQ(k.exact_frames, g.exact_frames);
    EXPECT_EQ(k.sum_ml_cost, g.sum_ml_cost);

    // The replay serves the quantum stage with 2 round-robin devices.  (The
    // resulting throughput gain is pinned deterministically in
    // pipeline_test's MultiServer suite — comparing two separately-paced
    // replays here would depend on wall-clock noise.)
    EXPECT_EQ(k.stage_servers, (std::vector<std::size_t>{1, 1, 1, 2}));
    EXPECT_EQ(g.stage_servers, (std::vector<std::size_t>{1, 1, 1, 1}));
    EXPECT_EQ(k.name, "GS+RAx2");
    EXPECT_EQ(k.spec, "kxra:k=2,reads=10,sp=0.29,pause_us=1,init=gs");
}

TEST(LinkSim, GsraInitUnsetIsBitIdenticalToExplicitGs) {
    // ROADMAP: the init key is golden-pinned to the default initialiser
    // when unset — "gsra" and "gsra:init=gs" canonicalise identically and
    // produce the same statistics (the goldens above additionally pin that
    // this IS the pre-init-key behaviour).
    auto config = small_config();
    config.paths = pt::parse_spec_list("gsra:reads=10");
    const auto unset = lk::run_link_simulation(config);
    config.paths = pt::parse_spec_list("gsra:reads=10,init=gs");
    const auto explicit_gs = lk::run_link_simulation(config);
    EXPECT_EQ(unset.paths[0].spec, explicit_gs.paths[0].spec);
    EXPECT_EQ(unset.paths[0].ber.errors(), explicit_gs.paths[0].ber.errors());
    EXPECT_EQ(unset.paths[0].exact_frames, explicit_gs.paths[0].exact_frames);
    EXPECT_EQ(unset.paths[0].sum_ml_cost, explicit_gs.paths[0].sum_ml_cost);
}

TEST(LinkSim, GsraInitialiserVariantsRunSideBySide) {
    // Different init values canonicalise differently, so the three hybrid
    // flavours are a legitimate side-by-side comparison in one stream.
    lk::link_config config;
    config.num_uses = 12;
    config.num_users = 4;
    config.mod = wl::modulation::qam16;
    config.snr_db = 14.0;
    config.seed = 2026;
    config.num_threads = 1;
    config.paths = pt::parse_spec_list(
        "gsra:reads=8,gsra:reads=8,init=tabu,gsra:reads=8,init=kbest");
    const auto report = lk::run_link_simulation(config);
    ASSERT_EQ(report.paths.size(), 3u);
    EXPECT_EQ(report.paths[0].name, "GS+RA");
    EXPECT_EQ(report.paths[1].name, "Tabu+RA");
    EXPECT_EQ(report.paths[2].name, "KB+RA");
    for (const auto& path : report.paths) {
        EXPECT_EQ(path.stage_names(),
                  (std::vector<std::string>{"synth", "qubo", "classical", "quantum"}));
        EXPECT_EQ(path.ber.total_bits(), 12u * 4u * 4u);
    }
}

TEST(LinkSim, StreamBlockSizeDoesNotChangeStatistics) {
    // Window-by-window aggregation must be invisible: derived RNG streams
    // are indexed by the global use index and the fold is serial in use
    // order, so any block size yields bit-identical statistics.
    auto config = small_config();
    config.stream_block = 1024;
    const auto big = lk::run_link_simulation(config);
    for (const std::size_t block : {1UL, 5UL, 7UL}) {
        SCOPED_TRACE("stream_block " + std::to_string(block));
        config.stream_block = block;
        const auto windowed = lk::run_link_simulation(config);
        ASSERT_EQ(windowed.paths.size(), big.paths.size());
        for (std::size_t p = 0; p < big.paths.size(); ++p) {
            EXPECT_EQ(windowed.paths[p].ber.errors(), big.paths[p].ber.errors());
            EXPECT_EQ(windowed.paths[p].exact_frames, big.paths[p].exact_frames);
            EXPECT_EQ(windowed.paths[p].sum_ml_cost, big.paths[p].sum_ml_cost);
        }
    }
}

TEST(LinkSim, BoundedReplayReportsDropsAndOccupancy) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("sa:reads=4,sweeps=40");
    config.offered_load = 4.0;  // far past saturation
    config.buffer_capacity = 1;
    config.policy = hcq::pipeline::backpressure::drop_newest;
    const auto report = lk::run_link_simulation(config);
    const auto& replay = report.path("sa").replay;
    EXPECT_EQ(replay.num_jobs, config.num_uses);
    EXPECT_EQ(replay.jobs_completed + replay.jobs_dropped, config.num_uses);
    EXPECT_GT(replay.jobs_dropped, 0u);
    EXPECT_GT(replay.drop_rate, 0.0);
    EXPECT_LT(replay.drop_rate, 1.0);
    std::size_t stage_drop_sum = 0;
    for (const std::size_t d : replay.stage_drops) stage_drop_sum += d;
    EXPECT_EQ(stage_drop_sum, replay.jobs_dropped);
    bool some_queue = false;
    for (const std::size_t q : replay.max_queue_len) {
        EXPECT_LE(q, config.buffer_capacity);
        some_queue = some_queue || q > 0;
    }
    EXPECT_TRUE(some_queue);
    // Constant-memory replay: no per-job latency vector.
    EXPECT_TRUE(replay.latencies_us.empty());
}

TEST(LinkSim, ConfigValidation) {
    {
        auto config = small_config();
        config.num_uses = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.num_users = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = {};
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.offered_load = 0.0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        // Exact duplicates are rejected...
        auto config = small_config();
        config.paths = pt::parse_spec_list("zf,zf");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        // ...including via canonicalisation: "kbest" IS "kbest:width=8".
        auto config = small_config();
        config.paths = pt::parse_spec_list("kbest,kbest:width=8");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("warp-drive");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("kbest:width=0");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("gsra:reads=0");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("kxra:k=0");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        // Buffer capacity 0 could never admit a job — rejected up front.
        auto config = small_config();
        config.buffer_capacity = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.stream_block = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
}

}  // namespace
