// Fixture: every line here must fire raw-rng (the engine, the device, the
// C API, and the include).
#include <random>

void fixture_raw_rng() {
    std::mt19937 engine(42);
    std::random_device device;
    int r = rand();
    (void)engine;
    (void)device;
    (void)r;
}
