#include "core/parallel_runner.h"

#include <stdexcept>

#include "metrics/delta_e.h"
#include "metrics/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hcq::hybrid {

hybrid_solver_adapter::hybrid_solver_adapter(
    std::shared_ptr<const solvers::initializer> init,
    std::shared_ptr<const anneal::annealer_emulator> device, anneal::anneal_schedule schedule,
    std::size_t num_reads)
    : init_(std::move(init)), device_(std::move(device)) {
    if (init_ == nullptr) {
        throw std::invalid_argument("hybrid_solver_adapter: null initialiser");
    }
    if (device_ == nullptr) throw std::invalid_argument("hybrid_solver_adapter: null device");
    solver_ = std::make_unique<const hybrid_solver>(*init_, *device_, std::move(schedule),
                                                    num_reads);
}

solvers::sample_set hybrid_solver_adapter::solve(const qubo::qubo_model& q,
                                                 util::rng& rng) const {
    const hybrid_result result = solver_->solve(q, rng);
    solvers::sample_set out;
    out.reserve(result.samples.size() + 1);
    out.add(result.initial.bits, result.initial.energy);
    out.merge(result.samples);
    return out;
}

const solver_run& sweep_report::at(std::size_t instance, std::size_t solver) const {
    if (instance >= num_instances || solver >= num_solvers) {
        throw std::out_of_range("sweep_report::at: cell outside the sweep grid");
    }
    return runs[instance * num_solvers + solver];
}

double sweep_report::mean_p_star(std::size_t solver) const {
    if (solver >= num_solvers) {
        throw std::out_of_range("sweep_report::mean_p_star: no such solver");
    }
    metrics::running_stats stats;
    for (std::size_t i = 0; i < num_instances; ++i) stats.add(at(i, solver).p_star);
    return stats.mean();
}

parallel_runner::parallel_runner(runner_config config) : config_(config) {}

std::vector<experiment_instance> parallel_runner::make_corpus(std::uint64_t seed,
                                                              std::size_t count,
                                                              std::size_t num_users,
                                                              wireless::modulation mod) const {
    if (count == 0) throw std::invalid_argument("parallel_runner::make_corpus: zero instances");
    const util::rng base(seed);
    std::vector<experiment_instance> corpus(count);
    util::pool_for_each(
        count,
        [&](std::size_t i) {
            util::rng stream = base.derive(i);
            corpus[i] = make_paper_instance(stream, num_users, mod);
        },
        config_.num_threads);
    return corpus;
}

sweep_report parallel_runner::sweep(const std::vector<experiment_instance>& corpus,
                                    const std::vector<const solvers::solver*>& solvers,
                                    std::uint64_t seed) const {
    if (corpus.empty()) throw std::invalid_argument("parallel_runner::sweep: empty corpus");
    if (solvers.empty()) throw std::invalid_argument("parallel_runner::sweep: no solvers");
    for (const auto* s : solvers) {
        if (s == nullptr) throw std::invalid_argument("parallel_runner::sweep: null solver");
    }

    sweep_report report;
    report.num_instances = corpus.size();
    report.num_solvers = solvers.size();
    report.runs.resize(corpus.size() * solvers.size());

    const util::rng base = util::rng(seed).derive(sweep_stream_domain);
    util::pool_for_each(
        report.runs.size(),
        [&](std::size_t k) {
            const std::size_t i = k / report.num_solvers;
            const std::size_t s = k % report.num_solvers;
            const experiment_instance& e = corpus[i];
            util::rng stream = base.derive(k);

            solver_run& run = report.runs[k];
            run.instance_index = i;
            run.solver_index = s;
            run.solver_name = solvers[s]->name();
            const util::timer clock;
            run.samples = solvers[s]->solve(e.reduced.model, stream);
            run.elapsed_us = clock.elapsed_us();
            run.best_energy = run.samples.best().energy;
            run.p_star = run.samples.success_probability(e.optimal_energy);
            metrics::running_stats gap;
            for (const auto& sample : run.samples.all()) {
                gap.add(metrics::delta_e_percent(sample.energy, e.optimal_energy));
            }
            run.mean_delta_e = gap.mean();
        },
        config_.num_threads);

    // Serial merge in cell order keeps the merged set independent of the
    // scheduling order above.
    for (const auto& run : report.runs) report.merged.merge(run.samples);
    return report;
}

sweep_report parallel_runner::sweep(
    const std::vector<experiment_instance>& corpus,
    const std::vector<std::shared_ptr<const solvers::solver>>& solvers,
    std::uint64_t seed) const {
    std::vector<const solvers::solver*> raw;
    raw.reserve(solvers.size());
    for (const auto& s : solvers) raw.push_back(s.get());
    return sweep(corpus, raw, seed);
}

}  // namespace hcq::hybrid
