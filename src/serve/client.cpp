#include "serve/client.h"

#include <cmath>
#include <exception>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/sync.h"
#include "util/timer.h"

namespace hcq::serve {

client::client(std::uint16_t port) : fd_(connect_loopback(port)) {}

response client::call(const request& req) {
    // hcq-lint: allow(raw-socket) our own member `send`, not the syscall
    send(req);
    auto resp = receive();
    if (!resp) {
        throw std::runtime_error("serve: server closed the connection before responding");
    }
    return *std::move(resp);
}

void client::send(const request& req) {
    const auto bytes = frame(encode_request(req));
    send_all(fd_.get(), bytes.data(), bytes.size());
}

void client::send_raw(const void* data, std::size_t len) { send_all(fd_.get(), data, len); }

std::optional<response> client::receive() {
    std::uint8_t prefix[4];
    if (!recv_exact(fd_.get(), prefix, sizeof(prefix))) return std::nullopt;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
    check_frame_length(len);
    std::vector<std::uint8_t> payload(len);
    if (!recv_exact(fd_.get(), payload.data(), payload.size())) {
        throw std::runtime_error("serve: connection closed between length prefix and payload");
    }
    return decode_response(payload);
}

double loadgen_report::goodput_fraction() const noexcept {
    return sent == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(sent);
}

double loadgen_report::reject_fraction() const noexcept {
    return sent == 0 ? 0.0
                     : static_cast<double>(busy + deadline) / static_cast<double>(sent);
}

double loadgen_report::goodput_uses_per_s() const noexcept {
    return elapsed_s <= 0.0 ? 0.0 : static_cast<double>(uses_served) / elapsed_s;
}

namespace {

/// Per-connection tallies, merged into the report after the joins.
struct connection_tally {
    loadgen_report local;  ///< only the count/digest fields are used

    void record(const response& resp, double latency_us) {
        switch (resp.state) {
            case status::ok:
                ++local.ok;
                local.uses_served += resp.num_uses;
                break;
            case status::busy: ++local.busy; break;
            case status::deadline: ++local.deadline; break;
            case status::bad_request: ++local.bad_request; break;
            case status::error: ++local.internal_error; break;
        }
        local.latency.add(latency_us);
        local.queue_wait.add(resp.queue_wait_us < 0.0 ? 0.0 : resp.queue_wait_us);
    }
};

void merge_into(loadgen_report& report, const connection_tally& tally) {
    report.ok += tally.local.ok;
    report.busy += tally.local.busy;
    report.deadline += tally.local.deadline;
    report.bad_request += tally.local.bad_request;
    report.internal_error += tally.local.internal_error;
    report.uses_served += tally.local.uses_served;
    report.latency.merge(tally.local.latency);
    report.queue_wait.merge(tally.local.queue_wait);
}

request stamped(const loadgen_config& config, std::size_t connection, std::uint64_t seq) {
    request req = config.request_template;
    req.tenant_id = config.tenant_base + connection;
    req.request_seq = seq;
    return req;
}

/// Closed loop: window of one per connection — send, block for the
/// response, repeat.  Throughput is whatever the server sustains.
void run_closed_connection(const loadgen_config& config, std::size_t connection,
                           std::size_t num_requests, connection_tally& tally) {
    client cl(config.port);
    for (std::uint64_t seq = 0; seq < num_requests; ++seq) {
        const request req = stamped(config, connection, seq);
        const util::timer clock;
        const response resp = cl.call(req);
        tally.record(resp, clock.elapsed_us());
        ++tally.local.sent;
    }
}

/// Open loop: this connection's share of the Poisson process, sent on
/// schedule regardless of outstanding responses; a paired receiver thread
/// drains responses (possibly reordered by the worker pool) and matches
/// them to send timestamps by request_seq.
void run_open_connection(const loadgen_config& config, std::size_t connection,
                         connection_tally& tally) {
    const double rate_per_s = config.offered_rps / static_cast<double>(config.num_connections);
    util::rng arrivals_rng = util::rng(config.seed).derive(connection);
    std::vector<double> arrivals_us;
    double t_s = 0.0;
    for (;;) {
        // Exponential inter-arrival gap; 1 - uniform() keeps log(·) finite.
        t_s += -std::log(1.0 - arrivals_rng.uniform()) / rate_per_s;
        if (t_s >= config.duration_s) break;
        arrivals_us.push_back(t_s * 1e6);
    }
    if (arrivals_us.empty()) return;

    client cl(config.port);
    util::mutex mutex;
    std::map<std::uint64_t, double> send_times_us;  // seq -> send timestamp
    const util::timer clock;

    std::exception_ptr receiver_error;
    std::thread receiver([&] {
        try {
            for (std::size_t received = 0; received < arrivals_us.size(); ++received) {
                auto resp = cl.receive();
                if (!resp) break;  // server went away; sender will notice too
                const double now_us = clock.elapsed_us();
                double sent_at_us = now_us;
                {
                    const util::mutex_lock lock(mutex);
                    const auto it = send_times_us.find(resp->request_seq);
                    if (it != send_times_us.end()) {
                        sent_at_us = it->second;
                        send_times_us.erase(it);
                    }
                }
                tally.record(*resp, now_us - sent_at_us);
            }
        } catch (...) {
            receiver_error = std::current_exception();
        }
    });

    try {
        for (std::uint64_t seq = 0; seq < arrivals_us.size(); ++seq) {
            util::sleep_us(arrivals_us[seq] - clock.elapsed_us());
            const request req = stamped(config, connection, seq);
            {
                const util::mutex_lock lock(mutex);
                // Stamped before the (possibly blocking) send so time spent
                // stalled on TCP backpressure counts as latency.
                send_times_us[seq] = clock.elapsed_us();
            }
            cl.send(req);
            ++tally.local.sent;
        }
    } catch (...) {
        receiver.join();
        throw;
    }
    receiver.join();
    if (receiver_error) std::rethrow_exception(receiver_error);
}

}  // namespace

loadgen_report run_loadgen(const loadgen_config& config) {
    if (config.num_connections == 0) {
        throw std::invalid_argument("serve: loadgen needs at least one connection");
    }
    if (config.mode == loadgen_mode::closed_loop && config.total_requests == 0) {
        throw std::invalid_argument("serve: closed-loop loadgen needs total_requests >= 1");
    }
    if (config.mode == loadgen_mode::open_loop &&
        (!(config.offered_rps > 0.0) || !(config.duration_s > 0.0))) {
        throw std::invalid_argument(
            "serve: open-loop loadgen needs offered_rps > 0 and duration_s > 0");
    }

    std::vector<connection_tally> tallies(config.num_connections);
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(config.num_connections);
    const util::timer run_clock;
    for (std::size_t c = 0; c < config.num_connections; ++c) {
        threads.emplace_back([&, c] {
            try {
                if (config.mode == loadgen_mode::closed_loop) {
                    const std::size_t share =
                        config.total_requests / config.num_connections +
                        (c < config.total_requests % config.num_connections ? 1 : 0);
                    run_closed_connection(config, c, share, tallies[c]);
                } else {
                    run_open_connection(config, c, tallies[c]);
                }
            } catch (...) {
                errors[c] = std::current_exception();
            }
        });
    }
    for (auto& t : threads) t.join();
    loadgen_report report;
    report.elapsed_s = run_clock.elapsed_s();
    for (const auto& err : errors) {
        if (err) std::rethrow_exception(err);
    }
    for (const auto& tally : tallies) {
        report.sent += tally.local.sent;
        merge_into(report, tally);
    }
    return report;
}

std::string summarize(const loadgen_report& report) {
    std::ostringstream out;
    out << "sent=" << report.sent << " ok=" << report.ok << " busy=" << report.busy
        << " deadline=" << report.deadline << " bad=" << report.bad_request
        << " error=" << report.internal_error << " uses=" << report.uses_served
        << " elapsed_s=" << report.elapsed_s << " goodput_uses_per_s="
        << report.goodput_uses_per_s() << " reject_frac=" << report.reject_fraction()
        << " latency_us{p50=" << report.latency.p50() << " p99=" << report.latency.p99()
        << " max=" << report.latency.max() << "}"
        << " queue_wait_us{p50=" << report.queue_wait.p50()
        << " p99=" << report.queue_wait.p99() << "}";
    return out.str();
}

}  // namespace hcq::serve
