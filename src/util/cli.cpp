#include "util/cli.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace hcq::util {

namespace {

std::string env_name(const std::string& flag) {
    std::string out = "HCQ_";
    for (const char c : flag) {
        out.push_back(c == '-' ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return out;
}

bool parse_bool_text(const std::string& text) {
    if (text == "1" || text == "true" || text == "yes" || text == "on") return true;
    if (text == "0" || text == "false" || text == "no" || text == "off") return false;
    throw std::invalid_argument("flag_set: not a boolean: '" + text + "'");
}

}  // namespace

flag_set::flag_set(int argc, const char* const argv[]) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        if (body.empty()) throw std::invalid_argument("flag_set: bare '--'");
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            values_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[body] = argv[++i];
        } else {
            values_[body] = "true";  // bare boolean flag
        }
    }
}

std::optional<std::string> flag_set::lookup(const std::string& name) const {
    if (const auto it = values_.find(name); it != values_.end()) return it->second;
    if (const char* env = std::getenv(env_name(name).c_str()); env != nullptr) {
        return std::string(env);
    }
    return std::nullopt;
}

bool flag_set::has(const std::string& name) const { return lookup(name).has_value(); }

std::string flag_set::get_string(const std::string& name, const std::string& fallback) const {
    return lookup(name).value_or(fallback);
}

long flag_set::get_int(const std::string& name, long fallback) const {
    const auto v = lookup(name);
    if (!v) return fallback;
    try {
        return std::stol(*v);
    } catch (const std::exception&) {
        throw std::invalid_argument("flag --" + name + ": not an integer: '" + *v + "'");
    }
}

double flag_set::get_double(const std::string& name, double fallback) const {
    const auto v = lookup(name);
    if (!v) return fallback;
    try {
        return std::stod(*v);
    } catch (const std::exception&) {
        throw std::invalid_argument("flag --" + name + ": not a number: '" + *v + "'");
    }
}

bool flag_set::get_bool(const std::string& name, bool fallback) const {
    const auto v = lookup(name);
    if (!v) return fallback;
    return parse_bool_text(*v);
}

bench_scale parse_scale(const flag_set& flags) {
    const std::string text = flags.get_string("scale", "quick");
    if (text == "smoke") return bench_scale::smoke;
    if (text == "quick") return bench_scale::quick;
    if (text == "full") return bench_scale::full;
    throw std::invalid_argument("--scale must be smoke|quick|full, got '" + text + "'");
}

double scale_factor(bench_scale scale) noexcept {
    switch (scale) {
        case bench_scale::smoke: return 0.05;
        case bench_scale::quick: return 1.0;
        case bench_scale::full: return 10.0;
    }
    return 1.0;
}

const char* to_string(bench_scale scale) noexcept {
    switch (scale) {
        case bench_scale::smoke: return "smoke";
        case bench_scale::quick: return "quick";
        case bench_scale::full: return "full";
    }
    return "?";
}

}  // namespace hcq::util
