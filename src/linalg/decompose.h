// Householder QR, Cholesky, and triangular/least-squares solves for the
// small dense systems arising in MIMO detection (zero-forcing, MMSE, sphere
// decoder preprocessing).
#ifndef HCQ_LINALG_DECOMPOSE_H
#define HCQ_LINALG_DECOMPOSE_H

#include <cmath>
#include <stdexcept>

#include "linalg/matrix.h"

namespace hcq::linalg {

/// Thin QR factorisation A = Q R with Q (m x n, orthonormal columns) and
/// R (n x n, upper triangular, real non-negative diagonal).
template <typename T>
struct qr_result {
    basic_matrix<T> q;  ///< m x n, Q^H Q = I
    basic_matrix<T> r;  ///< n x n, upper triangular
};

/// Householder QR; requires rows >= cols and full column rank (diagnosed via
/// a near-zero R diagonal, which throws std::runtime_error).
template <typename T>
[[nodiscard]] qr_result<T> householder_qr(const basic_matrix<T>& a) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) throw std::invalid_argument("householder_qr: requires rows >= cols");
    if (n == 0) throw std::invalid_argument("householder_qr: empty matrix");

    basic_matrix<T> work = a;                       // reduced to R in place
    basic_matrix<T> qfull = basic_matrix<T>::identity(m);  // accumulates Q^H then transposed

    // Rank deficiency shows up as a column whose below-diagonal norm has
    // collapsed relative to the matrix scale.
    const double rank_tol = 1e-10 * std::max(1.0, a.norm_fro());

    for (std::size_t k = 0; k < n; ++k) {
        // Build the Householder vector for column k below the diagonal.
        double norm_x = 0.0;
        for (std::size_t i = k; i < m; ++i) norm_x += abs_sq(work(i, k));
        norm_x = std::sqrt(norm_x);
        if (norm_x < rank_tol) {
            throw std::runtime_error("householder_qr: rank deficient matrix");
        }

        // alpha = -sign(x_k) * |x|, with complex phase for complex T.
        const T xk = work(k, k);
        const double axk = std::sqrt(abs_sq(xk));
        const T phase = axk > 1e-300 ? xk * (1.0 / axk) : T{1};
        const T alpha = phase * (-norm_x);

        std::vector<T> v(m - k);
        v[0] = work(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i) v[i - k] = work(i, k);
        double vnorm_sq = 0.0;
        for (const auto& vi : v) vnorm_sq += abs_sq(vi);
        if (vnorm_sq < 1e-300) continue;  // column already reduced

        // Apply P = I - 2 v v^H / (v^H v) to work (cols k..n) and to qfull.
        const auto apply = [&](basic_matrix<T>& mat, std::size_t col_begin,
                               std::size_t col_end) {
            for (std::size_t c = col_begin; c < col_end; ++c) {
                T dot{};
                for (std::size_t i = 0; i < v.size(); ++i) {
                    dot += conj_value(v[i]) * mat(k + i, c);
                }
                const T scale = dot * (2.0 / vnorm_sq);
                for (std::size_t i = 0; i < v.size(); ++i) {
                    mat(k + i, c) -= scale * v[i];
                }
            }
        };
        apply(work, k, n);
        apply(qfull, 0, m);
    }

    // Make the R diagonal real non-negative by absorbing phases into Q.
    for (std::size_t k = 0; k < n; ++k) {
        const T d = work(k, k);
        const double ad = std::sqrt(abs_sq(d));
        if (ad < rank_tol) throw std::runtime_error("householder_qr: rank deficient matrix");
        const T ph = d * (1.0 / ad);          // d = ph * |d|
        const T inv_ph = conj_value(ph);      // unit modulus
        for (std::size_t c = k; c < n; ++c) work(k, c) *= inv_ph;
        for (std::size_t c = 0; c < m; ++c) qfull(k, c) *= inv_ph;
    }

    qr_result<T> out;
    out.r = basic_matrix<T>(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) out.r(i, j) = work(i, j);
    }
    // qfull currently holds Q^H (m x m); thin Q = first n rows, transposed.
    out.q = basic_matrix<T>(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) out.q(i, j) = conj_value(qfull(j, i));
    }
    return out;
}

/// Solves R x = b with R upper triangular (back substitution).
template <typename T>
[[nodiscard]] basic_vector<T> solve_upper(const basic_matrix<T>& r, const basic_vector<T>& b) {
    const std::size_t n = r.rows();
    if (r.cols() != n || b.size() != n) throw std::invalid_argument("solve_upper: shape mismatch");
    basic_vector<T> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        T acc = b[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
        if (abs_sq(r(ii, ii)) < 1e-300) throw std::runtime_error("solve_upper: singular");
        x[ii] = acc * (T{1} / r(ii, ii));
    }
    return x;
}

/// Solves L x = b with L lower triangular (forward substitution).
template <typename T>
[[nodiscard]] basic_vector<T> solve_lower(const basic_matrix<T>& l, const basic_vector<T>& b) {
    const std::size_t n = l.rows();
    if (l.cols() != n || b.size() != n) throw std::invalid_argument("solve_lower: shape mismatch");
    basic_vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        T acc = b[i];
        for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * x[j];
        if (abs_sq(l(i, i)) < 1e-300) throw std::runtime_error("solve_lower: singular");
        x[i] = acc * (T{1} / l(i, i));
    }
    return x;
}

/// Least-squares solution of min_x ||a x - y||_2 via QR (requires full
/// column rank).
template <typename T>
[[nodiscard]] basic_vector<T> least_squares(const basic_matrix<T>& a, const basic_vector<T>& y) {
    if (a.rows() != y.size()) throw std::invalid_argument("least_squares: shape mismatch");
    const auto qr = householder_qr(a);
    const auto qhy = qr.q.hermitian() * y;
    return solve_upper(qr.r, qhy);
}

/// Inverse of a square full-rank matrix via QR.
template <typename T>
[[nodiscard]] basic_matrix<T> inverse(const basic_matrix<T>& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("inverse: not square");
    const auto qr = householder_qr(a);
    const auto qh = qr.q.hermitian();
    basic_matrix<T> out(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        basic_vector<T> e(n);
        for (std::size_t i = 0; i < n; ++i) e[i] = qh(i, c);
        const auto col = solve_upper(qr.r, e);
        for (std::size_t i = 0; i < n; ++i) out(i, c) = col[i];
    }
    return out;
}

/// Cholesky factorisation A = L L^H of a Hermitian positive-definite matrix;
/// throws std::runtime_error if A is not (numerically) positive definite.
template <typename T>
[[nodiscard]] basic_matrix<T> cholesky(const basic_matrix<T>& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("cholesky: not square");
    basic_matrix<T> l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            T acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * conj_value(l(j, k));
            if (i == j) {
                const double d = std::real(cxd(acc));
                if (d <= 0.0) throw std::runtime_error("cholesky: not positive definite");
                l(i, j) = T{std::sqrt(d)};
            } else {
                l(i, j) = acc * (T{1} / l(j, j));
            }
        }
    }
    return l;
}

// ---------------------------------------------------------------------------
// Scratch-based variants for the detection hot path.
//
// Identical arithmetic to the allocating factorisations above — the only
// change is that every intermediate (the in-place reduction, the Q^H
// accumulator, the Householder vector) lives in a caller-owned scratch that
// is resized (capacity-reusing) instead of freshly allocated, so a warmed-up
// workspace performs the whole factorisation without touching the heap.
// ---------------------------------------------------------------------------

/// Reusable intermediates of householder_qr_into.
template <typename T>
struct qr_scratch {
    basic_matrix<T> work;   ///< in-place reduction to R
    basic_matrix<T> qfull;  ///< accumulates Q^H
    basic_vector<T> v;      ///< Householder vector of the current column
};

/// QR factorisation into a reused result; bit-identical to householder_qr.
template <typename T>
void householder_qr_into(const basic_matrix<T>& a, qr_scratch<T>& scratch, qr_result<T>& out) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) throw std::invalid_argument("householder_qr: requires rows >= cols");
    if (n == 0) throw std::invalid_argument("householder_qr: empty matrix");

    basic_matrix<T>& work = scratch.work;
    work.resize(m, n);
    for (std::size_t i = 0; i < m * n; ++i) work.data()[i] = a.data()[i];
    basic_matrix<T>& qfull = scratch.qfull;
    qfull.resize(m, m);
    for (std::size_t i = 0; i < m; ++i) qfull(i, i) = T{1};

    const double rank_tol = 1e-10 * std::max(1.0, a.norm_fro());

    for (std::size_t k = 0; k < n; ++k) {
        double norm_x = 0.0;
        for (std::size_t i = k; i < m; ++i) norm_x += abs_sq(work(i, k));
        norm_x = std::sqrt(norm_x);
        if (norm_x < rank_tol) {
            throw std::runtime_error("householder_qr: rank deficient matrix");
        }

        const T xk = work(k, k);
        const double axk = std::sqrt(abs_sq(xk));
        const T phase = axk > 1e-300 ? xk * (1.0 / axk) : T{1};
        const T alpha = phase * (-norm_x);

        basic_vector<T>& v = scratch.v;
        v.resize(m - k);
        v[0] = work(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i) v[i - k] = work(i, k);
        double vnorm_sq = 0.0;
        for (std::size_t i = 0; i < v.size(); ++i) vnorm_sq += abs_sq(v[i]);
        if (vnorm_sq < 1e-300) continue;

        const auto apply = [&](basic_matrix<T>& mat, std::size_t col_begin,
                               std::size_t col_end) {
            for (std::size_t c = col_begin; c < col_end; ++c) {
                T dot{};
                for (std::size_t i = 0; i < v.size(); ++i) {
                    dot += conj_value(v[i]) * mat(k + i, c);
                }
                const T scale = dot * (2.0 / vnorm_sq);
                for (std::size_t i = 0; i < v.size(); ++i) {
                    mat(k + i, c) -= scale * v[i];
                }
            }
        };
        apply(work, k, n);
        apply(qfull, 0, m);
    }

    for (std::size_t k = 0; k < n; ++k) {
        const T d = work(k, k);
        const double ad = std::sqrt(abs_sq(d));
        if (ad < rank_tol) throw std::runtime_error("householder_qr: rank deficient matrix");
        const T ph = d * (1.0 / ad);
        const T inv_ph = conj_value(ph);
        for (std::size_t c = k; c < n; ++c) work(k, c) *= inv_ph;
        for (std::size_t c = 0; c < m; ++c) qfull(k, c) *= inv_ph;
    }

    out.r.resize(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) out.r(i, j) = work(i, j);
    }
    out.q.resize(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) out.q(i, j) = conj_value(qfull(j, i));
    }
}

/// Back substitution into a reused vector; bit-identical to solve_upper.
template <typename T>
void solve_upper_into(const basic_matrix<T>& r, const basic_vector<T>& b, basic_vector<T>& x) {
    const std::size_t n = r.rows();
    if (r.cols() != n || b.size() != n) throw std::invalid_argument("solve_upper: shape mismatch");
    x.resize(n);
    for (std::size_t ii = n; ii-- > 0;) {
        T acc = b[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
        if (abs_sq(r(ii, ii)) < 1e-300) throw std::runtime_error("solve_upper: singular");
        x[ii] = acc * (T{1} / r(ii, ii));
    }
}

/// Forward substitution into a reused vector; bit-identical to solve_lower.
template <typename T>
void solve_lower_into(const basic_matrix<T>& l, const basic_vector<T>& b, basic_vector<T>& x) {
    const std::size_t n = l.rows();
    if (l.cols() != n || b.size() != n) throw std::invalid_argument("solve_lower: shape mismatch");
    x.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        T acc = b[i];
        for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * x[j];
        if (abs_sq(l(i, i)) < 1e-300) throw std::runtime_error("solve_lower: singular");
        x[i] = acc * (T{1} / l(i, i));
    }
}

/// Reusable intermediates of least_squares_into.
template <typename T>
struct ls_scratch {
    qr_scratch<T> qr;
    qr_result<T> factors;
    basic_vector<T> qhy;
};

/// Least squares into a reused vector; bit-identical to least_squares
/// (herm_matvec_into performs the Q^H y product with the exact operation
/// order of the materialised q.hermitian() * y).
template <typename T>
void least_squares_into(const basic_matrix<T>& a, const basic_vector<T>& y,
                        ls_scratch<T>& scratch, basic_vector<T>& x) {
    if (a.rows() != y.size()) throw std::invalid_argument("least_squares: shape mismatch");
    householder_qr_into(a, scratch.qr, scratch.factors);
    herm_matvec_into(scratch.factors.q, y, scratch.qhy);
    solve_upper_into(scratch.factors.r, scratch.qhy, x);
}

/// Cholesky into a reused matrix; bit-identical to cholesky.
template <typename T>
void cholesky_into(const basic_matrix<T>& a, basic_matrix<T>& l) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("cholesky: not square");
    l.resize(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            T acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * conj_value(l(j, k));
            if (i == j) {
                const double d = std::real(cxd(acc));
                if (d <= 0.0) throw std::runtime_error("cholesky: not positive definite");
                l(i, j) = T{std::sqrt(d)};
            } else {
                l(i, j) = acc * (T{1} / l(j, j));
            }
        }
    }
}

}  // namespace hcq::linalg

#endif  // HCQ_LINALG_DECOMPOSE_H
