// BER-vs-SNR comparison of the library's detectors on a noisy uplink —
// the workload the paper's introduction motivates (spatial multiplexing
// needs near-optimal detectors to pay off).
//
// Runs ZF, MMSE, K-best, FCSD, the exact sphere decoder, and the hybrid
// GS+RA structure over an AWGN Rayleigh channel and prints bit error rates
// per SNR point.
//
// Usage: ./examples/ber_vs_snr [--frames=N] [--users=N]
#include <iostream>
#include <memory>
#include <vector>

#include "classical/greedy.h"
#include "core/device.h"
#include "core/hybrid_solver.h"
#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/sphere.h"
#include "detect/transform.h"
#include "metrics/ber.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "wireless/mimo.h"

int main(int argc, char** argv) {
    using namespace hcq;
    const util::flag_set flags(argc, argv);
    const std::size_t frames = static_cast<std::size_t>(flags.get_int("frames", 150));
    const std::size_t users = static_cast<std::size_t>(flags.get_int("users", 4));
    const auto mod = wireless::modulation::qam16;

    std::vector<std::unique_ptr<detect::detector>> detectors;
    detectors.push_back(std::make_unique<detect::zf_detector>());
    detectors.push_back(std::make_unique<detect::mmse_detector>());
    detectors.push_back(std::make_unique<detect::kbest_detector>(8));
    detectors.push_back(std::make_unique<detect::fcsd_detector>(1));
    detectors.push_back(std::make_unique<detect::sphere_detector>());

    std::vector<std::string> headers{"SNR dB"};
    for (const auto& d : detectors) headers.push_back(d->name());
    headers.push_back("GS+RA");
    util::table t(std::move(headers));

    const solvers::greedy_search greedy;
    const anneal::annealer_emulator device;

    std::cout << users << "x" << users << " " << wireless::to_string(mod) << ", Rayleigh + AWGN, "
              << frames << " frames per SNR point\n\n";

    for (const double snr_db : {8.0, 12.0, 16.0, 20.0, 24.0}) {
        std::vector<metrics::ber_counter> frame_counters(frames * (detectors.size() + 1));

        util::parallel_for(frames, [&](std::size_t f) {
            util::rng rng(util::rng(99).derive(f * 100 + static_cast<std::size_t>(snr_db))());
            wireless::mimo_config config;
            config.mod = mod;
            config.num_users = users;
            config.num_antennas = users;
            config.channel = wireless::channel_model::rayleigh;
            config.noise_variance = wireless::noise_variance_for_snr(mod, users, snr_db);
            const auto inst = wireless::synthesize(rng, config);

            for (std::size_t d = 0; d < detectors.size(); ++d) {
                const auto result = detectors[d]->detect(inst);
                frame_counters[f * (detectors.size() + 1) + d].add_frame(inst.tx_bits,
                                                                         result.bits);
            }
            // Hybrid GS+RA on the same frame (s_p = 0.29: the refinement
            // window for 16-variable problems sits lower than for the
            // 32-variable Figure-8 workload).
            const auto mq = detect::ml_to_qubo(inst);
            const hybrid::hybrid_solver solver(greedy, device,
                                               anneal::anneal_schedule::reverse(0.29, 1.0), 80);
            const auto hybrid_result = solver.solve(mq.model, rng);
            frame_counters[f * (detectors.size() + 1) + detectors.size()].add_frame(
                inst.tx_bits, hybrid_result.best_bits);
        });
        // Aggregate (serial; counters are tiny).
        std::vector<std::string> row{util::format_double(snr_db, 0)};
        for (std::size_t d = 0; d <= detectors.size(); ++d) {
            std::size_t errors = 0;
            std::size_t total = 0;
            for (std::size_t f = 0; f < frames; ++f) {
                const auto& fc = frame_counters[f * (detectors.size() + 1) + d];
                errors += fc.errors();
                total += fc.total_bits();
            }
            row.push_back(util::format_double(
                total > 0 ? static_cast<double>(errors) / static_cast<double>(total) : 0.0, 5));
        }
        t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "\nExpected ordering: SD (exact ML) lowest BER; GS+RA tracks SD closely;\n"
                 "K-best/FCSD between linear and exact; ZF worst at low SNR.\n";
    return 0;
}
