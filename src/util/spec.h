// The shared `kind:key=value,...` spec grammar behind paths::path_spec and
// wireless::channel_spec.
//
// Both front-ends expose the same self-documenting spec-string surface —
// parse errors that quote the offending text and name the broken piece,
// canonical to_string with explicit keys, precision-15 value formatting —
// and used to carry private copies of the machinery.  This module owns the
// grammar once; each layer wraps it with its own vocabulary (a `grammar`
// names the layer and the kind position, so "paths: bad spec 'x': empty
// path kind" and "channels: bad spec 'x': empty channel kind" both come out
// of the same code) and keeps its own typed accessors / kind validation on
// top, so every historical error text is preserved verbatim.
//
// The per-item `key_hook` runs after the grammar checks of each key=value
// item, in scan order: a front-end that validates keys against a kind table
// (channel_spec) hooks in there, so error precedence between grammar errors
// and unknown-key errors is exactly what the hand-rolled loops produced.
#ifndef HCQ_UTIL_SPEC_H
#define HCQ_UTIL_SPEC_H

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hcq::util::spec {

/// Error vocabulary of one spec front-end.
struct grammar {
    std::string layer;  ///< message prefix, e.g. "paths" / "channels"
    std::string noun;   ///< kind-position name, e.g. "path kind" / "channel kind"
};

/// A parsed `kind:key=value,...` spec: kind plus args in spec order.
struct parsed {
    std::string kind;
    std::vector<std::pair<std::string, std::string>> args;

    /// The value of `key`, or nullptr.  Linear scan: specs are tiny.
    [[nodiscard]] const std::string* find(const std::string& key) const;
};

/// Throws std::invalid_argument("<layer>: bad spec '<text>': <why>").
[[noreturn]] void fail(const grammar& g, const std::string& text, const std::string& why);

/// Called for each accepted key=value item, in scan order, after the
/// grammar checks (shape, empty key/value, duplicates) for that item.
using key_hook = std::function<void(const std::string& key, const std::string& value)>;

/// Called once with the extracted kind, after the kind grammar checks and
/// BEFORE any argument is scanned — where a front-end validates the kind
/// against its table so an unknown kind outranks later item errors.
using kind_hook = std::function<void(const std::string& kind)>;

/// Parses `text` against the shared grammar.  Throws via fail() on: empty
/// kind, kind containing '=', an argument that is not key=value, an empty
/// key or value, a duplicate key, or a trailing ':' without arguments.
[[nodiscard]] parsed parse(const grammar& g, const std::string& text,
                           const key_hook& on_key = {}, const kind_hook& on_kind = {});

/// Canonical form: `kind` or `kind:k1=v1,k2=v2,...` in args order.
[[nodiscard]] std::string to_string(const parsed& p);

/// Full-string unsigned integer parse; nullopt on any trailing garbage.
[[nodiscard]] std::optional<std::size_t> parse_size_value(const std::string& raw);

/// Full-string double parse; nullopt on trailing garbage or parse failure.
/// (Finiteness is a front-end policy: channel specs reject inf/nan, path
/// specs historically accept what std::stod accepts.)
[[nodiscard]] std::optional<double> parse_double_value(const std::string& raw);

/// Shortest round-trippable value text both layers print: ostream default
/// format at precision 15.
[[nodiscard]] std::string format_value(double value);

}  // namespace hcq::util::spec

#endif  // HCQ_UTIL_SPEC_H
