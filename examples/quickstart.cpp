// Quickstart: detect one uplink MU-MIMO frame with the paper's hybrid
// classical-quantum structure.
//
//   1. synthesise a 4-user 16-QAM channel use (paper Section 4.2 recipe);
//   2. reduce maximum-likelihood detection to a QUBO (QuAMax transform);
//   3. run the classical module (greedy search);
//   4. refine on the emulated quantum annealer with reverse annealing;
//   5. decode the best sample back to symbols/bits.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "classical/greedy.h"
#include "core/device.h"
#include "core/hybrid_solver.h"
#include "core/schedule.h"
#include "detect/transform.h"
#include "metrics/delta_e.h"
#include "util/rng.h"
#include "wireless/mimo.h"

int main() {
    using namespace hcq;

    // 1. A channel use: 4 users, 16-QAM, unit-gain random-phase channel.
    util::rng rng(/*seed=*/2020);
    const wireless::mimo_instance frame =
        wireless::noiseless_paper_instance(rng, /*num_users=*/4, wireless::modulation::qam16);
    std::cout << "synthesised " << frame.num_users << "-user "
              << wireless::to_string(frame.mod) << " detection problem ("
              << frame.num_bits() << " QUBO variables)\n";

    // 2. ML -> QUBO.
    const detect::ml_qubo reduced = detect::ml_to_qubo(frame);

    // 3 + 4. Hybrid solver: greedy search seeds reverse annealing.
    const solvers::greedy_search greedy;
    const anneal::annealer_emulator device;  // the "QPU"
    const anneal::anneal_schedule schedule =
        anneal::anneal_schedule::reverse(/*s_p=*/0.37, /*t_p=*/1.0);
    const hybrid::hybrid_solver solver(greedy, device, schedule, /*num_reads=*/200);

    const hybrid::hybrid_result result = solver.solve(reduced.model, rng);

    const double truth_energy = reduced.model.energy(frame.tx_bits);
    std::cout << "greedy candidate:  Delta-E% = "
              << metrics::delta_e_percent(result.initial.energy, truth_energy) << "\n"
              << "after " << result.samples.size() << " reverse anneals: Delta-E% = "
              << metrics::delta_e_percent(result.best_energy, truth_energy) << "\n"
              << "classical time: " << result.classical_us
              << " us, programmed quantum time: " << result.quantum_us << " us\n";

    // 5. Decode.
    const linalg::cvec symbols = reduced.symbols(result.best_bits);
    std::cout << "detected symbols:";
    for (std::size_t u = 0; u < symbols.size(); ++u) {
        std::cout << "  (" << symbols[u].real() << (symbols[u].imag() < 0 ? "" : "+")
                  << symbols[u].imag() << "j)";
    }
    std::cout << "\nbits " << (result.best_bits == frame.tx_bits ? "MATCH" : "DIFFER FROM")
              << " the transmitted ground truth\n";
    return 0;
}
