// Tiny command-line / environment flag parsing for benches and examples.
//
// Flags have the form `--name=value` or `--name value`; boolean flags may be
// bare (`--verbose`).  Environment variables named HCQ_<NAME> (upper-cased,
// '-' -> '_') act as defaults overridable on the command line.
#ifndef HCQ_UTIL_CLI_H
#define HCQ_UTIL_CLI_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hcq::util {

/// Parsed flag set with typed, defaulted access.
class flag_set {
public:
    flag_set() = default;

    /// Parses argv; throws std::invalid_argument on malformed input
    /// (non-flag positional arguments are collected, not rejected).
    flag_set(int argc, const char* const argv[]);

    [[nodiscard]] std::string get_string(const std::string& name,
                                         const std::string& fallback) const;
    [[nodiscard]] long get_int(const std::string& name, long fallback) const;
    [[nodiscard]] double get_double(const std::string& name, double fallback) const;
    [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

    /// True if the flag appeared on the command line or in the environment.
    [[nodiscard]] bool has(const std::string& name) const;

    /// Positional (non-flag) arguments in order of appearance.
    [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
        return positional_;
    }

private:
    [[nodiscard]] std::optional<std::string> lookup(const std::string& name) const;

    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

/// Benchmark scale presets.  Benches default to `quick` (seconds-scale,
/// shape-preserving sample counts); `full` approaches the paper's sample
/// counts; `smoke` is for CI.
enum class bench_scale { smoke, quick, full };

/// Reads --scale / HCQ_SCALE; accepts "smoke", "quick", "full".
[[nodiscard]] bench_scale parse_scale(const flag_set& flags);

/// Multiplier applied to per-bench base sample counts.
[[nodiscard]] double scale_factor(bench_scale scale) noexcept;

/// Human-readable name of a scale preset.
[[nodiscard]] const char* to_string(bench_scale scale) noexcept;

}  // namespace hcq::util

#endif  // HCQ_UTIL_CLI_H
