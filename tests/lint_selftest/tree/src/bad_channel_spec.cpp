// Fixture: a hand-built channel_spec literal outside src/wireless/ fires
// channel-spec-literal; the parsed form does not.
namespace hcq::wireless {
struct channel_spec {
    const char* kind;
};
}  // namespace hcq::wireless

void fixture_channel_spec_literal() {
    const hcq::wireless::channel_spec spec = hcq::wireless::channel_spec{"jakes"};
    (void)spec;
}
