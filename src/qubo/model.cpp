#include "qubo/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcq::qubo {

qubo_model::qubo_model(std::size_t n) : n_(n), sym_(n * n, 0.0) {}

void qubo_model::reset(std::size_t n) {
    n_ = n;
    offset_ = 0.0;
    sym_.assign(n * n, 0.0);
}

void qubo_model::throw_bad_index(std::size_t) const {
    throw std::out_of_range("qubo_model: variable index out of range");
}

double qubo_model::linear(std::size_t i) const {
    check_index(i);
    return sym_[i * n_ + i];
}

double qubo_model::coefficient(std::size_t i, std::size_t j) const {
    check_index(i);
    check_index(j);
    return sym_[i * n_ + j];
}

void qubo_model::add_term(std::size_t i, std::size_t j, double v) {
    check_index(i);
    check_index(j);
    sym_[i * n_ + j] += v;
    if (i != j) sym_[j * n_ + i] += v;
}

void qubo_model::set_term(std::size_t i, std::size_t j, double v) {
    check_index(i);
    check_index(j);
    sym_[i * n_ + j] = v;
    if (i != j) sym_[j * n_ + i] = v;
}

double qubo_model::energy(std::span<const std::uint8_t> bits) const {
    if (bits.size() != n_) throw std::invalid_argument("qubo_model::energy: wrong bit count");
    double e = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
        if (!bits[i]) continue;
        const double* row_i = sym_.data() + i * n_;
        e += row_i[i];
        for (std::size_t j = i + 1; j < n_; ++j) {
            if (bits[j]) e += row_i[j];
        }
    }
    return e;
}

double qubo_model::local_field(std::size_t i, std::span<const std::uint8_t> bits) const {
    check_index(i);
    if (bits.size() != n_) throw std::invalid_argument("qubo_model::local_field: wrong bit count");
    const double* row_i = sym_.data() + i * n_;
    double f = row_i[i];
    for (std::size_t j = 0; j < n_; ++j) {
        if (j != i && bits[j]) f += row_i[j];
    }
    return f;
}

std::vector<double> qubo_model::local_fields(std::span<const std::uint8_t> bits) const {
    if (bits.size() != n_) throw std::invalid_argument("qubo_model::local_fields: wrong bit count");
    std::vector<double> fields(n_);
    for (std::size_t i = 0; i < n_; ++i) fields[i] = local_field(i, bits);
    return fields;
}

void qubo_model::local_fields_into(std::span<const std::uint8_t> bits,
                                   std::vector<double>& fields) const {
    if (bits.size() != n_) throw std::invalid_argument("qubo_model::local_fields: wrong bit count");
    fields.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) fields[i] = local_field(i, bits);
}

double qubo_model::flip_delta(std::size_t i, std::span<const std::uint8_t> bits) const {
    const double f = local_field(i, bits);
    return bits[i] ? -f : f;
}

double qubo_model::max_abs_coefficient() const noexcept {
    double m = 0.0;
    for (const double v : sym_) m = std::max(m, std::fabs(v));
    return m;
}

qubo_model qubo_model::fix_variable(std::size_t i, std::uint8_t value,
                                    std::vector<std::size_t>* mapping) const {
    check_index(i);
    if (value > 1) throw std::invalid_argument("fix_variable: value must be 0 or 1");
    if (n_ == 0) throw std::invalid_argument("fix_variable: empty model");

    qubo_model out(n_ - 1);
    out.offset_ = offset_;
    if (mapping != nullptr) {
        mapping->clear();
        mapping->reserve(n_ - 1);
    }

    std::vector<std::size_t> keep;
    keep.reserve(n_ - 1);
    for (std::size_t j = 0; j < n_; ++j) {
        if (j != i) keep.push_back(j);
    }
    if (mapping != nullptr) *mapping = keep;

    for (std::size_t a = 0; a < keep.size(); ++a) {
        const std::size_t ja = keep[a];
        double lin = sym_[ja * n_ + ja];
        if (value == 1) lin += sym_[ja * n_ + i];  // coupling folds into linear
        out.set_term(a, a, lin);
        for (std::size_t b = a + 1; b < keep.size(); ++b) {
            const std::size_t jb = keep[b];
            const double c = sym_[ja * n_ + jb];
            if (c != 0.0) out.set_term(a, b, c);
        }
    }
    if (value == 1) out.offset_ += sym_[i * n_ + i];
    return out;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
    if (a.size() != b.size()) throw std::invalid_argument("hamming_distance: size mismatch");
    std::size_t d = 0;
    for (std::size_t i = 0; i < a.size(); ++i) d += a[i] != b[i] ? 1 : 0;
    return d;
}

}  // namespace hcq::qubo
