// Tests for the batched experiment runner: statistics must be bit-identical
// to the serial reference path at any thread count, corpus fan-out must match
// make_paper_corpus exactly, and the hybrid adapter must slot into sweeps
// next to the classical solvers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "classical/greedy.h"
#include "classical/parallel_tempering.h"
#include "classical/simulated_annealing.h"
#include "classical/tabu.h"
#include "core/device.h"
#include "core/parallel_runner.h"
#include "core/schedule.h"
#include "core/sweep.h"
#include "paths/registry.h"
#include "util/thread_pool.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace so = hcq::solvers;
namespace wl = hcq::wireless;

void expect_same_samples(const so::sample_set& a, const so::sample_set& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].bits, b[i].bits);
        EXPECT_DOUBLE_EQ(a[i].energy, b[i].energy);
    }
}

std::vector<std::size_t> thread_counts_under_test() {
    return {1, 4, std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

TEST(PoolForEach, VisitsEveryIndexOnce) {
    std::vector<std::atomic<int>> hits(131);
    hcq::util::pool_for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 3);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PoolForEach, HandlesZeroAndSerial) {
    int calls = 0;
    hcq::util::pool_for_each(0, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    hcq::util::pool_for_each(3, [&](std::size_t) { ++calls; }, 1);
    EXPECT_EQ(calls, 3);
}

TEST(PoolForEach, PropagatesTaskException) {
    EXPECT_THROW(hcq::util::pool_for_each(
                     64,
                     [](std::size_t i) {
                         if (i == 17) throw std::runtime_error("boom");
                     },
                     4),
                 std::runtime_error);
}

TEST(ParallelRunner, CorpusMatchesSerialReferenceAtAnyThreadCount) {
    const auto reference = hy::make_paper_corpus(4242, 6, 4, wl::modulation::qam16);
    for (const std::size_t threads : thread_counts_under_test()) {
        const hy::parallel_runner runner({.num_threads = threads});
        const auto corpus = runner.make_corpus(4242, 6, 4, wl::modulation::qam16);
        ASSERT_EQ(corpus.size(), reference.size());
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            EXPECT_EQ(corpus[i].optimal_bits, reference[i].optimal_bits);
            EXPECT_DOUBLE_EQ(corpus[i].optimal_energy, reference[i].optimal_energy);
            EXPECT_EQ(corpus[i].instance.tx_bits, reference[i].instance.tx_bits);
            const auto& h = corpus[i].instance.h;
            const auto& hr = reference[i].instance.h;
            ASSERT_EQ(h.rows(), hr.rows());
            ASSERT_EQ(h.cols(), hr.cols());
            for (std::size_t r = 0; r < h.rows(); ++r) {
                for (std::size_t c = 0; c < h.cols(); ++c) {
                    EXPECT_EQ(h(r, c), hr(r, c));
                }
            }
        }
    }
    EXPECT_THROW((void)hy::parallel_runner().make_corpus(1, 0, 4, wl::modulation::qpsk),
                 std::invalid_argument);
}

TEST(ParallelRunner, SweepIsThreadCountInvariant) {
    const auto corpus = hy::make_paper_corpus(77, 3, 3, wl::modulation::qpsk);
    const so::simulated_annealing sa({.num_reads = 4, .num_sweeps = 30});
    const so::tabu_search tabu({.tenure = 5, .max_iterations = 60, .stall_limit = 20});
    const so::parallel_tempering pt({.num_replicas = 4, .num_rounds = 10});
    const std::vector<const so::solver*> solvers{&sa, &tabu, &pt};

    const hy::parallel_runner serial({.num_threads = 1});
    const auto reference = serial.sweep(corpus, solvers, 99);
    ASSERT_EQ(reference.runs.size(), corpus.size() * solvers.size());

    for (const std::size_t threads : thread_counts_under_test()) {
        const hy::parallel_runner runner({.num_threads = threads});
        const auto report = runner.sweep(corpus, solvers, 99);
        ASSERT_EQ(report.runs.size(), reference.runs.size());
        EXPECT_EQ(report.num_instances, reference.num_instances);
        EXPECT_EQ(report.num_solvers, reference.num_solvers);
        for (std::size_t k = 0; k < report.runs.size(); ++k) {
            const auto& got = report.runs[k];
            const auto& want = reference.runs[k];
            EXPECT_EQ(got.instance_index, want.instance_index);
            EXPECT_EQ(got.solver_index, want.solver_index);
            EXPECT_EQ(got.solver_name, want.solver_name);
            EXPECT_DOUBLE_EQ(got.best_energy, want.best_energy);
            EXPECT_DOUBLE_EQ(got.p_star, want.p_star);
            EXPECT_DOUBLE_EQ(got.mean_delta_e, want.mean_delta_e);
            expect_same_samples(got.samples, want.samples);
        }
        expect_same_samples(report.merged, reference.merged);
    }
}

TEST(ParallelRunner, SweepMatchesHandWrittenSerialLoop) {
    const auto corpus = hy::make_paper_corpus(31, 2, 3, wl::modulation::qpsk);
    const so::simulated_annealing sa({.num_reads = 3, .num_sweeps = 25});
    const so::tabu_search tabu({.tenure = 4, .max_iterations = 40, .stall_limit = 15});
    const std::vector<const so::solver*> solvers{&sa, &tabu};

    const hy::parallel_runner runner({.num_threads = 4});
    const auto report = runner.sweep(corpus, solvers, 7);

    const hcq::util::rng base =
        hcq::util::rng(7).derive(hy::parallel_runner::sweep_stream_domain);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        for (std::size_t s = 0; s < solvers.size(); ++s) {
            hcq::util::rng stream = base.derive(i * solvers.size() + s);
            const auto expected = solvers[s]->solve(corpus[i].reduced.model, stream);
            expect_same_samples(report.at(i, s).samples, expected);
        }
    }
}

TEST(ParallelRunner, HybridAdapterSweepsNextToClassicalSolvers) {
    const auto corpus = hy::make_paper_corpus(55, 2, 3, wl::modulation::qpsk);
    // Regression for the old reference-holding adapter: both the initialiser
    // and the device are temporaries in the constructor expression — the
    // adapter owns them via shared_ptr, so nothing dangles.
    const hy::hybrid_solver_adapter hybrid(std::make_shared<const so::greedy_search>(),
                                           std::make_shared<const an::annealer_emulator>(),
                                           an::anneal_schedule::reverse(0.45, 1.0), 8);
    EXPECT_EQ(hybrid.name(), "GS+RA");
    const so::simulated_annealing sa({.num_reads = 3, .num_sweeps = 25});
    const std::vector<const so::solver*> solvers{&hybrid, &sa};

    const hy::parallel_runner serial({.num_threads = 1});
    const auto reference = serial.sweep(corpus, solvers, 13);
    const hy::parallel_runner threaded({.num_threads = 4});
    const auto report = threaded.sweep(corpus, solvers, 13);

    for (std::size_t i = 0; i < corpus.size(); ++i) {
        // Initial candidate plus eight annealer reads.
        ASSERT_EQ(report.at(i, 0).samples.size(), 9u);
        EXPECT_GE(report.at(i, 0).p_star, 0.0);
        EXPECT_LE(report.at(i, 0).p_star, 1.0);
        expect_same_samples(report.at(i, 0).samples, reference.at(i, 0).samples);
    }
    EXPECT_GE(report.mean_p_star(0), 0.0);
}

TEST(ParallelRunner, AdapterConstructedFromTemporariesOutlivesItsScope) {
    // Build the adapter in an inner scope from temporaries only, then use it
    // afterwards — under ASan this would flag the pre-fix dangling design.
    std::unique_ptr<const hy::hybrid_solver_adapter> adapter;
    {
        adapter = std::make_unique<const hy::hybrid_solver_adapter>(
            std::make_shared<const so::greedy_search>(),
            std::make_shared<const an::annealer_emulator>(),
            an::anneal_schedule::reverse(0.45, 1.0), 4);
    }
    hcq::util::rng make(12);
    const auto e = hy::make_paper_instance(make, 2, wl::modulation::qpsk);
    hcq::util::rng rng(13);
    const auto samples = adapter->solve(e.reduced.model, rng);
    EXPECT_EQ(samples.size(), 5u);  // initial candidate + 4 reads

    EXPECT_THROW(hy::hybrid_solver_adapter(nullptr,
                                           std::make_shared<const an::annealer_emulator>(),
                                           an::anneal_schedule::reverse(0.45, 1.0), 4),
                 std::invalid_argument);
    EXPECT_THROW(hy::hybrid_solver_adapter(std::make_shared<const so::greedy_search>(), nullptr,
                                           an::anneal_schedule::reverse(0.45, 1.0), 4),
                 std::invalid_argument);
}

TEST(ParallelRunner, SpecBuiltSolverListSweepIsThreadCountInvariant) {
    // The ISSUE's "spec-built solver lists": the whole sweep roster comes
    // from registry spec strings, hybrid structure included.
    const auto corpus = hy::make_paper_corpus(77, 3, 3, wl::modulation::qpsk);
    const auto solvers = hcq::paths::registry::make_solvers(
        {"sa:reads=3,sweeps=25", "tabu:tenure=4,iters=40,stall=15", "gsra:reads=6,sp=0.45"});
    ASSERT_EQ(solvers.size(), 3u);
    EXPECT_EQ(solvers[0]->name(), "SA");
    EXPECT_EQ(solvers[1]->name(), "Tabu");
    EXPECT_EQ(solvers[2]->name(), "GS+RA");

    const hy::parallel_runner serial({.num_threads = 1});
    const auto reference = serial.sweep(corpus, solvers, 42);
    for (const std::size_t threads : thread_counts_under_test()) {
        const hy::parallel_runner runner({.num_threads = threads});
        const auto report = runner.sweep(corpus, solvers, 42);
        ASSERT_EQ(report.runs.size(), reference.runs.size());
        for (std::size_t k = 0; k < report.runs.size(); ++k) {
            EXPECT_EQ(report.runs[k].solver_name, reference.runs[k].solver_name);
            EXPECT_DOUBLE_EQ(report.runs[k].best_energy, reference.runs[k].best_energy);
            expect_same_samples(report.runs[k].samples, reference.runs[k].samples);
        }
    }
}

TEST(ParallelRunner, SweepValidatesArguments) {
    const auto corpus = hy::make_paper_corpus(5, 1, 3, wl::modulation::bpsk);
    const so::simulated_annealing sa({.num_reads = 1, .num_sweeps = 5});
    const hy::parallel_runner runner;
    EXPECT_THROW((void)runner.sweep({}, {&sa}, 1), std::invalid_argument);
    EXPECT_THROW((void)runner.sweep(corpus, std::vector<const so::solver*>{}, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)runner.sweep(corpus, std::vector<const so::solver*>{nullptr}, 1),
                 std::invalid_argument);
    // The owned-solver overload forwards null checks too.
    EXPECT_THROW((void)runner.sweep(
                     corpus, std::vector<std::shared_ptr<const so::solver>>{nullptr}, 1),
                 std::invalid_argument);
    const auto report = runner.sweep(corpus, {&sa}, 1);
    EXPECT_THROW((void)report.at(1, 0), std::out_of_range);
    EXPECT_THROW((void)report.at(0, 1), std::out_of_range);
    EXPECT_THROW((void)report.mean_p_star(1), std::out_of_range);
}

TEST(Sweep, BestForwardReverseIsThreadCountInvariant) {
    hcq::util::rng make(57);
    const auto e = hy::make_paper_instance(make, 3, wl::modulation::qpsk);
    const an::annealer_emulator device;

    hcq::util::rng serial_rng(91);
    const auto serial = hy::best_forward_reverse(device, e.reduced.model, 0.41, 1.0, 1.0, 20,
                                                 e.optimal_energy, serial_rng, 99.0,
                                                 /*num_threads=*/1);
    for (const std::size_t threads : thread_counts_under_test()) {
        hcq::util::rng rng(91);
        const auto fr = hy::best_forward_reverse(device, e.reduced.model, 0.41, 1.0, 1.0, 20,
                                                 e.optimal_energy, rng, 99.0, threads);
        EXPECT_DOUBLE_EQ(fr.best_cp, serial.best_cp);
        EXPECT_DOUBLE_EQ(fr.eval.p_star, serial.eval.p_star);
        EXPECT_DOUBLE_EQ(fr.eval.tts_us, serial.eval.tts_us);
        EXPECT_DOUBLE_EQ(fr.eval.mean_delta_e, serial.eval.mean_delta_e);
    }
}

}  // namespace
