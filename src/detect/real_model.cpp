#include "detect/real_model.h"

#include <cmath>
#include <stdexcept>

#include "linalg/decompose.h"
#include "linalg/real_embed.h"

namespace hcq::detect {

namespace {

std::vector<double> pam_alphabet(std::size_t bits_per_dim) {
    const double max_amp = std::pow(2.0, static_cast<double>(bits_per_dim)) - 1.0;
    std::vector<double> out;
    for (double a = -max_amp; a <= max_amp; a += 2.0) out.push_back(a);
    return out;
}

}  // namespace

namespace {

/// Stacks [Re H; Im H] (the thin BPSK embedding) into `out`.
void stack_bpsk_embedding(const linalg::cmat& h, linalg::rmat& out) {
    out.resize(2 * h.rows(), h.cols());
    for (std::size_t r = 0; r < h.rows(); ++r) {
        for (std::size_t c = 0; c < h.cols(); ++c) {
            out(r, c) = h(r, c).real();
            out(h.rows() + r, c) = h(r, c).imag();
        }
    }
}

}  // namespace

const real_model& make_real_model_into(const wireless::mimo_instance& instance,
                                       lattice_scratch& scratch) {
    real_model& model = scratch.model;
    const bool hit = scratch.valid && scratch.key_mod == instance.mod &&
                     linalg::exactly_equal(instance.h, scratch.h_key);
    if (!hit) {
        model.mod = instance.mod;
        model.num_users = instance.num_users;
        model.quadrature = wireless::uses_quadrature(instance.mod);
        const std::size_t bits_per_dim = wireless::bits_per_dimension(instance.mod);
        const double max_amp = std::pow(2.0, static_cast<double>(bits_per_dim)) - 1.0;
        model.alphabet.clear();
        for (double a = -max_amp; a <= max_amp; a += 2.0) model.alphabet.push_back(a);

        if (model.quadrature) {
            linalg::real_embedding_into(instance.h, scratch.a_real);
            model.dims = 2 * instance.num_users;
        } else {
            stack_bpsk_embedding(instance.h, scratch.a_real);
            model.dims = instance.num_users;
        }
        linalg::householder_qr_into(scratch.a_real, scratch.qr, scratch.factors);
        model.r = scratch.factors.r;
        scratch.q = scratch.factors.q;
        scratch.h_key = instance.h;
        scratch.key_mod = instance.mod;
        scratch.valid = true;
    }
    // y_eff = Q^T y_real is per-use even when the factorisation is cached.
    linalg::real_embedding_into(instance.y, scratch.y_real);
    linalg::herm_matvec_into(scratch.q, scratch.y_real, model.y_eff);
    return model;
}

real_model make_real_model(const wireless::mimo_instance& instance) {
    real_model model;
    model.mod = instance.mod;
    model.num_users = instance.num_users;
    model.quadrature = wireless::uses_quadrature(instance.mod);
    model.alphabet = pam_alphabet(wireless::bits_per_dimension(instance.mod));

    linalg::rmat a_real;
    linalg::rvec y_real = linalg::real_embedding(instance.y);
    if (model.quadrature) {
        a_real = linalg::real_embedding(instance.h);
        model.dims = 2 * instance.num_users;
    } else {
        // BPSK: stack [Re H; Im H], imaginary transmit components are zero.
        const auto& h = instance.h;
        a_real = linalg::rmat(2 * h.rows(), h.cols());
        for (std::size_t r = 0; r < h.rows(); ++r) {
            for (std::size_t c = 0; c < h.cols(); ++c) {
                a_real(r, c) = h(r, c).real();
                a_real(h.rows() + r, c) = h(r, c).imag();
            }
        }
        model.dims = instance.num_users;
    }

    const auto qr = linalg::householder_qr(a_real);
    model.r = qr.r;
    model.y_eff = qr.q.hermitian() * y_real;
    return model;
}

detection_result assemble_result(const wireless::mimo_instance& instance,
                                 const std::vector<double>& amplitudes,
                                 std::size_t nodes_visited) {
    detection_result result;
    linalg::cvec residual;
    assemble_result_into(instance, amplitudes, nodes_visited, residual, result);
    return result;
}

void assemble_result_into(const wireless::mimo_instance& instance,
                          const std::vector<double>& amplitudes, std::size_t nodes_visited,
                          linalg::cvec& residual_scratch, detection_result& out) {
    const bool quadrature = wireless::uses_quadrature(instance.mod);
    const std::size_t n = instance.num_users;
    const std::size_t expected = quadrature ? 2 * n : n;
    if (amplitudes.size() != expected) {
        throw std::invalid_argument("assemble_result: wrong amplitude count");
    }
    out.symbols.resize(n);
    for (std::size_t u = 0; u < n; ++u) {
        const double re = amplitudes[u];
        const double im = quadrature ? amplitudes[n + u] : 0.0;
        out.symbols[u] = linalg::cxd(re, im);
    }
    wireless::demodulate_into(instance.mod, out.symbols, out.bits);
    out.ml_cost = instance.ml_cost(out.symbols, residual_scratch);
    out.nodes_visited = nodes_visited;
    out.elapsed_us = 0.0;
}

double slice_amplitude(double value, const std::vector<double>& alphabet) {
    if (alphabet.empty()) throw std::invalid_argument("slice_amplitude: empty alphabet");
    double best = alphabet.front();
    double best_dist = std::fabs(value - best);
    for (const double a : alphabet) {
        const double d = std::fabs(value - a);
        if (d < best_dist) {
            best = a;
            best_dist = d;
        }
    }
    return best;
}

}  // namespace hcq::detect
