// Paper-setup experiment corpus (Section 4.2): random MIMO detection
// instances with unit-gain random-phase channels, N_r = N_t users, no AWGN,
// reduced to QUBO form; plus the initial-state harvesting used by the
// initial-state-quality studies (Figures 7 and 8).
//
// In the noiseless setup the transmitted bits are a zero-residual ML
// solution, so the QUBO optimum is known by construction:
//     E_g = energy(tx_bits) = -offset   (since energy + offset = ||y-Hx||^2
//                                        and the residual is 0).
// `verify_ground_truth` checks this identity, and the test suite
// additionally cross-checks against the exact sphere decoder.
#ifndef HCQ_CORE_EXPERIMENT_H
#define HCQ_CORE_EXPERIMENT_H

#include <cstdint>
#include <vector>

#include "core/device.h"
#include "detect/transform.h"
#include "qubo/model.h"
#include "util/rng.h"
#include "wireless/mimo.h"

namespace hcq::hybrid {

/// One ready-to-solve paper instance.
struct experiment_instance {
    wireless::mimo_instance instance;
    detect::ml_qubo reduced;
    qubo::bit_vector optimal_bits;
    double optimal_energy = 0.0;

    [[nodiscard]] std::size_t num_variables() const { return reduced.model.num_variables(); }
};

/// Synthesises one instance of the paper's corpus recipe.
[[nodiscard]] experiment_instance make_paper_instance(util::rng& rng, std::size_t num_users,
                                                      wireless::modulation mod);

/// `count` deterministic instances (seed + index streams).
[[nodiscard]] std::vector<experiment_instance> make_paper_corpus(std::uint64_t seed,
                                                                 std::size_t count,
                                                                 std::size_t num_users,
                                                                 wireless::modulation mod);

/// Checks the zero-residual identity |energy(optimal) + offset| <= tol.
[[nodiscard]] bool verify_ground_truth(const experiment_instance& e, double tolerance = 1e-6);

/// Initial states binned by quality Delta-E_IS% (paper Figure 7: bins of
/// width delta, states below max_percent considered).
struct quality_binned_states {
    double bin_width_percent = 2.0;
    double max_percent = 10.0;
    /// states[b] holds initial states with Delta-E_IS% in
    /// [b*width, (b+1)*width).
    std::vector<std::vector<qubo::bit_vector>> states;

    [[nodiscard]] std::size_t num_bins() const { return states.size(); }
    [[nodiscard]] std::size_t total() const;
};

/// Harvests candidate initial states by random perturbation walks away from
/// the optimum plus uniform sampling, keeping those with Delta-E_IS% below
/// `max_percent`.  Cheap and deterministic in budget, but perturbation
/// states are not locally relaxed — their wrong bits are often trivial to
/// repair regardless of the bin, so prefer `harvest_annealer_states` for the
/// Figure-7/8 quality studies.
[[nodiscard]] quality_binned_states harvest_initial_states(const experiment_instance& e,
                                                           double bin_width_percent,
                                                           double max_percent,
                                                           std::size_t attempts,
                                                           util::rng& rng);

/// Harvests candidate initial states the way the paper does (Section 4.3:
/// "We obtain sample states of various Delta-E_IS% using over 750,000
/// samples"): forward-anneal the device across a range of pause locations
/// and bin the measured states by quality.  Annealer samples are locally
/// relaxed, so bins correlate with genuine repair difficulty.
[[nodiscard]] quality_binned_states harvest_annealer_states(
    const experiment_instance& e, const anneal::annealer_emulator& device,
    double bin_width_percent, double max_percent, std::size_t reads_per_setting,
    util::rng& rng);

}  // namespace hcq::hybrid

#endif  // HCQ_CORE_EXPERIMENT_H
