#include "detect/kbest.h"

#include <algorithm>
#include <stdexcept>

#include "detect/real_model.h"
#include "detect/scratch.h"
#include "util/timer.h"

namespace hcq::detect {

kbest_detector::kbest_detector(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("kbest_detector: k == 0");
}

std::string kbest_detector::name() const { return "KB" + std::to_string(k_); }

detection_result kbest_detector::detect(const wireless::mimo_instance& instance) const {
    detect_scratch scratch;
    detection_result result;
    detect_into(instance, scratch, result);
    return result;
}

// Index-based beam search: instead of copying whole amplitude paths into an
// expanded list, children are (cost, parent, amplitude) nodes and the kept
// rows are reconstructed from their parents into a double-buffered flat
// beam.  The children are generated in the same (parent-major, alphabet)
// order and selected by the same cost-only std::partial_sort as the
// historical path-copying implementation, so the selected permutation — and
// hence the detected word — is identical.
void kbest_detector::detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                                 detection_result& out) const {
    const util::timer clock;
    lattice_scratch& lat = scratch.lattice;
    const real_model& model = make_real_model_into(instance, lat);
    const std::size_t dims = model.dims;

    lat.beam_amps.assign(dims, 0.0);  // one all-zero root path
    lat.beam_costs.assign(1, 0.0);
    std::size_t beam_size = 1;
    std::size_t nodes = 0;

    for (std::size_t step = 0; step < dims; ++step) {
        const std::size_t level = dims - 1 - step;
        lat.expanded.clear();
        for (std::size_t b = 0; b < beam_size; ++b) {
            const double* amps = lat.beam_amps.data() + b * dims;
            const double parent_cost = lat.beam_costs[b];
            double acc = model.y_eff[level];
            for (std::size_t j = level + 1; j < dims; ++j) {
                acc -= model.r(level, j) * amps[j];
            }
            for (const double amplitude : model.alphabet) {
                const double residual = acc - model.r(level, level) * amplitude;
                lat.expanded.push_back({parent_cost + residual * residual, b, amplitude});
                ++nodes;
            }
        }
        const std::size_t keep = std::min(k_, lat.expanded.size());
        std::partial_sort(lat.expanded.begin(),
                          lat.expanded.begin() + static_cast<std::ptrdiff_t>(keep),
                          lat.expanded.end(),
                          [](const lattice_scratch::expand_node& a,
                             const lattice_scratch::expand_node& b) { return a.cost < b.cost; });
        // Materialise the kept rows from their parents; the old beam's costs
        // are no longer needed once expansion finished, so overwrite in place.
        lat.next_amps.resize(keep * dims);
        lat.beam_costs.resize(keep);
        for (std::size_t b = 0; b < keep; ++b) {
            const lattice_scratch::expand_node& node = lat.expanded[b];
            const double* parent = lat.beam_amps.data() + node.parent * dims;
            double* row = lat.next_amps.data() + b * dims;
            for (std::size_t j = 0; j < dims; ++j) row[j] = parent[j];
            row[level] = node.amplitude;
            lat.beam_costs[b] = node.cost;
        }
        lat.beam_amps.swap(lat.next_amps);
        beam_size = keep;
    }

    lat.chosen.assign(lat.beam_amps.begin(), lat.beam_amps.begin() + static_cast<std::ptrdiff_t>(dims));
    assemble_result_into(instance, lat.chosen, nodes, scratch.residual, out);
    out.elapsed_us = clock.elapsed_us();
}

}  // namespace hcq::detect
