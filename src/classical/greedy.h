// Greedy Search (GS) — the paper's classical module (Section 4.1, step 1),
// after the greedy descent of Venturelli & Kondratyev [52].
//
// The bits are ranked by the magnitude of the Ising linear term
//     h_i = 1/2 Q_ii + 1/4 sum_{k<i} Q_ki + 1/4 sum_{k>i} Q_ik
// (the paper's footnote: "sorted by the absolute magnitude of the matrix's
// diagonal elements in the Ising model").  The first bit takes q_i = 0 when
// h_i > 0 and 1 otherwise; each subsequent bit (in rank order) takes the
// value that minimises the QUBO energy restricted to already-set variables,
// i.e. the sign of its partial local field.  Complexity O(N^2) time /
// O(N) extra space — "nearly negligible" next to any annealing call.
//
// NOTE on rank direction: the paper's prose sorts bits "in ascending order
// by the magnitude" (least decided first) — `rank_order::least_decided_first`
// implements this and is the default.  The direction also matters for the
// *hybrid*: the two orders distribute residual errors differently between
// weakly- and strongly-decided bits, which changes how refinable the state
// is by a reverse anneal (instance-dependent; quantified by the initialiser
// ablation bench).  `most_decided_first` typically reaches lower raw energy
// and is kept as the ablation variant.
#ifndef HCQ_CLASSICAL_GREEDY_H
#define HCQ_CLASSICAL_GREEDY_H

#include "classical/solver.h"

namespace hcq::solvers {

/// Bit-ranking direction for greedy search.
enum class rank_order { least_decided_first, most_decided_first };

/// Deterministic greedy QUBO descent.
class greedy_search final : public initializer {
public:
    explicit greedy_search(rank_order order = rank_order::least_decided_first)
        : order_(order) {}

    /// Deterministic: ignores `rng`.
    [[nodiscard]] initial_state initialize(const qubo::qubo_model& q,
                                           util::rng& rng) const override;
    void initialize_into(const qubo::qubo_model& q, util::rng& rng, solve_scratch& scratch,
                         initial_state& out) const override;
    [[nodiscard]] std::string name() const override { return "GS"; }

    [[nodiscard]] rank_order order() const noexcept { return order_; }

private:
    rank_order order_;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_GREEDY_H
