#include "qubo/brute_force.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace hcq::qubo {

brute_force_result brute_force_minimize(const qubo_model& q, std::size_t max_variables,
                                        double tie_tolerance) {
    const std::size_t n = q.num_variables();
    if (n == 0) throw std::invalid_argument("brute_force_minimize: empty model");
    if (n > max_variables) {
        throw std::invalid_argument("brute_force_minimize: " + std::to_string(n) +
                                    " variables exceeds limit " + std::to_string(max_variables));
    }

    bit_vector bits(n, 0);
    double energy = 0.0;  // all-zeros assignment

    brute_force_result result;
    result.best_bits = bits;
    result.best_energy = energy;
    result.num_optima = 1;

    const std::uint64_t total = std::uint64_t{1} << n;
    for (std::uint64_t step = 1; step < total; ++step) {
        // Reflected-Gray-code neighbour: flip the lowest set bit's index.
        const auto flip = static_cast<std::size_t>(std::countr_zero(step));
        energy += q.flip_delta(flip, bits);
        bits[flip] ^= 1U;

        if (energy < result.best_energy - tie_tolerance) {
            result.best_energy = energy;
            result.best_bits = bits;
            result.num_optima = 1;
        } else if (std::fabs(energy - result.best_energy) <= tie_tolerance) {
            ++result.num_optima;
        }
    }
    return result;
}

}  // namespace hcq::qubo
