#include "metrics/ber.h"

#include <stdexcept>

namespace hcq::metrics {

std::size_t bit_errors(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
    if (a.size() != b.size()) throw std::invalid_argument("bit_errors: size mismatch");
    std::size_t errors = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) ++errors;
    }
    return errors;
}

void ber_counter::add_frame(std::span<const std::uint8_t> reference,
                            std::span<const std::uint8_t> detected) {
    errors_ += bit_errors(reference, detected);
    total_ += reference.size();
}

double ber_counter::rate() const noexcept {
    if (total_ == 0) return 0.0;
    return static_cast<double>(errors_) / static_cast<double>(total_);
}

}  // namespace hcq::metrics
