// hcq-hot-path: steady-state code in this file must not allocate — reuse
// workspace scratch (enforced by the hot-path-alloc lint rule).
#include "classical/tabu.h"

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "classical/metropolis.h"
#include "util/timer.h"

namespace hcq::solvers {

tabu_search::tabu_search(tabu_config config) : config_(config) {
    if (config_.max_iterations == 0) throw std::invalid_argument("tabu_search: no iterations");
}

initial_state tabu_search::initialize(const qubo::qubo_model& q, util::rng& rng) const {
    const util::timer clock;
    const auto samples = solve(q, rng);
    initial_state out;
    out.bits = samples.best().bits;
    out.energy = samples.best().energy;
    out.elapsed_us = clock.elapsed_us();
    return out;
}

sample_set tabu_search::solve(const qubo::qubo_model& q, util::rng& rng) const {
    // Single implementation of the search trajectory: the best-sample fast
    // path below, wrapped into a one-sample set.
    solve_scratch scratch;
    qubo::bit_vector best;
    const double best_energy = solve_best_into(q, rng, scratch, best);
    sample_set out;
    out.add(std::move(best), best_energy);
    return out;
}

double tabu_search::solve_best_into(const qubo::qubo_model& q, util::rng& rng,
                                    solve_scratch& scratch, qubo::bit_vector& best) const {
    const std::size_t n = q.num_variables();
    rng.bits_into(n, scratch.bits_a);
    metropolis_engine& engine = scratch.engine;
    engine.reset(q, scratch.bits_a);

    best.assign(engine.state().begin(), engine.state().end());
    double best_energy = engine.energy();

    std::vector<std::size_t>& tabu_until = scratch.index_a;
    tabu_until.assign(n, 0);
    std::vector<double>& cand = scratch.real_a;
    cand.resize(n);
    std::size_t stall = 0;

    // Buffer pointers are loop-invariant: force_flip mutates elements in
    // place and never reallocates, so hoisting them out of the iteration
    // loop is safe.
    const std::uint8_t* bits = engine.state().data();
    const double* fields = engine.fields().data();
    const std::size_t* expiry = tabu_until.data();
    const double inf = std::numeric_limits<double>::infinity();
    const std::uint64_t inf_bits = std::bit_cast<std::uint64_t>(inf);

    for (std::size_t iter = 1; iter <= config_.max_iterations && stall < config_.stall_limit;
         ++iter) {
        // Pick the best admissible flip.  The historical scan was a single
        // branchy first-index argmin; the admissibility pattern is close to
        // random, so here it runs as two branchless passes instead — mask
        // inadmissible moves to +inf, take the min, then find the first
        // index attaining it.  Min over doubles is exact and
        // order-independent and the equality test is exact, so the chosen
        // index — the first admissible index at the minimum delta, exactly
        // what the strict `<` argmin picked — and hence the whole search
        // trajectory are bit-identical to the historical loop.
        const double energy = engine.energy();
        double min_delta = inf;
        for (std::size_t i = 0; i < n; ++i) {
            // XOR of the sign bit is exact IEEE negation, and the mask-select
            // picks exactly `delta` or `+inf` — the same values the branchy
            // form produced, with no data-dependent branch for the (close to
            // random) bit/tabu/aspiration pattern to mispredict on.
            const double delta = std::bit_cast<double>(
                std::bit_cast<std::uint64_t>(fields[i]) ^
                (static_cast<std::uint64_t>(bits[i]) << 63));
            const std::uint64_t admissible =
                static_cast<std::uint64_t>(expiry[i] <= iter) |
                static_cast<std::uint64_t>(energy + delta < best_energy);
            const std::uint64_t keep = 0 - admissible;  // all-ones iff admissible
            const double c = std::bit_cast<double>(
                (std::bit_cast<std::uint64_t>(delta) & keep) | (inf_bits & ~keep));
            cand[i] = c;
            min_delta = c < min_delta ? c : min_delta;
        }
        if (min_delta == inf) {
            ++stall;  // everything tabu and nothing aspires
            continue;
        }
        std::size_t chosen = 0;
        while (cand[chosen] != min_delta) ++chosen;
        engine.force_flip(chosen);  // tabu search always moves, even uphill
        tabu_until[chosen] = iter + config_.tenure;
        if (engine.energy() < best_energy - 1e-12) {
            best_energy = engine.energy();
            best.assign(engine.state().begin(), engine.state().end());
            stall = 0;
        } else {
            ++stall;
        }
    }

    return best_energy;
}

}  // namespace hcq::solvers
