// Fixture: allocation is fine in a file NOT tagged hot-path.
#include <vector>

void allocates_freely() {
    int* p = new int(7);
    std::vector<double> v(16);
    v[0] = static_cast<double>(*p);
    delete p;
}
