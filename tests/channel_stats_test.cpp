// Statistical validation harness for the realistic-channel subsystem
// (wireless/fading.h + wireless/channel_spec.h + wireless::synthesize_at).
//
// A fading simulator can be subtly wrong in ways no unit test of its
// plumbing will catch — a mis-scaled Doppler, a non-Rayleigh envelope, a
// spectrum that decorrelates twice too fast.  This suite pins the generated
// processes to their ANALYTIC targets, all with fixed seeds so it is
// deterministic in Debug and Release:
//
//  * envelope |g| is Rayleigh: Kolmogorov–Smirnov against F(r) = 1 - e^(-r^2)
//  * Jakes autocorrelation matches J0(2*pi*fd*tau) within 0.05 across the
//    first correlation lobe (and past its first zero)
//  * Gaussian/Watterson autocorrelation matches exp(-2*pi^2*s^2*tau^2)
//  * low Doppler makes LONG deep fades (burst regime), high Doppler short
//    ones — the level-crossing behaviour that turns FER into bursts
//  * imperfect-CSI estimation error realises its configured variance
//  * exact i.i.d. reductions: est_err=0 is byte-identical to the legacy
//    synthesis path, and Doppler at J0's first zero decorrelates lag 1
//
// Tolerances: every sample count below gives the estimator a standard error
// at least ~3x smaller than the asserted bound, so the fixed-seed checks sit
// far from the boundary rather than passing by luck.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <numbers>
#include <string>
#include <vector>

#include "wireless/channel_spec.h"
#include "wireless/fading.h"
#include "wireless/mimo.h"

namespace {

namespace wl = hcq::wireless;
using hcq::util::rng;

constexpr double two_pi = 2.0 * std::numbers::pi;

/// Kolmogorov–Smirnov statistic of `samples` against the Rayleigh CDF with
/// unit mean-square (sigma^2 = 1/2 per component): F(r) = 1 - exp(-r^2).
double ks_vs_unit_rayleigh(std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    double stat = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double cdf = 1.0 - std::exp(-samples[i] * samples[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        stat = std::max({stat, std::fabs(cdf - lo), std::fabs(hi - cdf)});
    }
    return stat;
}

/// Ensemble autocorrelation estimate of fresh taps at lag `tau`:
/// mean of Re[g(t0) conj(g(t0 + tau))] over `num_taps` independent taps and
/// several well-separated base times each.
double measured_autocorrelation(rng& seed_rng, wl::fading_spectrum spectrum,
                                double doppler_norm, std::size_t sinusoids,
                                std::size_t num_taps, double tau) {
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < num_taps; ++i) {
        const wl::fading_tap tap(seed_rng, spectrum, doppler_norm, sinusoids);
        for (int b = 0; b < 8; ++b) {
            const double t0 = 997.0 * static_cast<double>(b);  // >> coherence time apart
            const auto product = tap.gain(t0) * std::conj(tap.gain(t0 + tau));
            acc += product.real();
            ++count;
        }
    }
    return acc / static_cast<double>(count);
}

/// Mean length of runs where the envelope of a low/high-Doppler tap stays
/// below `threshold`, averaged over `num_taps` taps of `span` uses each.
double mean_fade_duration(rng& seed_rng, double doppler_norm, double threshold,
                          std::size_t num_taps, std::size_t span) {
    std::uint64_t faded_uses = 0;
    std::uint64_t fades = 0;
    for (std::size_t i = 0; i < num_taps; ++i) {
        const wl::fading_tap tap(seed_rng, wl::fading_spectrum::jakes, doppler_norm, 32);
        bool in_fade = false;
        for (std::size_t t = 0; t < span; ++t) {
            const bool below = std::abs(tap.gain(static_cast<double>(t))) < threshold;
            if (below) {
                ++faded_uses;
                if (!in_fade) ++fades;
            }
            in_fade = below;
        }
    }
    if (fades == 0) return 0.0;
    return static_cast<double>(faded_uses) / static_cast<double>(fades);
}

std::string thrown_message(const std::function<void()>& fn) {
    try {
        fn();
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return "";
}

// ---------------------------------------------------------------------------
// fading_tap: analytic-form pins
// ---------------------------------------------------------------------------

TEST(FadingStats, BesselJ0MatchesKnownValues) {
    // Abramowitz & Stegun tabulated values; the approximation is |err|<2e-7,
    // asserted at 1e-6 to stay clear of the table's own rounding.
    EXPECT_NEAR(wl::bessel_j0(0.0), 1.0, 1e-9);
    EXPECT_NEAR(wl::bessel_j0(1.0), 0.7651976866, 1e-6);
    EXPECT_NEAR(wl::bessel_j0(2.4048255577), 0.0, 1e-6);  // first zero
    EXPECT_NEAR(wl::bessel_j0(5.0), -0.1775967713, 1e-6);
    EXPECT_NEAR(wl::bessel_j0(10.0), -0.2459357645, 1e-6);
    EXPECT_NEAR(wl::bessel_j0(-3.0), wl::bessel_j0(3.0), 1e-12);  // even function
}

TEST(FadingStats, TapGainIsDeterministicAndFrozen) {
    rng a(41);
    rng b(41);
    const wl::fading_tap tap_a(a, wl::fading_spectrum::jakes, 0.01, 16);
    const wl::fading_tap tap_b(b, wl::fading_spectrum::jakes, 0.01, 16);
    for (const double t : {0.0, 1.5, 317.0, 12345.25}) {
        EXPECT_EQ(tap_a.gain(t), tap_b.gain(t)) << "t=" << t;
    }
    // Re-evaluation is pure: same t, same gain, in any order.
    const auto first = tap_a.gain(100.0);
    (void)tap_a.gain(5000.0);
    EXPECT_EQ(tap_a.gain(100.0), first);
}

TEST(FadingStats, TapRejectsBadParameters) {
    rng r(1);
    EXPECT_THROW(wl::fading_tap(r, wl::fading_spectrum::jakes, 0.01, 0),
                 std::invalid_argument);
    EXPECT_THROW(wl::fading_tap(r, wl::fading_spectrum::jakes, -0.5, 8),
                 std::invalid_argument);
}

TEST(FadingStats, EnvelopeIsRayleighByKolmogorovSmirnov) {
    // 250 taps x 8 decorrelated times = 2000 envelope samples.  KS critical
    // value at alpha=0.01 is 1.63/sqrt(2000) ~= 0.036; 64 sinusoids keep the
    // CLT deficit of the sum-of-sinusoids marginal well under the 0.05 bound.
    rng seed_rng(2024);
    std::vector<double> samples;
    samples.reserve(2000);
    for (int i = 0; i < 250; ++i) {
        const wl::fading_tap tap(seed_rng, wl::fading_spectrum::jakes, 0.05, 64);
        for (int b = 0; b < 8; ++b) {
            samples.push_back(std::abs(tap.gain(61.0 + 149.0 * static_cast<double>(b))));
        }
    }
    EXPECT_LT(ks_vs_unit_rayleigh(std::move(samples)), 0.05);
}

TEST(FadingStats, UnitMeanSquarePower) {
    rng seed_rng(7);
    double acc = 0.0;
    std::size_t count = 0;
    for (int i = 0; i < 300; ++i) {
        const wl::fading_tap tap(seed_rng, wl::fading_spectrum::jakes, 0.02, 32);
        for (int b = 0; b < 8; ++b) {
            acc += std::norm(tap.gain(311.0 * static_cast<double>(b)));
            ++count;
        }
    }
    EXPECT_NEAR(acc / static_cast<double>(count), 1.0, 0.05);
}

TEST(FadingStats, JakesAutocorrelationMatchesBesselFirstLobe) {
    // fd = 0.05/use puts J0's first zero at tau = 2.4048/(2 pi fd) ~= 7.65
    // uses; lags 0..10 cover the whole first lobe and cross into the first
    // sidelobe.  600 taps x 8 base times gives the estimator a standard
    // error ~0.01 against the 0.05 acceptance bound (ISSUE: within 5% of J0
    // over the first correlation lobe).
    const double fd = 0.05;
    rng seed_rng(31337);
    for (int lag = 0; lag <= 10; ++lag) {
        const double tau = static_cast<double>(lag);
        const double measured = measured_autocorrelation(
            seed_rng, wl::fading_spectrum::jakes, fd, 32, 600, tau);
        const double analytic = wl::jakes_autocorrelation(fd, tau);
        EXPECT_NEAR(measured, analytic, 0.05) << "tau=" << tau;
    }
    // And the analytic curve itself is the Bessel J0.
    EXPECT_DOUBLE_EQ(wl::jakes_autocorrelation(fd, 3.0), wl::bessel_j0(two_pi * fd * 3.0));
}

TEST(FadingStats, GaussianAutocorrelationMatchesAnalyticCurve) {
    // Watterson tap, spread sigma = 0.02/use: autocorrelation
    // exp(-2 pi^2 sigma^2 tau^2) decays to ~0.46 by tau=10 and ~0.04 by
    // tau=20 — checked across the fall-off.
    const double sigma = 0.02;
    rng seed_rng(90210);
    for (const double tau : {0.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
        const double measured = measured_autocorrelation(
            seed_rng, wl::fading_spectrum::gaussian, sigma, 32, 600, tau);
        const double analytic = wl::gaussian_autocorrelation(sigma, tau);
        EXPECT_NEAR(measured, analytic, 0.05) << "tau=" << tau;
    }
}

TEST(FadingStats, LowDopplerFadesAreLongHighDopplerFadesAreShort) {
    // The burst mechanism in one number: mean sojourn below half amplitude.
    // At fd=0.002 the channel crawls (coherence ~ hundreds of uses), so a
    // deep fade traps many consecutive uses; at fd=0.4 every use is nearly
    // fresh and fades last ~a single use.
    rng seed_rng(555);
    const double slow = mean_fade_duration(seed_rng, 0.002, 0.5, 20, 4000);
    const double fast = mean_fade_duration(seed_rng, 0.4, 0.5, 20, 4000);
    EXPECT_GT(slow, 20.0);
    EXPECT_LT(fast, 3.0);
    EXPECT_GT(slow, 10.0 * fast);
}

TEST(FadingStats, FirstBesselZeroDopplerDecorrelatesLagOne) {
    // The exact i.i.d. limit of the correlated model: at fd = 2.4048/(2 pi)
    // ~= 0.3827/use, J0(2 pi fd) = 0 — consecutive uses are uncorrelated.
    const double fd = 2.4048255577 / two_pi;
    rng seed_rng(777);
    const double measured = measured_autocorrelation(
        seed_rng, wl::fading_spectrum::jakes, fd, 32, 600, 1.0);
    EXPECT_NEAR(measured, 0.0, 0.05);
}

// ---------------------------------------------------------------------------
// channel_process: composition, power, imperfect CSI
// ---------------------------------------------------------------------------

TEST(ChannelProcessStats, CorrelatedProcessIsFrozenAndRngNeutral) {
    const auto spec = wl::channel_spec::parse("jakes:doppler_hz=20");
    const rng base(99);
    const auto process_a = wl::make_channel_process(spec, 3, 2, base);
    const auto process_b = wl::make_channel_process(spec, 3, 2, base);
    ASSERT_TRUE(process_a->correlated());

    rng use_rng(5);
    const double before = use_rng.uniform();
    rng use_rng_replay(5);
    (void)use_rng_replay.uniform();
    const auto h = process_a->at(42.0, use_rng_replay);
    // A correlated process never touches the per-use stream...
    EXPECT_EQ(use_rng.uniform(), use_rng_replay.uniform());
    (void)before;
    // ...and the realisation is a pure function of (base rng, t).
    rng scratch(0);
    EXPECT_NEAR((h - process_b->at(42.0, scratch)).norm_fro(), 0.0, 0.0);
}

TEST(ChannelProcessStats, WattersonCompositeKeepsUnitPower) {
    const auto spec = wl::channel_spec::parse("watterson:taps=3,spread_hz=15,sinusoids=32");
    const auto process = wl::make_channel_process(spec, 4, 4, rng(3));
    double acc = 0.0;
    std::size_t count = 0;
    rng scratch(0);
    for (int s = 0; s < 400; ++s) {
        const auto h = process->at(211.0 * static_cast<double>(s), scratch);
        for (std::size_t r = 0; r < h.rows(); ++r) {
            for (std::size_t c = 0; c < h.cols(); ++c) {
                acc += std::norm(h(r, c));
                ++count;
            }
        }
    }
    EXPECT_NEAR(acc / static_cast<double>(count), 1.0, 0.05);
}

TEST(ChannelProcessStats, MatrixElementsAreIndependentProcesses) {
    // Distinct (antenna, user) elements ride distinct derived tap streams:
    // their gains must not be correlated (a classic bug is every element
    // sharing one tap).  Empirical cross-correlation over decorrelated
    // snapshots stays near 0 while each element's own power stays near 1.
    const auto spec = wl::channel_spec::parse("jakes:doppler_hz=50,sinusoids=32");
    const auto process = wl::make_channel_process(spec, 2, 2, rng(17));
    rng scratch(0);
    hcq::linalg::cxd cross{};
    int count = 0;
    for (int s = 0; s < 2000; ++s) {
        const auto h = process->at(157.0 * static_cast<double>(s), scratch);
        cross += h(0, 0) * std::conj(h(1, 1));
        ++count;
    }
    EXPECT_LT(std::abs(cross) / count, 0.06);
}

TEST(ChannelProcessStats, EstimationErrorRealisesConfiguredVariance) {
    const auto spec = wl::channel_spec::parse("rayleigh:est_err=0.25");
    const auto process = wl::make_channel_process(spec, 8, 8, rng(1));
    wl::mimo_config config;
    config.mod = wl::modulation::qpsk;
    config.num_users = 8;
    config.num_antennas = 8;
    config.noise_variance = 0.5;
    rng synth(4242);
    double acc = 0.0;
    std::size_t count = 0;
    for (int u = 0; u < 500; ++u) {
        const auto inst =
            wl::synthesize_at(synth, config, *process, static_cast<double>(u), spec.est_err);
        ASSERT_FALSE(inst.h_true.empty());
        EXPECT_DOUBLE_EQ(inst.csi_error_variance, 0.25);
        for (std::size_t r = 0; r < 8; ++r) {
            for (std::size_t c = 0; c < 8; ++c) {
                acc += std::norm(inst.h(r, c) - inst.h_true(r, c));
                ++count;
            }
        }
    }
    // 32000 complex error samples: the chi-square mean has relative standard
    // error sqrt(1/32000) ~= 0.6%, asserted at 10%.
    EXPECT_NEAR(acc / static_cast<double>(count), 0.25, 0.025);
}

TEST(ChannelProcessStats, PerfectCsiIsByteIdenticalToLegacySynthesis) {
    // est_err=0 through an i.i.d. process must reproduce wireless::synthesize
    // EXACTLY — same rng consumption, same bytes — because the link goldens
    // pin that path.
    const auto spec = wl::channel_spec::parse("rayleigh");
    const auto process = wl::make_channel_process(spec, 4, 4, rng(12));
    wl::mimo_config config;
    config.mod = wl::modulation::qam16;
    config.num_users = 4;
    config.num_antennas = 4;
    config.channel = wl::channel_model::rayleigh;
    config.noise_variance = 0.8;
    for (std::uint64_t seed : {1ULL, 99ULL, 123456ULL}) {
        rng legacy_rng(seed);
        rng process_rng(seed);
        const auto legacy = wl::synthesize(legacy_rng, config);
        const auto via_process = wl::synthesize_at(process_rng, config, *process, 17.0, 0.0);
        EXPECT_EQ(legacy.tx_bits, via_process.tx_bits);
        EXPECT_NEAR((legacy.h - via_process.h).norm_fro(), 0.0, 0.0);
        EXPECT_NEAR((legacy.y - via_process.y).norm2(), 0.0, 0.0);
        EXPECT_TRUE(via_process.h_true.empty());
        // And both generators are left in the same state.
        EXPECT_EQ(legacy_rng.uniform(), process_rng.uniform());
    }
}

TEST(ChannelProcessStats, SynthesizeAtValidation) {
    const auto spec = wl::channel_spec::parse("rayleigh");
    const auto process = wl::make_channel_process(spec, 4, 4, rng(1));
    wl::mimo_config config;
    config.num_users = 2;  // mismatches the 4x4 process
    config.num_antennas = 2;
    rng r(1);
    EXPECT_THROW((void)wl::synthesize_at(r, config, *process, 0.0, 0.0),
                 std::invalid_argument);
    config.num_users = 4;
    config.num_antennas = 4;
    EXPECT_THROW((void)wl::synthesize_at(r, config, *process, 0.0, -0.1),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)wl::make_channel_process(spec, 0, 4, rng(1)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// channel_spec: grammar, canonicalisation, self-documenting errors
// ---------------------------------------------------------------------------

TEST(ChannelSpec, DefaultsAndCanonicalForms) {
    const auto bare = wl::channel_spec::parse("jakes");
    EXPECT_EQ(bare.kind, "jakes");
    EXPECT_DOUBLE_EQ(bare.doppler_hz, 50.0);
    EXPECT_DOUBLE_EQ(bare.use_rate_hz, 1000.0);
    EXPECT_EQ(bare.sinusoids, 16u);
    EXPECT_TRUE(bare.correlated());
    // Canonical form makes every accepted key explicit, so the bare kind and
    // its spelled-out default parse identically (like detection paths).
    EXPECT_EQ(bare.to_string(),
              "jakes:doppler_hz=50,use_rate_hz=1000,sinusoids=16,est_err=0");
    EXPECT_EQ(wl::channel_spec::parse(bare.to_string()).to_string(), bare.to_string());

    const auto watterson = wl::channel_spec::parse("watterson");
    EXPECT_DOUBLE_EQ(watterson.doppler_hz, 0.0);  // Doppler SHIFT defaults to 0
    EXPECT_DOUBLE_EQ(watterson.spread_hz, 1.0);
    EXPECT_EQ(watterson.taps, 2u);
    EXPECT_EQ(
        watterson.to_string(),
        "watterson:taps=2,spread_hz=1,doppler_hz=0,use_rate_hz=1000,sinusoids=16,est_err=0");

    const auto rayleigh = wl::channel_spec::parse("rayleigh");
    EXPECT_FALSE(rayleigh.correlated());
    EXPECT_EQ(rayleigh.to_string(), "rayleigh:est_err=0");
}

TEST(ChannelSpec, ParsesKeysAndNormalisesRates) {
    const auto spec =
        wl::channel_spec::parse("jakes:doppler_hz=5,use_rate_hz=500,snr_db=12,est_err=0.05");
    EXPECT_DOUBLE_EQ(spec.doppler_hz, 5.0);
    EXPECT_DOUBLE_EQ(spec.doppler_norm(), 0.01);
    ASSERT_TRUE(spec.snr_db.has_value());
    EXPECT_DOUBLE_EQ(*spec.snr_db, 12.0);
    EXPECT_DOUBLE_EQ(spec.est_err, 0.05);
    const auto wspec = wl::channel_spec::parse("watterson:taps=3,spread_hz=2");
    EXPECT_EQ(wspec.taps, 3u);
    EXPECT_DOUBLE_EQ(wspec.spread_norm(), 0.002);
}

TEST(ChannelSpec, UnknownKindListsAvailableKinds) {
    const std::string msg =
        thrown_message([] { (void)wl::channel_spec::parse("rician:k=3"); });
    EXPECT_NE(msg.find("unknown channel kind 'rician'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("available:"), std::string::npos) << msg;
    for (const auto& kind : wl::channel_spec::kinds()) {
        EXPECT_NE(msg.find(kind), std::string::npos) << msg;
    }
}

TEST(ChannelSpec, UnknownKeyListsAcceptedKeys) {
    const std::string msg = thrown_message(
        [] { (void)wl::channel_spec::parse("rayleigh:doppler_hz=10"); });
    // An i.i.d. kind has no Doppler; the error must name the key AND the
    // accepted alternatives.
    EXPECT_NE(msg.find("does not accept key 'doppler_hz'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("accepted: est_err, snr_db"), std::string::npos) << msg;
}

TEST(ChannelSpec, OutOfRangeValuesNameTheirBounds) {
    // Doppler past Nyquist of the use rate.
    std::string msg = thrown_message(
        [] { (void)wl::channel_spec::parse("jakes:doppler_hz=800"); });
    EXPECT_NE(msg.find("doppler_hz must be in (0, use_rate_hz/2]"), std::string::npos) << msg;
    // Zero Doppler is not correlated fading.
    msg = thrown_message([] { (void)wl::channel_spec::parse("jakes:doppler_hz=0"); });
    EXPECT_NE(msg.find("doppler_hz must be in"), std::string::npos) << msg;
    // Tap count bounds.
    msg = thrown_message([] { (void)wl::channel_spec::parse("watterson:taps=9"); });
    EXPECT_NE(msg.find("taps must be in [1, 4]"), std::string::npos) << msg;
    msg = thrown_message([] { (void)wl::channel_spec::parse("watterson:taps=0"); });
    EXPECT_NE(msg.find("taps must be in [1, 4]"), std::string::npos) << msg;
    // Negative estimation error.
    msg = thrown_message([] { (void)wl::channel_spec::parse("rayleigh:est_err=-1"); });
    EXPECT_NE(msg.find("est_err must be >= 0"), std::string::npos) << msg;
    // Sinusoid-order bounds.
    msg = thrown_message([] { (void)wl::channel_spec::parse("jakes:sinusoids=2"); });
    EXPECT_NE(msg.find("sinusoids must be in [4, 4096]"), std::string::npos) << msg;
}

TEST(ChannelSpec, MalformedSpecsThrow) {
    EXPECT_THROW((void)wl::channel_spec::parse(""), std::invalid_argument);
    EXPECT_THROW((void)wl::channel_spec::parse("jakes:"), std::invalid_argument);
    EXPECT_THROW((void)wl::channel_spec::parse("jakes:doppler_hz"), std::invalid_argument);
    EXPECT_THROW((void)wl::channel_spec::parse("jakes:doppler_hz="), std::invalid_argument);
    EXPECT_THROW((void)wl::channel_spec::parse("jakes:=5"), std::invalid_argument);
    EXPECT_THROW((void)wl::channel_spec::parse("jakes:doppler_hz=abc"),
                 std::invalid_argument);
    EXPECT_THROW((void)wl::channel_spec::parse("jakes:doppler_hz=5,doppler_hz=9"),
                 std::invalid_argument);
    EXPECT_THROW((void)wl::channel_spec::parse("kind=jakes"), std::invalid_argument);
}

TEST(ChannelSpec, HelpListsEveryKind) {
    const std::string help = wl::channel_spec::help();
    for (const auto& kind : wl::channel_spec::kinds()) {
        EXPECT_NE(help.find(kind), std::string::npos) << "missing " << kind;
    }
    EXPECT_NE(help.find("est_err"), std::string::npos);
    EXPECT_NE(help.find("doppler_hz"), std::string::npos);
}

}  // namespace
