// Soft-information constraint injection (paper Section 3.1, Figure 4).
//
// Pre-knowledge that a group of bits is "very likely" a particular pattern
// can be folded into the QUBO as penalty terms that raise the energy of
// assignments deviating from the pattern — e.g. the paper's
//   C1 * (q1 - 1) * (q2 - 1) + C2 * (q3 - 1) * (q4 - 1)
// for a symbol believed to be 1111 on a 16-QAM constellation.  The paper
// found tuning the C factors on analog hardware impractical, but the
// machinery is part of the explored design space, so it is provided (and
// benchmarked in the pre-processing ablation).
#ifndef HCQ_QUBO_CONSTRAINTS_H
#define HCQ_QUBO_CONSTRAINTS_H

#include <cstdint>
#include <span>

#include "qubo/model.h"

namespace hcq::qubo {

/// Adds C * (q_i - t_i) * (q_j - t_j) to the model (t in {0,1}; i != j).
/// With C < 0 this *rewards* matching both targets; with C > 0 it penalises
/// the assignment opposite to (t_i, t_j).  Exact expansion, offset included.
void add_pair_constraint(qubo_model& q, std::size_t i, std::size_t j, std::uint8_t target_i,
                         std::uint8_t target_j, double strength);

/// Adds C * (q_i - t)^2 — a single-bit prior; q^2 == q makes it linear.
void add_bit_bias(qubo_model& q, std::size_t i, std::uint8_t target, double strength);

/// Applies the Figure-4 scheme to a run of bits believed to equal `pattern`:
/// consecutive bit pairs (0,1), (2,3), ... each receive a penalty of
/// `strength` when BOTH bits deviate from the pattern (an odd trailing bit
/// gets a single-bit bias).  Internally this is
///     strength * d_i * d_j   with deviation indicator d_i = q_i XOR t_i,
/// which equals the paper's  C (q_i - 1)(q_j - 1)  exactly when the believed
/// pattern bits are 1, and keeps the penalty non-negative for any pattern
/// (the raw product (q_i - t_i)(q_j - t_j) would *reward* some deviations
/// for mixed targets).  `first` is the index of pattern[0] in the QUBO.
void add_pattern_constraint(qubo_model& q, std::size_t first,
                            std::span<const std::uint8_t> pattern, double strength);

}  // namespace hcq::qubo

#endif  // HCQ_QUBO_CONSTRAINTS_H
