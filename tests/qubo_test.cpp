// Tests for hcq::qubo — model semantics (Eq. 1), local fields, Ising
// round-trips, brute force, and generators.
#include <gtest/gtest.h>

#include <cmath>

#include "qubo/brute_force.h"
#include "qubo/generator.h"
#include "qubo/ising.h"
#include "qubo/model.h"
#include "qubo/serialize.h"
#include "util/rng.h"

namespace {

namespace q = hcq::qubo;

/// Naive reference: E = sum_{i<=j} Q_ij q_i q_j.
double naive_energy(const q::qubo_model& m, const q::bit_vector& bits) {
    double e = 0.0;
    for (std::size_t i = 0; i < m.num_variables(); ++i) {
        for (std::size_t j = i; j < m.num_variables(); ++j) {
            e += m.coefficient(i, j) * bits[i] * bits[j];
        }
    }
    return e;
}

TEST(QuboModel, EmptyAndSizes) {
    const q::qubo_model m(5);
    EXPECT_EQ(m.num_variables(), 5u);
    EXPECT_DOUBLE_EQ(m.linear(0), 0.0);
    EXPECT_DOUBLE_EQ(m.offset(), 0.0);
    EXPECT_DOUBLE_EQ(m.max_abs_coefficient(), 0.0);
}

TEST(QuboModel, TermAccessorsAreOrderInsensitive) {
    q::qubo_model m(3);
    m.set_term(0, 2, 1.5);
    EXPECT_DOUBLE_EQ(m.coefficient(0, 2), 1.5);
    EXPECT_DOUBLE_EQ(m.coefficient(2, 0), 1.5);
    m.add_term(2, 0, 0.5);
    EXPECT_DOUBLE_EQ(m.coefficient(0, 2), 2.0);
    m.set_term(1, 1, -3.0);
    EXPECT_DOUBLE_EQ(m.linear(1), -3.0);
    EXPECT_DOUBLE_EQ(m.coefficient(1, 1), -3.0);
}

TEST(QuboModel, IndexValidation) {
    q::qubo_model m(2);
    EXPECT_THROW((void)m.linear(2), std::out_of_range);
    EXPECT_THROW(m.set_term(0, 5, 1.0), std::out_of_range);
    EXPECT_THROW((void)m.row(7), std::out_of_range);
}

TEST(QuboModel, EnergyMatchesHandComputation) {
    // E = 2 q0 - 3 q1 + 4 q0 q1
    q::qubo_model m(2);
    m.set_term(0, 0, 2.0);
    m.set_term(1, 1, -3.0);
    m.set_term(0, 1, 4.0);
    const q::bit_vector b00{0, 0}, b10{1, 0}, b01{0, 1}, b11{1, 1};
    EXPECT_DOUBLE_EQ(m.energy(b00), 0.0);
    EXPECT_DOUBLE_EQ(m.energy(b10), 2.0);
    EXPECT_DOUBLE_EQ(m.energy(b01), -3.0);
    EXPECT_DOUBLE_EQ(m.energy(b11), 3.0);
    m.set_offset(10.0);
    EXPECT_DOUBLE_EQ(m.energy_with_offset(b01), 7.0);
}

TEST(QuboModel, EnergyRejectsWrongSize) {
    const q::qubo_model m(3);
    const q::bit_vector bits{0, 1};
    EXPECT_THROW((void)m.energy(bits), std::invalid_argument);
}

class QuboProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuboProperty, EnergyMatchesNaiveOnRandomModels) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 31 + 1);
    const auto m = q::random_qubo(rng, n, 0.8, -2.0, 2.0);
    for (int trial = 0; trial < 20; ++trial) {
        const auto bits = rng.bits(n);
        EXPECT_NEAR(m.energy(bits), naive_energy(m, bits), 1e-10);
    }
}

TEST_P(QuboProperty, FlipDeltaMatchesRecomputation) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 31 + 2);
    const auto m = q::random_qubo(rng, n, 0.7, -1.0, 1.0);
    for (int trial = 0; trial < 10; ++trial) {
        auto bits = rng.bits(n);
        const double base = m.energy(bits);
        for (std::size_t i = 0; i < n; ++i) {
            const double delta = m.flip_delta(i, bits);
            auto flipped = bits;
            flipped[i] ^= 1U;
            EXPECT_NEAR(base + delta, m.energy(flipped), 1e-10);
        }
    }
}

TEST_P(QuboProperty, LocalFieldsConsistent) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 31 + 3);
    const auto m = q::random_qubo(rng, n, 1.0, -1.0, 1.0);
    const auto bits = rng.bits(n);
    const auto fields = m.local_fields(bits);
    ASSERT_EQ(fields.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(fields[i], m.local_field(i, bits), 1e-12);
    }
}

TEST_P(QuboProperty, FixVariablePreservesEnergies) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 31 + 4);
    const auto m = q::random_qubo(rng, n, 0.9, -1.5, 1.5);
    for (std::uint8_t value = 0; value <= 1; ++value) {
        const std::size_t victim = rng.uniform_index(n);
        std::vector<std::size_t> mapping;
        const auto reduced = m.fix_variable(victim, value, &mapping);
        ASSERT_EQ(reduced.num_variables(), n - 1);
        ASSERT_EQ(mapping.size(), n - 1);
        for (int trial = 0; trial < 10; ++trial) {
            const auto sub_bits = rng.bits(n - 1);
            q::bit_vector full(n, 0);
            full[victim] = value;
            for (std::size_t r = 0; r < mapping.size(); ++r) full[mapping[r]] = sub_bits[r];
            EXPECT_NEAR(reduced.energy_with_offset(sub_bits), m.energy_with_offset(full), 1e-10);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuboProperty, ::testing::Values(2, 3, 5, 8, 13, 21, 34));

TEST(QuboModel, RowSpanMirrorsCoefficients) {
    hcq::util::rng rng(5);
    const auto m = q::random_qubo(rng, 6, 1.0, -1.0, 1.0);
    for (std::size_t i = 0; i < 6; ++i) {
        const auto row = m.row(i);
        ASSERT_EQ(row.size(), 6u);
        for (std::size_t j = 0; j < 6; ++j) {
            EXPECT_DOUBLE_EQ(row[j], m.coefficient(i, j));
        }
    }
}

TEST(QuboModel, MaxAbsCoefficient) {
    q::qubo_model m(3);
    m.set_term(0, 1, -5.0);
    m.set_term(2, 2, 3.0);
    EXPECT_DOUBLE_EQ(m.max_abs_coefficient(), 5.0);
}

TEST(QuboModel, HammingDistance) {
    const q::bit_vector a{0, 1, 1, 0};
    const q::bit_vector b{1, 1, 0, 0};
    EXPECT_EQ(q::hamming_distance(a, b), 2u);
    const q::bit_vector c{1, 1};
    EXPECT_THROW((void)q::hamming_distance(a, c), std::invalid_argument);
}

TEST(Ising, FieldCouplingAccessors) {
    q::ising_model m(3);
    m.set_field(0, 1.5);
    m.set_coupling(0, 2, -0.5);
    EXPECT_DOUBLE_EQ(m.field(0), 1.5);
    EXPECT_DOUBLE_EQ(m.coupling(2, 0), -0.5);
    EXPECT_THROW((void)m.coupling(1, 1), std::invalid_argument);
    EXPECT_THROW(m.set_field(5, 0.0), std::out_of_range);
}

TEST(Ising, EnergyKnownValues) {
    // E = s0 - 2 s1 + 3 s0 s1
    q::ising_model m(2);
    m.set_field(0, 1.0);
    m.set_field(1, -2.0);
    m.set_coupling(0, 1, 3.0);
    const q::spin_vector up_up{1, 1};
    const q::spin_vector up_down{1, -1};
    EXPECT_DOUBLE_EQ(m.energy(up_up), 1.0 - 2.0 + 3.0);
    EXPECT_DOUBLE_EQ(m.energy(up_down), 1.0 + 2.0 - 3.0);
    const q::spin_vector bad{1, 0};
    EXPECT_THROW((void)m.energy(bad), std::invalid_argument);
}

class IsingRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IsingRoundTrip, QuboToIsingPreservesTotalEnergy) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 57 + 1);
    auto m = q::random_qubo(rng, n, 0.8, -2.0, 2.0);
    m.set_offset(rng.uniform(-5.0, 5.0));
    const auto ising = q::to_ising(m);
    for (int trial = 0; trial < 20; ++trial) {
        const auto bits = rng.bits(n);
        const auto spins = q::spins_from_bits(bits);
        EXPECT_NEAR(m.energy(bits) + m.offset(), ising.energy(spins) + ising.offset(), 1e-9);
    }
}

TEST_P(IsingRoundTrip, IsingToQuboPreservesTotalEnergy) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 57 + 2);
    q::ising_model ising(n);
    for (std::size_t i = 0; i < n; ++i) {
        ising.set_field(i, rng.uniform(-1.0, 1.0));
        for (std::size_t j = i + 1; j < n; ++j) {
            ising.set_coupling(i, j, rng.uniform(-1.0, 1.0));
        }
    }
    ising.set_offset(rng.uniform(-3.0, 3.0));
    const auto m = q::to_qubo(ising);
    for (int trial = 0; trial < 20; ++trial) {
        const auto bits = rng.bits(n);
        const auto spins = q::spins_from_bits(bits);
        EXPECT_NEAR(m.energy(bits) + m.offset(), ising.energy(spins) + ising.offset(), 1e-9);
    }
}

TEST_P(IsingRoundTrip, DoubleRoundTripIsIdentity) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 57 + 3);
    const auto m = q::random_qubo(rng, n, 1.0, -1.0, 1.0);
    const auto back = q::to_qubo(q::to_ising(m));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            EXPECT_NEAR(back.coefficient(i, j), m.coefficient(i, j), 1e-9);
        }
    }
    EXPECT_NEAR(back.offset(), m.offset(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsingRoundTrip, ::testing::Values(1, 2, 4, 9, 16));

TEST(Ising, SpinBitTranslations) {
    const q::bit_vector bits{0, 1, 1};
    const auto spins = q::spins_from_bits(bits);
    EXPECT_EQ(spins[0], -1);
    EXPECT_EQ(spins[1], 1);
    EXPECT_EQ(q::bits_from_spins(spins), bits);
    const q::bit_vector bad{3};
    EXPECT_THROW((void)q::spins_from_bits(bad), std::invalid_argument);
    const q::spin_vector bad_spin{0};
    EXPECT_THROW((void)q::bits_from_spins(bad_spin), std::invalid_argument);
}

TEST(BruteForce, FindsKnownMinimum) {
    // E = -q0 - q1 + 2 q0 q1: minima at (1,0) and (0,1), energy -1.
    q::qubo_model m(2);
    m.set_term(0, 0, -1.0);
    m.set_term(1, 1, -1.0);
    m.set_term(0, 1, 2.0);
    const auto result = q::brute_force_minimize(m);
    EXPECT_DOUBLE_EQ(result.best_energy, -1.0);
    EXPECT_EQ(result.num_optima, 2u);
}

TEST(BruteForce, MatchesExhaustiveNaiveScan) {
    hcq::util::rng rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 3 + rng.uniform_index(8);
        const auto m = q::random_qubo(rng, n, 0.9, -1.0, 1.0);
        const auto result = q::brute_force_minimize(m);
        double best = 1e300;
        for (std::size_t pattern = 0; pattern < (std::size_t{1} << n); ++pattern) {
            q::bit_vector bits(n);
            for (std::size_t i = 0; i < n; ++i) {
                bits[i] = static_cast<std::uint8_t>((pattern >> i) & 1U);
            }
            best = std::min(best, m.energy(bits));
        }
        EXPECT_NEAR(result.best_energy, best, 1e-10);
        EXPECT_NEAR(m.energy(result.best_bits), best, 1e-10);
    }
}

TEST(BruteForce, GuardsAgainstBlowUp) {
    const q::qubo_model m(30);
    EXPECT_THROW((void)q::brute_force_minimize(m, 26), std::invalid_argument);
    const q::qubo_model empty;
    EXPECT_THROW((void)q::brute_force_minimize(empty), std::invalid_argument);
}

TEST(Generator, RandomQuboRespectsRangeAndDensity) {
    hcq::util::rng rng(123);
    const auto dense = q::random_qubo(rng, 10, 1.0, -0.5, 0.5);
    std::size_t nonzero = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        for (std::size_t j = i; j < 10; ++j) {
            const double c = dense.coefficient(i, j);
            EXPECT_LE(std::fabs(c), 0.5);
            if (c != 0.0) ++nonzero;
        }
    }
    EXPECT_GT(nonzero, 40u);  // density 1.0 over 55 upper entries
    const auto sparse = q::random_qubo(rng, 10, 0.0);
    EXPECT_DOUBLE_EQ(sparse.max_abs_coefficient(), 0.0);
    EXPECT_THROW((void)q::random_qubo(rng, 0), std::invalid_argument);
    EXPECT_THROW((void)q::random_qubo(rng, 3, 2.0), std::invalid_argument);
}

TEST(Generator, FerromagneticChainGroundState) {
    const auto ising = q::ferromagnetic_chain(6);
    const auto m = q::to_qubo(ising);
    const auto result = q::brute_force_minimize(m);
    const q::bit_vector all_ones(6, 1);
    EXPECT_EQ(result.best_bits, all_ones);
}

TEST(Generator, SkSpinGlassShape) {
    hcq::util::rng rng(31);
    const auto ising = q::sk_spin_glass(rng, 8);
    EXPECT_EQ(ising.num_spins(), 8u);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(ising.field(i), 0.0);
    EXPECT_THROW((void)q::sk_spin_glass(rng, 1), std::invalid_argument);
}

TEST(Serialize, RandomModelRoundTrips) {
    hcq::util::rng rng(41);
    const auto m = q::random_qubo(rng, 12, 0.6);
    const auto back = q::from_string(q::to_string(m));
    ASSERT_EQ(back.num_variables(), m.num_variables());
    EXPECT_DOUBLE_EQ(back.offset(), m.offset());
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = i; j < 12; ++j) {
            EXPECT_DOUBLE_EQ(back.coefficient(i, j), m.coefficient(i, j));
        }
    }
}

TEST(Serialize, EmptyModelRoundTrips) {
    const q::qubo_model empty;
    const auto back = q::from_string(q::to_string(empty));
    EXPECT_EQ(back.num_variables(), 0u);
    EXPECT_DOUBLE_EQ(back.offset(), 0.0);
}

TEST(Serialize, OffsetOnlyModelRoundTrips) {
    // No nonzero terms at all: the term section is legitimately absent.
    q::qubo_model m(3);
    m.set_offset(-2.75);
    const auto text = q::to_string(m);
    const auto back = q::from_string(text);
    EXPECT_EQ(back.num_variables(), 3u);
    EXPECT_DOUBLE_EQ(back.offset(), -2.75);
    const q::bit_vector all_ones(3, 1);
    EXPECT_DOUBLE_EQ(back.energy(all_ones), 0.0);
}

TEST(Serialize, CommentHeavyInputParses) {
    const std::string text =
        "# leading comment\n"
        "\n"
        "   # indented comment before the header\n"
        "hcq-qubo v1\n"
        "# after the header\n"
        "n 2 offset 1.5\n"
        "\t# between size line and terms\n"
        "0 0 -1\n"
        "# between terms\n"
        "0 1 2.25\n"
        "   \n"
        "# trailing comment\n";
    const auto m = q::from_string(text);
    EXPECT_EQ(m.num_variables(), 2u);
    EXPECT_DOUBLE_EQ(m.offset(), 1.5);
    EXPECT_DOUBLE_EQ(m.linear(0), -1.0);
    EXPECT_DOUBLE_EQ(m.coefficient(0, 1), 2.25);
}

TEST(Serialize, RejectsDuplicateAndMalformedTerms) {
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n0 1 1\n0 1 2\n"),
                 std::invalid_argument);  // duplicate term
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n1 0 1\n"),
                 std::invalid_argument);  // i > j
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n0 2 1\n"),
                 std::invalid_argument);  // index out of range
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n0 one 1\n"),
                 std::invalid_argument);  // non-numeric
    EXPECT_THROW((void)q::from_string("not-a-qubo\n"), std::invalid_argument);
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\n"), std::invalid_argument);  // no size line
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nm 2 offset 0\n"), std::invalid_argument);
}

}  // namespace
