// Per-worker detection workspaces — the reusable-state arena behind the
// redesigned detection-path hot path.
//
// A `workspace` owns everything a detection path may want to reuse across
// channel uses: the detector scratch (decomposition caches, QUBO reduction
// buffers, tree-search beams — detect/scratch.h) and the classical-solver
// scratch (Metropolis engine, bit/field buffers — classical/solver.h).
// Once warm, the built-in paths run a use without touching the heap.
//
// Ownership model: exactly one workspace per worker thread, handed out by a
// `workspace_store`.  The store is the only synchronised piece — a worker
// acquires its arena once (first use; subsequent lookups hit a thread-local
// cache) and then works lock-free, preserving the link layer's disjoint-
// slots concurrency story.
//
// Determinism: workspaces NEVER change detection outputs.  Buffers are
// resized in place (values fully rewritten per use) and the embedded
// decomposition caches key on the exact channel content — a hit replays a
// pure function of the same input.  Which worker (and hence which cache
// state) serves a given use varies run to run, but since hits are
// output-invariant, the statistics stay bit-identical at any thread count
// and stream block; tests/workspace_test.cpp pins this against the
// workspace-free path.
#ifndef HCQ_PATHS_WORKSPACE_H
#define HCQ_PATHS_WORKSPACE_H

#include <memory>
#include <thread>
#include <unordered_map>  // hcq-lint: allow(unordered-container) pure-lookup thread registry

#include "classical/solver.h"
#include "detect/scratch.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hcq::paths {

/// Per-worker reusable state for the detection hot path.
struct workspace {
    detect::detect_scratch detect;  ///< detector scratch + decomposition caches
    solvers::solve_scratch solve;   ///< classical-solver / hybrid scratch
};

/// Hands each thread its own workspace, created lazily on first request and
/// owned by the store.  `local()` is cheap after the first call per thread
/// (a thread-local cache keyed by a never-reused store id avoids the lock),
/// and the returned reference stays valid until the store is destroyed.
class workspace_store {
public:
    workspace_store();
    workspace_store(const workspace_store&) = delete;
    workspace_store& operator=(const workspace_store&) = delete;

    /// This thread's workspace (created on first call from this thread).
    [[nodiscard]] workspace& local() HCQ_EXCLUDES(mutex_);

private:
    const std::uint64_t id_;  ///< globally unique, never reused
    util::mutex mutex_;
    // Pure lookup keyed by thread id — never iterated, so no statistic or
    // serialised output depends on its order.
    // hcq-lint: allow(unordered-container) pure per-thread lookup, never iterated
    std::unordered_map<std::thread::id, std::unique_ptr<workspace>> by_thread_
        HCQ_GUARDED_BY(mutex_);
};

}  // namespace hcq::paths

#endif  // HCQ_PATHS_WORKSPACE_H
