// Fixture: present on disk but missing from HCQ_TEST_SUITES — fires
// test-registration (this binary would silently never build or run).
int main() { return 0; }
