#include "serve/socket.h"

#include <cerrno>
#include <stdexcept>
#include <system_error>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#define HCQ_SERVE_HAS_EPOLL 1
#include <sys/epoll.h>
#else
#define HCQ_SERVE_HAS_EPOLL 0
#endif

namespace hcq::serve {
namespace {

std::string errno_message(int err) { return std::system_category().message(err); }

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) throw_errno("fcntl(F_GETFL)");
    if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl(F_SETFL, O_NONBLOCK)");
}

sockaddr_in loopback_addr(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

}  // namespace

void unique_fd::reset(int fd) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
}

void throw_errno(const std::string& what) {
    throw std::runtime_error("serve: " + what + ": " + errno_message(errno));
}

unique_fd listen_loopback(std::uint16_t port, int backlog) {
    unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket");
    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
        throw_errno("setsockopt(SO_REUSEADDR)");
    }
    const sockaddr_in addr = loopback_addr(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
    }
    if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
    set_nonblocking(fd.get());
    return fd;
}

std::uint16_t local_port(int fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        throw_errno("getsockname");
    }
    return ntohs(addr.sin_port);
}

unique_fd accept_client(int listener_fd) {
    for (;;) {
        const int fd = ::accept(listener_fd, nullptr, nullptr);
        if (fd >= 0) {
            unique_fd client(fd);
            set_nonblocking(client.get());
            const int one = 1;
            // Best effort: a client that cannot disable Nagle still works.
            (void)::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return client;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) return unique_fd();
        throw_errno("accept");
    }
}

unique_fd connect_loopback(std::uint16_t port) {
    unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket");
    const sockaddr_in addr = loopback_addr(port);
    for (;;) {
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
            break;
        }
        if (errno == EINTR) continue;
        throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

io_result read_some(int fd, void* buf, std::size_t len) {
    for (;;) {
        const ssize_t n = ::recv(fd, buf, len, 0);
        if (n > 0) return {static_cast<std::size_t>(n), false, false};
        if (n == 0) return {0, true, false};
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false, true};
        if (errno == ECONNRESET) return {0, true, false};
        throw_errno("recv");
    }
}

io_result write_some(int fd, const void* buf, std::size_t len) {
    for (;;) {
        // MSG_NOSIGNAL: a peer that already hung up must surface as EPIPE,
        // not kill the server process with SIGPIPE.
        const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
        if (n >= 0) return {static_cast<std::size_t>(n), false, false};
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false, true};
        if (errno == EPIPE || errno == ECONNRESET) return {0, true, false};
        throw_errno("send");
    }
}

void send_all(int fd, const void* buf, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
}

bool recv_exact(int fd, void* buf, std::size_t len) {
    auto* p = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv");
        }
        if (n == 0) {
            if (got == 0) return false;  // clean close between frames
            throw std::runtime_error("serve: connection closed mid-frame (got " +
                                     std::to_string(got) + " of " + std::to_string(len) +
                                     " bytes)");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

wake_pipe::wake_pipe() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) < 0) throw_errno("pipe");
    read_end_.reset(fds[0]);
    write_end_.reset(fds[1]);
    set_nonblocking(read_end_.get());
    set_nonblocking(write_end_.get());
}

void wake_pipe::wake() noexcept {
    const std::uint8_t byte = 1;
    // A full pipe (EAGAIN) already guarantees a pending wakeup; any other
    // failure here is unrecoverable-but-harmless, so the call never throws.
    (void)::write(write_end_.get(), &byte, 1);
}

void wake_pipe::drain() noexcept {
    std::uint8_t buf[256];
    while (::read(read_end_.get(), buf, sizeof(buf)) > 0) {
    }
}

poller::backend poller::default_backend() noexcept {
#if HCQ_SERVE_HAS_EPOLL
    return backend::epoll_backend;
#else
    return backend::poll_backend;
#endif
}

bool poller::epoll_available() noexcept { return HCQ_SERVE_HAS_EPOLL != 0; }

poller::poller(backend which) : backend_(which) {
    if (backend_ == backend::epoll_backend) {
#if HCQ_SERVE_HAS_EPOLL
        epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
        if (!epoll_fd_.valid()) throw_errno("epoll_create1");
#else
        throw std::invalid_argument("serve: epoll backend requested on a non-Linux build; "
                                    "use poller::backend::poll_backend");
#endif
    }
}

poller::~poller() = default;

void poller::add(int fd, bool want_read, bool want_write) {
    if (watched_.count(fd) != 0) {
        throw std::logic_error("serve: poller::add: fd " + std::to_string(fd) +
                               " already watched (use modify)");
    }
#if HCQ_SERVE_HAS_EPOLL
    if (backend_ == backend::epoll_backend) {
        epoll_event ev{};
        ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
            throw_errno("epoll_ctl(ADD)");
        }
    }
#endif
    watched_[fd] = interest{want_read, want_write};
}

void poller::modify(int fd, bool want_read, bool want_write) {
    const auto it = watched_.find(fd);
    if (it == watched_.end()) {
        throw std::logic_error("serve: poller::modify: fd " + std::to_string(fd) +
                               " not watched (use add)");
    }
#if HCQ_SERVE_HAS_EPOLL
    if (backend_ == backend::epoll_backend) {
        epoll_event ev{};
        ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
            throw_errno("epoll_ctl(MOD)");
        }
    }
#endif
    it->second = interest{want_read, want_write};
}

void poller::remove(int fd) {
    const auto it = watched_.find(fd);
    if (it == watched_.end()) {
        throw std::logic_error("serve: poller::remove: fd " + std::to_string(fd) +
                               " not watched");
    }
#if HCQ_SERVE_HAS_EPOLL
    if (backend_ == backend::epoll_backend) {
        if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
            throw_errno("epoll_ctl(DEL)");
        }
    }
#endif
    watched_.erase(it);
}

void poller::wait(std::vector<ready_event>& events, int timeout_ms) {
    events.clear();
#if HCQ_SERVE_HAS_EPOLL
    if (backend_ == backend::epoll_backend) {
        epoll_event ready[64];
        int n;
        for (;;) {
            n = ::epoll_wait(epoll_fd_.get(), ready, 64, timeout_ms);
            if (n >= 0) break;
            if (errno == EINTR) continue;
            throw_errno("epoll_wait");
        }
        for (int i = 0; i < n; ++i) {
            const auto flags = ready[i].events;
            events.push_back(ready_event{
                ready[i].data.fd,
                (flags & EPOLLIN) != 0,
                (flags & EPOLLOUT) != 0,
                (flags & (EPOLLERR | EPOLLHUP)) != 0,
            });
        }
        return;
    }
#endif
    std::vector<pollfd> fds;
    fds.reserve(watched_.size());
    for (const auto& [fd, want] : watched_) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = static_cast<short>((want.read ? POLLIN : 0) | (want.write ? POLLOUT : 0));
        fds.push_back(pfd);
    }
    int n;
    for (;;) {
        n = ::poll(fds.data(), fds.size(), timeout_ms);
        if (n >= 0) break;
        if (errno == EINTR) continue;
        throw_errno("poll");
    }
    for (const auto& pfd : fds) {
        if (pfd.revents == 0) continue;
        events.push_back(ready_event{
            pfd.fd,
            (pfd.revents & POLLIN) != 0,
            (pfd.revents & POLLOUT) != 0,
            (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0,
        });
    }
}

}  // namespace hcq::serve
