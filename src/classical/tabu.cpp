#include "classical/tabu.h"

#include <limits>
#include <stdexcept>

#include "classical/metropolis.h"
#include "util/timer.h"

namespace hcq::solvers {

tabu_search::tabu_search(tabu_config config) : config_(config) {
    if (config_.max_iterations == 0) throw std::invalid_argument("tabu_search: no iterations");
}

initial_state tabu_search::initialize(const qubo::qubo_model& q, util::rng& rng) const {
    const util::timer clock;
    const auto samples = solve(q, rng);
    initial_state out;
    out.bits = samples.best().bits;
    out.energy = samples.best().energy;
    out.elapsed_us = clock.elapsed_us();
    return out;
}

sample_set tabu_search::solve(const qubo::qubo_model& q, util::rng& rng) const {
    const std::size_t n = q.num_variables();
    metropolis_engine engine(q, rng.bits(n));

    qubo::bit_vector best_bits = engine.state();
    double best_energy = engine.energy();

    std::vector<std::size_t> tabu_until(n, 0);
    std::size_t stall = 0;

    for (std::size_t iter = 1; iter <= config_.max_iterations && stall < config_.stall_limit;
         ++iter) {
        // Pick the best admissible flip.
        std::size_t chosen = n;
        double chosen_delta = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            const double delta = engine.state()[i] ? -engine.field(i) : engine.field(i);
            const bool is_tabu = tabu_until[i] > iter;
            const bool aspires = engine.energy() + delta < best_energy;
            if (is_tabu && !aspires) continue;
            if (delta < chosen_delta) {
                chosen_delta = delta;
                chosen = i;
            }
        }
        if (chosen == n) {
            ++stall;  // everything tabu and nothing aspires
            continue;
        }
        engine.force_flip(chosen);  // tabu search always moves, even uphill
        tabu_until[chosen] = iter + config_.tenure;
        if (engine.energy() < best_energy - 1e-12) {
            best_energy = engine.energy();
            best_bits = engine.state();
            stall = 0;
        } else {
            ++stall;
        }
    }

    sample_set out;
    out.add(std::move(best_bits), best_energy);
    return out;
}

}  // namespace hcq::solvers
