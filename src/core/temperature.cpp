#include "core/temperature.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcq::anneal {

const char* to_string(temperature_map_kind kind) noexcept {
    switch (kind) {
        case temperature_map_kind::rational: return "rational";
        case temperature_map_kind::linear: return "linear";
        case temperature_map_kind::exponential: return "exponential";
    }
    return "?";
}

temperature_map::temperature_map(temperature_map_kind kind, double gamma, double s_floor,
                                 double power)
    : kind_(kind), gamma_(gamma), s_floor_(s_floor), power_(power) {
    if (gamma <= 0.0) throw std::invalid_argument("temperature_map: gamma <= 0");
    if (s_floor <= 0.0 || s_floor >= 1.0) {
        throw std::invalid_argument("temperature_map: s_floor outside (0, 1)");
    }
    if (power <= 0.0) throw std::invalid_argument("temperature_map: power <= 0");
}

double temperature_map::fluctuation(double s) const {
    const double x = std::clamp(s, 0.0, 1.0);
    switch (kind_) {
        case temperature_map_kind::rational:
            return std::pow((1.0 - x) / std::max(x, s_floor_), power_);
        case temperature_map_kind::linear:
            return 1.0 - x;
        case temperature_map_kind::exponential:
            return (std::exp(gamma_ * (1.0 - x)) - 1.0) / (std::exp(gamma_) - 1.0);
    }
    return 0.0;
}

}  // namespace hcq::anneal
