#include "qubo/constraints.h"

#include <stdexcept>

namespace hcq::qubo {

void add_pair_constraint(qubo_model& q, std::size_t i, std::size_t j, std::uint8_t target_i,
                         std::uint8_t target_j, double strength) {
    if (i == j) throw std::invalid_argument("add_pair_constraint: i == j");
    if (target_i > 1 || target_j > 1) {
        throw std::invalid_argument("add_pair_constraint: targets must be 0/1");
    }
    // C (q_i - t_i)(q_j - t_j) = C q_i q_j - C t_j q_i - C t_i q_j + C t_i t_j
    q.add_term(i, j, strength);
    if (target_j == 1) q.add_term(i, i, -strength);
    if (target_i == 1) q.add_term(j, j, -strength);
    if (target_i == 1 && target_j == 1) q.add_offset(strength);
}

void add_bit_bias(qubo_model& q, std::size_t i, std::uint8_t target, double strength) {
    if (target > 1) throw std::invalid_argument("add_bit_bias: target must be 0/1");
    // C (q - t)^2 = C q - 2 C t q + C t^2   (q^2 == q)
    q.add_term(i, i, strength * (1.0 - 2.0 * target));
    if (target == 1) q.add_offset(strength);
}

void add_pattern_constraint(qubo_model& q, std::size_t first,
                            std::span<const std::uint8_t> pattern, double strength) {
    if (pattern.size() < 2) throw std::invalid_argument("add_pattern_constraint: need >= 2 bits");
    for (std::size_t k = 0; k + 1 < pattern.size(); k += 2) {
        // d_i d_j = (-1)^(t_i + t_j) (q_i - t_i)(q_j - t_j): flip the sign of
        // the raw product once per 1-target so the both-deviating corner
        // always pays +strength.
        const int sign = ((pattern[k] + pattern[k + 1]) % 2 == 0) ? 1 : -1;
        add_pair_constraint(q, first + k, first + k + 1, pattern[k], pattern[k + 1],
                            sign * strength);
    }
    if (pattern.size() % 2 == 1) {
        add_bit_bias(q, first + pattern.size() - 1, pattern.back(), strength);
    }
}

}  // namespace hcq::qubo
