#include "wireless/soft.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/decompose.h"

namespace hcq::wireless {

std::vector<double> symbol_llrs(modulation mod, linalg::cxd equalized, double noise_variance) {
    if (noise_variance <= 0.0) throw std::invalid_argument("symbol_llrs: noise_variance <= 0");
    const auto points = constellation(mod);
    const std::size_t bps = bits_per_symbol(mod);
    std::vector<double> min0(bps, std::numeric_limits<double>::infinity());
    std::vector<double> min1(bps, std::numeric_limits<double>::infinity());
    for (std::size_t pattern = 0; pattern < points.size(); ++pattern) {
        const double dist = std::norm(equalized - points[pattern]);
        for (std::size_t b = 0; b < bps; ++b) {
            // `constellation` indexes by the natural-map pattern, MSB-first.
            const bool bit = ((pattern >> (bps - 1 - b)) & 1U) != 0;
            auto& best = bit ? min1[b] : min0[b];
            best = std::min(best, dist);
        }
    }
    std::vector<double> llrs(bps);
    for (std::size_t b = 0; b < bps; ++b) {
        llrs[b] = (min1[b] - min0[b]) / noise_variance;
    }
    return llrs;
}

std::vector<double> zf_soft_bits(const mimo_instance& instance, double noise_floor) {
    if (noise_floor <= 0.0) throw std::invalid_argument("zf_soft_bits: noise_floor <= 0");
    const auto soft = linalg::least_squares(instance.h, instance.y);

    // Per-stream post-ZF noise enhancement: sigma_u^2 = sigma^2 [(H^H H)^-1]_uu.
    const auto gram = instance.h.hermitian() * instance.h;
    const auto gram_inv = linalg::inverse(gram);
    const double sigma_sq = std::max(instance.noise_variance, noise_floor);

    std::vector<double> llrs;
    llrs.reserve(instance.num_bits());
    for (std::size_t u = 0; u < instance.num_users; ++u) {
        const double enhancement = std::max(gram_inv(u, u).real(), 1e-12);
        const auto per_symbol = symbol_llrs(instance.mod, soft[u], sigma_sq * enhancement);
        llrs.insert(llrs.end(), per_symbol.begin(), per_symbol.end());
    }
    return llrs;
}

std::vector<std::uint8_t> harden(const std::vector<double>& llrs) {
    std::vector<std::uint8_t> bits(llrs.size());
    for (std::size_t b = 0; b < llrs.size(); ++b) bits[b] = llrs[b] >= 0.0 ? 0 : 1;
    return bits;
}

}  // namespace hcq::wireless
