// Maximum-likelihood MIMO detection -> QUBO reduction (the QuAMax transform,
// Kim, Venturelli & Jamieson, SIGCOMM 2019 [29]; applied unchanged by the
// HotNets paper, Section 4.2).
//
// ML detection solves  min_x ||y - H x||^2  with each entry of x drawn from a
// finite constellation.  Writing each symbol through the *natural linear*
// bit map (wireless/modulation.h)
//     x_u = sum_j 2^{k-1-j} (2 q_{u,I,j} - 1)  +  i * [same for Q bits]
// gives x = A t with t_b = 2 q_b - 1 in {-1,+1} and A a complex
// (users x bits) weight matrix.  With B = H A, G = Re(B^H B), c = Re(B^H y):
//     ||y - B t||^2 = ||y||^2 + tr(G) - 2 c^T t + sum_{b<b'} 2 G_{bb'} t_b t_b'
// which is an Ising model (h_b = -2 c_b, J_{bb'} = 2 G_{bb'}) and hence a
// QUBO via the exact conversion in qubo/ising.h.  The round-trip invariant
//     qubo.energy(q) + qubo.offset() == ||y - H x(q)||^2
// holds to numerical precision and is property-tested.
//
// Bit layout: user-major; within a user, I-dimension bits MSB-first, then
// Q-dimension bits MSB-first — identical to wireless::modulate, so QUBO bit
// strings and transmitted bit strings are directly comparable.
#ifndef HCQ_DETECT_TRANSFORM_H
#define HCQ_DETECT_TRANSFORM_H

#include <cstdint>
#include <span>

#include "qubo/ising.h"
#include "qubo/model.h"
#include "wireless/mimo.h"

namespace hcq::detect {

/// A QUBO produced from an ML detection problem, with enough context to
/// translate assignments back to symbols.
struct ml_qubo {
    qubo::qubo_model model;
    wireless::modulation mod = wireless::modulation::bpsk;
    std::size_t num_users = 0;

    /// Decodes a QUBO assignment to the corresponding symbol vector.
    [[nodiscard]] linalg::cvec symbols(std::span<const std::uint8_t> bits) const;
};

/// Reusable intermediates of ml_to_qubo_into.  The bit-weight matrix A
/// depends only on (modulation, user count), so it is cached across calls;
/// everything else is resized in place, making a warmed-up reduction
/// allocation-free.
struct qubo_scratch {
    linalg::cmat a;  ///< cached x = A t weight matrix
    wireless::modulation a_mod = wireless::modulation::bpsk;
    std::size_t a_users = 0;
    bool a_valid = false;

    linalg::cmat b;     ///< B = H A
    linalg::cmat gram;  ///< B^H B
    linalg::cvec bhy;   ///< B^H y
    qubo::ising_model ising;
};

/// Reduces min_x ||y - H x||^2 over the given modulation to a QUBO.
[[nodiscard]] ml_qubo ml_to_qubo(const linalg::cmat& h, const linalg::cvec& y,
                                 wireless::modulation mod);

/// Convenience overload on a synthesised instance.
[[nodiscard]] ml_qubo ml_to_qubo(const wireless::mimo_instance& instance);

/// ml_to_qubo into a reused ml_qubo through caller-owned scratch.  Produces
/// the bit-identical model (ml_to_qubo delegates here), reusing `out`'s and
/// `scratch`'s buffers.
void ml_to_qubo_into(const linalg::cmat& h, const linalg::cvec& y, wireless::modulation mod,
                     qubo_scratch& scratch, ml_qubo& out);

/// Instance overload of ml_to_qubo_into.
void ml_to_qubo_into(const wireless::mimo_instance& instance, qubo_scratch& scratch,
                     ml_qubo& out);

/// Injects the Figure-4 soft-information prior for one user's symbol: the
/// believed bit pattern receives pairwise constraint terms of the given
/// strength (see qubo/constraints.h).
void apply_symbol_prior(ml_qubo& mq, std::size_t user,
                        std::span<const std::uint8_t> believed_bits, double strength);

}  // namespace hcq::detect

#endif  // HCQ_DETECT_TRANSFORM_H
