#include "pipeline/pipeline.h"

#include <cmath>
#include <stdexcept>

#include "metrics/stats.h"

namespace hcq::pipeline {

stage::stage(std::string name, service_model service)
    : name_(std::move(name)), service_(std::move(service)) {
    if (!service_) throw std::invalid_argument("stage: null service model");
}

stage stage::constant(std::string name, double service_us) {
    if (service_us < 0.0) throw std::invalid_argument("stage::constant: negative service");
    return stage(std::move(name), [service_us](std::size_t, util::rng&) { return service_us; });
}

stage stage::lognormal(std::string name, double median_us, double sigma) {
    if (median_us <= 0.0 || sigma < 0.0) {
        throw std::invalid_argument("stage::lognormal: bad parameters");
    }
    const double mu = std::log(median_us);
    return stage(std::move(name), [mu, sigma](std::size_t, util::rng& rng) {
        return std::exp(rng.normal(mu, sigma));
    });
}

stage stage::from_trace(std::string name, std::vector<double> trace_us) {
    if (trace_us.empty()) throw std::invalid_argument("stage::from_trace: empty trace");
    for (const double t : trace_us) {
        if (t < 0.0 || !std::isfinite(t)) {
            throw std::invalid_argument("stage::from_trace: bad trace entry");
        }
    }
    return stage(std::move(name),
                 [trace = std::move(trace_us)](std::size_t job_index, util::rng&) {
                     return trace[job_index % trace.size()];
                 });
}

double stage::service_us(std::size_t job_index, util::rng& rng) const {
    const double s = service_(job_index, rng);
    if (s < 0.0 || !std::isfinite(s)) throw std::runtime_error("stage: bad service time");
    return s;
}

simulation_result simulate(const std::vector<stage>& stages, std::size_t num_jobs,
                           const arrival_process& arrivals, util::rng& rng) {
    if (stages.empty()) throw std::invalid_argument("simulate: no stages");
    if (num_jobs == 0) throw std::invalid_argument("simulate: no jobs");
    if (arrivals.interarrival_us <= 0.0) throw std::invalid_argument("simulate: bad interarrival");

    const std::size_t k = stages.size();
    std::vector<double> stage_free(k, 0.0);   // when each stage's server frees up
    std::vector<double> busy(k, 0.0);
    std::vector<double> wait_acc(k, 0.0);

    simulation_result result;
    result.num_jobs = num_jobs;
    result.latencies_us.reserve(num_jobs);

    double arrival = 0.0;
    metrics::running_stats latency_stats;
    for (std::size_t j = 0; j < num_jobs; ++j) {
        if (j > 0) {
            arrival += arrivals.poisson
                           ? -arrivals.interarrival_us * std::log(1.0 - rng.uniform())
                           : arrivals.interarrival_us;
        }
        double ready = arrival;  // job available to the first stage
        for (std::size_t s = 0; s < k; ++s) {
            const double start = std::max(ready, stage_free[s]);
            wait_acc[s] += start - ready;
            const double service = stages[s].service_us(j, rng);
            const double done = start + service;
            busy[s] += service;
            stage_free[s] = done;
            ready = done;
        }
        const double latency = ready - arrival;
        latency_stats.add(latency);
        result.latencies_us.push_back(latency);
        result.makespan_us = std::max(result.makespan_us, ready);
    }

    result.throughput_per_us =
        result.makespan_us > 0.0 ? static_cast<double>(num_jobs) / result.makespan_us : 0.0;
    result.mean_latency_us = latency_stats.mean();
    result.p50_latency_us = metrics::percentile(result.latencies_us, 50.0);
    result.p99_latency_us = metrics::percentile(result.latencies_us, 99.0);
    result.max_latency_us = latency_stats.max();
    result.stage_utilization.resize(k);
    result.mean_queue_wait_us.resize(k);
    for (std::size_t s = 0; s < k; ++s) {
        result.stage_utilization[s] =
            result.makespan_us > 0.0 ? busy[s] / result.makespan_us : 0.0;
        result.mean_queue_wait_us[s] = wait_acc[s] / static_cast<double>(num_jobs);
    }
    return result;
}

util::table summary_table(const simulation_result& result,
                          const std::vector<std::string>& stage_names) {
    const std::size_t k = result.stage_utilization.size();
    if (!stage_names.empty() && stage_names.size() != k) {
        throw std::invalid_argument("summary_table: stage_names arity mismatch");
    }
    const auto stage_label = [&](std::size_t s) {
        return stage_names.empty() ? "stage " + std::to_string(s) : stage_names[s];
    };

    util::table t({"metric", "value"});
    t.add("channel uses", result.num_jobs);
    t.add("makespan us", result.makespan_us);
    t.add("throughput use/ms", result.throughput_per_us * 1000.0);
    t.add("mean latency us", result.mean_latency_us);
    t.add("p50 latency us", result.p50_latency_us);
    t.add("p99 latency us", result.p99_latency_us);
    t.add("max latency us", result.max_latency_us);
    for (std::size_t s = 0; s < k; ++s) {
        t.add("utilization " + stage_label(s),
              util::format_double(result.stage_utilization[s], 3));
        t.add("queue wait us " + stage_label(s),
              util::format_double(result.mean_queue_wait_us[s], 3));
    }
    return t;
}

std::vector<stage> make_hybrid_stages(double classical_us, double schedule_duration_us,
                                      std::size_t reads_per_use, double programming_us) {
    if (schedule_duration_us <= 0.0 || reads_per_use == 0) {
        throw std::invalid_argument("make_hybrid_stages: bad quantum stage parameters");
    }
    const double quantum_us =
        programming_us + schedule_duration_us * static_cast<double>(reads_per_use);
    std::vector<stage> stages;
    stages.push_back(stage::constant("classical", classical_us));
    stages.push_back(stage::constant("quantum", quantum_us));
    return stages;
}

}  // namespace hcq::pipeline
