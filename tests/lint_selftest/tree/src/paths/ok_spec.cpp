// Fixture: src/paths/ is the spec-literal allowlist — no finding here.
namespace hcq::paths {
struct path_spec {
    const char* kind;
};

path_spec make_default() { return path_spec{"zf"}; }
}  // namespace hcq::paths
