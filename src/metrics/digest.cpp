#include "metrics/digest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcq::metrics {
namespace {

constexpr double default_lo_us = 1e-3;  // 1 ns
constexpr double default_hi_us = 1e9;   // 1000 s
constexpr std::size_t default_bins = 4096;

}  // namespace

latency_digest::latency_digest() : latency_digest(default_lo_us, default_hi_us, default_bins) {}

latency_digest::latency_digest(double lo, double hi, std::size_t num_bins) : lo_(lo), hi_(hi) {
    if (!(lo > 0.0) || !(hi > lo) || !std::isfinite(lo) || !std::isfinite(hi) || num_bins == 0) {
        throw std::invalid_argument("latency_digest: need 0 < lo < hi (finite) and >= 1 bin");
    }
    inv_log_ratio_ = static_cast<double>(num_bins) / std::log(hi_ / lo_);
    counts_.assign(num_bins + 2, 0);
}

std::size_t latency_digest::bin_index(double value) const {
    if (value < lo_) return 0;
    if (value >= hi_) return counts_.size() - 1;
    const auto bin = static_cast<std::size_t>(std::log(value / lo_) * inv_log_ratio_);
    return std::min(bin, num_bins() - 1) + 1;  // clamp rounding at the top edge
}

double latency_digest::bin_center(std::size_t bin) const {
    // The out-of-range buckets report the exact tracked extrema — there is
    // no better single representative for samples outside [lo, hi).
    if (bin == 0) return min_;
    if (bin == counts_.size() - 1) return max_;
    // Geometric centre of [lo * r^(bin-1), lo * r^bin).
    return lo_ * std::exp((static_cast<double>(bin - 1) + 0.5) / inv_log_ratio_);
}

void latency_digest::add(double value) {
    if (value < 0.0 || !std::isfinite(value)) {
        throw std::invalid_argument("latency_digest: sample must be non-negative and finite");
    }
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    ++counts_[bin_index(value)];
}

void latency_digest::merge(const latency_digest& other) {
    if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
        throw std::invalid_argument("latency_digest: merge requires identical geometry");
    }
    if (other.count_ == 0) return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
}

double latency_digest::mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double latency_digest::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double latency_digest::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double latency_digest::quantile(double p) const {
    if (p < 0.0 || p > 100.0 || !std::isfinite(p)) {
        throw std::invalid_argument("latency_digest: quantile p must be in [0, 100]");
    }
    if (count_ == 0) return 0.0;
    // Rank of the sample we are after, 1-based: p=0 -> 1st, p=100 -> count-th.
    const double exact = p / 100.0 * static_cast<double>(count_);
    const auto rank = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(exact)));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        cumulative += counts_[b];
        if (cumulative >= rank) return std::clamp(bin_center(b), min_, max_);
    }
    return max_;  // unreachable: cumulative == count_ >= rank by construction
}

}  // namespace hcq::metrics
