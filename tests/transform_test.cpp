// Tests for the QuAMax ML-to-QUBO transform — the exactness property
//     qubo.energy(q) + offset == ||y - H x(q)||^2
// is the load-bearing invariant of the whole reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/transform.h"
#include "qubo/brute_force.h"
#include "util/rng.h"
#include "wireless/mimo.h"

namespace {

namespace wl = hcq::wireless;
using wl::modulation;

struct transform_case {
    modulation mod;
    std::size_t users;
};

class TransformExactness
    : public ::testing::TestWithParam<transform_case> {};

TEST_P(TransformExactness, QuboEnergyEqualsMlCostForRandomBits) {
    const auto param = GetParam();
    hcq::util::rng rng(static_cast<std::uint64_t>(param.mod) * 1000 + param.users);
    for (int inst = 0; inst < 3; ++inst) {
        const auto instance = wl::noiseless_paper_instance(rng, param.users, param.mod);
        const auto mq = hcq::detect::ml_to_qubo(instance);
        ASSERT_EQ(mq.model.num_variables(), instance.num_bits());
        for (int trial = 0; trial < 25; ++trial) {
            const auto bits = rng.bits(instance.num_bits());
            const double via_qubo = mq.model.energy_with_offset(bits);
            const double direct = instance.ml_cost_bits(bits);
            EXPECT_NEAR(via_qubo, direct, 1e-8 * std::max(1.0, std::fabs(direct)));
        }
    }
}

TEST_P(TransformExactness, TransmittedBitsAreZeroResidual) {
    const auto param = GetParam();
    hcq::util::rng rng(static_cast<std::uint64_t>(param.mod) * 2000 + param.users);
    const auto instance = wl::noiseless_paper_instance(rng, param.users, param.mod);
    const auto mq = hcq::detect::ml_to_qubo(instance);
    EXPECT_NEAR(mq.model.energy_with_offset(instance.tx_bits), 0.0, 1e-8);
    // Hence the QUBO value at the truth is exactly -offset.
    EXPECT_NEAR(mq.model.energy(instance.tx_bits), -mq.model.offset(), 1e-8);
}

TEST_P(TransformExactness, NoisyInstanceStillExact) {
    const auto param = GetParam();
    hcq::util::rng rng(static_cast<std::uint64_t>(param.mod) * 3000 + param.users);
    wl::mimo_config config;
    config.mod = param.mod;
    config.num_users = param.users;
    config.num_antennas = param.users + 2;
    config.channel = wl::channel_model::rayleigh;
    config.noise_variance = 0.5;
    const auto instance = wl::synthesize(rng, config);
    const auto mq = hcq::detect::ml_to_qubo(instance);
    for (int trial = 0; trial < 20; ++trial) {
        const auto bits = rng.bits(instance.num_bits());
        EXPECT_NEAR(mq.model.energy_with_offset(bits), instance.ml_cost_bits(bits), 1e-7);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModulationsAndSizes, TransformExactness,
    ::testing::Values(transform_case{modulation::bpsk, 1}, transform_case{modulation::bpsk, 4},
                      transform_case{modulation::bpsk, 12}, transform_case{modulation::qpsk, 2},
                      transform_case{modulation::qpsk, 6}, transform_case{modulation::qam16, 2},
                      transform_case{modulation::qam16, 5}, transform_case{modulation::qam64, 2},
                      transform_case{modulation::qam64, 3}));

TEST(Transform, GroundStateIsTransmittedBitsByBruteForce) {
    hcq::util::rng rng(404);
    // Small enough for exhaustive verification: 4 users QPSK = 8 variables.
    const auto instance = wl::noiseless_paper_instance(rng, 4, modulation::qpsk);
    const auto mq = hcq::detect::ml_to_qubo(instance);
    const auto exact = hcq::qubo::brute_force_minimize(mq.model);
    EXPECT_EQ(exact.best_bits, instance.tx_bits);
    EXPECT_NEAR(exact.best_energy, -mq.model.offset(), 1e-8);
    EXPECT_EQ(exact.num_optima, 1u);  // generic random-phase channels: unique
}

TEST(Transform, SymbolsDecodeMatchesModulate) {
    hcq::util::rng rng(405);
    const auto instance = wl::noiseless_paper_instance(rng, 3, modulation::qam16);
    const auto mq = hcq::detect::ml_to_qubo(instance);
    const auto bits = rng.bits(instance.num_bits());
    const auto symbols = mq.symbols(bits);
    const auto expected = wl::modulate(modulation::qam16, bits);
    for (std::size_t u = 0; u < 3; ++u) {
        EXPECT_NEAR(std::abs(symbols[u] - expected[u]), 0.0, 1e-12);
    }
}

TEST(Transform, RejectsBadShapes) {
    hcq::linalg::cmat h(2, 2);
    hcq::linalg::cvec y(3);
    EXPECT_THROW((void)hcq::detect::ml_to_qubo(h, y, modulation::qpsk), std::invalid_argument);
    EXPECT_THROW((void)hcq::detect::ml_to_qubo(hcq::linalg::cmat(0, 0), hcq::linalg::cvec(0),
                                               modulation::qpsk),
                 std::invalid_argument);
}

TEST(Transform, OffsetIsNonNegativeObjectiveShift) {
    // offset == min achievable ||y - Hx||^2 shift container: energy+offset
    // is a norm, so for any bits it is >= 0.
    hcq::util::rng rng(406);
    const auto instance = wl::noiseless_paper_instance(rng, 4, modulation::qam16);
    const auto mq = hcq::detect::ml_to_qubo(instance);
    for (int trial = 0; trial < 30; ++trial) {
        const auto bits = rng.bits(instance.num_bits());
        EXPECT_GE(mq.model.energy_with_offset(bits), -1e-9);
    }
}

TEST(Transform, SymbolPriorStrengthZeroNeutral) {
    hcq::util::rng rng(407);
    const auto instance = wl::noiseless_paper_instance(rng, 2, modulation::qam16);
    auto mq = hcq::detect::ml_to_qubo(instance);
    const auto base = mq.model;
    const std::vector<std::uint8_t> pattern{1, 1, 1, 1};
    hcq::detect::apply_symbol_prior(mq, 0, pattern, 0.0);
    const auto bits = rng.bits(instance.num_bits());
    EXPECT_DOUBLE_EQ(mq.model.energy_with_offset(bits), base.energy_with_offset(bits));
}

TEST(Transform, SymbolPriorPenalisesDisagreement) {
    // Figure 4: with targets 1111 on user 0, the penalty applies to bit
    // pairs that are both wrong; a strong prior must not change the energy
    // of the believed pattern itself.
    hcq::util::rng rng(408);
    const auto instance = wl::noiseless_paper_instance(rng, 2, modulation::qam16);
    auto mq = hcq::detect::ml_to_qubo(instance);
    const auto base = mq.model;
    const std::vector<std::uint8_t> pattern{1, 1, 1, 1};
    hcq::detect::apply_symbol_prior(mq, 0, pattern, 7.0);

    auto agreeing = instance.tx_bits;
    for (std::size_t b = 0; b < 4; ++b) agreeing[b] = 1;
    EXPECT_NEAR(mq.model.energy_with_offset(agreeing), base.energy_with_offset(agreeing), 1e-9);

    auto disagreeing = agreeing;
    disagreeing[0] = 0;
    disagreeing[1] = 0;  // first pair fully wrong: penalty 7
    EXPECT_NEAR(mq.model.energy_with_offset(disagreeing),
                base.energy_with_offset(disagreeing) + 7.0, 1e-9);
}

TEST(Transform, SymbolPriorValidation) {
    hcq::util::rng rng(409);
    const auto instance = wl::noiseless_paper_instance(rng, 2, modulation::qpsk);
    auto mq = hcq::detect::ml_to_qubo(instance);
    const std::vector<std::uint8_t> pattern{1, 1};
    EXPECT_THROW(hcq::detect::apply_symbol_prior(mq, 5, pattern, 1.0), std::invalid_argument);
    const std::vector<std::uint8_t> short_pattern{1};
    EXPECT_THROW(hcq::detect::apply_symbol_prior(mq, 0, short_pattern, 1.0),
                 std::invalid_argument);
}

TEST(Transform, VariableCountsPerModulation) {
    hcq::util::rng rng(410);
    EXPECT_EQ(hcq::detect::ml_to_qubo(wl::noiseless_paper_instance(rng, 36, modulation::bpsk))
                  .model.num_variables(),
              36u);
    EXPECT_EQ(hcq::detect::ml_to_qubo(wl::noiseless_paper_instance(rng, 18, modulation::qpsk))
                  .model.num_variables(),
              36u);
    EXPECT_EQ(hcq::detect::ml_to_qubo(wl::noiseless_paper_instance(rng, 9, modulation::qam16))
                  .model.num_variables(),
              36u);
    EXPECT_EQ(hcq::detect::ml_to_qubo(wl::noiseless_paper_instance(rng, 6, modulation::qam64))
                  .model.num_variables(),
              36u);
}

}  // namespace
