// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --scale=smoke|quick|full   sample-count preset (default quick; full
//                              approaches the paper's counts)
//   --seed=<n>                 master seed (default 7)
//   --csv                      emit CSV instead of aligned tables
//   --json                     emit a self-describing JSON envelope
//                              {git_sha, bench, config, rows} (the
//                              BENCH_*.json CI artifact format; takes
//                              precedence over --csv).  The envelope's
//                              git_sha and argv echo make baseline diffs in
//                              CI self-describing: scripts/check_bench.py
//                              reports WHICH commit and flags produced each
//                              side.
// plus bench-specific flags documented in each binary's banner.
#ifndef HCQ_BENCH_BENCH_COMMON_H
#define HCQ_BENCH_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

// Injected by bench/CMakeLists.txt from `git rev-parse`; "unknown" when the
// source tree is not a git checkout (e.g. a release tarball).
#ifndef HCQ_GIT_SHA
#define HCQ_GIT_SHA "unknown"
#endif

namespace hcq::bench {

/// Parsed common options.
struct context {
    util::flag_set flags;
    util::bench_scale scale = util::bench_scale::quick;
    std::uint64_t seed = 7;
    bool csv = false;
    bool json = false;
    std::string bench_name;  ///< argv[0] basename, for the JSON envelope
    std::string argv_echo;   ///< argv[1..] joined, for the JSON envelope

    context(int argc, const char* const argv[]) : flags(argc, argv) {
        scale = util::parse_scale(flags);
        seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
        csv = flags.get_bool("csv", false);
        json = flags.get_bool("json", false);
        if (argc > 0) {
            bench_name = argv[0];
            const auto slash = bench_name.find_last_of('/');
            if (slash != std::string::npos) bench_name = bench_name.substr(slash + 1);
        }
        for (int i = 1; i < argc; ++i) {
            if (i > 1) argv_echo += ' ';
            argv_echo += argv[i];
        }
    }

    /// Scales a base count by the preset factor (>= 1).
    [[nodiscard]] std::size_t scaled(std::size_t base) const {
        const double f = util::scale_factor(scale);
        const double v = std::ceil(static_cast<double>(base) * f);
        return static_cast<std::size_t>(std::max(1.0, v));
    }

    /// Prints the bench banner (suppressed in JSON mode, where stdout must
    /// stay machine-parseable for the CI artifact).
    void banner(const std::string& title, const std::string& paper_ref) const {
        if (json) return;
        std::cout << "== " << title << " ==\n"
                  << "reproduces: " << paper_ref << "\n"
                  << "scale: " << util::to_string(scale) << "  seed: " << seed << "\n\n";
    }

    /// Emits a table in the selected format.  JSON output is wrapped in a
    /// self-describing envelope so BENCH_*.json artifacts carry the commit
    /// and configuration that produced them:
    ///   {"git_sha": "...", "bench": "...",
    ///    "config": {"argv": "...", "scale": "...", "seed": N},
    ///    "rows": [...]}
    void emit(const util::table& t) const {
        if (json) {
            std::cout << "{\n"
                      << "  \"git_sha\": " << util::json_quote(HCQ_GIT_SHA) << ",\n"
                      << "  \"bench\": " << util::json_quote(bench_name) << ",\n"
                      << "  \"config\": {\"argv\": " << util::json_quote(argv_echo)
                      << ", \"scale\": " << util::json_quote(util::to_string(scale))
                      << ", \"seed\": " << seed << "},\n"
                      << "  \"rows\":\n";
            t.print_json(std::cout);
            std::cout << "}\n";
            return;
        }
        if (csv) {
            t.print_csv(std::cout);
        } else {
            t.print(std::cout);
        }
        std::cout << "\n";
    }
};

}  // namespace hcq::bench

#endif  // HCQ_BENCH_BENCH_COMMON_H
