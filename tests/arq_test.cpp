// Tests for the ARQ / retransmission layer: config parsing, the
// deterministic retransmission decision, counter arithmetic, the
// closed-loop trace replay on hand-checkable constant stages, and the link
// integration edge cases the acceptance criteria name — max_retx=0 equals
// the open loop bit for bit, deadline 0 retransmits every frame until
// max_retx, and the detection-domain ARQ counters are bit-identical at any
// thread count and stream_block size.
#include <gtest/gtest.h>

#include <stdexcept>

#include "arq/arq.h"
#include "link/link_sim.h"
#include "paths/registry.h"

namespace {

namespace aq = hcq::arq;
namespace lk = hcq::link;
namespace pl = hcq::pipeline;
namespace pt = hcq::paths;
namespace wl = hcq::wireless;

// ---------------------------------------------------------------------------
// Config parsing
// ---------------------------------------------------------------------------

TEST(ArqConfig, ParsesDefaultsAndKeys) {
    const auto defaults = aq::parse_arq("");
    EXPECT_EQ(defaults.deadline_us, aq::no_deadline);
    EXPECT_FALSE(defaults.deadline_auto);
    EXPECT_EQ(defaults.max_retx, 1u);

    // A bare `--arq` flag parses to "true": enable with defaults.
    EXPECT_EQ(aq::parse_arq("true").max_retx, 1u);

    const auto full = aq::parse_arq("deadline_us=500,max_retx=2");
    EXPECT_DOUBLE_EQ(full.deadline_us, 500.0);
    EXPECT_FALSE(full.deadline_auto);
    EXPECT_EQ(full.max_retx, 2u);

    const auto swapped = aq::parse_arq("max_retx=0,deadline_us=0");
    EXPECT_DOUBLE_EQ(swapped.deadline_us, 0.0);
    EXPECT_EQ(swapped.max_retx, 0u);

    const auto autod = aq::parse_arq("deadline_us=auto");
    EXPECT_TRUE(autod.deadline_auto);

    EXPECT_EQ(aq::parse_arq("deadline_us=none").deadline_us, aq::no_deadline);

    // Hybrid-ARQ combining: chase by default, plain as the A/B baseline.
    EXPECT_EQ(defaults.combining, aq::combining_mode::chase);
    EXPECT_EQ(aq::parse_arq("combining=plain").combining, aq::combining_mode::plain);
    EXPECT_EQ(aq::parse_arq("combining=chase,max_retx=3").combining,
              aq::combining_mode::chase);
}

TEST(ArqConfig, ToStringRoundTrips) {
    // Canonical form has every key explicit (registry style), so the
    // combining mode always appears.
    EXPECT_EQ(aq::parse_arq("deadline_us=500,max_retx=2").to_string(),
              "deadline_us=500,max_retx=2,combining=chase");
    EXPECT_EQ(aq::arq_config{}.to_string(), "deadline_us=none,max_retx=1,combining=chase");
    EXPECT_EQ(aq::parse_arq("deadline_us=auto").to_string(),
              "deadline_us=auto,max_retx=1,combining=chase");
    EXPECT_EQ(aq::parse_arq("combining=plain,max_retx=2").to_string(),
              "deadline_us=none,max_retx=2,combining=plain");
}

TEST(ArqConfig, RejectsMalformedSpecs) {
    EXPECT_THROW((void)aq::parse_arq("combining=maximal"), std::invalid_argument);
    EXPECT_THROW((void)aq::parse_arq("deadline_us=soon"), std::invalid_argument);
    EXPECT_THROW((void)aq::parse_arq("deadline_us=-3"), std::invalid_argument);
    EXPECT_THROW((void)aq::parse_arq("max_retx=-1"), std::invalid_argument);
    EXPECT_THROW((void)aq::parse_arq("max_retx=lots"), std::invalid_argument);
    EXPECT_THROW((void)aq::parse_arq("warp=9"), std::invalid_argument);
    EXPECT_THROW((void)aq::parse_arq("deadline_us"), std::invalid_argument);
    EXPECT_THROW((void)aq::parse_arq("=5"), std::invalid_argument);
}

TEST(ArqConfig, NeedsRetxSemantics) {
    aq::arq_config config;  // no deadline, max_retx = 1
    EXPECT_TRUE(aq::needs_retx(config, /*bits_ok=*/false, /*attempt=*/0));
    EXPECT_FALSE(aq::needs_retx(config, /*bits_ok=*/true, /*attempt=*/0));
    EXPECT_FALSE(aq::needs_retx(config, /*bits_ok=*/false, /*attempt=*/1));  // budget spent

    config.deadline_us = 0.0;  // degenerate: every attempt is late
    EXPECT_TRUE(aq::needs_retx(config, /*bits_ok=*/true, /*attempt=*/0));
    EXPECT_FALSE(aq::needs_retx(config, /*bits_ok=*/true, /*attempt=*/1));

    config.max_retx = 0;  // open loop: never retransmit
    EXPECT_FALSE(aq::needs_retx(config, /*bits_ok=*/false, /*attempt=*/0));
}

// ---------------------------------------------------------------------------
// Counter arithmetic
// ---------------------------------------------------------------------------

TEST(ArqCounters, FoldsFrameChains) {
    aq::counters c;
    c.add_frame(/*attempts_used=*/1, /*wrong=*/0, /*first_ok=*/true, /*final_ok=*/true);
    c.add_frame(/*attempts_used=*/3, /*wrong=*/2, /*first_ok=*/false, /*final_ok=*/true);
    c.add_frame(/*attempts_used=*/3, /*wrong=*/3, /*first_ok=*/false, /*final_ok=*/false);

    EXPECT_EQ(c.frames, 3u);
    EXPECT_EQ(c.attempts, 7u);
    EXPECT_EQ(c.retransmissions(), 4u);
    EXPECT_EQ(c.wrong_attempts, 5u);
    EXPECT_EQ(c.corrected_frames, 1u);
    EXPECT_EQ(c.residual_errors, 1u);
    EXPECT_DOUBLE_EQ(c.residual_fer(), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(c.retx_rate(), 4.0 / 3.0);
    EXPECT_DOUBLE_EQ(c.mean_attempts(), 7.0 / 3.0);
    EXPECT_DOUBLE_EQ(c.attempt_error_rate(), 5.0 / 7.0);
}

TEST(ArqCounters, EmptyRatesAreZero) {
    const aq::counters c;
    EXPECT_DOUBLE_EQ(c.residual_fer(), 0.0);
    EXPECT_DOUBLE_EQ(c.retx_rate(), 0.0);
    EXPECT_DOUBLE_EQ(c.mean_attempts(), 0.0);
    EXPECT_DOUBLE_EQ(c.attempt_error_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Closed-loop trace replay on deterministic stages
// ---------------------------------------------------------------------------

std::vector<pl::stage> two_constant_stages() {
    return {pl::stage::constant("a", 10.0), pl::stage::constant("b", 5.0)};
}

TEST(ArqClosedLoop, CleanChannelDeliversEverything) {
    hcq::util::rng rng(7);
    const auto report = aq::closed_loop_replay(two_constant_stages(), 50,
                                               /*attempt_error_rate=*/0.0, aq::no_deadline,
                                               /*max_retx=*/2, {.interarrival_us = 20.0}, rng,
                                               {.record_latencies = false});
    EXPECT_EQ(report.stats.frames, 50u);
    EXPECT_EQ(report.stats.injections, 50u);  // nothing ever retransmits
    EXPECT_EQ(report.stats.completions, 50u);
    EXPECT_EQ(report.stats.delivered, 50u);
    EXPECT_EQ(report.stats.deadline_misses, 0u);
    EXPECT_EQ(report.stats.retransmissions, 0u);
    EXPECT_EQ(report.stats.exhausted, 0u);
    EXPECT_DOUBLE_EQ(report.stats.miss_rate(), 0.0);
    EXPECT_DOUBLE_EQ(report.stats.undelivered_rate(), 0.0);
    EXPECT_DOUBLE_EQ(report.stats.goodput_per_us, report.replay.throughput_per_us);
}

TEST(ArqClosedLoop, AlwaysWrongExhaustsTheRetryBudget) {
    hcq::util::rng rng(7);
    const auto report = aq::closed_loop_replay(two_constant_stages(), 20,
                                               /*attempt_error_rate=*/1.0, aq::no_deadline,
                                               /*max_retx=*/2, {.interarrival_us = 50.0}, rng,
                                               {.record_latencies = false});
    // Every frame burns 1 + max_retx attempts and is never delivered.
    EXPECT_EQ(report.stats.injections, 20u * 3u);
    EXPECT_EQ(report.stats.completions, 20u * 3u);
    EXPECT_EQ(report.stats.retransmissions, 20u * 2u);
    EXPECT_EQ(report.stats.delivered, 0u);
    EXPECT_EQ(report.stats.exhausted, 20u);
    EXPECT_DOUBLE_EQ(report.stats.goodput_per_us, 0.0);
    EXPECT_DOUBLE_EQ(report.stats.undelivered_rate(), 1.0);
}

TEST(ArqClosedLoop, DeadlineZeroMissesEveryCompletion) {
    hcq::util::rng rng(7);
    const auto report = aq::closed_loop_replay(two_constant_stages(), 20,
                                               /*attempt_error_rate=*/0.0, /*deadline=*/0.0,
                                               /*max_retx=*/1, {.interarrival_us = 50.0}, rng,
                                               {.record_latencies = false});
    EXPECT_EQ(report.stats.injections, 20u * 2u);
    EXPECT_EQ(report.stats.deadline_misses, report.stats.completions);
    EXPECT_DOUBLE_EQ(report.stats.miss_rate(), 1.0);
    EXPECT_EQ(report.stats.delivered, 0u);
    EXPECT_EQ(report.stats.exhausted, 20u);
}

TEST(ArqClosedLoop, TightDeadlineBelowServiceTimeMissesEverything) {
    // Service is 15 us end to end, the deadline 12 us: every attempt is
    // late even with empty queues.
    hcq::util::rng rng(7);
    const auto report = aq::closed_loop_replay(two_constant_stages(), 10,
                                               /*attempt_error_rate=*/0.0, /*deadline=*/12.0,
                                               /*max_retx=*/1, {.interarrival_us = 100.0}, rng,
                                               {.record_latencies = false});
    EXPECT_EQ(report.stats.delivered, 0u);
    EXPECT_EQ(report.stats.injections, 20u);
    EXPECT_DOUBLE_EQ(report.stats.miss_rate(), 1.0);
}

TEST(ArqClosedLoop, RetransmissionLoadAmplifiesQueueing) {
    // At an offered load near saturation, a lossy channel's retransmissions
    // must push the closed-loop p99 latency past the open loop's.
    hcq::util::rng rng_open(7);
    const auto open = aq::closed_loop_replay(two_constant_stages(), 200,
                                             /*attempt_error_rate=*/0.0, aq::no_deadline,
                                             /*max_retx=*/3, {.interarrival_us = 11.0},
                                             rng_open, {.record_latencies = false});
    hcq::util::rng rng_lossy(7);
    const auto lossy = aq::closed_loop_replay(two_constant_stages(), 200,
                                              /*attempt_error_rate=*/0.5, aq::no_deadline,
                                              /*max_retx=*/3, {.interarrival_us = 11.0},
                                              rng_lossy, {.record_latencies = false});
    EXPECT_GT(lossy.replay.num_jobs, open.replay.num_jobs);
    EXPECT_GT(lossy.replay.p99_latency_us, open.replay.p99_latency_us);
}

TEST(ArqClosedLoop, RejectsBadArguments) {
    hcq::util::rng rng(7);
    EXPECT_THROW((void)aq::closed_loop_replay(two_constant_stages(), 10, -0.1, aq::no_deadline,
                                              1, {.interarrival_us = 10.0}, rng, {}),
                 std::invalid_argument);
    EXPECT_THROW((void)aq::closed_loop_replay(two_constant_stages(), 10, 1.5, aq::no_deadline,
                                              1, {.interarrival_us = 10.0}, rng, {}),
                 std::invalid_argument);
    EXPECT_THROW((void)aq::closed_loop_replay(two_constant_stages(), 10, 0.0, -1.0, 1,
                                              {.interarrival_us = 10.0}, rng, {}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Link integration — the acceptance-criteria edge cases
// ---------------------------------------------------------------------------

lk::link_config noisy_config() {
    // Noisy enough that every path sees frame errors, so the ARQ loop has
    // real work on a small stream.
    lk::link_config config;
    config.num_uses = 24;
    config.num_users = 4;
    config.mod = wl::modulation::qam16;
    config.snr_db = 13.0;
    config.paths = pt::parse_spec_list("zf,sa:reads=3,sweeps=30,gsra:reads=8");
    config.seed = 2026;
    config.num_threads = 1;
    return config;
}

TEST(LinkArq, MaxRetxZeroEqualsOpenLoopBitForBit) {
    auto config = noisy_config();
    const auto open = lk::run_link_simulation(config);
    config.arq = aq::parse_arq("max_retx=0");
    const auto arq = lk::run_link_simulation(config);

    ASSERT_EQ(arq.paths.size(), open.paths.size());
    for (std::size_t p = 0; p < open.paths.size(); ++p) {
        SCOPED_TRACE(open.paths[p].name);
        // The open-loop statistics are untouched by enabling ARQ...
        EXPECT_EQ(arq.paths[p].ber.errors(), open.paths[p].ber.errors());
        EXPECT_EQ(arq.paths[p].ber.total_bits(), open.paths[p].ber.total_bits());
        EXPECT_EQ(arq.paths[p].exact_frames, open.paths[p].exact_frames);
        EXPECT_EQ(arq.paths[p].sum_ml_cost, open.paths[p].sum_ml_cost);
        // ...and with no retries allowed the ARQ counters ARE the open loop.
        ASSERT_TRUE(arq.paths[p].arq.has_value());
        const auto& counters = arq.paths[p].arq->counters;
        EXPECT_EQ(counters.frames, config.num_uses);
        EXPECT_EQ(counters.attempts, config.num_uses);
        EXPECT_EQ(counters.retransmissions(), 0u);
        EXPECT_EQ(counters.corrected_frames, 0u);
        EXPECT_EQ(counters.residual_errors, config.num_uses - open.paths[p].exact_frames);
        EXPECT_EQ(arq.paths[p].arq->retx_service.count(), 0u);
        EXPECT_FALSE(open.paths[p].arq.has_value());
    }
}

TEST(LinkArq, DeadlineZeroRetransmitsEveryFrameUntilMaxRetx) {
    auto config = noisy_config();
    config.arq = aq::parse_arq("deadline_us=0,max_retx=2");
    const auto report = lk::run_link_simulation(config);
    for (const auto& path : report.paths) {
        SCOPED_TRACE(path.name);
        const auto& ar = *path.arq;
        // Every frame is "late" by definition: the full retry budget burns.
        EXPECT_EQ(ar.counters.attempts, config.num_uses * 3);
        EXPECT_EQ(ar.counters.retransmissions(), config.num_uses * 2);
        EXPECT_EQ(ar.retx_service.count(), config.num_uses * 2);
        // Nothing ever meets a zero deadline in the closed-loop replay.
        EXPECT_EQ(ar.replay_stats.delivered, 0u);
        EXPECT_DOUBLE_EQ(ar.replay_stats.miss_rate(), 1.0);
        EXPECT_DOUBLE_EQ(ar.replay_stats.goodput_per_us, 0.0);
    }
}

TEST(LinkArq, CountersBitIdenticalAcrossThreadsAndStreamBlocks) {
    auto config = noisy_config();
    config.arq = aq::parse_arq("deadline_us=auto,max_retx=2");
    config.num_threads = 1;
    config.stream_block = 1024;
    const auto reference = lk::run_link_simulation(config);

    for (const std::size_t threads : {2UL, 8UL}) {
        for (const std::size_t block : {3UL, 8UL, 1024UL}) {
            SCOPED_TRACE(std::to_string(threads) + " threads, block " + std::to_string(block));
            config.num_threads = threads;
            config.stream_block = block;
            const auto run = lk::run_link_simulation(config);
            ASSERT_EQ(run.paths.size(), reference.paths.size());
            for (std::size_t p = 0; p < reference.paths.size(); ++p) {
                SCOPED_TRACE(reference.paths[p].name);
                const auto& want = reference.paths[p].arq->counters;
                const auto& got = run.paths[p].arq->counters;
                EXPECT_EQ(got.frames, want.frames);
                EXPECT_EQ(got.attempts, want.attempts);
                EXPECT_EQ(got.wrong_attempts, want.wrong_attempts);
                EXPECT_EQ(got.corrected_frames, want.corrected_frames);
                EXPECT_EQ(got.residual_errors, want.residual_errors);
                EXPECT_EQ(run.paths[p].arq->retx_service.count(),
                          reference.paths[p].arq->retx_service.count());
            }
        }
    }
}

TEST(LinkArq, RetransmissionsReduceResidualErrors) {
    auto config = noisy_config();
    config.arq = aq::parse_arq("max_retx=2");
    const auto report = lk::run_link_simulation(config);
    for (const auto& path : report.paths) {
        SCOPED_TRACE(path.name);
        const auto& c = path.arq->counters;
        const std::uint64_t open_loop_errors = config.num_uses - path.exact_frames;
        ASSERT_GT(open_loop_errors, 0u) << "scenario must produce frame errors";
        // Error-driven ARQ can only help: frames recover or stay wrong.
        EXPECT_LE(c.residual_errors, open_loop_errors);
        EXPECT_EQ(c.corrected_frames, open_loop_errors - c.residual_errors);
        EXPECT_GT(c.corrected_frames, 0u);
        // Retransmissions happen only for wrong frames here (no deadline).
        EXPECT_GE(c.retransmissions(), open_loop_errors);
        EXPECT_LE(c.retransmissions(), open_loop_errors * 2);
        EXPECT_EQ(c.attempt_error_rate(),
                  static_cast<double>(c.wrong_attempts) / static_cast<double>(c.attempts));
    }
}

TEST(LinkArq, AutoDeadlineResolvesToOpenLoopReplayP99) {
    auto config = noisy_config();
    config.paths = pt::parse_spec_list("gsra:reads=8");
    config.arq = aq::parse_arq("deadline_us=auto,max_retx=1");
    const auto report = lk::run_link_simulation(config);
    const auto& path = report.paths[0];
    EXPECT_DOUBLE_EQ(path.arq->replay_stats.resolved_deadline_us,
                     path.replay.p99_latency_us);
}

TEST(LinkArq, SummaryTableGainsArqColumns) {
    auto config = noisy_config();
    config.paths = pt::parse_spec_list("zf,gsra:reads=8");
    config.arq = aq::parse_arq("max_retx=1");
    const auto report = lk::run_link_simulation(config);
    const auto t = lk::summary_table(report);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 17u);  // 13 open-loop + resid FER/retx/miss/goodput
}

TEST(LinkArq, ClosedReplayAccountingIsConsistent) {
    auto config = noisy_config();
    config.arq = aq::parse_arq("deadline_us=auto,max_retx=2");
    const auto report = lk::run_link_simulation(config);
    for (const auto& path : report.paths) {
        SCOPED_TRACE(path.name);
        const auto& ar = *path.arq;
        const auto& stats = ar.replay_stats;
        EXPECT_EQ(stats.frames, config.num_uses);
        EXPECT_EQ(stats.injections, ar.closed_replay.num_jobs);
        EXPECT_EQ(stats.injections, stats.frames + stats.retransmissions);
        EXPECT_EQ(stats.completions, ar.closed_replay.jobs_completed);
        EXPECT_EQ(stats.completions + stats.lost_to_drops, stats.injections);
        // Every offered frame ends exactly one way.
        EXPECT_EQ(stats.delivered + stats.exhausted + stats.lost_to_drops, stats.frames);
    }
}

}  // namespace
