// Figure 8 — "Success probability and TTS of RA compared against FA and FR
// for a 8-user 16-QAM decoding instance, initialized with different methods
// and candidate solutions of various quality (Delta-E_IS%).  The performance
// is reported as a function of the parameter s_p."
//
// Series reproduced (paper Section 4.2/4.3 parameters: t_a = 1 us pauses
// t_p = 1 us, s_p in 0.25..0.99 step 0.04):
//   * FA — forward annealing with a pause at s_p,
//   * FR — forward-reverse with the oracle-best c_p per s_p,
//   * RA(IS=0) — reverse annealing from the ground state (red dashed line),
//   * RA(GS) — reverse annealing from the greedy-search candidate,
//   * RA(IS<2%), RA(IS 2-4%) — harvested candidates by quality bin.
//
// Paper shape to reproduce: FA succeeds only at isolated pause locations;
// RA succeeds across a contiguous window of s_p; high-quality initial
// states widen/raise the window; beyond the window (s_p -> 1) every
// non-ground initialisation fails.
#include <optional>
#include <vector>

#include "bench_common.h"
#include "classical/greedy.h"
#include "core/device.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "metrics/delta_e.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace wl = hcq::wireless;

std::string fmt_tts(double tts_us) {
    if (std::isinf(tts_us)) return "inf";
    return hcq::util::format_double(tts_us, 1);
}

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Figure 8: p* and TTS(99%) vs s_p for FA / FR / RA (8-user 16-QAM)",
               "Kim et al., HotNets'20, Section 4.3 / Figure 8");

    const std::size_t reads = ctx.scaled(300);  // paper: >= 10,000 per setting
    const std::size_t harvest_attempts = ctx.scaled(40000);
    const double t_a = 1.0;
    const double t_p = 1.0;

    hcq::util::rng rng(ctx.seed);
    const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
    const an::annealer_emulator device;

    const auto gs = hcq::solvers::greedy_search().initialize(e.reduced.model, rng);
    const double gs_gap = hcq::metrics::delta_e_percent(gs.energy, e.optimal_energy);
    // Paper methodology: quality-binned initial states are annealer samples.
    const auto bins =
        hy::harvest_annealer_states(e, device, 2.0, 10.0, harvest_attempts / 100, rng);
    const hcq::qubo::bit_vector* is_a = bins.states[0].empty() ? nullptr : &bins.states[0][0];
    const hcq::qubo::bit_vector* is_b = bins.states[1].empty() ? nullptr : &bins.states[1][0];

    std::cout << "instance: 8-user 16-QAM (32 variables); GS Delta-E_IS% = "
              << hcq::util::format_double(gs_gap, 2) << "; reads/setting = " << reads << "\n\n";

    const auto grid = hy::paper_sp_grid();
    struct row {
        double sp;
        hy::schedule_eval fa, fr, ra0, ra_gs, ra_a, ra_b;
        double fr_cp = 0.0;
        bool fr_ok = false;
    };
    std::vector<row> rows(grid.size());

    hcq::util::parallel_for(grid.size(), [&](std::size_t g) {
        const double sp = grid[g];
        row& r = rows[g];
        r.sp = sp;
        hcq::util::rng prng(hcq::util::rng(ctx.seed + 1).derive(g)());
        r.fa = hy::evaluate_schedule(device, e.reduced.model,
                                     an::anneal_schedule::forward(t_a, sp, t_p), reads,
                                     e.optimal_energy, prng);
        if (sp < grid.back()) {  // FR needs c_p > s_p
            // Already inside a parallel region: keep the oracle's inner
            // c_p fan-out serial to avoid thread oversubscription.
            const auto fr = hy::best_forward_reverse(device, e.reduced.model, sp, t_p, t_a,
                                                     reads, e.optimal_energy, prng,
                                                     /*confidence_percent=*/99.0,
                                                     /*num_threads=*/1);
            r.fr = fr.eval;
            r.fr_cp = fr.best_cp;
            r.fr_ok = true;
        }
        const auto ra = an::anneal_schedule::reverse(sp, t_p);
        r.ra0 = hy::evaluate_schedule(device, e.reduced.model, ra, reads, e.optimal_energy,
                                      prng, e.optimal_bits);
        r.ra_gs = hy::evaluate_schedule(device, e.reduced.model, ra, reads, e.optimal_energy,
                                        prng, gs.bits);
        if (is_a != nullptr) {
            r.ra_a = hy::evaluate_schedule(device, e.reduced.model, ra, reads,
                                           e.optimal_energy, prng, *is_a);
        }
        if (is_b != nullptr) {
            r.ra_b = hy::evaluate_schedule(device, e.reduced.model, ra, reads,
                                           e.optimal_energy, prng, *is_b);
        }
    });

    hcq::util::table pt({"s_p", "FA p*", "FR p* (c_p)", "RA(IS=0) p*", "RA(IS<2%) p*",
                         "RA(IS 2-4%) p*", "RA(GS) p*"});
    hcq::util::table tt({"s_p", "FA TTS us", "FR TTS us", "RA(IS=0) TTS us",
                         "RA(IS<2%) TTS us", "RA(IS 2-4%) TTS us", "RA(GS) TTS us"});
    for (const auto& r : rows) {
        pt.add(hcq::util::format_double(r.sp, 2), r.fa.p_star,
               r.fr_ok ? hcq::util::format_double(r.fr.p_star, 4) + " (" +
                             hcq::util::format_double(r.fr_cp, 2) + ")"
                       : std::string("-"),
               r.ra0.p_star, is_a != nullptr ? hcq::util::format_double(r.ra_a.p_star, 4) : "-",
               is_b != nullptr ? hcq::util::format_double(r.ra_b.p_star, 4) : "-",
               r.ra_gs.p_star);
        tt.add(hcq::util::format_double(r.sp, 2), fmt_tts(r.fa.tts_us),
               r.fr_ok ? fmt_tts(r.fr.tts_us) : "-", fmt_tts(r.ra0.tts_us),
               is_a != nullptr ? fmt_tts(r.ra_a.tts_us) : "-",
               is_b != nullptr ? fmt_tts(r.ra_b.tts_us) : "-", fmt_tts(r.ra_gs.tts_us));
    }

    std::cout << "Success probability p* per anneal:\n";
    ctx.emit(pt);
    std::cout << "TTS at 99% confidence (us):\n";
    ctx.emit(tt);
    std::cout << "Paper shape check: RA columns succeed over a contiguous s_p window and\n"
                 "fail towards s_p -> 1 (except RA(IS=0), which holds at 1.0); FA succeeds\n"
                 "only around isolated pause locations; FR does not beat RA despite the\n"
                 "oracle c_p.\n";
    return 0;
}
