// Fixture: the same violations with suppressions — none may fire.
#include <random>  // hcq-lint: allow(raw-rng) fixture: suppression must silence the include

void fixture_raw_rng_suppressed() {
    // hcq-lint: allow(raw-rng) fixture: preceding-line suppression form
    std::mt19937 engine(42);
    std::random_device device;  // hcq-lint: allow(raw-rng) fixture: same-line form
    (void)engine;
    (void)device;
}
